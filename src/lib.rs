//! # michican-suite — umbrella crate of the MichiCAN (DSN 2025) reproduction
//!
//! Re-exports every crate of the workspace and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! See the repository `README.md` for the architecture overview and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

#![forbid(unsafe_code)]

pub use ::bench as harness;
pub use can_attacks;
pub use can_core;
pub use can_ids;
/// The detector toolkit in one import: `use michican_suite::ids_prelude::*;`.
pub use can_ids::prelude as ids_prelude;
pub use can_sim;
pub use can_trace;
pub use mcu;
pub use michican;
pub use parrot;
pub use restbus;

//! Table I, measured: the same flooding DoS against a frame-level IDS and
//! against MichiCAN — detection latency, leaked frames, and whether the
//! attacker is ever eradicated.
//!
//! ```text
//! cargo run --release --example ids_vs_michican
//! ```

use bench::idsbench::{flood_ids_defense, flood_michican_defense};
use can_core::BusSpeed;

fn main() {
    let run_bits = 40_000;
    println!(
        "flooding DoS (identifier 0x064) at {}, {} bit times\n",
        BusSpeed::K500,
        run_bits
    );
    let ids = flood_ids_defense(run_bits);
    let michican = flood_michican_defense(run_bits);

    let fmt_latency = |b: Option<u64>| {
        b.map(|bits| format!("{bits} bits ({:.0} µs)", bits as f64 * 2.0))
            .unwrap_or_else(|| "never".into())
    };
    println!("{:<34} {:>22} {:>22}", "", "frame-level IDS", "MichiCAN");
    println!(
        "{:<34} {:>22} {:>22}",
        "detection latency",
        fmt_latency(ids.detection_latency_bits),
        fmt_latency(michican.detection_latency_bits)
    );
    println!(
        "{:<34} {:>22} {:>22}",
        "attack frames before detection",
        ids.frames_before_detection,
        michican.frames_before_detection
    );
    println!(
        "{:<34} {:>22} {:>22}",
        "attack frames delivered (total)",
        ids.total_attack_frames_delivered,
        michican.total_attack_frames_delivered
    );
    println!(
        "{:<34} {:>22} {:>22}",
        "attacker eradicated", ids.eradicated, michican.eradicated
    );

    if let (Some(slow), Some(fast)) = (ids.detection_latency_bits, michican.detection_latency_bits)
    {
        println!(
            "\nMichiCAN reacts {}× faster — inside the first malicious frame's\n\
             control field, before a single byte of attacker data touches the bus.",
            slow / fast.max(1)
        );
    }
}

//! Fault injection: the paper's false-positive argument (§IV-E) under an
//! adversarially noisy channel, plus the defense still working through
//! noise.
//!
//! ```text
//! cargo run --release --example noisy_channel
//! ```

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId, ErrorState};
use can_sim::{EventKind, FaultModel, Node, SimBuilder};
use michican::prelude::*;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

fn benign_under_noise(ber: f64) {
    let list = EcuList::from_raw(&[0x0B0, 0x240]);
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(
            Node::new(
                "ecu-0B0",
                Box::new(PeriodicSender::new(frame(0x0B0, &[0x55; 8]), 600, 0)),
            )
            .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .node(
            Node::new(
                "ecu-240",
                Box::new(PeriodicSender::new(frame(0x240, &[0xAA; 8]), 900, 333)),
            )
            .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 1)))),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .fault(FaultModel::random(ber, 0xBEEF))
        .build();
    sim.run(200_000);

    let errors = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
        .count();
    let delivered = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FrameReceived { .. }))
        .count();
    let worst_tec = (0..sim.node_count())
        .map(|n| sim.node(n).controller().counters().tec())
        .max()
        .unwrap();
    let any_bus_off =
        (0..sim.node_count()).any(|n| sim.node(n).controller().error_state() == ErrorState::BusOff);
    println!(
        "BER {ber:>8.0e}: {errors:>5} channel errors, {delivered:>5} frames delivered, \
         worst TEC {worst_tec:>3}, any bus-off: {any_bus_off}"
    );
}

fn main() {
    println!("--- benign bus + two MichiCAN defenders, 400 ms at 500 kbit/s ---");
    println!("(paper §IV-E: sporadic errors can never walk a TEC to 256)\n");
    for ber in [0.0, 1e-6, 1e-5, 1e-4, 1e-3] {
        benign_under_noise(ber);
    }

    println!("\n--- and the defense still works through a noisy channel ---");
    let list = EcuList::from_raw(&[0x173]);
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame(0x050, &[0; 8]), 300, 0)),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .fault(FaultModel::random(1e-4, 7))
        .build();
    match sim.run_until(20_000, |e| matches!(e.kind, EventKind::BusOff)) {
        Some(_) => println!(
            "attacker eradicated at t = {} bits despite BER 1e-4",
            sim.now().bits()
        ),
        None => println!("attacker survived (unexpected)"),
    }
}

//! Quickstart: configure MichiCAN for a small IVN, launch a DoS attack in
//! the bit-level simulator, and watch the attacker get bused off.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::SilentApplication;
use can_core::CanId;
use can_sim::bus_off_episodes;
use can_sim::prelude::*;
use michican::prelude::*;

fn main() {
    // 1. OEM configuration: the legitimate identifiers on this bus.
    //    Each identifier belongs to exactly one ECU; this defender owns
    //    0x173.
    let list = EcuList::from_raw(&[0x0A4, 0x0D0, 0x173, 0x260, 0x3E6]);
    let own = CanId::new(0x173).unwrap();
    let index = list.index_of(own).expect("own id is in the list");

    // 2. Generate the per-ECU detection FSM (normally patched into the
    //    firmware at manufacturing time).
    let fsm = DetectionFsm::for_ecu(&list, index);
    println!(
        "detection FSM for ECU {own}: {} states, detects {} identifiers",
        fsm.node_count(),
        michican::detection_range(&list, index).len()
    );

    // 3. Build a bus: one attacker flooding identifier 0x064 (a DoS — it
    //    outranks everything legitimate below 0x173) and the defender.
    let builder = SimBuilder::new(BusSpeed::K500);
    let attacker = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker",
            Box::new(SuspensionAttacker::saturating(DosKind::Targeted {
                id: CanId::new(0x064).unwrap(),
            })),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(fsm))),
        )
        .build();

    // 4. Run until the attacker's controller is forced into bus-off.
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff))
        .expect("the attacker must be eradicated");

    let episode = &bus_off_episodes(sim.events(), attacker)[0];
    println!(
        "attacker bused off after {} transmission attempts in {} bit times ({:.2} ms at {})",
        episode.attempts,
        episode.duration().as_bits(),
        episode.duration().as_millis(sim.speed()),
        sim.speed()
    );
    let errors = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
        .count();
    println!("protocol errors logged on the way: {errors}");
    println!(
        "defender error counters: {}",
        sim.node(1).controller().counters()
    );
}

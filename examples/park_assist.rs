//! The paper's on-vehicle test (§V-F), end to end: a targeted DoS against
//! the 2017 Chrysler Pacifica's ParkSense park-assist system, first
//! undefended (dashboard shows "PARKSENSE UNAVAILABLE SERVICE REQUIRED"),
//! then with a MichiCAN dongle on the OBD-II splitter.
//!
//! ```text
//! cargo run --release --example park_assist
//! ```

use bench::scenarios::run_parksense;
use restbus::{pacifica_matrix, ATTACK_ID, PARKSENSE_ID};

fn main() {
    let matrix = pacifica_matrix(can_core::BusSpeed::K500);
    println!("Pacifica chassis matrix: {} messages", matrix.len());
    println!(
        "ParkSense status: {} every {} ms; attack identifier: {} (one priority step above)",
        PARKSENSE_ID,
        matrix.message(PARKSENSE_ID).unwrap().period_ms,
        ATTACK_ID
    );

    println!("\n--- without MichiCAN ---");
    let undefended = run_parksense(false, 600.0);
    if undefended.became_unavailable {
        println!(
            "PARKSENSE UNAVAILABLE SERVICE REQUIRED  (after {:.0} ms; {} status frames got through)",
            undefended.unavailable_at_ms.unwrap_or_default(),
            undefended.status_frames_received
        );
    } else {
        println!("unexpected: park assist survived the attack");
    }

    println!("\n--- with the MichiCAN dongle on the OBD-II port ---");
    let defended = run_parksense(true, 600.0);
    println!(
        "park assist available: {}  (attacker bused off {} times; first episode took {:?} attempts)",
        !defended.became_unavailable,
        defended.attacker_bus_offs,
        defended.first_episode_attempts
    );
    println!(
        "ParkSense status frames delivered: {}",
        defended.status_frames_received
    );
}

//! Initial configuration as an OEM would run it (paper §IV-A): take a
//! communication matrix, derive each ECU's detection range, and emit the
//! per-ECU FSM as C source ready to be patched into firmware.
//!
//! ```text
//! cargo run --example firmware_codegen
//! ```

use michican::codegen::{emit_c, emit_rust};
use michican::prelude::*;
use restbus::{pacifica_matrix, Vehicle};

fn main() {
    let matrix = pacifica_matrix(can_core::BusSpeed::K500);
    let list = EcuList::new(matrix.ids()).expect("matrix identifiers are unique");

    println!(
        "generating detection FSMs for {} ECUs of {}",
        list.len(),
        matrix.name
    );
    println!(
        "{:<8} {:>10} {:>12} {:>18}",
        "ECU id", "|D|", "FSM states", "C source bytes"
    );
    for index in 0..list.len() {
        let range = michican::detection_range(&list, index);
        let fsm = DetectionFsm::for_ecu(&list, index);
        let c_source = emit_c(&fsm, &format!("ecu_{:03x}", list.id_at(index).raw()));
        println!(
            "{:<8} {:>10} {:>12} {:>18}",
            format!("{}", list.id_at(index)),
            range.len(),
            fsm.node_count(),
            c_source.len()
        );
    }

    // Show one generated artifact in full (the ParkSense ECU).
    let ps_index = list
        .index_of(restbus::PARKSENSE_ID)
        .expect("ParkSense is on the bus");
    let fsm = DetectionFsm::for_ecu(&list, ps_index);
    println!("\n--- generated C for the ParkSense ECU (0x260) ---\n");
    println!("{}", emit_c(&fsm, "parksense"));
    println!("--- same FSM as Rust ---\n");
    println!("{}", emit_rust(&fsm, "parksense_fsm"));

    // Light scenario: the lower half of a big vehicle runs spoofing-only.
    let big = restbus::vehicle_matrix(Vehicle::D, 0, can_core::BusSpeed::K500);
    let big_list = EcuList::new(big.ids()).unwrap();
    let full_nodes: usize = (0..big_list.len())
        .map(|i| DetectionFsm::for_scenario(&big_list, i, Scenario::Full).node_count())
        .sum();
    let light_nodes: usize = (0..big_list.len())
        .map(|i| DetectionFsm::for_scenario(&big_list, i, Scenario::Light).node_count())
        .sum();
    println!(
        "firmware footprint across {} ({} ECUs): full scenario {} states, light scenario {} states",
        big.name,
        big_list.len(),
        full_nodes,
        light_nodes
    );
}

//! Restbus simulation + traffic capture: replay a synthetic Veh. D matrix,
//! record the delivered frames as a candump log, and print per-identifier
//! statistics — the tooling view of a healthy (and then attacked) bus.
//!
//! ```text
//! cargo run --release --example restbus_monitor
//! ```

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::SilentApplication;
use can_core::BusSpeed;
use can_sim::{EventKind, Node, SimBuilder};
use can_trace::{write_log, LogEntry, TrafficStats};
use restbus::{vehicle_matrix, ReplayApp, Vehicle};

fn capture(with_attacker: bool, ms: f64) -> Vec<LogEntry> {
    let speed = BusSpeed::K500;
    let matrix = vehicle_matrix(Vehicle::D, 0, speed);
    let mut builder = SimBuilder::new(speed).node(Node::new(
        "restbus",
        Box::new(ReplayApp::for_matrix(&matrix)),
    ));
    let monitor = builder.node_id();
    builder = builder.node(Node::new("monitor", Box::new(SilentApplication)));
    if with_attacker {
        builder = builder.node(Node::new(
            "attacker",
            Box::new(SuspensionAttacker::saturating(DosKind::Traditional)),
        ));
    }
    let mut sim = builder.build();
    sim.run_millis(ms);

    sim.events()
        .iter()
        .filter(|e| e.node == monitor)
        .filter_map(|e| match &e.kind {
            EventKind::FrameReceived { frame } => {
                Some(LogEntry::from_bits(e.at.bits(), speed, "vcan0", *frame))
            }
            _ => None,
        })
        .collect()
}

fn main() {
    println!("--- healthy bus (200 ms capture) ---");
    let healthy = capture(false, 200.0);
    let stats = TrafficStats::from_log(&healthy);
    println!(
        "{} frames, {:.0} frames/s over {} identifiers",
        stats.total_frames(),
        stats.frames_per_second(),
        stats.per_id.len()
    );
    println!("first log lines:");
    for line in write_log(&healthy).lines().take(5) {
        println!("  {line}");
    }

    println!("\n--- under a traditional DoS (identifier 0x000 flood) ---");
    let attacked = capture(true, 200.0);
    let stats = TrafficStats::from_log(&attacked);
    println!(
        "{} frames, {:.0} frames/s over {} identifiers",
        stats.total_frames(),
        stats.frames_per_second(),
        stats.per_id.len()
    );
    let suspects = stats.flooding_suspects(500.0);
    println!(
        "frequency-based IDS flags: {:?} (after-the-fact — the bus was already starved; \
         this is Table I's 'IDS detects but cannot eradicate')",
        suspects
            .iter()
            .map(|id| format!("{id}"))
            .collect::<Vec<_>>()
    );
    let benign_flow = stats.per_id.keys().filter(|id| id.raw() != 0).count();
    println!("benign identifiers still flowing: {benign_flow}");
}

//! Experiment 5 (paper §V-C, Fig. 6): two DoS attackers, 0x066 and 0x067,
//! get bused off with intertwined retransmissions. Renders the
//! logic-analyzer-style timeline and per-attacker statistics.
//!
//! ```text
//! cargo run --release --example two_attackers
//! ```

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::SilentApplication;
use can_core::{BusSpeed, CanId};
use can_sim::{bus_off_episodes, ErrorRole, EventKind, Node, SimBuilder};
use can_trace::{Timeline, TimelineEvent};
use michican::prelude::*;

fn main() {
    let speed = BusSpeed::K50;
    let list = EcuList::from_raw(&[0x173]);
    let builder = SimBuilder::new(speed);
    let a = builder.node_id();
    let builder = builder.node(Node::new(
        "attacker-0x066",
        Box::new(SuspensionAttacker::new(
            DosKind::Targeted {
                id: CanId::new(0x066).unwrap(),
            },
            1_500,
        )),
    ));
    let b = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker-0x067",
            Box::new(SuspensionAttacker::new(
                DosKind::Targeted {
                    id: CanId::new(0x067).unwrap(),
                },
                1_537,
            )),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .build();

    // Run until both attackers have been bused off once.
    let mut off = std::collections::HashSet::new();
    let mut checked = 0;
    while off.len() < 2 && sim.now().bits() < 30_000 {
        sim.step();
        while checked < sim.events().len() {
            if matches!(sim.events()[checked].kind, EventKind::BusOff) {
                off.insert(sim.events()[checked].node);
            }
            checked += 1;
        }
    }

    // Timeline (the Fig. 6 view).
    let events: Vec<TimelineEvent> = sim
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TransmissionStarted { .. } => Some(TimelineEvent::TransmissionStarted {
                node: e.node,
                at: e.at,
            }),
            EventKind::ErrorDetected {
                role: ErrorRole::Transmitter,
                ..
            } => Some(TimelineEvent::TransmitError {
                node: e.node,
                at: e.at,
            }),
            EventKind::BusOff => Some(TimelineEvent::BusOff {
                node: e.node,
                at: e.at,
            }),
            _ => None,
        })
        .collect();
    let timeline = Timeline::build(&events, &[a, b], sim.now().bits());
    print!(
        "{}",
        timeline.render_ascii(&[(a, "0x066"), (b, "0x067")], 100)
    );

    for (node, label) in [(a, "0x066"), (b, "0x067")] {
        for ep in bus_off_episodes(sim.events(), node) {
            println!(
                "{label}: bused off after {} attempts, {} bits ({:.1} ms)",
                ep.attempts,
                ep.duration().as_bits(),
                ep.duration().as_millis(speed)
            );
        }
    }
    println!(
        "\npaper Table II: 0x066 mean 39.0 ms, 0x067 mean 35.4 ms — the first\n\
         attacker's bus-off takes ≈ 1.5×, not 2×, thanks to intertwining."
    );
}

/root/repo/target/release/deps/bussim-09afada30223c21e.d: crates/bench/src/bin/bussim.rs

/root/repo/target/release/deps/bussim-09afada30223c21e: crates/bench/src/bin/bussim.rs

crates/bench/src/bin/bussim.rs:

/root/repo/target/release/deps/can_sim-eaa6d21ddc906b58.d: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

/root/repo/target/release/deps/libcan_sim-eaa6d21ddc906b58.rlib: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

/root/repo/target/release/deps/libcan_sim-eaa6d21ddc906b58.rmeta: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

crates/can-sim/src/lib.rs:
crates/can-sim/src/controller.rs:
crates/can-sim/src/event.rs:
crates/can-sim/src/fault.rs:
crates/can-sim/src/measure.rs:
crates/can-sim/src/node.rs:
crates/can-sim/src/parser.rs:
crates/can-sim/src/sim.rs:

/root/repo/target/release/deps/proptest-c5d4b61b83f7ba95.d: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libproptest-c5d4b61b83f7ba95.rlib: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libproptest-c5d4b61b83f7ba95.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:

/root/repo/target/release/deps/rayon-5148b8e6c823af88.d: crates/rayon-shim/src/lib.rs

/root/repo/target/release/deps/librayon-5148b8e6c823af88.rlib: crates/rayon-shim/src/lib.rs

/root/repo/target/release/deps/librayon-5148b8e6c823af88.rmeta: crates/rayon-shim/src/lib.rs

crates/rayon-shim/src/lib.rs:

/root/repo/target/release/deps/experiments-cd08a77c8652fe95.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-cd08a77c8652fe95: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

/root/repo/target/release/deps/can_ids-fdc0106e40704921.d: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

/root/repo/target/release/deps/libcan_ids-fdc0106e40704921.rlib: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

/root/repo/target/release/deps/libcan_ids-fdc0106e40704921.rmeta: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

crates/can-ids/src/lib.rs:
crates/can-ids/src/frequency.rs:
crates/can-ids/src/interval.rs:
crates/can-ids/src/monitor.rs:

/root/repo/target/release/deps/bussim-5c7b14ee842d962d.d: crates/bench/src/bin/bussim.rs

/root/repo/target/release/deps/bussim-5c7b14ee842d962d: crates/bench/src/bin/bussim.rs

crates/bench/src/bin/bussim.rs:

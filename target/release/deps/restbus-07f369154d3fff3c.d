/root/repo/target/release/deps/restbus-07f369154d3fff3c.d: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

/root/repo/target/release/deps/librestbus-07f369154d3fff3c.rlib: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

/root/repo/target/release/deps/librestbus-07f369154d3fff3c.rmeta: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

crates/restbus/src/lib.rs:
crates/restbus/src/dbc.rs:
crates/restbus/src/matrix.rs:
crates/restbus/src/pacifica.rs:
crates/restbus/src/replay.rs:
crates/restbus/src/schedulability.rs:
crates/restbus/src/vehicles.rs:

/root/repo/target/release/deps/michican_gen-14d6e586e74c0b65.d: crates/bench/src/bin/michican_gen.rs

/root/repo/target/release/deps/michican_gen-14d6e586e74c0b65: crates/bench/src/bin/michican_gen.rs

crates/bench/src/bin/michican_gen.rs:

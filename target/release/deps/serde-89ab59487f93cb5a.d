/root/repo/target/release/deps/serde-89ab59487f93cb5a.d: crates/serde-shim/src/lib.rs

/root/repo/target/release/deps/libserde-89ab59487f93cb5a.so: crates/serde-shim/src/lib.rs

crates/serde-shim/src/lib.rs:

/root/repo/target/release/deps/perfbase-33d517c6993ab5c0.d: crates/bench/src/bin/perfbase.rs

/root/repo/target/release/deps/perfbase-33d517c6993ab5c0: crates/bench/src/bin/perfbase.rs

crates/bench/src/bin/perfbase.rs:

/root/repo/target/release/deps/michican_suite-9cdc2c9e4e0c77c3.d: src/lib.rs

/root/repo/target/release/deps/libmichican_suite-9cdc2c9e4e0c77c3.rlib: src/lib.rs

/root/repo/target/release/deps/libmichican_suite-9cdc2c9e4e0c77c3.rmeta: src/lib.rs

src/lib.rs:

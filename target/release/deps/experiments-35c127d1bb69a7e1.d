/root/repo/target/release/deps/experiments-35c127d1bb69a7e1.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-35c127d1bb69a7e1: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

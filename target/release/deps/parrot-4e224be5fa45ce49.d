/root/repo/target/release/deps/parrot-4e224be5fa45ce49.d: crates/parrot/src/lib.rs

/root/repo/target/release/deps/libparrot-4e224be5fa45ce49.rlib: crates/parrot/src/lib.rs

/root/repo/target/release/deps/libparrot-4e224be5fa45ce49.rmeta: crates/parrot/src/lib.rs

crates/parrot/src/lib.rs:

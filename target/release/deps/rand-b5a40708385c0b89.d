/root/repo/target/release/deps/rand-b5a40708385c0b89.d: crates/rand-shim/src/lib.rs

/root/repo/target/release/deps/librand-b5a40708385c0b89.rlib: crates/rand-shim/src/lib.rs

/root/repo/target/release/deps/librand-b5a40708385c0b89.rmeta: crates/rand-shim/src/lib.rs

crates/rand-shim/src/lib.rs:

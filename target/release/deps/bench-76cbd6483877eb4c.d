/root/repo/target/release/deps/bench-76cbd6483877eb4c.d: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libbench-76cbd6483877eb4c.rlib: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libbench-76cbd6483877eb4c.rmeta: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/availability.rs:
crates/bench/src/busload.rs:
crates/bench/src/campaign.rs:
crates/bench/src/cpu.rs:
crates/bench/src/detection.rs:
crates/bench/src/ids_compare.rs:
crates/bench/src/scenarios.rs:
crates/bench/src/table1.rs:

/root/repo/target/release/deps/michican_gen-3f544bd755e51f13.d: crates/bench/src/bin/michican_gen.rs

/root/repo/target/release/deps/michican_gen-3f544bd755e51f13: crates/bench/src/bin/michican_gen.rs

crates/bench/src/bin/michican_gen.rs:

/root/repo/target/release/deps/mcu-7f8ce4169bb8ac7e.d: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

/root/repo/target/release/deps/libmcu-7f8ce4169bb8ac7e.rlib: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

/root/repo/target/release/deps/libmcu-7f8ce4169bb8ac7e.rmeta: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

crates/mcu/src/lib.rs:
crates/mcu/src/cost.rs:
crates/mcu/src/profile.rs:
crates/mcu/src/reliability.rs:
crates/mcu/src/timer.rs:

/root/repo/target/release/deps/can_core-1e3b8ccac4d09998.d: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

/root/repo/target/release/deps/libcan_core-1e3b8ccac4d09998.rlib: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

/root/repo/target/release/deps/libcan_core-1e3b8ccac4d09998.rmeta: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

crates/can-core/src/lib.rs:
crates/can-core/src/agent.rs:
crates/can-core/src/app.rs:
crates/can-core/src/bit_timing.rs:
crates/can-core/src/bitstream.rs:
crates/can-core/src/counters.rs:
crates/can-core/src/crc.rs:
crates/can-core/src/errors.rs:
crates/can-core/src/frame.rs:
crates/can-core/src/id.rs:
crates/can-core/src/level.rs:
crates/can-core/src/pin.rs:
crates/can-core/src/time.rs:

/root/repo/target/release/deps/can_trace-4de66a6695486107.d: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

/root/repo/target/release/deps/libcan_trace-4de66a6695486107.rlib: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

/root/repo/target/release/deps/libcan_trace-4de66a6695486107.rmeta: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

crates/can-trace/src/lib.rs:
crates/can-trace/src/candump.rs:
crates/can-trace/src/replay.rs:
crates/can-trace/src/stats.rs:
crates/can-trace/src/timeline.rs:
crates/can-trace/src/vcd.rs:

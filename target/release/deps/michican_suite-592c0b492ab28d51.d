/root/repo/target/release/deps/michican_suite-592c0b492ab28d51.d: src/lib.rs

/root/repo/target/release/deps/libmichican_suite-592c0b492ab28d51.rlib: src/lib.rs

/root/repo/target/release/deps/libmichican_suite-592c0b492ab28d51.rmeta: src/lib.rs

src/lib.rs:

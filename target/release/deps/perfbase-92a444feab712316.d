/root/repo/target/release/deps/perfbase-92a444feab712316.d: crates/bench/src/bin/perfbase.rs

/root/repo/target/release/deps/perfbase-92a444feab712316: crates/bench/src/bin/perfbase.rs

crates/bench/src/bin/perfbase.rs:

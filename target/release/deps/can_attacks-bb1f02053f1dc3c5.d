/root/repo/target/release/deps/can_attacks-bb1f02053f1dc3c5.d: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

/root/repo/target/release/deps/libcan_attacks-bb1f02053f1dc3c5.rlib: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

/root/repo/target/release/deps/libcan_attacks-bb1f02053f1dc3c5.rmeta: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

crates/can-attacks/src/lib.rs:
crates/can-attacks/src/fabrication.rs:
crates/can-attacks/src/ghost.rs:
crates/can-attacks/src/masquerade.rs:
crates/can-attacks/src/suspension.rs:
crates/can-attacks/src/toggling.rs:

/root/repo/target/release/deps/michican-0430b973b715ebe7.d: crates/michican/src/lib.rs crates/michican/src/analysis.rs crates/michican/src/codegen.rs crates/michican/src/config.rs crates/michican/src/detect.rs crates/michican/src/fsm.rs crates/michican/src/handler.rs crates/michican/src/health.rs crates/michican/src/prevention.rs crates/michican/src/sync.rs

/root/repo/target/release/deps/libmichican-0430b973b715ebe7.rlib: crates/michican/src/lib.rs crates/michican/src/analysis.rs crates/michican/src/codegen.rs crates/michican/src/config.rs crates/michican/src/detect.rs crates/michican/src/fsm.rs crates/michican/src/handler.rs crates/michican/src/health.rs crates/michican/src/prevention.rs crates/michican/src/sync.rs

/root/repo/target/release/deps/libmichican-0430b973b715ebe7.rmeta: crates/michican/src/lib.rs crates/michican/src/analysis.rs crates/michican/src/codegen.rs crates/michican/src/config.rs crates/michican/src/detect.rs crates/michican/src/fsm.rs crates/michican/src/handler.rs crates/michican/src/health.rs crates/michican/src/prevention.rs crates/michican/src/sync.rs

crates/michican/src/lib.rs:
crates/michican/src/analysis.rs:
crates/michican/src/codegen.rs:
crates/michican/src/config.rs:
crates/michican/src/detect.rs:
crates/michican/src/fsm.rs:
crates/michican/src/handler.rs:
crates/michican/src/health.rs:
crates/michican/src/prevention.rs:
crates/michican/src/sync.rs:

/root/repo/target/release/examples/debug_soak3-4f3bc890d61a90dd.d: examples/debug_soak3.rs

/root/repo/target/release/examples/debug_soak3-4f3bc890d61a90dd: examples/debug_soak3.rs

examples/debug_soak3.rs:

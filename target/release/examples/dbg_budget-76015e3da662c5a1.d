/root/repo/target/release/examples/dbg_budget-76015e3da662c5a1.d: examples/dbg_budget.rs

/root/repo/target/release/examples/dbg_budget-76015e3da662c5a1: examples/dbg_budget.rs

examples/dbg_budget.rs:

/root/repo/target/release/examples/debug_soak-be5ef2b2199151a5.d: examples/debug_soak.rs

/root/repo/target/release/examples/debug_soak-be5ef2b2199151a5: examples/debug_soak.rs

examples/debug_soak.rs:

/root/repo/target/release/examples/debug_soak2-ea076617b6545831.d: examples/debug_soak2.rs

/root/repo/target/release/examples/debug_soak2-ea076617b6545831: examples/debug_soak2.rs

examples/debug_soak2.rs:

/root/repo/target/debug/deps/controller_edge_cases-3649392783c15143.d: crates/can-sim/tests/controller_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libcontroller_edge_cases-3649392783c15143.rmeta: crates/can-sim/tests/controller_edge_cases.rs Cargo.toml

crates/can-sim/tests/controller_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/michican_gen-284faacb908d40b7.d: crates/bench/src/bin/michican_gen.rs Cargo.toml

/root/repo/target/debug/deps/libmichican_gen-284faacb908d40b7.rmeta: crates/bench/src/bin/michican_gen.rs Cargo.toml

crates/bench/src/bin/michican_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/michican_gen-adae949cb49008bb.d: crates/bench/src/bin/michican_gen.rs

/root/repo/target/debug/deps/michican_gen-adae949cb49008bb: crates/bench/src/bin/michican_gen.rs

crates/bench/src/bin/michican_gen.rs:

/root/repo/target/debug/deps/criterion-93969ad0c4181f0b.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-93969ad0c4181f0b.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

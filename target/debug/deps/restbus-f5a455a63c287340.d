/root/repo/target/debug/deps/restbus-f5a455a63c287340.d: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

/root/repo/target/debug/deps/restbus-f5a455a63c287340: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

crates/restbus/src/lib.rs:
crates/restbus/src/dbc.rs:
crates/restbus/src/matrix.rs:
crates/restbus/src/pacifica.rs:
crates/restbus/src/replay.rs:
crates/restbus/src/schedulability.rs:
crates/restbus/src/vehicles.rs:

/root/repo/target/debug/deps/bussim-b4e9fbb91c10ef2f.d: crates/bench/src/bin/bussim.rs

/root/repo/target/debug/deps/bussim-b4e9fbb91c10ef2f: crates/bench/src/bin/bussim.rs

crates/bench/src/bin/bussim.rs:

/root/repo/target/debug/deps/properties_e2e-0593b55560c091f1.d: tests/properties_e2e.rs

/root/repo/target/debug/deps/properties_e2e-0593b55560c091f1: tests/properties_e2e.rs

tests/properties_e2e.rs:

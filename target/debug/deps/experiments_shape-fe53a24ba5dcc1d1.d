/root/repo/target/debug/deps/experiments_shape-fe53a24ba5dcc1d1.d: tests/experiments_shape.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_shape-fe53a24ba5dcc1d1.rmeta: tests/experiments_shape.rs Cargo.toml

tests/experiments_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

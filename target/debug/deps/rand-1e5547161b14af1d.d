/root/repo/target/debug/deps/rand-1e5547161b14af1d.d: crates/rand-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-1e5547161b14af1d.rmeta: crates/rand-shim/src/lib.rs Cargo.toml

crates/rand-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/can_trace-60a972a9d6274e76.d: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libcan_trace-60a972a9d6274e76.rmeta: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs Cargo.toml

crates/can-trace/src/lib.rs:
crates/can-trace/src/candump.rs:
crates/can-trace/src/replay.rs:
crates/can-trace/src/stats.rs:
crates/can-trace/src/timeline.rs:
crates/can-trace/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

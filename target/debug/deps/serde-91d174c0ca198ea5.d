/root/repo/target/debug/deps/serde-91d174c0ca198ea5.d: crates/serde-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-91d174c0ca198ea5.rmeta: crates/serde-shim/src/lib.rs Cargo.toml

crates/serde-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/michican_suite-7d15915669169ec9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmichican_suite-7d15915669169ec9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rayon-585a34f6f971b43d.d: crates/rayon-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-585a34f6f971b43d.rmeta: crates/rayon-shim/src/lib.rs Cargo.toml

crates/rayon-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

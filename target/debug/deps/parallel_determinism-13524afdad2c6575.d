/root/repo/target/debug/deps/parallel_determinism-13524afdad2c6575.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-13524afdad2c6575: tests/parallel_determinism.rs

tests/parallel_determinism.rs:

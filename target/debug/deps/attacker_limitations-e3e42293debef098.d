/root/repo/target/debug/deps/attacker_limitations-e3e42293debef098.d: tests/attacker_limitations.rs

/root/repo/target/debug/deps/attacker_limitations-e3e42293debef098: tests/attacker_limitations.rs

tests/attacker_limitations.rs:

/root/repo/target/debug/deps/michican_gen-47047377987c3cab.d: crates/bench/src/bin/michican_gen.rs

/root/repo/target/debug/deps/michican_gen-47047377987c3cab: crates/bench/src/bin/michican_gen.rs

crates/bench/src/bin/michican_gen.rs:

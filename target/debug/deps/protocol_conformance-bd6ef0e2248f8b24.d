/root/repo/target/debug/deps/protocol_conformance-bd6ef0e2248f8b24.d: tests/protocol_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_conformance-bd6ef0e2248f8b24.rmeta: tests/protocol_conformance.rs Cargo.toml

tests/protocol_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

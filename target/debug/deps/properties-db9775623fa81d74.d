/root/repo/target/debug/deps/properties-db9775623fa81d74.d: crates/can-core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-db9775623fa81d74.rmeta: crates/can-core/tests/properties.rs Cargo.toml

crates/can-core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/sim_properties-56e24213e26eb84b.d: crates/can-sim/tests/sim_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsim_properties-56e24213e26eb84b.rmeta: crates/can-sim/tests/sim_properties.rs Cargo.toml

crates/can-sim/tests/sim_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench-5cb8ac4a53880938.d: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/runner.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/bench-5cb8ac4a53880938: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/runner.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/availability.rs:
crates/bench/src/busload.rs:
crates/bench/src/campaign.rs:
crates/bench/src/cpu.rs:
crates/bench/src/detection.rs:
crates/bench/src/ids_compare.rs:
crates/bench/src/runner.rs:
crates/bench/src/scenarios.rs:
crates/bench/src/table1.rs:

/root/repo/target/debug/deps/michican_gen-a89d8c478720fac1.d: crates/bench/src/bin/michican_gen.rs Cargo.toml

/root/repo/target/debug/deps/libmichican_gen-a89d8c478720fac1.rmeta: crates/bench/src/bin/michican_gen.rs Cargo.toml

crates/bench/src/bin/michican_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

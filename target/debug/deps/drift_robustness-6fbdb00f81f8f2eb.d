/root/repo/target/debug/deps/drift_robustness-6fbdb00f81f8f2eb.d: crates/michican/tests/drift_robustness.rs

/root/repo/target/debug/deps/drift_robustness-6fbdb00f81f8f2eb: crates/michican/tests/drift_robustness.rs

crates/michican/tests/drift_robustness.rs:

/root/repo/target/debug/deps/mcu-3d6e85391e881e51.d: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

/root/repo/target/debug/deps/mcu-3d6e85391e881e51: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

crates/mcu/src/lib.rs:
crates/mcu/src/cost.rs:
crates/mcu/src/profile.rs:
crates/mcu/src/reliability.rs:
crates/mcu/src/timer.rs:

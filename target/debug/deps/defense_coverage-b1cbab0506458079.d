/root/repo/target/debug/deps/defense_coverage-b1cbab0506458079.d: tests/defense_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_coverage-b1cbab0506458079.rmeta: tests/defense_coverage.rs Cargo.toml

tests/defense_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/full_system_soak-2d106f480289be33.d: tests/full_system_soak.rs

/root/repo/target/debug/deps/full_system_soak-2d106f480289be33: tests/full_system_soak.rs

tests/full_system_soak.rs:

/root/repo/target/debug/deps/id_collision-9a3be256b873d98e.d: tests/id_collision.rs

/root/repo/target/debug/deps/id_collision-9a3be256b873d98e: tests/id_collision.rs

tests/id_collision.rs:

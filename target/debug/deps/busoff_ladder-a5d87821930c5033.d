/root/repo/target/debug/deps/busoff_ladder-a5d87821930c5033.d: tests/busoff_ladder.rs Cargo.toml

/root/repo/target/debug/deps/libbusoff_ladder-a5d87821930c5033.rmeta: tests/busoff_ladder.rs Cargo.toml

tests/busoff_ladder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/can_core-74eeed56d6de7241.d: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libcan_core-74eeed56d6de7241.rmeta: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs Cargo.toml

crates/can-core/src/lib.rs:
crates/can-core/src/agent.rs:
crates/can-core/src/app.rs:
crates/can-core/src/bit_timing.rs:
crates/can-core/src/bitstream.rs:
crates/can-core/src/counters.rs:
crates/can-core/src/crc.rs:
crates/can-core/src/errors.rs:
crates/can-core/src/frame.rs:
crates/can-core/src/id.rs:
crates/can-core/src/level.rs:
crates/can-core/src/pin.rs:
crates/can-core/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/protocol_conformance-c9c476f36db89e60.d: tests/protocol_conformance.rs

/root/repo/target/debug/deps/protocol_conformance-c9c476f36db89e60: tests/protocol_conformance.rs

tests/protocol_conformance.rs:

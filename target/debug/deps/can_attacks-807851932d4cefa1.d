/root/repo/target/debug/deps/can_attacks-807851932d4cefa1.d: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

/root/repo/target/debug/deps/can_attacks-807851932d4cefa1: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

crates/can-attacks/src/lib.rs:
crates/can-attacks/src/fabrication.rs:
crates/can-attacks/src/ghost.rs:
crates/can-attacks/src/masquerade.rs:
crates/can-attacks/src/suspension.rs:
crates/can-attacks/src/toggling.rs:

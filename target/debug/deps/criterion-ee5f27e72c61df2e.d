/root/repo/target/debug/deps/criterion-ee5f27e72c61df2e.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/criterion-ee5f27e72c61df2e: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:

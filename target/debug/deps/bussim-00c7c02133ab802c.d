/root/repo/target/debug/deps/bussim-00c7c02133ab802c.d: crates/bench/src/bin/bussim.rs

/root/repo/target/debug/deps/bussim-00c7c02133ab802c: crates/bench/src/bin/bussim.rs

crates/bench/src/bin/bussim.rs:

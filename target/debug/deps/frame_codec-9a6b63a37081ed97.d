/root/repo/target/debug/deps/frame_codec-9a6b63a37081ed97.d: crates/bench/benches/frame_codec.rs Cargo.toml

/root/repo/target/debug/deps/libframe_codec-9a6b63a37081ed97.rmeta: crates/bench/benches/frame_codec.rs Cargo.toml

crates/bench/benches/frame_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

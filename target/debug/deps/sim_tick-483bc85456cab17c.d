/root/repo/target/debug/deps/sim_tick-483bc85456cab17c.d: crates/bench/benches/sim_tick.rs Cargo.toml

/root/repo/target/debug/deps/libsim_tick-483bc85456cab17c.rmeta: crates/bench/benches/sim_tick.rs Cargo.toml

crates/bench/benches/sim_tick.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/graceful_degradation-c6cc4ebddc8dd44c.d: tests/graceful_degradation.rs Cargo.toml

/root/repo/target/debug/deps/libgraceful_degradation-c6cc4ebddc8dd44c.rmeta: tests/graceful_degradation.rs Cargo.toml

tests/graceful_degradation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/graceful_degradation-702842a1c0033a86.d: tests/graceful_degradation.rs

/root/repo/target/debug/deps/graceful_degradation-702842a1c0033a86: tests/graceful_degradation.rs

tests/graceful_degradation.rs:

/root/repo/target/debug/deps/criterion-ed6339376262478d.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-ed6339376262478d.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/defense_coverage-fa6b34213d6e7bfd.d: tests/defense_coverage.rs

/root/repo/target/debug/deps/defense_coverage-fa6b34213d6e7bfd: tests/defense_coverage.rs

tests/defense_coverage.rs:

/root/repo/target/debug/deps/bench-48b918801cf24a63.d: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/runner.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libbench-48b918801cf24a63.rmeta: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/runner.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/availability.rs:
crates/bench/src/busload.rs:
crates/bench/src/campaign.rs:
crates/bench/src/cpu.rs:
crates/bench/src/detection.rs:
crates/bench/src/ids_compare.rs:
crates/bench/src/runner.rs:
crates/bench/src/scenarios.rs:
crates/bench/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

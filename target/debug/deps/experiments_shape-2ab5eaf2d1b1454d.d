/root/repo/target/debug/deps/experiments_shape-2ab5eaf2d1b1454d.d: tests/experiments_shape.rs

/root/repo/target/debug/deps/experiments_shape-2ab5eaf2d1b1454d: tests/experiments_shape.rs

tests/experiments_shape.rs:

/root/repo/target/debug/deps/can_ids-67dd842e28234df0.d: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

/root/repo/target/debug/deps/libcan_ids-67dd842e28234df0.rlib: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

/root/repo/target/debug/deps/libcan_ids-67dd842e28234df0.rmeta: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

crates/can-ids/src/lib.rs:
crates/can-ids/src/frequency.rs:
crates/can-ids/src/interval.rs:
crates/can-ids/src/monitor.rs:

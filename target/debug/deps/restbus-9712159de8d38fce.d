/root/repo/target/debug/deps/restbus-9712159de8d38fce.d: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

/root/repo/target/debug/deps/librestbus-9712159de8d38fce.rlib: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

/root/repo/target/debug/deps/librestbus-9712159de8d38fce.rmeta: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs

crates/restbus/src/lib.rs:
crates/restbus/src/dbc.rs:
crates/restbus/src/matrix.rs:
crates/restbus/src/pacifica.rs:
crates/restbus/src/replay.rs:
crates/restbus/src/schedulability.rs:
crates/restbus/src/vehicles.rs:

/root/repo/target/debug/deps/bussim-5297892fed15560e.d: crates/bench/src/bin/bussim.rs Cargo.toml

/root/repo/target/debug/deps/libbussim-5297892fed15560e.rmeta: crates/bench/src/bin/bussim.rs Cargo.toml

crates/bench/src/bin/bussim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

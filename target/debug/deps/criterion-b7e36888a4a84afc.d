/root/repo/target/debug/deps/criterion-b7e36888a4a84afc.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b7e36888a4a84afc.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b7e36888a4a84afc.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:

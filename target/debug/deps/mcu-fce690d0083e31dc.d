/root/repo/target/debug/deps/mcu-fce690d0083e31dc.d: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

/root/repo/target/debug/deps/libmcu-fce690d0083e31dc.rlib: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

/root/repo/target/debug/deps/libmcu-fce690d0083e31dc.rmeta: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs

crates/mcu/src/lib.rs:
crates/mcu/src/cost.rs:
crates/mcu/src/profile.rs:
crates/mcu/src/reliability.rs:
crates/mcu/src/timer.rs:

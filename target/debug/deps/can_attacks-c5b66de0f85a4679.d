/root/repo/target/debug/deps/can_attacks-c5b66de0f85a4679.d: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs Cargo.toml

/root/repo/target/debug/deps/libcan_attacks-c5b66de0f85a4679.rmeta: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs Cargo.toml

crates/can-attacks/src/lib.rs:
crates/can-attacks/src/fabrication.rs:
crates/can-attacks/src/ghost.rs:
crates/can-attacks/src/masquerade.rs:
crates/can-attacks/src/suspension.rs:
crates/can-attacks/src/toggling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

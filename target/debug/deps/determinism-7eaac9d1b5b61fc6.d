/root/repo/target/debug/deps/determinism-7eaac9d1b5b61fc6.d: crates/can-sim/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-7eaac9d1b5b61fc6.rmeta: crates/can-sim/tests/determinism.rs Cargo.toml

crates/can-sim/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/injection_width-5eb398f8c5ac561c.d: crates/bench/benches/injection_width.rs Cargo.toml

/root/repo/target/debug/deps/libinjection_width-5eb398f8c5ac561c.rmeta: crates/bench/benches/injection_width.rs Cargo.toml

crates/bench/benches/injection_width.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/michican_suite-ba82d39b3cfa33da.d: src/lib.rs

/root/repo/target/debug/deps/michican_suite-ba82d39b3cfa33da: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/rayon-c399af65f8d86e5b.d: crates/rayon-shim/src/lib.rs

/root/repo/target/debug/deps/librayon-c399af65f8d86e5b.rlib: crates/rayon-shim/src/lib.rs

/root/repo/target/debug/deps/librayon-c399af65f8d86e5b.rmeta: crates/rayon-shim/src/lib.rs

crates/rayon-shim/src/lib.rs:

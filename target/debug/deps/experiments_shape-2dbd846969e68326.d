/root/repo/target/debug/deps/experiments_shape-2dbd846969e68326.d: tests/experiments_shape.rs

/root/repo/target/debug/deps/experiments_shape-2dbd846969e68326: tests/experiments_shape.rs

tests/experiments_shape.rs:

/root/repo/target/debug/deps/busoff_ladder-978bfd54cfe5705c.d: tests/busoff_ladder.rs

/root/repo/target/debug/deps/busoff_ladder-978bfd54cfe5705c: tests/busoff_ladder.rs

tests/busoff_ladder.rs:

/root/repo/target/debug/deps/can_sim-4fde0bb00f2a0a94.d: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcan_sim-4fde0bb00f2a0a94.rmeta: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs Cargo.toml

crates/can-sim/src/lib.rs:
crates/can-sim/src/controller.rs:
crates/can-sim/src/event.rs:
crates/can-sim/src/fault.rs:
crates/can-sim/src/measure.rs:
crates/can-sim/src/node.rs:
crates/can-sim/src/parser.rs:
crates/can-sim/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

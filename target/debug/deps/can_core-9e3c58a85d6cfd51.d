/root/repo/target/debug/deps/can_core-9e3c58a85d6cfd51.d: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

/root/repo/target/debug/deps/libcan_core-9e3c58a85d6cfd51.rlib: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

/root/repo/target/debug/deps/libcan_core-9e3c58a85d6cfd51.rmeta: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

crates/can-core/src/lib.rs:
crates/can-core/src/agent.rs:
crates/can-core/src/app.rs:
crates/can-core/src/bit_timing.rs:
crates/can-core/src/bitstream.rs:
crates/can-core/src/counters.rs:
crates/can-core/src/crc.rs:
crates/can-core/src/errors.rs:
crates/can-core/src/frame.rs:
crates/can-core/src/id.rs:
crates/can-core/src/level.rs:
crates/can-core/src/pin.rs:
crates/can-core/src/time.rs:

/root/repo/target/debug/deps/can_trace-e6dfb4455ec717d4.d: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

/root/repo/target/debug/deps/libcan_trace-e6dfb4455ec717d4.rlib: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

/root/repo/target/debug/deps/libcan_trace-e6dfb4455ec717d4.rmeta: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

crates/can-trace/src/lib.rs:
crates/can-trace/src/candump.rs:
crates/can-trace/src/replay.rs:
crates/can-trace/src/stats.rs:
crates/can-trace/src/timeline.rs:
crates/can-trace/src/vcd.rs:

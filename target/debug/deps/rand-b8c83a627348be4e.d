/root/repo/target/debug/deps/rand-b8c83a627348be4e.d: crates/rand-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-b8c83a627348be4e.rmeta: crates/rand-shim/src/lib.rs Cargo.toml

crates/rand-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fault_tolerance-5c13260f686297fd.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-5c13260f686297fd: tests/fault_tolerance.rs

tests/fault_tolerance.rs:

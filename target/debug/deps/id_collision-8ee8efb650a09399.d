/root/repo/target/debug/deps/id_collision-8ee8efb650a09399.d: tests/id_collision.rs Cargo.toml

/root/repo/target/debug/deps/libid_collision-8ee8efb650a09399.rmeta: tests/id_collision.rs Cargo.toml

tests/id_collision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parrot-621025a493f6a892.d: crates/parrot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparrot-621025a493f6a892.rmeta: crates/parrot/src/lib.rs Cargo.toml

crates/parrot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/can_trace-69c8115cf420086a.d: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

/root/repo/target/debug/deps/can_trace-69c8115cf420086a: crates/can-trace/src/lib.rs crates/can-trace/src/candump.rs crates/can-trace/src/replay.rs crates/can-trace/src/stats.rs crates/can-trace/src/timeline.rs crates/can-trace/src/vcd.rs

crates/can-trace/src/lib.rs:
crates/can-trace/src/candump.rs:
crates/can-trace/src/replay.rs:
crates/can-trace/src/stats.rs:
crates/can-trace/src/timeline.rs:
crates/can-trace/src/vcd.rs:

/root/repo/target/debug/deps/graceful_degradation-d46f7aa51703b2a3.d: tests/graceful_degradation.rs

/root/repo/target/debug/deps/graceful_degradation-d46f7aa51703b2a3: tests/graceful_degradation.rs

tests/graceful_degradation.rs:

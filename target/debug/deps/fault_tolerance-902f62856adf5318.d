/root/repo/target/debug/deps/fault_tolerance-902f62856adf5318.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-902f62856adf5318: tests/fault_tolerance.rs

tests/fault_tolerance.rs:

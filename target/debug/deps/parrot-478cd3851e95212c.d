/root/repo/target/debug/deps/parrot-478cd3851e95212c.d: crates/parrot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparrot-478cd3851e95212c.rmeta: crates/parrot/src/lib.rs Cargo.toml

crates/parrot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

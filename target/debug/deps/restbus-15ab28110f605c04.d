/root/repo/target/debug/deps/restbus-15ab28110f605c04.d: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs Cargo.toml

/root/repo/target/debug/deps/librestbus-15ab28110f605c04.rmeta: crates/restbus/src/lib.rs crates/restbus/src/dbc.rs crates/restbus/src/matrix.rs crates/restbus/src/pacifica.rs crates/restbus/src/replay.rs crates/restbus/src/schedulability.rs crates/restbus/src/vehicles.rs Cargo.toml

crates/restbus/src/lib.rs:
crates/restbus/src/dbc.rs:
crates/restbus/src/matrix.rs:
crates/restbus/src/pacifica.rs:
crates/restbus/src/replay.rs:
crates/restbus/src/schedulability.rs:
crates/restbus/src/vehicles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/schedulability_properties-cd60ecfc460d215d.d: crates/restbus/tests/schedulability_properties.rs Cargo.toml

/root/repo/target/debug/deps/libschedulability_properties-cd60ecfc460d215d.rmeta: crates/restbus/tests/schedulability_properties.rs Cargo.toml

crates/restbus/tests/schedulability_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ids_properties-fafc008b08bd778d.d: crates/can-ids/tests/ids_properties.rs Cargo.toml

/root/repo/target/debug/deps/libids_properties-fafc008b08bd778d.rmeta: crates/can-ids/tests/ids_properties.rs Cargo.toml

crates/can-ids/tests/ids_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/controller_edge_cases-a6a9af9033125287.d: crates/can-sim/tests/controller_edge_cases.rs

/root/repo/target/debug/deps/controller_edge_cases-a6a9af9033125287: crates/can-sim/tests/controller_edge_cases.rs

crates/can-sim/tests/controller_edge_cases.rs:

/root/repo/target/debug/deps/can_attacks-8ec8a75ed9bb91c1.d: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

/root/repo/target/debug/deps/libcan_attacks-8ec8a75ed9bb91c1.rlib: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

/root/repo/target/debug/deps/libcan_attacks-8ec8a75ed9bb91c1.rmeta: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs

crates/can-attacks/src/lib.rs:
crates/can-attacks/src/fabrication.rs:
crates/can-attacks/src/ghost.rs:
crates/can-attacks/src/masquerade.rs:
crates/can-attacks/src/suspension.rs:
crates/can-attacks/src/toggling.rs:

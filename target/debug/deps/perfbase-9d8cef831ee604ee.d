/root/repo/target/debug/deps/perfbase-9d8cef831ee604ee.d: crates/bench/src/bin/perfbase.rs

/root/repo/target/debug/deps/perfbase-9d8cef831ee604ee: crates/bench/src/bin/perfbase.rs

crates/bench/src/bin/perfbase.rs:

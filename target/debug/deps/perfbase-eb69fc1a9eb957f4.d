/root/repo/target/debug/deps/perfbase-eb69fc1a9eb957f4.d: crates/bench/src/bin/perfbase.rs

/root/repo/target/debug/deps/perfbase-eb69fc1a9eb957f4: crates/bench/src/bin/perfbase.rs

crates/bench/src/bin/perfbase.rs:

/root/repo/target/debug/deps/bussim-a07633036a16723d.d: crates/bench/src/bin/bussim.rs

/root/repo/target/debug/deps/bussim-a07633036a16723d: crates/bench/src/bin/bussim.rs

crates/bench/src/bin/bussim.rs:

/root/repo/target/debug/deps/drift_robustness-eb0d44cf5b3251df.d: crates/michican/tests/drift_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libdrift_robustness-eb0d44cf5b3251df.rmeta: crates/michican/tests/drift_robustness.rs Cargo.toml

crates/michican/tests/drift_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/can_sim-80390cc907bf7a61.d: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

/root/repo/target/debug/deps/libcan_sim-80390cc907bf7a61.rlib: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

/root/repo/target/debug/deps/libcan_sim-80390cc907bf7a61.rmeta: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

crates/can-sim/src/lib.rs:
crates/can-sim/src/controller.rs:
crates/can-sim/src/event.rs:
crates/can-sim/src/fault.rs:
crates/can-sim/src/measure.rs:
crates/can-sim/src/node.rs:
crates/can-sim/src/parser.rs:
crates/can-sim/src/sim.rs:

/root/repo/target/debug/deps/mcu-4fd3a3e5342d57fc.d: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libmcu-4fd3a3e5342d57fc.rmeta: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs Cargo.toml

crates/mcu/src/lib.rs:
crates/mcu/src/cost.rs:
crates/mcu/src/profile.rs:
crates/mcu/src/reliability.rs:
crates/mcu/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

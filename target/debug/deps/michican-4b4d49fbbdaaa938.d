/root/repo/target/debug/deps/michican-4b4d49fbbdaaa938.d: crates/michican/src/lib.rs crates/michican/src/analysis.rs crates/michican/src/codegen.rs crates/michican/src/config.rs crates/michican/src/detect.rs crates/michican/src/fsm.rs crates/michican/src/handler.rs crates/michican/src/health.rs crates/michican/src/prevention.rs crates/michican/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libmichican-4b4d49fbbdaaa938.rmeta: crates/michican/src/lib.rs crates/michican/src/analysis.rs crates/michican/src/codegen.rs crates/michican/src/config.rs crates/michican/src/detect.rs crates/michican/src/fsm.rs crates/michican/src/handler.rs crates/michican/src/health.rs crates/michican/src/prevention.rs crates/michican/src/sync.rs Cargo.toml

crates/michican/src/lib.rs:
crates/michican/src/analysis.rs:
crates/michican/src/codegen.rs:
crates/michican/src/config.rs:
crates/michican/src/detect.rs:
crates/michican/src/fsm.rs:
crates/michican/src/handler.rs:
crates/michican/src/health.rs:
crates/michican/src/prevention.rs:
crates/michican/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

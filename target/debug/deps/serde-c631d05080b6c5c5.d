/root/repo/target/debug/deps/serde-c631d05080b6c5c5.d: crates/serde-shim/src/lib.rs

/root/repo/target/debug/deps/serde-c631d05080b6c5c5: crates/serde-shim/src/lib.rs

crates/serde-shim/src/lib.rs:

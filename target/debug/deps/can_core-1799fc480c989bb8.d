/root/repo/target/debug/deps/can_core-1799fc480c989bb8.d: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

/root/repo/target/debug/deps/can_core-1799fc480c989bb8: crates/can-core/src/lib.rs crates/can-core/src/agent.rs crates/can-core/src/app.rs crates/can-core/src/bit_timing.rs crates/can-core/src/bitstream.rs crates/can-core/src/counters.rs crates/can-core/src/crc.rs crates/can-core/src/errors.rs crates/can-core/src/frame.rs crates/can-core/src/id.rs crates/can-core/src/level.rs crates/can-core/src/pin.rs crates/can-core/src/time.rs

crates/can-core/src/lib.rs:
crates/can-core/src/agent.rs:
crates/can-core/src/app.rs:
crates/can-core/src/bit_timing.rs:
crates/can-core/src/bitstream.rs:
crates/can-core/src/counters.rs:
crates/can-core/src/crc.rs:
crates/can-core/src/errors.rs:
crates/can-core/src/frame.rs:
crates/can-core/src/id.rs:
crates/can-core/src/level.rs:
crates/can-core/src/pin.rs:
crates/can-core/src/time.rs:

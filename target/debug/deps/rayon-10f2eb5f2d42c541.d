/root/repo/target/debug/deps/rayon-10f2eb5f2d42c541.d: crates/rayon-shim/src/lib.rs

/root/repo/target/debug/deps/rayon-10f2eb5f2d42c541: crates/rayon-shim/src/lib.rs

crates/rayon-shim/src/lib.rs:

/root/repo/target/debug/deps/bench-de96cdb2bd48a002.d: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libbench-de96cdb2bd48a002.rlib: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libbench-de96cdb2bd48a002.rmeta: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/availability.rs:
crates/bench/src/busload.rs:
crates/bench/src/campaign.rs:
crates/bench/src/cpu.rs:
crates/bench/src/detection.rs:
crates/bench/src/ids_compare.rs:
crates/bench/src/scenarios.rs:
crates/bench/src/table1.rs:

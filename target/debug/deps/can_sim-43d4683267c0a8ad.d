/root/repo/target/debug/deps/can_sim-43d4683267c0a8ad.d: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

/root/repo/target/debug/deps/can_sim-43d4683267c0a8ad: crates/can-sim/src/lib.rs crates/can-sim/src/controller.rs crates/can-sim/src/event.rs crates/can-sim/src/fault.rs crates/can-sim/src/measure.rs crates/can-sim/src/node.rs crates/can-sim/src/parser.rs crates/can-sim/src/sim.rs

crates/can-sim/src/lib.rs:
crates/can-sim/src/controller.rs:
crates/can-sim/src/event.rs:
crates/can-sim/src/fault.rs:
crates/can-sim/src/measure.rs:
crates/can-sim/src/node.rs:
crates/can-sim/src/parser.rs:
crates/can-sim/src/sim.rs:

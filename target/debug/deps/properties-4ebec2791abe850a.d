/root/repo/target/debug/deps/properties-4ebec2791abe850a.d: crates/can-core/tests/properties.rs

/root/repo/target/debug/deps/properties-4ebec2791abe850a: crates/can-core/tests/properties.rs

crates/can-core/tests/properties.rs:

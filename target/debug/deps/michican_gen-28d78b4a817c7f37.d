/root/repo/target/debug/deps/michican_gen-28d78b4a817c7f37.d: crates/bench/src/bin/michican_gen.rs

/root/repo/target/debug/deps/michican_gen-28d78b4a817c7f37: crates/bench/src/bin/michican_gen.rs

crates/bench/src/bin/michican_gen.rs:

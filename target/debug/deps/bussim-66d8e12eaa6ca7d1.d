/root/repo/target/debug/deps/bussim-66d8e12eaa6ca7d1.d: crates/bench/src/bin/bussim.rs

/root/repo/target/debug/deps/bussim-66d8e12eaa6ca7d1: crates/bench/src/bin/bussim.rs

crates/bench/src/bin/bussim.rs:

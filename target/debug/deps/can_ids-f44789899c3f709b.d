/root/repo/target/debug/deps/can_ids-f44789899c3f709b.d: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

/root/repo/target/debug/deps/can_ids-f44789899c3f709b: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs

crates/can-ids/src/lib.rs:
crates/can-ids/src/frequency.rs:
crates/can-ids/src/interval.rs:
crates/can-ids/src/monitor.rs:

/root/repo/target/debug/deps/full_system_soak-52e77e2187549c92.d: tests/full_system_soak.rs Cargo.toml

/root/repo/target/debug/deps/libfull_system_soak-52e77e2187549c92.rmeta: tests/full_system_soak.rs Cargo.toml

tests/full_system_soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

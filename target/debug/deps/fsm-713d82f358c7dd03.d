/root/repo/target/debug/deps/fsm-713d82f358c7dd03.d: crates/bench/benches/fsm.rs Cargo.toml

/root/repo/target/debug/deps/libfsm-713d82f358c7dd03.rmeta: crates/bench/benches/fsm.rs Cargo.toml

crates/bench/benches/fsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

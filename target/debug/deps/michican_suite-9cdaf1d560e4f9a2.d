/root/repo/target/debug/deps/michican_suite-9cdaf1d560e4f9a2.d: src/lib.rs

/root/repo/target/debug/deps/michican_suite-9cdaf1d560e4f9a2: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/properties_e2e-21e1555e4160df80.d: tests/properties_e2e.rs

/root/repo/target/debug/deps/properties_e2e-21e1555e4160df80: tests/properties_e2e.rs

tests/properties_e2e.rs:

/root/repo/target/debug/deps/michican_suite-6e0d340af740c04b.d: src/lib.rs

/root/repo/target/debug/deps/libmichican_suite-6e0d340af740c04b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmichican_suite-6e0d340af740c04b.rmeta: src/lib.rs

src/lib.rs:

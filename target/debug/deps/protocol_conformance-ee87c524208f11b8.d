/root/repo/target/debug/deps/protocol_conformance-ee87c524208f11b8.d: tests/protocol_conformance.rs

/root/repo/target/debug/deps/protocol_conformance-ee87c524208f11b8: tests/protocol_conformance.rs

tests/protocol_conformance.rs:

/root/repo/target/debug/deps/schedulability_properties-bbbb5c96c6520025.d: crates/restbus/tests/schedulability_properties.rs

/root/repo/target/debug/deps/schedulability_properties-bbbb5c96c6520025: crates/restbus/tests/schedulability_properties.rs

crates/restbus/tests/schedulability_properties.rs:

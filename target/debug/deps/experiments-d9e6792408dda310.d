/root/repo/target/debug/deps/experiments-d9e6792408dda310.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-d9e6792408dda310: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

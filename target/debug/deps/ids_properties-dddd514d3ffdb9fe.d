/root/repo/target/debug/deps/ids_properties-dddd514d3ffdb9fe.d: crates/can-ids/tests/ids_properties.rs

/root/repo/target/debug/deps/ids_properties-dddd514d3ffdb9fe: crates/can-ids/tests/ids_properties.rs

crates/can-ids/tests/ids_properties.rs:

/root/repo/target/debug/deps/bench-dd87aac54fd533eb.d: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/runner.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libbench-dd87aac54fd533eb.rlib: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/runner.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libbench-dd87aac54fd533eb.rmeta: crates/bench/src/lib.rs crates/bench/src/availability.rs crates/bench/src/busload.rs crates/bench/src/campaign.rs crates/bench/src/cpu.rs crates/bench/src/detection.rs crates/bench/src/ids_compare.rs crates/bench/src/runner.rs crates/bench/src/scenarios.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/availability.rs:
crates/bench/src/busload.rs:
crates/bench/src/campaign.rs:
crates/bench/src/cpu.rs:
crates/bench/src/detection.rs:
crates/bench/src/ids_compare.rs:
crates/bench/src/runner.rs:
crates/bench/src/scenarios.rs:
crates/bench/src/table1.rs:

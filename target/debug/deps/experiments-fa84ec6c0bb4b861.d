/root/repo/target/debug/deps/experiments-fa84ec6c0bb4b861.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-fa84ec6c0bb4b861: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

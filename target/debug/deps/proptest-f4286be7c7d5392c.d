/root/repo/target/debug/deps/proptest-f4286be7c7d5392c.d: crates/proptest-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-f4286be7c7d5392c.rmeta: crates/proptest-shim/src/lib.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/attacker_limitations-71d8ca2af44d2211.d: tests/attacker_limitations.rs

/root/repo/target/debug/deps/attacker_limitations-71d8ca2af44d2211: tests/attacker_limitations.rs

tests/attacker_limitations.rs:

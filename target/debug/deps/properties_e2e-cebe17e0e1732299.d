/root/repo/target/debug/deps/properties_e2e-cebe17e0e1732299.d: tests/properties_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libproperties_e2e-cebe17e0e1732299.rmeta: tests/properties_e2e.rs Cargo.toml

tests/properties_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

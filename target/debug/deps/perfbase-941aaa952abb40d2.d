/root/repo/target/debug/deps/perfbase-941aaa952abb40d2.d: crates/bench/src/bin/perfbase.rs Cargo.toml

/root/repo/target/debug/deps/libperfbase-941aaa952abb40d2.rmeta: crates/bench/src/bin/perfbase.rs Cargo.toml

crates/bench/src/bin/perfbase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

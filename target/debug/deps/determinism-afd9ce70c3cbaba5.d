/root/repo/target/debug/deps/determinism-afd9ce70c3cbaba5.d: crates/can-sim/tests/determinism.rs

/root/repo/target/debug/deps/determinism-afd9ce70c3cbaba5: crates/can-sim/tests/determinism.rs

crates/can-sim/tests/determinism.rs:

/root/repo/target/debug/deps/attacker_limitations-a1be8090d5b60b7a.d: tests/attacker_limitations.rs Cargo.toml

/root/repo/target/debug/deps/libattacker_limitations-a1be8090d5b60b7a.rmeta: tests/attacker_limitations.rs Cargo.toml

tests/attacker_limitations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/experiments-c925fe0471684bfb.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-c925fe0471684bfb.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mcu-07fb3e0e35eae000.d: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libmcu-07fb3e0e35eae000.rmeta: crates/mcu/src/lib.rs crates/mcu/src/cost.rs crates/mcu/src/profile.rs crates/mcu/src/reliability.rs crates/mcu/src/timer.rs Cargo.toml

crates/mcu/src/lib.rs:
crates/mcu/src/cost.rs:
crates/mcu/src/profile.rs:
crates/mcu/src/reliability.rs:
crates/mcu/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/busoff-2cb169de8bfdb869.d: crates/bench/benches/busoff.rs Cargo.toml

/root/repo/target/debug/deps/libbusoff-2cb169de8bfdb869.rmeta: crates/bench/benches/busoff.rs Cargo.toml

crates/bench/benches/busoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bussim-38ee6519b1106352.d: crates/bench/src/bin/bussim.rs Cargo.toml

/root/repo/target/debug/deps/libbussim-38ee6519b1106352.rmeta: crates/bench/src/bin/bussim.rs Cargo.toml

crates/bench/src/bin/bussim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

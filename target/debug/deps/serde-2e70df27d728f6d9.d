/root/repo/target/debug/deps/serde-2e70df27d728f6d9.d: crates/serde-shim/src/lib.rs

/root/repo/target/debug/deps/libserde-2e70df27d728f6d9.so: crates/serde-shim/src/lib.rs

crates/serde-shim/src/lib.rs:

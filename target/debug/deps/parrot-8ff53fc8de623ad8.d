/root/repo/target/debug/deps/parrot-8ff53fc8de623ad8.d: crates/parrot/src/lib.rs

/root/repo/target/debug/deps/parrot-8ff53fc8de623ad8: crates/parrot/src/lib.rs

crates/parrot/src/lib.rs:

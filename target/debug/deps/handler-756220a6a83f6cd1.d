/root/repo/target/debug/deps/handler-756220a6a83f6cd1.d: crates/bench/benches/handler.rs Cargo.toml

/root/repo/target/debug/deps/libhandler-756220a6a83f6cd1.rmeta: crates/bench/benches/handler.rs Cargo.toml

crates/bench/benches/handler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/experiments-406134de99fdc137.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-406134de99fdc137: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

/root/repo/target/debug/deps/experiments-622c386894c48b8d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-622c386894c48b8d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

/root/repo/target/debug/deps/can_ids-06297bea3c20088d.d: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs Cargo.toml

/root/repo/target/debug/deps/libcan_ids-06297bea3c20088d.rmeta: crates/can-ids/src/lib.rs crates/can-ids/src/frequency.rs crates/can-ids/src/interval.rs crates/can-ids/src/monitor.rs Cargo.toml

crates/can-ids/src/lib.rs:
crates/can-ids/src/frequency.rs:
crates/can-ids/src/interval.rs:
crates/can-ids/src/monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/michican_suite-38adfe4d38d78fc3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmichican_suite-38adfe4d38d78fc3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/full_system_soak-e141d949120e7cad.d: tests/full_system_soak.rs

/root/repo/target/debug/deps/full_system_soak-e141d949120e7cad: tests/full_system_soak.rs

tests/full_system_soak.rs:

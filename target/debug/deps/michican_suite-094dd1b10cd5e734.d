/root/repo/target/debug/deps/michican_suite-094dd1b10cd5e734.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmichican_suite-094dd1b10cd5e734.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/defense_coverage-3a69d8c7ecc416da.d: tests/defense_coverage.rs

/root/repo/target/debug/deps/defense_coverage-3a69d8c7ecc416da: tests/defense_coverage.rs

tests/defense_coverage.rs:

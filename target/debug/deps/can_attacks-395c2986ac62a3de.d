/root/repo/target/debug/deps/can_attacks-395c2986ac62a3de.d: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs Cargo.toml

/root/repo/target/debug/deps/libcan_attacks-395c2986ac62a3de.rmeta: crates/can-attacks/src/lib.rs crates/can-attacks/src/fabrication.rs crates/can-attacks/src/ghost.rs crates/can-attacks/src/masquerade.rs crates/can-attacks/src/suspension.rs crates/can-attacks/src/toggling.rs Cargo.toml

crates/can-attacks/src/lib.rs:
crates/can-attacks/src/fabrication.rs:
crates/can-attacks/src/ghost.rs:
crates/can-attacks/src/masquerade.rs:
crates/can-attacks/src/suspension.rs:
crates/can-attacks/src/toggling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/busoff_ladder-f20c9ce3d32282ff.d: tests/busoff_ladder.rs

/root/repo/target/debug/deps/busoff_ladder-f20c9ce3d32282ff: tests/busoff_ladder.rs

tests/busoff_ladder.rs:

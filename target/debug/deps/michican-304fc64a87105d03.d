/root/repo/target/debug/deps/michican-304fc64a87105d03.d: crates/michican/src/lib.rs crates/michican/src/analysis.rs crates/michican/src/codegen.rs crates/michican/src/config.rs crates/michican/src/detect.rs crates/michican/src/fsm.rs crates/michican/src/handler.rs crates/michican/src/health.rs crates/michican/src/prevention.rs crates/michican/src/sync.rs

/root/repo/target/debug/deps/michican-304fc64a87105d03: crates/michican/src/lib.rs crates/michican/src/analysis.rs crates/michican/src/codegen.rs crates/michican/src/config.rs crates/michican/src/detect.rs crates/michican/src/fsm.rs crates/michican/src/handler.rs crates/michican/src/health.rs crates/michican/src/prevention.rs crates/michican/src/sync.rs

crates/michican/src/lib.rs:
crates/michican/src/analysis.rs:
crates/michican/src/codegen.rs:
crates/michican/src/config.rs:
crates/michican/src/detect.rs:
crates/michican/src/fsm.rs:
crates/michican/src/handler.rs:
crates/michican/src/health.rs:
crates/michican/src/prevention.rs:
crates/michican/src/sync.rs:

/root/repo/target/debug/deps/michican_suite-7413ce8e9efc831f.d: src/lib.rs

/root/repo/target/debug/deps/libmichican_suite-7413ce8e9efc831f.rlib: src/lib.rs

/root/repo/target/debug/deps/libmichican_suite-7413ce8e9efc831f.rmeta: src/lib.rs

src/lib.rs:

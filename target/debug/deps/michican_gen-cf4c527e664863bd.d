/root/repo/target/debug/deps/michican_gen-cf4c527e664863bd.d: crates/bench/src/bin/michican_gen.rs

/root/repo/target/debug/deps/michican_gen-cf4c527e664863bd: crates/bench/src/bin/michican_gen.rs

crates/bench/src/bin/michican_gen.rs:

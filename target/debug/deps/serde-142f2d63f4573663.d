/root/repo/target/debug/deps/serde-142f2d63f4573663.d: crates/serde-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-142f2d63f4573663.so: crates/serde-shim/src/lib.rs Cargo.toml

crates/serde-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

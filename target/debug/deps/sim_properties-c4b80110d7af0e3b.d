/root/repo/target/debug/deps/sim_properties-c4b80110d7af0e3b.d: crates/can-sim/tests/sim_properties.rs

/root/repo/target/debug/deps/sim_properties-c4b80110d7af0e3b: crates/can-sim/tests/sim_properties.rs

crates/can-sim/tests/sim_properties.rs:

/root/repo/target/debug/deps/parrot-e32be14d556140fe.d: crates/parrot/src/lib.rs

/root/repo/target/debug/deps/libparrot-e32be14d556140fe.rlib: crates/parrot/src/lib.rs

/root/repo/target/debug/deps/libparrot-e32be14d556140fe.rmeta: crates/parrot/src/lib.rs

crates/parrot/src/lib.rs:

/root/repo/target/debug/deps/id_collision-5c917c6da188cb6f.d: tests/id_collision.rs

/root/repo/target/debug/deps/id_collision-5c917c6da188cb6f: tests/id_collision.rs

tests/id_collision.rs:

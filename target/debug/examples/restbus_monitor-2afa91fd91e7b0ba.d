/root/repo/target/debug/examples/restbus_monitor-2afa91fd91e7b0ba.d: examples/restbus_monitor.rs

/root/repo/target/debug/examples/restbus_monitor-2afa91fd91e7b0ba: examples/restbus_monitor.rs

examples/restbus_monitor.rs:

/root/repo/target/debug/examples/two_attackers-c93acb75fd9cf3aa.d: examples/two_attackers.rs Cargo.toml

/root/repo/target/debug/examples/libtwo_attackers-c93acb75fd9cf3aa.rmeta: examples/two_attackers.rs Cargo.toml

examples/two_attackers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/ids_vs_michican-efb94b4f75c6894c.d: examples/ids_vs_michican.rs

/root/repo/target/debug/examples/ids_vs_michican-efb94b4f75c6894c: examples/ids_vs_michican.rs

examples/ids_vs_michican.rs:

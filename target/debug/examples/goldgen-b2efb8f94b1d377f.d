/root/repo/target/debug/examples/goldgen-b2efb8f94b1d377f.d: examples/goldgen.rs

/root/repo/target/debug/examples/goldgen-b2efb8f94b1d377f: examples/goldgen.rs

examples/goldgen.rs:

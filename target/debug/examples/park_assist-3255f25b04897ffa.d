/root/repo/target/debug/examples/park_assist-3255f25b04897ffa.d: examples/park_assist.rs

/root/repo/target/debug/examples/park_assist-3255f25b04897ffa: examples/park_assist.rs

examples/park_assist.rs:

/root/repo/target/debug/examples/firmware_codegen-3621009cd2caafa8.d: examples/firmware_codegen.rs Cargo.toml

/root/repo/target/debug/examples/libfirmware_codegen-3621009cd2caafa8.rmeta: examples/firmware_codegen.rs Cargo.toml

examples/firmware_codegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

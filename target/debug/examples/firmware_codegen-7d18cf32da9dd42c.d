/root/repo/target/debug/examples/firmware_codegen-7d18cf32da9dd42c.d: examples/firmware_codegen.rs

/root/repo/target/debug/examples/firmware_codegen-7d18cf32da9dd42c: examples/firmware_codegen.rs

examples/firmware_codegen.rs:

/root/repo/target/debug/examples/firmware_codegen-8dc112ed34ec65e0.d: examples/firmware_codegen.rs

/root/repo/target/debug/examples/firmware_codegen-8dc112ed34ec65e0: examples/firmware_codegen.rs

examples/firmware_codegen.rs:

/root/repo/target/debug/examples/ids_vs_michican-d380f90d8d1820b5.d: examples/ids_vs_michican.rs Cargo.toml

/root/repo/target/debug/examples/libids_vs_michican-d380f90d8d1820b5.rmeta: examples/ids_vs_michican.rs Cargo.toml

examples/ids_vs_michican.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/ids_vs_michican-5358f379d3361890.d: examples/ids_vs_michican.rs

/root/repo/target/debug/examples/ids_vs_michican-5358f379d3361890: examples/ids_vs_michican.rs

examples/ids_vs_michican.rs:

/root/repo/target/debug/examples/restbus_monitor-7ebe35c3408c0a8a.d: examples/restbus_monitor.rs Cargo.toml

/root/repo/target/debug/examples/librestbus_monitor-7ebe35c3408c0a8a.rmeta: examples/restbus_monitor.rs Cargo.toml

examples/restbus_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/park_assist-66b6638fc0b39792.d: examples/park_assist.rs Cargo.toml

/root/repo/target/debug/examples/libpark_assist-66b6638fc0b39792.rmeta: examples/park_assist.rs Cargo.toml

examples/park_assist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/two_attackers-80064148c948b97c.d: examples/two_attackers.rs

/root/repo/target/debug/examples/two_attackers-80064148c948b97c: examples/two_attackers.rs

examples/two_attackers.rs:

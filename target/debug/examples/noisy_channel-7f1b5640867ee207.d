/root/repo/target/debug/examples/noisy_channel-7f1b5640867ee207.d: examples/noisy_channel.rs

/root/repo/target/debug/examples/noisy_channel-7f1b5640867ee207: examples/noisy_channel.rs

examples/noisy_channel.rs:

/root/repo/target/debug/examples/restbus_monitor-fdb04cadb5762d9d.d: examples/restbus_monitor.rs

/root/repo/target/debug/examples/restbus_monitor-fdb04cadb5762d9d: examples/restbus_monitor.rs

examples/restbus_monitor.rs:

/root/repo/target/debug/examples/noisy_channel-89cea7a6bd18d918.d: examples/noisy_channel.rs Cargo.toml

/root/repo/target/debug/examples/libnoisy_channel-89cea7a6bd18d918.rmeta: examples/noisy_channel.rs Cargo.toml

examples/noisy_channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/two_attackers-ef3cdea70fc12416.d: examples/two_attackers.rs

/root/repo/target/debug/examples/two_attackers-ef3cdea70fc12416: examples/two_attackers.rs

examples/two_attackers.rs:

/root/repo/target/debug/examples/quickstart-00ffc85ecdc54b68.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-00ffc85ecdc54b68: examples/quickstart.rs

examples/quickstart.rs:

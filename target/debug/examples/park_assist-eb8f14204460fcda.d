/root/repo/target/debug/examples/park_assist-eb8f14204460fcda.d: examples/park_assist.rs

/root/repo/target/debug/examples/park_assist-eb8f14204460fcda: examples/park_assist.rs

examples/park_assist.rs:

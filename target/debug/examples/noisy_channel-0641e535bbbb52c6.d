/root/repo/target/debug/examples/noisy_channel-0641e535bbbb52c6.d: examples/noisy_channel.rs

/root/repo/target/debug/examples/noisy_channel-0641e535bbbb52c6: examples/noisy_channel.rs

examples/noisy_channel.rs:

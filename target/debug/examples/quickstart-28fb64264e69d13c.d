/root/repo/target/debug/examples/quickstart-28fb64264e69d13c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-28fb64264e69d13c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/quickstart-78ed190fb7983d2d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-78ed190fb7983d2d: examples/quickstart.rs

examples/quickstart.rs:

//! Property tests for the CAN response-time analysis.

use can_core::{BusSpeed, CanId};
use proptest::prelude::*;
use restbus::schedulability::{analyze, max_tolerable_blocking};
use restbus::{CommMatrix, Message};

fn matrix_from(defs: Vec<(u16, u32, u8)>) -> CommMatrix {
    let messages: Vec<Message> = defs
        .into_iter()
        .enumerate()
        .map(|(i, (raw, period_ms, dlc))| Message {
            id: CanId::from_raw(raw),
            period_ms,
            dlc,
            sender: format!("ecu{i}"),
            name: format!("M{raw:03X}"),
        })
        .collect();
    CommMatrix::new("prop", BusSpeed::K500, messages)
}

fn arb_defs() -> impl Strategy<Value = Vec<(u16, u32, u8)>> {
    proptest::collection::btree_map(0u16..=CanId::MAX_RAW, (5u32..2_000, 0u8..=8), 1..24)
        .prop_map(|m| m.into_iter().map(|(id, (p, d))| (id, p, d)).collect())
}

proptest! {
    /// More blocking never shortens any response time, and never turns an
    /// unschedulable message schedulable.
    #[test]
    fn blocking_is_monotone(defs in arb_defs(), blocking in 0u64..4_000) {
        let matrix = matrix_from(defs);
        let base = analyze(&matrix, 0);
        let attacked = analyze(&matrix, blocking);
        for (b, a) in base.messages.iter().zip(&attacked.messages) {
            prop_assert!(a.response_bits >= b.response_bits);
            // a.schedulable ⇒ b.schedulable: blocking can only hurt.
            prop_assert!(!a.schedulable || b.schedulable,
                "blocking must not make {} schedulable", a.id);
        }
    }

    /// Response times are monotone down the priority order for
    /// equal-shape messages.
    #[test]
    fn priority_orders_response_times(
        ids in proptest::collection::btree_set(0u16..=CanId::MAX_RAW, 2..12),
    ) {
        let defs: Vec<(u16, u32, u8)> = ids.into_iter().map(|id| (id, 100, 8)).collect();
        let matrix = matrix_from(defs);
        let analysis = analyze(&matrix, 0);
        for pair in analysis.messages.windows(2) {
            prop_assert!(pair[0].response_bits <= pair[1].response_bits);
        }
    }

    /// The binary-searched budget is exact: schedulable at the budget,
    /// unschedulable one bit above (when a finite budget exists).
    #[test]
    fn tolerable_blocking_is_tight(defs in arb_defs()) {
        let matrix = matrix_from(defs);
        let budget = max_tolerable_blocking(&matrix);
        if budget == 0 {
            return Ok(());
        }
        prop_assert!(analyze(&matrix, budget).all_schedulable());
        // The search's upper bound is 2× the largest period; a budget at
        // that cap means "effectively unlimited" and has no tight edge.
        let cap = matrix
            .messages()
            .iter()
            .map(|m| matrix.speed.bits_in_millis(m.period_ms as f64))
            .max()
            .unwrap_or(0) * 2;
        if budget < cap {
            prop_assert!(!analyze(&matrix, budget + 1).all_schedulable());
        }
    }

    /// Utilization above 100 % is always unschedulable.
    #[test]
    fn overload_is_always_caught(seed in 1u32..50) {
        // Construct deliberate overload: N messages each needing ~135 bits
        // every 135·N/2 bits.
        let n = (seed % 8 + 2) as usize;
        let period_ms = 0.27 * n as f64 / 2.0; // half the required period
        let defs: Vec<(u16, u32, u8)> = (0..n)
            .map(|i| (0x100 + i as u16, (period_ms.max(1.0)) as u32, 8))
            .collect();
        let matrix = matrix_from(defs);
        if matrix.predicted_bus_load() > 1.05 {
            prop_assert!(!analyze(&matrix, 0).all_schedulable());
        }
    }
}

//! CAN response-time analysis (Davis, Burns, Bril & Lukkien — the paper's
//! reference \[49\]).
//!
//! The paper leans on schedulability twice:
//!
//! * §IV-A: a miscellaneous attacker blocks a pending message for at most
//!   one frame, "much smaller than the deadline for safety-critical CAN
//!   messages which stands around 10 ms";
//! * §V-C: a MichiCAN bus-off episode must fit the tightest deadline
//!   ("a maximum of 5000 bits"), which bounds the tolerable number of
//!   simultaneous attackers at four.
//!
//! This module implements the classic fixed-priority response-time
//! analysis for CAN — worst-case blocking + busy-period iteration — plus
//! an *attack blocking* term so the feasibility of a defense episode can
//! be checked analytically against any communication matrix.

use can_core::BusSpeed;

use crate::matrix::CommMatrix;

/// Worst-case response time of one message, in bits.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseTime {
    /// The message identifier (priority).
    pub id: can_core::CanId,
    /// Worst-case queuing delay (blocking + interference), bits.
    pub queuing_bits: u64,
    /// Worst-case response time (queuing + own transmission), bits.
    pub response_bits: u64,
    /// The message deadline (= period) in bits.
    pub deadline_bits: u64,
    /// Whether the response time meets the deadline.
    pub schedulable: bool,
}

impl ResponseTime {
    /// Response time in milliseconds at the given speed.
    pub fn response_ms(&self, speed: BusSpeed) -> f64 {
        self.response_bits as f64 * speed.bit_time_us() / 1000.0
    }
}

/// Result of analyzing a whole matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Per-message response times, sorted by priority (ascending id).
    pub messages: Vec<ResponseTime>,
    /// Extra blocking injected into every message (e.g. a defense
    /// episode), in bits.
    pub attack_blocking_bits: u64,
}

impl Analysis {
    /// Whether every message meets its deadline.
    pub fn all_schedulable(&self) -> bool {
        self.messages.iter().all(|m| m.schedulable)
    }

    /// Identifiers that miss their deadlines.
    pub fn missed(&self) -> Vec<can_core::CanId> {
        self.messages
            .iter()
            .filter(|m| !m.schedulable)
            .map(|m| m.id)
            .collect()
    }
}

/// Upper bound on the iteration count before declaring unschedulability.
const MAX_ITERATIONS: usize = 10_000;

/// Runs the response-time analysis on `matrix` with an additional
/// `attack_blocking_bits` term added to every message's blocking (0 for
/// the healthy-bus analysis; a bus-off episode's length to check defense
/// feasibility, per §V-C).
///
/// Deadlines are taken as the message periods (the standard implicit-
/// deadline assumption for periodic CAN traffic).
pub fn analyze(matrix: &CommMatrix, attack_blocking_bits: u64) -> Analysis {
    let messages = matrix.messages();
    let speed = matrix.speed;

    // Worst-case frame lengths in bits (with maximal stuffing + IFS).
    let frame_bits: Vec<u64> = messages.iter().map(|m| m.worst_case_bits()).collect();
    let periods: Vec<u64> = messages
        .iter()
        .map(|m| speed.bits_in_millis(m.period_ms as f64).max(1))
        .collect();

    let mut results = Vec::with_capacity(messages.len());
    for (i, message) in messages.iter().enumerate() {
        // Blocking: the longest lower-priority frame that may have just
        // started (non-preemptive bus), plus the attack term.
        let lp_blocking = frame_bits[i + 1..].iter().copied().max().unwrap_or(0);
        let blocking = lp_blocking + attack_blocking_bits;

        // Busy-period iteration over higher-priority interference.
        let own = frame_bits[i];
        let mut w = blocking;
        let mut schedulable = true;
        for iteration in 0.. {
            let mut interference = 0u64;
            for j in 0..i {
                // +1 bit inherits the analysis's tau_bit term (a message
                // queued an instant after the release still interferes).
                interference += (w + 1).div_ceil(periods[j]) * frame_bits[j];
            }
            let next = blocking + interference;
            if next == w {
                break;
            }
            w = next;
            if w + own > periods[i] * 4 || iteration >= MAX_ITERATIONS {
                // Far past the deadline: call it unschedulable.
                schedulable = false;
                break;
            }
        }
        let response = w + own;
        schedulable = schedulable && response <= periods[i];
        results.push(ResponseTime {
            id: message.id,
            queuing_bits: w,
            response_bits: response,
            deadline_bits: periods[i],
            schedulable,
        });
    }

    Analysis {
        messages: results,
        attack_blocking_bits,
    }
}

/// The largest defense-episode blocking (in bits) the matrix tolerates
/// with every deadline still met — the analytic form of the paper's
/// "maximum number of attacking ECUs before the CAN bus becomes
/// inoperable" (§V-C).
pub fn max_tolerable_blocking(matrix: &CommMatrix) -> u64 {
    // Binary search over the blocking term.
    let mut lo = 0u64;
    let mut hi = matrix
        .messages()
        .iter()
        .map(|m| matrix.speed.bits_in_millis(m.period_ms as f64))
        .max()
        .unwrap_or(0)
        * 2;
    if !analyze(matrix, lo).all_schedulable() {
        return 0;
    }
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if analyze(matrix, mid).all_schedulable() {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Message;
    use can_core::CanId;

    fn msg(id: u16, period_ms: u32, dlc: u8) -> Message {
        Message {
            id: CanId::from_raw(id),
            period_ms,
            dlc,
            sender: format!("ecu-{id:03x}"),
            name: format!("M{id:03X}"),
        }
    }

    #[test]
    fn single_message_response_is_blocking_free() {
        let m = CommMatrix::new("t", BusSpeed::K500, vec![msg(0x100, 10, 8)]);
        let analysis = analyze(&m, 0);
        let r = &analysis.messages[0];
        // No lower priority ⇒ no blocking; response = own frame.
        assert_eq!(r.queuing_bits, 0);
        assert_eq!(r.response_bits, msg(0x100, 10, 8).worst_case_bits());
        assert!(r.schedulable);
    }

    #[test]
    fn highest_priority_waits_for_one_lower_frame() {
        let m = CommMatrix::new(
            "t",
            BusSpeed::K500,
            vec![msg(0x100, 10, 8), msg(0x200, 10, 8)],
        );
        let analysis = analyze(&m, 0);
        let hp = &analysis.messages[0];
        // Non-preemptive blocking: one full lower-priority frame.
        assert_eq!(hp.queuing_bits, msg(0x200, 10, 8).worst_case_bits());
        assert!(analysis.all_schedulable());
    }

    #[test]
    fn interference_accumulates_down_the_priority_order() {
        let m = CommMatrix::new(
            "t",
            BusSpeed::K500,
            vec![msg(0x100, 10, 8), msg(0x200, 10, 8), msg(0x300, 10, 8)],
        );
        let analysis = analyze(&m, 0);
        let responses: Vec<u64> = analysis.messages.iter().map(|r| r.response_bits).collect();
        // The lowest-priority message has no blocking term, so the last
        // two can tie; the order is still monotone.
        assert!(responses[0] < responses[1]);
        assert!(responses[1] <= responses[2]);
        assert!(analysis.all_schedulable());
    }

    #[test]
    fn overload_is_flagged_unschedulable() {
        // Three 8-byte messages at 1 ms on 50 kbit/s: >> 100 % utilization.
        let m = CommMatrix::new(
            "t",
            BusSpeed::K50,
            vec![msg(0x100, 1, 8), msg(0x200, 1, 8), msg(0x300, 1, 8)],
        );
        let analysis = analyze(&m, 0);
        assert!(!analysis.all_schedulable());
        assert!(!analysis.missed().is_empty());
    }

    #[test]
    fn paper_feasibility_single_episode_fits_10ms_deadlines() {
        // §V-C: a 1248-bit episode must not break a bus whose tightest
        // deadline is 10 ms (5000 bits at 500 kbit/s).
        let m = crate::vehicles::vehicle_matrix(crate::Vehicle::D, 0, BusSpeed::K500);
        let healthy = analyze(&m, 0);
        assert!(healthy.all_schedulable(), "the matrix itself is feasible");
        let attacked = analyze(&m, 1_248);
        assert!(
            attacked.all_schedulable(),
            "one bus-off episode fits every deadline: {:?}",
            attacked.missed()
        );
    }

    #[test]
    fn paper_crossover_five_attacker_episode_breaks_deadlines() {
        // The A = 5 episode (≈ 6100 bits > the 5000-bit budget) must break
        // the 10 ms class.
        let m = crate::vehicles::vehicle_matrix(crate::Vehicle::D, 0, BusSpeed::K500);
        let attacked = analyze(&m, 6_100);
        assert!(
            !attacked.all_schedulable(),
            "a five-attacker episode must miss deadlines"
        );
    }

    #[test]
    fn max_tolerable_blocking_brackets_the_crossover() {
        let m = crate::vehicles::vehicle_matrix(crate::Vehicle::D, 0, BusSpeed::K500);
        let budget = max_tolerable_blocking(&m);
        // The paper's crude 5000-bit bound ignores interference; the exact
        // analysis lands below it but comfortably above one episode.
        assert!(budget >= 1_300, "budget {budget} must fit one episode");
        assert!(
            budget < 6_100,
            "budget {budget} must exclude the A=5 episode"
        );
        assert!(analyze(&m, budget).all_schedulable());
        assert!(!analyze(&m, budget + 1).all_schedulable());
    }

    #[test]
    fn response_ms_conversion() {
        let m = CommMatrix::new("t", BusSpeed::K500, vec![msg(0x100, 10, 8)]);
        let analysis = analyze(&m, 0);
        let r = &analysis.messages[0];
        let expected = r.response_bits as f64 * 2.0 / 1000.0;
        assert!((r.response_ms(BusSpeed::K500) - expected).abs() < 1e-12);
    }
}

//! # restbus — synthetic vehicle traffic for restbus simulation
//!
//! The paper replays production-vehicle CAN traffic ("restbus
//! simulation", §V-A) behind its attacks. The recordings are proprietary,
//! so this crate synthesizes deterministic communication matrices with the
//! statistics the evaluation depends on (≈ 40 % bus load, 10 ms minimum
//! deadline class, realistic identifier/period/DLC distributions), plus:
//!
//! * [`matrix`] — [`CommMatrix`]/[`Message`] and the bus-load formula
//!   `b = (s_f / f_baud) · Σ 1/p_m` (§V-E);
//! * [`vehicles`] — seeded matrices for Veh. A–D × 2 buses;
//! * [`pacifica`] — the 2017 Chrysler Pacifica ParkSense excerpt of the
//!   on-vehicle test (§V-F);
//! * [`replay`] — an [`can_core::app::Application`] replaying a matrix
//!   onto the simulated bus;
//! * [`dbc`] — a mini-DBC parser/emitter for matrix exchange;
//! * [`schedulability`] — CAN response-time analysis (the paper's reference \[49\])
//!   with an attack-blocking term for defense-feasibility checks (§V-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbc;
pub mod matrix;
pub mod pacifica;
pub mod replay;
pub mod schedulability;
pub mod vehicles;

pub use matrix::{CommMatrix, MatrixError, Message};
pub use pacifica::{pacifica_matrix, ParkSense, ATTACK_ID, PARKSENSE_ID};
pub use replay::ReplayApp;
pub use vehicles::{all_buses, vehicle_matrix, Vehicle};

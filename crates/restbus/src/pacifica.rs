//! The on-vehicle test scenario: 2017 Chrysler Pacifica Hybrid ParkSense
//! (paper §V-F).
//!
//! The paper extracts the park-assist identifiers from a public
//! communication matrix (OpenDBC); the lowest ParkSense-relevant
//! identifier is `0x260`, and the attack injects `0x25F` — one priority
//! step above it — from the OBD-II port. This module ships a compact
//! ParkSense-centric matrix with those exact identifiers plus the
//! surrounding chassis traffic the experiment rides on.

use can_core::{BusSpeed, CanId};

use crate::matrix::{CommMatrix, Message};

/// The lowest CAN identifier relevant to ParkSense (paper §V-F).
pub const PARKSENSE_ID: CanId = CanId::from_raw(0x260);

/// The identifier the paper's targeted DoS injects (one below ParkSense).
pub const ATTACK_ID: CanId = CanId::from_raw(0x25F);

fn msg(id: u16, period_ms: u32, dlc: u8, sender: &str, name: &str) -> Message {
    Message {
        id: CanId::from_raw(id),
        period_ms,
        dlc,
        sender: sender.to_string(),
        name: name.to_string(),
    }
}

/// The Pacifica chassis-bus excerpt used by the on-vehicle experiment.
///
/// Identifiers follow the public OpenDBC Chrysler matrix style: engine and
/// brake traffic below 0x200, ParkSense at 0x260 plus its status
/// companions, body traffic above 0x300.
pub fn pacifica_matrix(speed: BusSpeed) -> CommMatrix {
    CommMatrix::new(
        "pacifica-2017/chassis",
        speed,
        vec![
            msg(0x0A4, 10, 8, "ecm", "ENGINE_TORQUE"),
            msg(0x0D0, 10, 8, "esp", "BRAKE_PRESSURE"),
            msg(0x0F1, 20, 8, "epas", "STEERING_ANGLE"),
            msg(0x11C, 20, 8, "ecm", "ACCEL_PEDAL"),
            msg(0x140, 20, 8, "tcm", "GEAR_STATE"),
            msg(0x1A8, 50, 8, "esp", "WHEEL_SPEEDS"),
            msg(0x260, 50, 8, "parksense", "PARKSENSE_STATUS"),
            msg(0x270, 50, 8, "parksense", "PARKSENSE_DISTANCE_FRONT"),
            msg(0x271, 50, 8, "parksense", "PARKSENSE_DISTANCE_REAR"),
            msg(0x2D2, 100, 8, "bcm", "DOOR_STATE"),
            msg(0x31A, 100, 8, "bcm", "EXTERIOR_LIGHTS"),
            msg(0x3E6, 200, 8, "hvac", "CLIMATE_STATE"),
            msg(0x5A0, 500, 4, "ipc", "ODOMETER"),
            msg(0x620, 1000, 8, "bcm", "VIN_BROADCAST"),
        ],
    )
}

/// ParkSense availability model: the feature shows "PARKSENSE UNAVAILABLE
/// SERVICE REQUIRED" once its status message has been absent longer than
/// `timeout_ms` (the dashboard behaviour the paper observed).
#[derive(Debug, Clone)]
pub struct ParkSense {
    timeout_ms: f64,
    last_status_ms: Option<f64>,
    unavailable_since_ms: Option<f64>,
}

impl ParkSense {
    /// Creates the model with the given status timeout.
    pub fn new(timeout_ms: f64) -> Self {
        ParkSense {
            timeout_ms,
            last_status_ms: None,
            unavailable_since_ms: None,
        }
    }

    /// Default model: three missed 50 ms status periods trip the fault.
    pub fn with_default_timeout() -> Self {
        Self::new(150.0)
    }

    /// Feed a received frame.
    pub fn on_frame(&mut self, id: CanId, now_ms: f64) {
        if id == PARKSENSE_ID {
            self.last_status_ms = Some(now_ms);
            self.unavailable_since_ms = None;
        }
    }

    /// Poll availability at `now_ms`.
    pub fn is_available(&mut self, now_ms: f64) -> bool {
        match self.last_status_ms {
            None => now_ms < self.timeout_ms,
            Some(last) => {
                if now_ms - last > self.timeout_ms {
                    self.unavailable_since_ms.get_or_insert(now_ms);
                    false
                } else {
                    true
                }
            }
        }
    }

    /// When the feature became unavailable, if it did.
    pub fn unavailable_since_ms(&self) -> Option<f64> {
        self.unavailable_since_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_id_is_one_below_parksense() {
        assert_eq!(ATTACK_ID.raw() + 1, PARKSENSE_ID.raw());
        assert!(ATTACK_ID.outranks(PARKSENSE_ID));
    }

    #[test]
    fn matrix_contains_parksense_cluster() {
        let m = pacifica_matrix(BusSpeed::K500);
        assert!(m.message(PARKSENSE_ID).is_some());
        assert_eq!(m.message(PARKSENSE_ID).unwrap().sender, "parksense");
        assert!(m.message(ATTACK_ID).is_none(), "0x25F is NOT legitimate");
        assert!(m.predicted_bus_load() < 0.5);
    }

    #[test]
    fn parksense_times_out_without_status() {
        let mut ps = ParkSense::with_default_timeout();
        ps.on_frame(PARKSENSE_ID, 0.0);
        assert!(ps.is_available(100.0));
        assert!(!ps.is_available(151.0));
        assert_eq!(ps.unavailable_since_ms(), Some(151.0));
    }

    #[test]
    fn parksense_recovers_when_status_returns() {
        let mut ps = ParkSense::with_default_timeout();
        ps.on_frame(PARKSENSE_ID, 0.0);
        assert!(!ps.is_available(200.0));
        ps.on_frame(PARKSENSE_ID, 210.0);
        assert!(ps.is_available(220.0));
        assert_eq!(ps.unavailable_since_ms(), None);
    }

    #[test]
    fn other_frames_do_not_feed_the_watchdog() {
        let mut ps = ParkSense::with_default_timeout();
        ps.on_frame(PARKSENSE_ID, 0.0);
        ps.on_frame(CanId::from_raw(0x0A4), 100.0);
        assert!(!ps.is_available(200.0));
    }
}

//! Synthetic production-vehicle communication matrices.
//!
//! The paper evaluates against CAN traffic from four production vehicles
//! of one OEM (2016–2019), two buses each (§V-A). Those traces are
//! proprietary, so this module generates *deterministic synthetic
//! matrices* with the statistics the paper depends on:
//!
//! * ~40 % observed bus load (the paper's real-vehicle figure),
//! * a high-priority class with 10 ms periods (the tightest deadline the
//!   paper quotes for a 500 kbit/s bus),
//! * medium/low-priority classes at 20–1000 ms,
//! * predominantly 8-byte payloads,
//! * unique identifier-to-sender mapping.
//!
//! Matrices are seeded per (vehicle, bus): every run of every experiment
//! sees the same traffic.

use can_core::{BusSpeed, CanId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::matrix::{CommMatrix, Message};

/// The four evaluation vehicles (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vehicle {
    /// Veh. A — luxury mid-size sedan.
    A,
    /// Veh. B — compact crossover SUV.
    B,
    /// Veh. C — full-size crossover SUV.
    C,
    /// Veh. D — full-size pickup truck (used for the restbus replay).
    D,
}

impl Vehicle {
    /// All four vehicles.
    pub const ALL: [Vehicle; 4] = [Vehicle::A, Vehicle::B, Vehicle::C, Vehicle::D];

    /// Vehicle description as given in the paper.
    pub fn description(self) -> &'static str {
        match self {
            Vehicle::A => "luxury mid-size sedan",
            Vehicle::B => "compact crossover SUV",
            Vehicle::C => "full-size crossover SUV",
            Vehicle::D => "full-size pickup truck",
        }
    }

    fn seed(self, bus: u8) -> u64 {
        let v = match self {
            Vehicle::A => 0xA,
            Vehicle::B => 0xB,
            Vehicle::C => 0xC,
            Vehicle::D => 0xD,
        };
        0x4D49_4348_4943_4100 | (v << 4) | bus as u64
    }

    /// Number of messages on each of this vehicle's buses (larger vehicles
    /// carry more ECUs).
    fn message_count(self, bus: u8) -> usize {
        let base = match self {
            Vehicle::A => 52,
            Vehicle::B => 38,
            Vehicle::C => 58,
            Vehicle::D => 64,
        };
        if bus == 0 {
            base
        } else {
            base * 3 / 4
        }
    }
}

/// Generates the deterministic synthetic matrix of `vehicle`'s bus `bus`
/// (0 or 1) at the given speed.
///
/// # Panics
///
/// Panics if `bus > 1` (the paper's vehicles have two buses each).
pub fn vehicle_matrix(vehicle: Vehicle, bus: u8, speed: BusSpeed) -> CommMatrix {
    assert!(bus < 2, "each vehicle has two CAN buses");
    let mut rng = StdRng::seed_from_u64(vehicle.seed(bus));
    let count = vehicle.message_count(bus);

    // Period classes mirroring production traffic: a safety-critical tier
    // at 10–20 ms, a control tier at 50–100 ms, and a body/comfort tier at
    // 200–1000 ms.
    const PERIODS: [(u32, f64); 6] = [
        (10, 0.15),
        (20, 0.20),
        (50, 0.20),
        (100, 0.25),
        (200, 0.10),
        (500, 0.06),
    ];
    // Remaining probability mass: 1000 ms.

    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < count {
        // Production identifiers cluster in the lower 3/4 of the space;
        // powertrain (high-priority) identifiers start around 0x040.
        let raw: u16 = rng.random_range(0x040..0x640);
        ids.insert(raw);
    }

    // Draw a period per message from the class distribution, then assign
    // rate-monotonically: the shortest periods go to the highest-priority
    // (lowest) identifiers — how OEMs actually lay out matrices, and the
    // assignment under which the deadline analysis of
    // [`crate::schedulability`] is meaningful.
    let mut periods: Vec<u32> = (0..ids.len())
        .map(|_| {
            let roll: f64 = rng.random();
            let mut acc = 0.0;
            for &(p, mass) in &PERIODS {
                acc += mass;
                if roll < acc {
                    return p;
                }
            }
            1000
        })
        .collect();
    periods.sort_unstable();

    let mut messages = Vec::with_capacity(count);
    for (index, (raw, period_ms)) in ids.into_iter().zip(periods).enumerate() {
        let dlc = if rng.random_bool(0.8) {
            8
        } else {
            rng.random_range(1..=8)
        };
        messages.push(Message {
            id: CanId::from_raw(raw),
            period_ms,
            dlc,
            sender: format!("{vehicle:?}-ecu-{:02}", index % 24),
            name: format!("{vehicle:?}_MSG_{raw:03X}"),
        });
    }

    CommMatrix::new(
        format!("veh-{vehicle:?}/bus-{bus}").to_lowercase(),
        speed,
        messages,
    )
}

/// All eight evaluation buses (4 vehicles × 2 buses), as used for the CPU
/// utilization evaluation (§V-D).
pub fn all_buses(speed: BusSpeed) -> Vec<CommMatrix> {
    Vehicle::ALL
        .iter()
        .flat_map(|&v| (0..2).map(move |b| vehicle_matrix(v, b, speed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_are_deterministic() {
        let a1 = vehicle_matrix(Vehicle::D, 0, BusSpeed::K500);
        let a2 = vehicle_matrix(Vehicle::D, 0, BusSpeed::K500);
        assert_eq!(a1, a2);
    }

    #[test]
    fn vehicles_differ() {
        let a = vehicle_matrix(Vehicle::A, 0, BusSpeed::K500);
        let b = vehicle_matrix(Vehicle::B, 0, BusSpeed::K500);
        assert_ne!(a.ids(), b.ids());
        assert!(a.len() > b.len(), "sedan matrix larger than compact SUV");
    }

    #[test]
    fn bus_load_is_in_the_paper_band() {
        // Paper: observed bus load ≈ 40 % in real vehicles; keep the
        // synthetic matrices between 25 % and 55 % at 500 kbit/s.
        for vehicle in Vehicle::ALL {
            for bus in 0..2 {
                let m = vehicle_matrix(vehicle, bus, BusSpeed::K500);
                let load = m.predicted_bus_load();
                assert!((0.20..=0.55).contains(&load), "{}: load {load:.3}", m.name);
            }
        }
    }

    #[test]
    fn min_deadline_is_10ms() {
        for vehicle in Vehicle::ALL {
            let m = vehicle_matrix(vehicle, 0, BusSpeed::K500);
            assert_eq!(m.min_deadline_ms(), Some(10), "{}", m.name);
        }
    }

    #[test]
    fn eight_buses_total() {
        let buses = all_buses(BusSpeed::K500);
        assert_eq!(buses.len(), 8);
        let names: std::collections::HashSet<_> = buses.iter().map(|m| m.name.clone()).collect();
        assert_eq!(names.len(), 8, "bus names are unique");
    }

    #[test]
    fn identifiers_stay_in_production_band() {
        for m in all_buses(BusSpeed::K500) {
            for msg in m.messages() {
                assert!((0x040..0x640).contains(&msg.id.raw()));
                assert!(msg.dlc >= 1 && msg.dlc <= 8);
                assert!(msg.period_ms >= 10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "two CAN buses")]
    fn third_bus_panics() {
        let _ = vehicle_matrix(Vehicle::A, 2, BusSpeed::K500);
    }

    #[test]
    fn descriptions_match_paper() {
        assert!(Vehicle::A.description().contains("sedan"));
        assert!(Vehicle::D.description().contains("pickup"));
    }
}

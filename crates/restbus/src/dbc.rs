//! A minimal DBC-subset parser and emitter.
//!
//! The paper builds its attack from "a publicly available CAN
//! communication matrix (OpenDBC)". OpenDBC ships `.dbc` files; this
//! module reads and writes the subset needed to exchange communication
//! matrices: `BO_` message definitions plus the common
//! `GenMsgCycleTime` attribute for periods.
//!
//! ```text
//! BO_ 608 PARKSENSE_STATUS: 8 parksense
//! BA_ "GenMsgCycleTime" BO_ 608 50;
//! ```

use core::fmt;
use std::error::Error;

use can_core::{BusSpeed, CanId};

use crate::matrix::{CommMatrix, Message};

/// Default period assigned to messages without a cycle-time attribute.
pub const DEFAULT_PERIOD_MS: u32 = 100;

/// A DBC parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbcError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DBC parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for DbcError {}

/// Parses the supported DBC subset into a [`CommMatrix`].
///
/// Unsupported lines (signals `SG_`, comments, version headers) are
/// skipped, as real-world DBC consumers do.
///
/// # Errors
///
/// Returns a [`DbcError`] for malformed `BO_`/`BA_` lines or identifiers
/// outside the 11-bit range.
pub fn parse_dbc(name: &str, speed: BusSpeed, source: &str) -> Result<CommMatrix, DbcError> {
    let mut messages: Vec<Message> = Vec::new();

    for (index, line) in source.lines().enumerate() {
        let line_no = index + 1;
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("BO_ ") {
            // BO_ <id> <NAME>: <dlc> <sender>
            let mut parts = rest.split_whitespace();
            let id_raw: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(line_no, "missing or invalid message id"))?;
            let name_tok = parts
                .next()
                .ok_or_else(|| err(line_no, "missing message name"))?;
            let msg_name = name_tok.trim_end_matches(':');
            let dlc: u8 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(line_no, "missing or invalid DLC"))?;
            let sender = parts.next().ok_or_else(|| err(line_no, "missing sender"))?;
            if dlc > 8 {
                return Err(err(line_no, "DLC exceeds 8"));
            }
            let id = CanId::new(
                u16::try_from(id_raw).map_err(|_| err(line_no, "identifier out of range"))?,
            )
            .map_err(|_| err(line_no, "identifier exceeds 11 bits"))?;
            if messages.iter().any(|m| m.id == id) {
                return Err(err(line_no, "duplicate message identifier"));
            }
            messages.push(Message {
                id,
                period_ms: DEFAULT_PERIOD_MS,
                dlc,
                sender: sender.to_string(),
                name: msg_name.to_string(),
            });
        } else if let Some(rest) = line.strip_prefix("BA_ \"GenMsgCycleTime\" BO_ ") {
            // BA_ "GenMsgCycleTime" BO_ <id> <ms>;
            let mut parts = rest.trim_end_matches(';').split_whitespace();
            let id_raw: u16 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(line_no, "missing attribute message id"))?;
            let period: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(line_no, "missing cycle time"))?;
            let id = CanId::new(id_raw).map_err(|_| err(line_no, "identifier exceeds 11 bits"))?;
            if let Some(m) = messages.iter_mut().find(|m| m.id == id) {
                m.period_ms = period.max(1);
            } else {
                return Err(err(line_no, "cycle time for unknown message"));
            }
        }
        // Everything else (VERSION, SG_, CM_, …) is ignored.
    }

    // The per-line checks above make this infallible today, but future
    // matrix invariants must surface as parse errors, never aborts.
    CommMatrix::try_new(name, speed, messages).map_err(|e| err(0, &e.to_string()))
}

fn err(line: usize, message: &str) -> DbcError {
    DbcError {
        line,
        message: message.to_string(),
    }
}

/// Emits the matrix in the supported DBC subset (round-trips through
/// [`parse_dbc`]).
pub fn emit_dbc(matrix: &CommMatrix) -> String {
    let mut out = String::new();
    out.push_str("VERSION \"\"\n\n");
    for m in matrix.messages() {
        out.push_str(&format!(
            "BO_ {} {}: {} {}\n",
            m.id.raw(),
            m.name,
            m.dlc,
            m.sender
        ));
    }
    out.push('\n');
    for m in matrix.messages() {
        out.push_str(&format!(
            "BA_ \"GenMsgCycleTime\" BO_ {} {};\n",
            m.id.raw(),
            m.period_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pacifica::pacifica_matrix;

    #[test]
    fn parses_minimal_dbc() {
        let src = "\
VERSION \"\"
BO_ 608 PARKSENSE_STATUS: 8 parksense
 SG_ distance : 0|8@1+ (1,0) [0|255] \"cm\" receiver
BO_ 164 ENGINE_TORQUE: 8 ecm
BA_ \"GenMsgCycleTime\" BO_ 608 50;
BA_ \"GenMsgCycleTime\" BO_ 164 10;
";
        let matrix = parse_dbc("test", BusSpeed::K500, src).unwrap();
        assert_eq!(matrix.len(), 2);
        let ps = matrix.message(CanId::from_raw(608)).unwrap();
        assert_eq!(ps.period_ms, 50);
        assert_eq!(ps.sender, "parksense");
        assert_eq!(ps.name, "PARKSENSE_STATUS");
        assert_eq!(matrix.message(CanId::from_raw(164)).unwrap().period_ms, 10);
    }

    #[test]
    fn missing_cycle_time_gets_default() {
        let src = "BO_ 100 X: 4 a\n";
        let matrix = parse_dbc("t", BusSpeed::K500, src).unwrap();
        assert_eq!(
            matrix.message(CanId::from_raw(100)).unwrap().period_ms,
            DEFAULT_PERIOD_MS
        );
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(parse_dbc("t", BusSpeed::K500, "BO_ nope X: 8 a\n").is_err());
        assert!(parse_dbc("t", BusSpeed::K500, "BO_ 4096 X: 8 a\n").is_err());
        assert!(parse_dbc("t", BusSpeed::K500, "BO_ 100 X: 9 a\n").is_err());
        // A duplicate definition must be a parse error, not an abort.
        let dup = "BO_ 100 X: 8 a\nBO_ 100 Y: 8 b\n";
        let e = parse_dbc("t", BusSpeed::K500, dup).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("duplicate"));
        let orphan = "BA_ \"GenMsgCycleTime\" BO_ 5 10;\n";
        let e = parse_dbc("t", BusSpeed::K500, orphan).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("unknown message"));
    }

    #[test]
    fn emit_parse_round_trip() {
        let original = pacifica_matrix(BusSpeed::K500);
        let dbc = emit_dbc(&original);
        let parsed = parse_dbc("pacifica-2017/chassis", BusSpeed::K500, &dbc).unwrap();
        assert_eq!(parsed.messages(), original.messages());
    }
}

//! Communication matrices: the set of periodic messages on one vehicle
//! bus, as found in OEM databases (DBC files) and OpenDBC.

use core::fmt;
use std::collections::BTreeMap;

use can_core::{BusSpeed, CanId};
use serde::{Deserialize, Serialize};

/// One periodic message definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    /// The message identifier.
    pub id: CanId,
    /// Transmission period in milliseconds.
    pub period_ms: u32,
    /// Payload length in bytes (0–8).
    pub dlc: u8,
    /// Name of the transmitting ECU (unique per identifier, §IV-A).
    pub sender: String,
    /// Human-readable message name.
    pub name: String,
}

impl Message {
    /// Worst-case wire length of this message in bits, including maximal
    /// stuffing and the 3-bit intermission.
    pub fn worst_case_bits(&self) -> u64 {
        let unstuffed = 44 + self.dlc as u64 * 8;
        // Stuffing applies to SOF..CRC (34 + 8·dlc bits): at most one
        // stuff bit per 4 payload bits after the first run of five.
        let stuffable = 34 + self.dlc as u64 * 8;
        unstuffed + (stuffable - 1) / 4 + 3
    }

    /// Transmissions per second.
    pub fn frequency_hz(&self) -> f64 {
        1000.0 / self.period_ms as f64
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} dlc={} every {} ms from {}",
            self.id, self.name, self.dlc, self.period_ms, self.sender
        )
    }
}

/// A complete communication matrix for one bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommMatrix {
    /// Matrix name, e.g. "veh-d/bus-1".
    pub name: String,
    /// The bus speed all ECUs share.
    pub speed: BusSpeed,
    /// Message definitions, sorted by identifier.
    messages: Vec<Message>,
}

/// Why a set of messages does not form a valid matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two messages share an identifier (a matrix maps identifiers 1:1 to
    /// senders, §IV-A).
    DuplicateId(CanId),
    /// A message declares a DLC above the CAN 2.0A maximum of 8.
    DlcTooLarge {
        /// The offending message identifier.
        id: CanId,
        /// Its declared DLC.
        dlc: u8,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DuplicateId(id) => write!(f, "duplicate identifier {id} in matrix"),
            MatrixError::DlcTooLarge { id, dlc } => {
                write!(f, "message {id} declares DLC {dlc} > 8")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

impl CommMatrix {
    /// Creates a matrix from trusted (literal) definitions; messages are
    /// sorted by identifier.
    ///
    /// # Panics
    ///
    /// Panics on duplicate identifiers or DLC > 8. Use [`Self::try_new`]
    /// for untrusted input (e.g. parsed files).
    pub fn new(name: impl Into<String>, speed: BusSpeed, messages: Vec<Message>) -> Self {
        Self::try_new(name, speed, messages).unwrap_or_else(|e| panic!("invalid matrix: {e}"))
    }

    /// Creates a matrix, rejecting duplicate identifiers and over-long
    /// DLCs; messages are sorted by identifier.
    ///
    /// # Errors
    ///
    /// Returns a [`MatrixError`] naming the offending identifier.
    pub fn try_new(
        name: impl Into<String>,
        speed: BusSpeed,
        mut messages: Vec<Message>,
    ) -> Result<Self, MatrixError> {
        messages.sort_by_key(|m| m.id);
        for pair in messages.windows(2) {
            if pair[0].id == pair[1].id {
                return Err(MatrixError::DuplicateId(pair[0].id));
            }
        }
        if let Some(m) = messages.iter().find(|m| m.dlc > 8) {
            return Err(MatrixError::DlcTooLarge {
                id: m.id,
                dlc: m.dlc,
            });
        }
        Ok(CommMatrix {
            name: name.into(),
            speed,
            messages,
        })
    }

    /// The messages, sorted by identifier (priority order).
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The message with the given identifier.
    pub fn message(&self, id: CanId) -> Option<&Message> {
        self.messages
            .binary_search_by_key(&id, |m| m.id)
            .ok()
            .map(|i| &self.messages[i])
    }

    /// All identifiers, ascending — the ECU list 𝔼 for MichiCAN
    /// configuration.
    pub fn ids(&self) -> Vec<CanId> {
        self.messages.iter().map(|m| m.id).collect()
    }

    /// Groups messages by sending ECU.
    pub fn by_sender(&self) -> BTreeMap<&str, Vec<&Message>> {
        let mut map: BTreeMap<&str, Vec<&Message>> = BTreeMap::new();
        for m in &self.messages {
            map.entry(m.sender.as_str()).or_default().push(m);
        }
        map
    }

    /// The tightest message deadline (= shortest period) in milliseconds.
    pub fn min_deadline_ms(&self) -> Option<u32> {
        self.messages.iter().map(|m| m.period_ms).min()
    }

    /// Predicted bus load `b = (s_f / f_baud) · Σ 1/p_m` (paper §V-E),
    /// using each message's worst-case frame length.
    pub fn predicted_bus_load(&self) -> f64 {
        let f_baud = self.speed.bits_per_second() as f64;
        self.messages
            .iter()
            .map(|m| m.worst_case_bits() as f64 * m.frequency_hz() / f_baud)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u16, period_ms: u32, dlc: u8) -> Message {
        Message {
            id: CanId::from_raw(id),
            period_ms,
            dlc,
            sender: format!("ecu-{id:03x}"),
            name: format!("MSG_{id:03X}"),
        }
    }

    #[test]
    fn matrix_sorts_by_id() {
        let m = CommMatrix::new(
            "t",
            BusSpeed::K500,
            vec![msg(0x300, 100, 8), msg(0x100, 10, 8)],
        );
        assert_eq!(m.messages()[0].id.raw(), 0x100);
        assert_eq!(m.ids()[1].raw(), 0x300);
    }

    #[test]
    #[should_panic(expected = "duplicate identifier")]
    fn duplicate_ids_panic() {
        let _ = CommMatrix::new("t", BusSpeed::K500, vec![msg(1, 10, 8), msg(1, 20, 8)]);
    }

    #[test]
    fn worst_case_bits_has_paper_scale() {
        // An 8-byte frame: 108 unstuffed + ≤ 24 stuff + 3 IFS ≈ 135.
        let bits = msg(0x123, 10, 8).worst_case_bits();
        assert_eq!(bits, 108 + (98 - 1) / 4 + 3);
        assert!((120..=140).contains(&bits));
    }

    #[test]
    fn single_message_bus_load() {
        // One 8-byte message at 10 ms on 500 kbit/s: ~135 bits × 100 Hz /
        // 500 kbit/s ≈ 2.7 %.
        let m = CommMatrix::new("t", BusSpeed::K500, vec![msg(0x100, 10, 8)]);
        let load = m.predicted_bus_load();
        assert!((0.02..0.03).contains(&load), "load {load}");
    }

    #[test]
    fn min_deadline_and_lookup() {
        let m = CommMatrix::new(
            "t",
            BusSpeed::K500,
            vec![msg(0x100, 100, 8), msg(0x200, 10, 4), msg(0x300, 500, 2)],
        );
        assert_eq!(m.min_deadline_ms(), Some(10));
        assert_eq!(m.message(CanId::from_raw(0x200)).unwrap().dlc, 4);
        assert!(m.message(CanId::from_raw(0x201)).is_none());
    }

    #[test]
    fn by_sender_groups() {
        let mut a = msg(0x100, 10, 8);
        a.sender = "engine".into();
        let mut b = msg(0x101, 20, 8);
        b.sender = "engine".into();
        let mut c = msg(0x200, 50, 8);
        c.sender = "brake".into();
        let m = CommMatrix::new("t", BusSpeed::K500, vec![a, b, c]);
        let groups = m.by_sender();
        assert_eq!(groups["engine"].len(), 2);
        assert_eq!(groups["brake"].len(), 1);
    }

    #[test]
    fn frequency_conversion() {
        assert_eq!(msg(1, 100, 8).frequency_hz(), 10.0);
        assert_eq!(msg(1, 10, 8).frequency_hz(), 100.0);
    }
}

//! Restbus replay: driving a communication matrix onto a simulated bus.
//!
//! The paper replays recorded Veh. D traffic through a PCAN-USB interface
//! (§V-A); here a [`ReplayApp`] generates the same periodic pattern from a
//! [`CommMatrix`]. One replay application can stand in for the whole rest
//! of the vehicle on a single node, or the matrix can be split by sender
//! across several nodes (`one node per ECU`) for full arbitration
//! fidelity.

use can_core::app::Application;
use can_core::{BitInstant, CanFrame, CanId};

use crate::matrix::CommMatrix;

struct Slot {
    frame: CanFrame,
    period_bits: u64,
    next_due: u64,
}

/// An [`Application`] transmitting every message of a matrix (or a
/// sender's share of it) at its configured period.
pub struct ReplayApp {
    slots: Vec<Slot>,
    generated: u64,
}

impl ReplayApp {
    /// Replays the full matrix from one node.
    ///
    /// Message phases are staggered deterministically to avoid a
    /// synchronized burst at t = 0.
    pub fn for_matrix(matrix: &CommMatrix) -> Self {
        Self::filtered(matrix, |_| true)
    }

    /// Replays only the messages of `sender`.
    pub fn for_sender(matrix: &CommMatrix, sender: &str) -> Self {
        Self::filtered(matrix, |m| m.sender == sender)
    }

    fn filtered(matrix: &CommMatrix, keep: impl Fn(&crate::matrix::Message) -> bool) -> Self {
        let speed = matrix.speed;
        let slots = matrix
            .messages()
            .iter()
            .filter(|m| keep(m))
            .enumerate()
            .map(|(i, m)| {
                let payload: Vec<u8> = (0..m.dlc)
                    .map(|b| (m.id.raw() as u8).wrapping_add(b).wrapping_mul(37))
                    .collect();
                let period_bits = speed.bits_in_millis(m.period_ms as f64).max(1);
                Slot {
                    frame: CanFrame::data_frame(m.id, &payload).expect("matrix DLC is valid"),
                    period_bits,
                    // Stagger offsets across the period.
                    next_due: (i as u64 * 131) % period_bits.max(1),
                }
            })
            .collect();
        ReplayApp {
            slots,
            generated: 0,
        }
    }

    /// Frames handed to the controller so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Identifiers this replayer produces.
    pub fn ids(&self) -> Vec<CanId> {
        self.slots.iter().map(|s| s.frame.id()).collect()
    }
}

impl Application for ReplayApp {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        for slot in &mut self.slots {
            if now.bits() >= slot.next_due {
                slot.next_due += slot.period_bits;
                self.generated += 1;
                return Some(slot.frame);
            }
        }
        None
    }

    fn next_activity(&self, _now: BitInstant) -> Option<BitInstant> {
        self.slots
            .iter()
            .map(|slot| slot.next_due)
            .min()
            .map(BitInstant::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Message;
    use can_core::BusSpeed;

    fn tiny_matrix() -> CommMatrix {
        CommMatrix::new(
            "tiny",
            BusSpeed::K500,
            vec![
                Message {
                    id: CanId::from_raw(0x100),
                    period_ms: 10,
                    dlc: 8,
                    sender: "engine".into(),
                    name: "A".into(),
                },
                Message {
                    id: CanId::from_raw(0x200),
                    period_ms: 20,
                    dlc: 4,
                    sender: "brake".into(),
                    name: "B".into(),
                },
            ],
        )
    }

    #[test]
    fn replays_all_messages() {
        let mut app = ReplayApp::for_matrix(&tiny_matrix());
        let mut seen = std::collections::HashSet::new();
        for t in 0..30_000u64 {
            if let Some(f) = app.poll(BitInstant::from_bits(t)) {
                seen.insert(f.id().raw());
            }
        }
        assert_eq!(seen.len(), 2);
        // 60 ms of 500 kbit/s: 6 × 0x100 + 3 × 0x200 ≈ 9 frames.
        assert!((7..=11).contains(&app.generated()), "{}", app.generated());
    }

    #[test]
    fn sender_filter_limits_ids() {
        let app = ReplayApp::for_sender(&tiny_matrix(), "brake");
        assert_eq!(app.ids(), vec![CanId::from_raw(0x200)]);
    }

    #[test]
    fn payload_is_deterministic() {
        let mut a = ReplayApp::for_matrix(&tiny_matrix());
        let mut b = ReplayApp::for_matrix(&tiny_matrix());
        for t in 0..5_000u64 {
            assert_eq!(
                a.poll(BitInstant::from_bits(t)),
                b.poll(BitInstant::from_bits(t))
            );
        }
    }

    #[test]
    fn offsets_stagger_start() {
        let mut app = ReplayApp::for_matrix(&tiny_matrix());
        // Not every message fires at t = 0.
        let first = app.poll(BitInstant::from_bits(0));
        let second = app.poll(BitInstant::from_bits(0));
        assert!(first.is_some());
        assert!(second.is_none(), "phases are staggered");
    }
}

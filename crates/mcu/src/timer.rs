//! External-timer measurement emulation (paper §V-D).
//!
//! The paper measures the handler's execution time with an ESP8266: pins
//! toggle at handler entry/exit, the ESP counts clock cycles between the
//! edges at 160 MHz and multiplies by its 6.25 ns resolution. This module
//! reproduces that measurement chain — including its quantization — so the
//! CPU-utilization experiments report numbers the same way the paper does.

use serde::{Deserialize, Serialize};

/// An edge-to-edge cycle-counting timer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExternalTimer {
    /// Timer clock in hertz (ESP8266: 160 MHz ⇒ 6.25 ns resolution).
    pub clock_hz: u64,
}

/// The ESP8266 used by the paper, clocked at 160 MHz.
pub const ESP8266: ExternalTimer = ExternalTimer {
    clock_hz: 160_000_000,
};

impl ExternalTimer {
    /// The timer resolution in nanoseconds.
    pub fn resolution_ns(&self) -> f64 {
        1e9 / self.clock_hz as f64
    }

    /// Measures a true duration: returns the duration as the timer reports
    /// it, quantized to whole timer cycles (round-down, as a cycle counter
    /// does).
    pub fn measure_ns(&self, true_ns: f64) -> f64 {
        let cycles = (true_ns / self.resolution_ns()).floor();
        cycles * self.resolution_ns()
    }

    /// Number of timer cycles counted for a true duration.
    pub fn cycles_for(&self, true_ns: f64) -> u64 {
        (true_ns / self.resolution_ns()).floor() as u64
    }

    /// Worst-case quantization error of one measurement, in nanoseconds.
    pub fn quantization_error_ns(&self) -> f64 {
        self.resolution_ns()
    }
}

/// A compare-match (deadline) timer: the hardware analogue of the
/// simulator's `next_activity` quiescence contract.
///
/// On the real Arduino Due port, every future obligation of the handler —
/// a scheduled counterattack injection window, the suspend-transmission
/// expiry, the 128×11-recessive-bit bus-off recovery countdown — is armed
/// as a compare-match on a hardware timer, and the MCU sleeps (WFI) until
/// the earliest match fires. `can_sim`'s idle fast-forward mirrors exactly
/// that discipline in software: `next_activity(now)` is the compare
/// register, and the skip-ahead is the sleep (see DESIGN.md §9). Modelling
/// the timer here keeps the two sides honest about the same contract:
/// deadlines in the *future* only, earliest-match-wins, and a fired match
/// must be re-armed before it is observable again.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompareTimer {
    /// Armed compare values in bit times, unordered.
    deadlines: Vec<u64>,
}

impl CompareTimer {
    /// A timer with no armed compare channels.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a compare match at absolute bit time `at`.
    pub fn arm(&mut self, at: u64) {
        self.deadlines.push(at);
    }

    /// The earliest armed deadline at or after `now`, if any — the exact
    /// shape of the simulator's `next_activity(now)` contract. Deadlines
    /// in the past are dead channels: a real compare register that already
    /// matched stays silent until re-armed.
    pub fn next_deadline(&self, now: u64) -> Option<u64> {
        self.deadlines.iter().copied().filter(|&at| at >= now).min()
    }

    /// Fires every deadline at or before `now`, returning how many
    /// matched. Fired channels are disarmed.
    pub fn fire_elapsed(&mut self, now: u64) -> usize {
        let before = self.deadlines.len();
        self.deadlines.retain(|&at| at > now);
        before - self.deadlines.len()
    }

    /// Number of armed compare channels.
    pub fn armed(&self) -> usize {
        self.deadlines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn esp8266_resolution_matches_paper() {
        // §V-D: "multiplied by the 6.25 ns resolution".
        assert!((ESP8266.resolution_ns() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn measurement_quantizes_down() {
        // A 100 ns handler: 16 cycles = 100 ns exactly.
        assert_eq!(ESP8266.cycles_for(100.0), 16);
        assert!((ESP8266.measure_ns(100.0) - 100.0).abs() < 1e-9);
        // 103 ns still reads as 16 cycles = 100 ns.
        assert_eq!(ESP8266.cycles_for(103.0), 16);
        assert!((ESP8266.measure_ns(103.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn error_is_bounded_by_resolution() {
        for true_ns in [13.0, 99.9, 3200.7, 12345.0] {
            let measured = ESP8266.measure_ns(true_ns);
            assert!(measured <= true_ns);
            assert!(true_ns - measured < ESP8266.quantization_error_ns());
        }
    }

    #[test]
    fn compare_timer_reports_the_earliest_future_deadline() {
        let mut timer = CompareTimer::new();
        assert_eq!(timer.next_deadline(0), None, "nothing armed: quiescent");
        timer.arm(500); // suspend expiry
        timer.arm(1_408); // bus-off recovery (128 × 11)
        timer.arm(120); // injection window
        assert_eq!(timer.next_deadline(0), Some(120));
        assert_eq!(timer.next_deadline(121), Some(500));
        // A deadline exactly at `now` still matches (Some(now) = act now).
        assert_eq!(timer.next_deadline(500), Some(500));
    }

    #[test]
    fn fired_channels_stay_silent_until_rearmed() {
        let mut timer = CompareTimer::new();
        timer.arm(100);
        timer.arm(200);
        assert_eq!(timer.fire_elapsed(150), 1);
        assert_eq!(timer.armed(), 1);
        assert_eq!(timer.next_deadline(0), Some(200));
        timer.arm(100); // re-armed in the past: dead until rolled over
        assert_eq!(timer.next_deadline(150), Some(200));
    }

    #[test]
    fn due_handler_measurement_scale() {
        // A ≈ 3.2 µs handler (40 % of an 8 µs bit) is 512 ESP cycles —
        // plenty of resolution for the paper's per-line analysis.
        assert_eq!(ESP8266.cycles_for(3200.0), 512);
    }
}

//! External-timer measurement emulation (paper §V-D).
//!
//! The paper measures the handler's execution time with an ESP8266: pins
//! toggle at handler entry/exit, the ESP counts clock cycles between the
//! edges at 160 MHz and multiplies by its 6.25 ns resolution. This module
//! reproduces that measurement chain — including its quantization — so the
//! CPU-utilization experiments report numbers the same way the paper does.

use serde::{Deserialize, Serialize};

/// An edge-to-edge cycle-counting timer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExternalTimer {
    /// Timer clock in hertz (ESP8266: 160 MHz ⇒ 6.25 ns resolution).
    pub clock_hz: u64,
}

/// The ESP8266 used by the paper, clocked at 160 MHz.
pub const ESP8266: ExternalTimer = ExternalTimer {
    clock_hz: 160_000_000,
};

impl ExternalTimer {
    /// The timer resolution in nanoseconds.
    pub fn resolution_ns(&self) -> f64 {
        1e9 / self.clock_hz as f64
    }

    /// Measures a true duration: returns the duration as the timer reports
    /// it, quantized to whole timer cycles (round-down, as a cycle counter
    /// does).
    pub fn measure_ns(&self, true_ns: f64) -> f64 {
        let cycles = (true_ns / self.resolution_ns()).floor();
        cycles * self.resolution_ns()
    }

    /// Number of timer cycles counted for a true duration.
    pub fn cycles_for(&self, true_ns: f64) -> u64 {
        (true_ns / self.resolution_ns()).floor() as u64
    }

    /// Worst-case quantization error of one measurement, in nanoseconds.
    pub fn quantization_error_ns(&self) -> f64 {
        self.resolution_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn esp8266_resolution_matches_paper() {
        // §V-D: "multiplied by the 6.25 ns resolution".
        assert!((ESP8266.resolution_ns() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn measurement_quantizes_down() {
        // A 100 ns handler: 16 cycles = 100 ns exactly.
        assert_eq!(ESP8266.cycles_for(100.0), 16);
        assert!((ESP8266.measure_ns(100.0) - 100.0).abs() < 1e-9);
        // 103 ns still reads as 16 cycles = 100 ns.
        assert_eq!(ESP8266.cycles_for(103.0), 16);
        assert!((ESP8266.measure_ns(103.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn error_is_bounded_by_resolution() {
        for true_ns in [13.0, 99.9, 3200.7, 12345.0] {
            let measured = ESP8266.measure_ns(true_ns);
            assert!(measured <= true_ns);
            assert!(true_ns - measured < ESP8266.quantization_error_ns());
        }
    }

    #[test]
    fn due_handler_measurement_scale() {
        // A ≈ 3.2 µs handler (40 % of an 8 µs bit) is 512 ESP cycles —
        // plenty of resolution for the paper's per-line analysis.
        assert_eq!(ESP8266.cycles_for(3200.0), 512);
    }
}

//! CPU-utilization analysis of the MichiCAN handler (paper §V-D).
//!
//! The handler runs once per bit time; its CPU utilization is the handler
//! execution time divided by the nominal bit time. Three loads are
//! distinguished, as in the paper:
//!
//! * **idle load** — only the SOF-hunting path runs (bus idle),
//! * **active load** — the full frame path runs (frame on the bus),
//! * **combined load** — the average, weighted by the observed bus
//!   utilization.

use can_core::BusSpeed;
use michican::fsm::DetectionFsm;

use crate::profile::McuProfile;

/// Which detection variant an ECU runs (paper §IV-A, §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// Full detection range 𝔻 via the table FSM.
    Full {
        /// FSM state count (affects table-walk cost).
        fsm_nodes: usize,
    },
    /// Light-scenario lower half: spoofing-only comparison against the own
    /// identifier.
    SpoofOnly,
}

impl DetectionMode {
    /// The mode for a concrete FSM (full scenario).
    pub fn for_fsm(fsm: &DetectionFsm) -> Self {
        DetectionMode::Full {
            fsm_nodes: fsm.node_count(),
        }
    }
}

/// Handler execution cost on the *active* (frame) path, in cycles.
pub fn active_cycles(profile: &McuProfile, mode: DetectionMode) -> f64 {
    let detection = match mode {
        DetectionMode::Full { fsm_nodes } => {
            let nodes = fsm_nodes.max(2) as f64;
            profile.fsm_step_base_cycles + profile.fsm_step_log_cycles * nodes.log2()
        }
        DetectionMode::SpoofOnly => profile.spoof_compare_cycles,
    };
    profile.isr_overhead_cycles + profile.gpio_read_cycles + profile.frame_path_cycles + detection
}

/// Handler execution cost on the *idle* (SOF-hunting) path, in cycles.
pub fn idle_cycles(profile: &McuProfile) -> f64 {
    profile.isr_overhead_cycles + profile.gpio_read_cycles + profile.idle_path_cycles
}

/// Active-path CPU utilization at `speed` (1.0 = one full core).
pub fn active_utilization(profile: &McuProfile, speed: BusSpeed, mode: DetectionMode) -> f64 {
    active_cycles(profile, mode) / profile.cycles_per_bit(speed.bit_time_ns())
}

/// Idle-path CPU utilization at `speed`.
pub fn idle_utilization(profile: &McuProfile, speed: BusSpeed) -> f64 {
    idle_cycles(profile) / profile.cycles_per_bit(speed.bit_time_ns())
}

/// Combined load given the fraction of bit times with a frame on the bus
/// (the paper's ≈ 40 % observed bus load).
pub fn combined_utilization(
    profile: &McuProfile,
    speed: BusSpeed,
    mode: DetectionMode,
    bus_busy_fraction: f64,
) -> f64 {
    active_utilization(profile, speed, mode) * bus_busy_fraction
        + idle_utilization(profile, speed) * (1.0 - bus_busy_fraction)
}

/// Slack between the handler's execution time and one nominal bit time,
/// in nanoseconds — the budget left for interrupt jitter and application
/// code. Negative slack means the handler cannot keep up at all (the
/// paper's "does not always reliably work ... not accounting for jitter").
pub fn jitter_margin_ns(profile: &McuProfile, speed: BusSpeed, mode: DetectionMode) -> f64 {
    speed.bit_time_ns() - profile.cycles_to_ns(active_cycles(profile, mode))
}

/// The fastest bus speed at which the handler still fits in a bit time
/// with the given headroom (e.g. 0.8 = at most 80 % of a bit for the
/// handler, leaving 20 % for jitter and the application).
pub fn max_sustainable_speed(
    profile: &McuProfile,
    mode: DetectionMode,
    headroom: f64,
) -> Option<BusSpeed> {
    BusSpeed::ALL
        .iter()
        .rev()
        .copied()
        .find(|&speed| active_utilization(profile, speed, mode) <= headroom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ARDUINO_DUE, NXP_S32K144};

    /// A representative full-scenario FSM size for a production bus
    /// (ECU_N of a ~50-message matrix lands near 128 hash-consed states).
    const TYPICAL_FSM_NODES: usize = 128;

    #[test]
    fn due_full_scenario_matches_paper_40_percent() {
        let util = active_utilization(
            &ARDUINO_DUE,
            BusSpeed::K125,
            DetectionMode::Full {
                fsm_nodes: TYPICAL_FSM_NODES,
            },
        );
        assert!(
            (0.37..=0.43).contains(&util),
            "paper: ≈ 40 % at 125 kbit/s, model: {:.1} %",
            util * 100.0
        );
    }

    #[test]
    fn due_light_scenario_matches_paper_30_percent() {
        let util = active_utilization(&ARDUINO_DUE, BusSpeed::K125, DetectionMode::SpoofOnly);
        assert!(
            (0.27..=0.33).contains(&util),
            "paper: ≈ 30 % light, model: {:.1} %",
            util * 100.0
        );
    }

    #[test]
    fn due_doubles_at_250k() {
        // Paper: "a 125 kbit/s bus averages 40 % CPU load, implying an
        // 80 % load for a 250 kbit/s bus".
        let at_125 = active_utilization(
            &ARDUINO_DUE,
            BusSpeed::K125,
            DetectionMode::Full {
                fsm_nodes: TYPICAL_FSM_NODES,
            },
        );
        let at_250 = active_utilization(
            &ARDUINO_DUE,
            BusSpeed::K250,
            DetectionMode::Full {
                fsm_nodes: TYPICAL_FSM_NODES,
            },
        );
        assert!((at_250 / at_125 - 2.0).abs() < 1e-9);
        assert!(at_250 > 0.75, "≈ 80 % at 250 kbit/s");
    }

    #[test]
    fn s32k144_matches_paper_44_percent_at_500k() {
        let util = active_utilization(
            &NXP_S32K144,
            BusSpeed::K500,
            DetectionMode::Full {
                fsm_nodes: TYPICAL_FSM_NODES,
            },
        );
        assert!(
            (0.40..=0.48).contains(&util),
            "paper: ≈ 44 % on the S32K144 at 500 kbit/s, model: {:.1} %",
            util * 100.0
        );
    }

    #[test]
    fn idle_load_is_well_below_active() {
        for speed in [BusSpeed::K125, BusSpeed::K500] {
            let idle = idle_utilization(&ARDUINO_DUE, speed);
            let active =
                active_utilization(&ARDUINO_DUE, speed, DetectionMode::Full { fsm_nodes: 64 });
            assert!(idle < active * 0.6, "idle {idle:.3} vs active {active:.3}");
        }
    }

    #[test]
    fn combined_load_interpolates() {
        let mode = DetectionMode::Full { fsm_nodes: 64 };
        let idle = combined_utilization(&ARDUINO_DUE, BusSpeed::K125, mode, 0.0);
        let busy = combined_utilization(&ARDUINO_DUE, BusSpeed::K125, mode, 1.0);
        let mid = combined_utilization(&ARDUINO_DUE, BusSpeed::K125, mode, 0.4);
        assert!((idle - idle_utilization(&ARDUINO_DUE, BusSpeed::K125)).abs() < 1e-12);
        assert!((busy - active_utilization(&ARDUINO_DUE, BusSpeed::K125, mode)).abs() < 1e-12);
        assert!(idle < mid && mid < busy);
    }

    #[test]
    fn fsm_size_increases_load() {
        // Paper: "A larger FSM increases clock cycle usage."
        let small = active_utilization(
            &ARDUINO_DUE,
            BusSpeed::K125,
            DetectionMode::Full { fsm_nodes: 16 },
        );
        let large = active_utilization(
            &ARDUINO_DUE,
            BusSpeed::K125,
            DetectionMode::Full { fsm_nodes: 1024 },
        );
        assert!(large > small);
    }

    #[test]
    fn jitter_margin_explains_the_due_limit() {
        let mode = DetectionMode::Full {
            fsm_nodes: TYPICAL_FSM_NODES,
        };
        // At 125 kbit/s the Due has several microseconds of slack; at
        // 250 kbit/s the slack shrinks below one ISR entry — any jitter
        // makes it miss samples, matching the paper's reliability note.
        let at_125 = jitter_margin_ns(&ARDUINO_DUE, BusSpeed::K125, mode);
        let at_250 = jitter_margin_ns(&ARDUINO_DUE, BusSpeed::K250, mode);
        assert!(at_125 > 4_000.0, "125k margin {at_125:.0} ns");
        assert!(
            at_250 < ARDUINO_DUE.cycles_to_ns(ARDUINO_DUE.isr_overhead_cycles),
            "250k margin {at_250:.0} ns is thinner than one ISR entry"
        );
        // The S32K144 at 500 kbit/s keeps a healthy margin.
        let s32k = jitter_margin_ns(&NXP_S32K144, BusSpeed::K500, mode);
        assert!(s32k > 1_000.0, "S32K144 margin {s32k:.0} ns");
    }

    #[test]
    fn due_cannot_sustain_250k_but_s32k_sustains_500k() {
        // Paper: MichiCAN "does not always reliably work on higher bus
        // speeds than 125 kbit/s on Arduino Dues"; the S32K144 "fully
        // works on a 500 kbit/s CAN".
        let mode = DetectionMode::Full {
            fsm_nodes: TYPICAL_FSM_NODES,
        };
        let due_max = max_sustainable_speed(&ARDUINO_DUE, mode, 0.75).unwrap();
        assert_eq!(due_max, BusSpeed::K125);
        let s32k_max = max_sustainable_speed(&NXP_S32K144, mode, 0.75).unwrap();
        assert!(s32k_max.bits_per_second() >= BusSpeed::K500.bits_per_second());
    }
}

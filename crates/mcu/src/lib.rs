//! # mcu — MCU timing models for software-defined CAN defenses
//!
//! The paper's CPU-utilization evaluation (§V-D) is hardware-bound
//! (Arduino Due, NXP S32K144, an ESP8266 cycle counter). This crate
//! substitutes calibrated cycle-cost models:
//!
//! * [`profile`] — per-MCU cycle costs ([`McuProfile`]), calibrated
//!   against the paper's reported loads and the public Due ISR-overhead
//!   measurement it cites;
//! * [`cost`] — idle/active/combined CPU utilization of the MichiCAN
//!   handler, per bus speed, scenario and FSM size;
//! * [`timer`] — the ESP8266-style external measurement chain with its
//!   6.25 ns quantization;
//! * [`mod@reliability`] — sampling reliability under ISR jitter (why the Due
//!   tops out at 125 kbit/s while the S32K144 sustains 500 kbit/s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod profile;
pub mod reliability;
pub mod timer;

pub use cost::{
    active_utilization, combined_utilization, idle_utilization, jitter_margin_ns,
    max_sustainable_speed, DetectionMode,
};
pub use profile::{McuProfile, ALL_PROFILES, ARDUINO_DUE, NXP_S32K144, SAM_V71, SPC58};
pub use reliability::{max_reliable_speed, reliability, Reliability};
pub use timer::{CompareTimer, ExternalTimer, ESP8266};

//! MCU cycle-cost profiles.
//!
//! Each profile captures the clock speed and the per-operation cycle costs
//! of MichiCAN's interrupt handler on that MCU. The Arduino Due profile is
//! calibrated against the paper's measurements (§V-D: ≈ 40 % CPU at
//! 125 kbit/s full scenario, ≈ 30 % light) and the public DUEZoo ISR
//! overhead measurement the paper cites (\[66\]); the NXP S32K144 profile
//! against the paper's 44 % at 500 kbit/s.

use serde::{Deserialize, Serialize};

/// Cycle costs of one MCU running the MichiCAN handler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McuProfile {
    /// Display name.
    pub name: &'static str,
    /// Core clock in hertz.
    pub clock_hz: u64,
    /// Interrupt entry + exit overhead in cycles (vector fetch, stacking,
    /// unstacking). Dominated by slow flash wait states on the Due.
    pub isr_overhead_cycles: f64,
    /// Direct PIO register read of `CAN_RX` (Algorithm 1 line 2).
    pub gpio_read_cycles: f64,
    /// Per-bit bookkeeping on the frame path: counter increments, stuff
    /// tracking, branch logic (lines 3–19).
    pub frame_path_cycles: f64,
    /// Per-bit bookkeeping on the idle path: SOF hunting only (lines
    /// 24–31).
    pub idle_path_cycles: f64,
    /// Base cost of one FSM step (table fetch + branch).
    pub fsm_step_base_cycles: f64,
    /// Additional FSM cost per doubling of the state count (cache/flash
    /// pressure of larger tables).
    pub fsm_step_log_cycles: f64,
    /// Cost of the spoofing-only comparison used by light-scenario lower-
    /// half ECUs (shift + compare against the own identifier).
    pub spoof_compare_cycles: f64,
}

/// Atmel SAM3X8E (Arduino Due), 84 MHz Cortex-M3 — the paper's primary
/// platform.
pub const ARDUINO_DUE: McuProfile = McuProfile {
    name: "Arduino Due (SAM3X8E, 84 MHz)",
    clock_hz: 84_000_000,
    // DUEZoo isrperf: ~1 µs to enter and exit a pin ISR on the Due.
    isr_overhead_cycles: 84.0,
    gpio_read_cycles: 8.0,
    frame_path_cycles: 92.0,
    idle_path_cycles: 22.0,
    fsm_step_base_cycles: 29.0,
    fsm_step_log_cycles: 8.0,
    spoof_compare_cycles: 18.0,
};

/// NXP S32K144, 112 MHz Cortex-M4F — the paper's production-grade
/// replication platform (§VI-B).
pub const NXP_S32K144: McuProfile = McuProfile {
    name: "NXP S32K144 (112 MHz)",
    clock_hz: 112_000_000,
    isr_overhead_cycles: 24.0,
    gpio_read_cycles: 4.0,
    frame_path_cycles: 41.0,
    idle_path_cycles: 10.0,
    fsm_step_base_cycles: 9.0,
    fsm_step_log_cycles: 3.0,
    spoof_compare_cycles: 6.0,
};

/// Microchip SAM V71 Xplained Ultra, 150 MHz Cortex-M7 (listed in §VI-B).
pub const SAM_V71: McuProfile = McuProfile {
    name: "Microchip SAM V71 (150 MHz)",
    clock_hz: 150_000_000,
    isr_overhead_cycles: 20.0,
    gpio_read_cycles: 3.0,
    frame_path_cycles: 34.0,
    idle_path_cycles: 8.0,
    fsm_step_base_cycles: 7.0,
    fsm_step_log_cycles: 2.5,
    spoof_compare_cycles: 5.0,
};

/// STMicro SPC58EC Discovery, 180 MHz e200 (listed in §VI-B).
pub const SPC58: McuProfile = McuProfile {
    name: "STMicro SPC58EC (180 MHz)",
    clock_hz: 180_000_000,
    isr_overhead_cycles: 22.0,
    gpio_read_cycles: 3.0,
    frame_path_cycles: 36.0,
    idle_path_cycles: 8.0,
    fsm_step_base_cycles: 7.0,
    fsm_step_log_cycles: 2.5,
    spoof_compare_cycles: 5.0,
};

/// All modeled MCUs, slowest first.
pub const ALL_PROFILES: [&McuProfile; 4] = [&ARDUINO_DUE, &NXP_S32K144, &SAM_V71, &SPC58];

impl McuProfile {
    /// Converts cycles to nanoseconds on this MCU.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles * 1e9 / self.clock_hz as f64
    }

    /// Cycles available within one nominal bit time at `bit_time_ns`.
    pub fn cycles_per_bit(&self, bit_time_ns: f64) -> f64 {
        bit_time_ns * self.clock_hz as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_isr_overhead_is_one_microsecond() {
        assert!((ARDUINO_DUE.cycles_to_ns(ARDUINO_DUE.isr_overhead_cycles) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn cycles_per_bit_scales_with_speed() {
        // 8 µs bit (125 kbit/s) at 84 MHz = 672 cycles.
        assert!((ARDUINO_DUE.cycles_per_bit(8_000.0) - 672.0).abs() < 1e-9);
        // 2 µs bit (500 kbit/s) at 112 MHz = 224 cycles.
        assert!((NXP_S32K144.cycles_per_bit(2_000.0) - 224.0).abs() < 1e-9);
    }

    #[test]
    fn modern_mcus_have_cheaper_isrs() {
        for modern in [&NXP_S32K144, &SAM_V71, &SPC58] {
            assert!(
                modern.cycles_to_ns(modern.isr_overhead_cycles)
                    < ARDUINO_DUE.cycles_to_ns(ARDUINO_DUE.isr_overhead_cycles) / 2.0,
                "{} should enter ISRs far faster than the Due",
                modern.name
            );
        }
    }

    #[test]
    fn profiles_are_distinct() {
        let names: std::collections::HashSet<_> = ALL_PROFILES.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), ALL_PROFILES.len());
    }
}

//! Sampling-reliability model: why MichiCAN "does not always reliably
//! work on higher bus speeds than 125 kbit/s on Arduino Dues" (§V-D).
//!
//! Each bit's sample is displaced from its nominal point by interrupt
//! *jitter*: variable-latency ISR entry (other interrupts, flash wait
//! states, bus contention on the MCU matrix). Modeling jitter as uniform
//! on `[0, j_max]` and requiring (a) the handler to finish within the bit
//! and (b) the sample to stay inside the bit, the per-bit success
//! probability and the per-frame reliability follow in closed form.

use can_core::BusSpeed;

use crate::cost::{active_cycles, DetectionMode};
use crate::profile::McuProfile;

/// Per-bit and per-frame sampling reliability under jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reliability {
    /// Probability that one bit is sampled and processed in time.
    pub per_bit: f64,
    /// Probability that an entire monitored prefix (the 20 destuffed bit
    /// positions Algorithm 1 needs) is processed without a miss.
    pub per_frame: f64,
}

/// Computes sampling reliability for a handler with uniform ISR jitter of
/// up to `jitter_max_ns`.
///
/// A bit is processed successfully when `jitter + handler_time <=
/// bit_time` — otherwise the next timer interrupt fires late or the
/// sample slides out of its bit.
pub fn reliability(
    profile: &McuProfile,
    speed: BusSpeed,
    mode: DetectionMode,
    jitter_max_ns: f64,
) -> Reliability {
    assert!(jitter_max_ns >= 0.0, "jitter must be non-negative");
    let bit_ns = speed.bit_time_ns();
    let handler_ns = profile.cycles_to_ns(active_cycles(profile, mode));
    let slack = bit_ns - handler_ns;
    let per_bit = if slack <= 0.0 {
        0.0
    } else if jitter_max_ns <= slack {
        1.0
    } else {
        slack / jitter_max_ns
    };
    // Algorithm 1 must survive the monitored prefix of every frame
    // (counterattack window ends at destuffed position 20).
    let per_frame = per_bit.powi(20);
    Reliability { per_bit, per_frame }
}

/// The highest speed at which per-frame reliability stays at 1.0 under
/// the given jitter — the deployable-speed claim of §V-D/§VI-B.
pub fn max_reliable_speed(
    profile: &McuProfile,
    mode: DetectionMode,
    jitter_max_ns: f64,
) -> Option<BusSpeed> {
    BusSpeed::ALL
        .iter()
        .rev()
        .copied()
        .find(|&speed| reliability(profile, speed, mode, jitter_max_ns).per_frame >= 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ARDUINO_DUE, NXP_S32K144};

    const MODE: DetectionMode = DetectionMode::Full { fsm_nodes: 128 };
    /// A realistic worst-case ISR jitter budget: one competing ISR.
    const JITTER_NS: f64 = 1_500.0;

    #[test]
    fn due_is_reliable_at_125k_but_not_250k() {
        let at_125 = reliability(&ARDUINO_DUE, BusSpeed::K125, MODE, JITTER_NS);
        assert_eq!(at_125.per_frame, 1.0, "125 kbit/s has slack for the jitter");

        let at_250 = reliability(&ARDUINO_DUE, BusSpeed::K250, MODE, JITTER_NS);
        assert!(
            at_250.per_bit < 1.0,
            "250 kbit/s: jitter can push the handler past the bit"
        );
        assert!(
            at_250.per_frame < 0.9,
            "frames are missed — the paper's 'not always reliable': {:.3}",
            at_250.per_frame
        );
    }

    #[test]
    fn s32k144_is_reliable_at_500k() {
        let r = reliability(&NXP_S32K144, BusSpeed::K500, MODE, JITTER_NS / 2.0);
        assert_eq!(r.per_frame, 1.0, "the paper's S32K144 claim");
    }

    #[test]
    fn zero_slack_means_zero_reliability() {
        // The Due at 1 Mbit/s: bit time 1 µs < handler time.
        let r = reliability(&ARDUINO_DUE, BusSpeed::M1, MODE, 0.0);
        assert_eq!(r.per_bit, 0.0);
        assert_eq!(r.per_frame, 0.0);
    }

    #[test]
    fn max_reliable_speed_matches_paper_platforms() {
        assert_eq!(
            max_reliable_speed(&ARDUINO_DUE, MODE, JITTER_NS),
            Some(BusSpeed::K125),
            "Due tops out at 125 kbit/s"
        );
        let s32k = max_reliable_speed(&NXP_S32K144, MODE, JITTER_NS / 2.0).unwrap();
        assert!(
            s32k.bits_per_second() >= BusSpeed::K500.bits_per_second(),
            "S32K144 fully works at 500 kbit/s"
        );
    }

    #[test]
    fn reliability_degrades_monotonically_with_jitter() {
        let mut last = 1.1;
        for jitter in [0.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0] {
            let r = reliability(&ARDUINO_DUE, BusSpeed::K250, MODE, jitter);
            assert!(r.per_bit <= last + 1e-12, "jitter {jitter}");
            last = r.per_bit;
        }
    }

    #[test]
    #[should_panic(expected = "jitter must be non-negative")]
    fn negative_jitter_panics() {
        let _ = reliability(&ARDUINO_DUE, BusSpeed::K125, MODE, -1.0);
    }
}

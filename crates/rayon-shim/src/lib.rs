//! Offline vendored subset of the `rayon` API.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace-local crate provides the slice of the `rayon 1.x` surface
//! the code base uses: [`ThreadPoolBuilder`]/[`ThreadPool::install`],
//! [`current_num_threads`], [`join`], and `into_par_iter().map(..).collect()`
//! via [`prelude`].
//!
//! Scheduling: upstream rayon runs a per-thread work-stealing deque; this
//! shim runs scoped worker threads pulling indices from one shared atomic
//! cursor (self-scheduling). For the coarse-grained cells this repository
//! parallelizes (whole seeded simulations, hundreds of milliseconds each)
//! the two are equivalent: every idle worker immediately claims the next
//! unclaimed cell, so load balance is identical and there is no measurable
//! contention on the single counter. Results are written to their input
//! index and reduced in index order, which is what makes the parallel
//! reduction order-deterministic regardless of completion order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] for the
    /// duration of the installed closure (the "ambient pool").
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads the ambient pool would use: the installed pool's
/// width inside [`ThreadPool::install`], the machine's available
/// parallelism otherwise.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_threads)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim's build cannot
/// actually fail; the type exists for upstream signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (subset of upstream's).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count (available
    /// parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` means the default.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle fixing the parallelism width for closures run via
/// [`ThreadPool::install`]. Workers are scoped threads spawned per
/// parallel call, not persistent (adequate for the coarse cells this
/// repository fans out; spawn cost is nanoseconds against cell runtimes of
/// milliseconds to seconds).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool installed as the ambient pool: parallel
    /// iterators inside use this pool's thread count. Restores the previous
    /// ambient pool afterwards, also on panic.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = INSTALLED_THREADS.with(|c| {
            let previous = c.get();
            c.set(Some(self.threads));
            Restore(previous)
        });
        op()
    }
}

/// Runs the two closures, potentially in parallel, and returns both
/// results (upstream `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: join closure panicked"))
    })
}

/// Maps `items` through `f` on `threads` scoped workers pulling from a
/// shared index queue; the result vector is ordered by input index. With
/// one thread (or one item) this is exactly the serial in-order loop.
fn par_map_vec<T, R, F>(threads: usize, items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = queue[i]
                    .lock()
                    .expect("rayon-shim: queue slot poisoned")
                    .take()
                    .expect("rayon-shim: each index is claimed exactly once");
                let r = f(item);
                *results[i].lock().expect("rayon-shim: result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon-shim: result slot poisoned")
                .expect("rayon-shim: worker completed every claimed index")
        })
        .collect()
}

pub mod iter {
    //! Parallel-iterator subset: `Vec<T>::into_par_iter().map(f).collect()`.

    use std::marker::PhantomData;

    /// Conversion into a parallel iterator (subset of upstream's trait).
    pub trait IntoParallelIterator {
        /// The produced item type.
        type Item: Send;
        /// The concrete parallel iterator.
        type Iter;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<T>;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    /// A parallel iterator over owned items.
    #[derive(Debug)]
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps every item through `f` (executed when collected).
        pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
                _result: PhantomData,
            }
        }
    }

    /// A mapped parallel iterator, executed on [`collect`](ParMap::collect).
    pub struct ParMap<T, R, F> {
        items: Vec<T>,
        f: F,
        _result: PhantomData<fn() -> R>,
    }

    impl<T, R, F> ParMap<T, R, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Executes the map on the ambient pool and collects the results in
        /// input-index order.
        pub fn collect<C: FromParallelVec<R>>(self) -> C {
            C::from_parallel_vec(super::par_map_vec(
                super::current_num_threads(),
                self.items,
                &self.f,
            ))
        }
    }

    /// Collection target of [`ParMap::collect`] (stand-in for upstream's
    /// `FromParallelIterator`).
    pub trait FromParallelVec<R> {
        /// Builds the collection from the index-ordered result vector.
        fn from_parallel_vec(results: Vec<R>) -> Self;
    }

    impl<R> FromParallelVec<R> for Vec<R> {
        fn from_parallel_vec(results: Vec<R>) -> Self {
            results
        }
    }
}

pub mod prelude {
    //! The traits needed for `into_par_iter().map(..).collect()`.
    pub use crate::iter::{FromParallelVec, IntoParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<u64> = pool.install(|| {
            (0u64..100)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x * x)
                .collect()
        });
        assert_eq!(out, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn one_thread_matches_many_threads() {
        let work = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial: Vec<u64> = (0..257).map(work).collect();
        for threads in [1usize, 2, 8, 32] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel: Vec<u64> = pool.install(|| {
                (0..257)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(work)
                    .collect()
            });
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn install_scopes_the_thread_count_and_restores_it() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 7));
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let empty: Vec<i32> =
            pool.install(|| Vec::<i32>::new().into_par_iter().map(|x| x).collect());
        assert!(empty.is_empty());
        let one: Vec<i32> = pool.install(|| vec![41].into_par_iter().map(|x| x + 1).collect());
        assert_eq!(one, vec![42]);
    }
}

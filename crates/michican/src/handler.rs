//! The MichiCAN interrupt handler — Algorithm 1 of the paper.
//!
//! One invocation per nominal bit time (on hardware: a timer interrupt
//! resynchronized at each SOF, §IV-C; in simulation: one
//! [`BitAgent::on_bit`] call). Per invocation the handler:
//!
//! 1. reads `CAN_RX` (the sampled bus level),
//! 2. hunts for a SOF — a falling edge after ≥ 11 recessive bits — when
//!    outside a frame,
//! 3. inside a frame, removes stuff bits and tracks the destuffed bit
//!    position `cnt` (SOF = position 1),
//! 4. runs the detection FSM over the 11 identifier bits (positions 2–12),
//!    stopping as soon as it decides,
//! 5. on a malicious verdict, enables `CAN_TX` multiplexing at position 13
//!    (the RTR bit) and pulls the bus dominant until position 20,
//!    provoking a bit or stuff error in the attacker's transmission,
//! 6. at position 20 releases the pin and returns to SOF hunting (bit
//!    stuffing guarantees no false SOF inside the remainder of a frame).
//!
//! The published pseudocode's stuff-bit bookkeeping (lines 6–15) contains
//! index ambiguities; this implementation follows the *described* behaviour
//! of §IV-D ("MichiCAN needs to remove [stuff bits] before appending them
//! to a frame array") using the same destuffing rule as a CAN controller.

use can_core::agent::BitAgent;
use can_core::bitstream::{Destuffed, Destuffer, MIN_INTERFRAME_RECESSIVE};
use can_core::{BitDuration, BitInstant, Level};
use can_obs::{
    Journal, Recorder, EVT_DETECTION, EVT_INJECT_END, EVT_INJECT_START, JK_DETECTION,
    JK_INJECT_END, JK_INJECT_START,
};
use serde::{Deserialize, Serialize};

use crate::fsm::{DetectionFsm, FsmCursor, FsmStep};

/// Destuffed frame position of the RTR bit (SOF = 1): where the
/// counterattack starts.
pub const COUNTERATTACK_START: u32 = 13;

/// Destuffed frame position at which the counterattack releases the bus.
pub const COUNTERATTACK_END: u32 = 20;

/// Destuffed positions monitored per frame (Algorithm 1 line 5).
pub const MONITOR_LIMIT: u32 = 25;

/// Tuning knobs of a [`MichiCan`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MichiCanConfig {
    /// When `false`, the handler only detects (IDS mode) and never touches
    /// `CAN_TX`.
    pub prevention_enabled: bool,
    /// Destuffed position at which the counterattack starts (default: the
    /// RTR bit, 13). Exposed for the injection-width ablation bench.
    pub counterattack_start: u32,
    /// Destuffed position at which the counterattack ends (default 20).
    pub counterattack_end: u32,
}

impl Default for MichiCanConfig {
    fn default() -> Self {
        MichiCanConfig {
            prevention_enabled: true,
            counterattack_start: COUNTERATTACK_START,
            counterattack_end: COUNTERATTACK_END,
        }
    }
}

/// Running counters of a [`MichiCan`] instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MichiCanStats {
    /// Frames whose SOF was observed.
    pub frames_monitored: u64,
    /// Frames flagged malicious by the FSM.
    pub attacks_detected: u64,
    /// Counterattacks actually launched (prevention enabled, not own
    /// transmission).
    pub counterattacks: u64,
    /// Detections suppressed because the node itself was transmitting.
    pub suppressed_own: u64,
    /// FSM decision bit positions (1-based identifier bit) of each
    /// detection, for latency statistics.
    pub detection_positions: Vec<u8>,
}

impl MichiCanStats {
    /// Mean detection bit position over all detections, if any.
    pub fn mean_detection_position(&self) -> Option<f64> {
        if self.detection_positions.is_empty() {
            None
        } else {
            Some(
                self.detection_positions
                    .iter()
                    .map(|&p| p as u64)
                    .sum::<u64>() as f64
                    / self.detection_positions.len() as f64,
            )
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandlerState {
    /// Hunting for a SOF: counting recessive bits.
    BusIdle,
    /// Inside a frame, tracking destuffed positions.
    InFrame,
}

/// The MichiCAN defense: detection FSM + synchronized bit-level
/// counterattack, implementing [`BitAgent`].
///
/// ```
/// use can_core::agent::BitAgent;
/// use can_core::{BitDuration, BitInstant, Level};
/// use michican::config::EcuList;
/// use michican::fsm::DetectionFsm;
/// use michican::handler::MichiCan;
///
/// let list = EcuList::from_raw(&[0x005, 0x00F]);
/// let mut defender = MichiCan::new(DetectionFsm::for_ecu(&list, 1));
/// // Feed an idle bus: the defender never drives.
/// for t in 0..20 {
///     defender.on_bit(Level::Recessive, BitInstant::from_bits(t));
///     assert!(defender.tx_level().is_none());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MichiCan {
    fsm: DetectionFsm,
    config: MichiCanConfig,
    state: HandlerState,
    /// Recessive run length while hunting for a SOF (`cnt_sof`).
    cnt_sof: u32,
    /// Destuffed frame position, SOF = 1 (`cnt`).
    cnt: u32,
    destuffer: Destuffer,
    cursor: FsmCursor,
    /// Algorithm 1's malicious flag.
    start_counterattack: bool,
    /// `CAN_TX` multiplexing currently enabled and driven dominant.
    injecting: bool,
    own_transmission: bool,
    stats: MichiCanStats,
    /// Metrics sink; disabled (no-op) by default.
    recorder: Recorder,
    /// Causal event journal; disabled (no-op) by default and independent
    /// of the recorder — either sink can be enabled without the other.
    journal: Journal,
    /// Node index used in metric labels and trace records.
    node_label: u32,
    /// Metric keys interned once in [`MichiCan::set_recorder`], so the
    /// per-bit hot path never formats label strings. `Some` iff the
    /// recorder is enabled.
    keys: Option<MetricKeys>,
    /// Bit time of the pending detection, for the detection→injection
    /// reaction-latency histogram. Only maintained when recording.
    detected_at: Option<u64>,
}

/// Pre-formatted metric key strings. Several are incremented per frame or
/// per FSM step, so the label `format!` must happen once, not per event —
/// the key *text* is unchanged, keeping metric snapshots byte-identical.
#[derive(Debug, Clone)]
struct MetricKeys {
    frames_monitored: String,
    fsm_steps: String,
    suppressed_own: String,
    detections: String,
    detection_position: String,
    counterattacks: String,
    reaction_latency: String,
}

impl MetricKeys {
    fn for_node(node: u32) -> Self {
        MetricKeys {
            frames_monitored: format!("michican_frames_monitored_total{{node=\"{node}\"}}"),
            fsm_steps: format!("michican_fsm_steps_total{{node=\"{node}\"}}"),
            suppressed_own: format!("michican_suppressed_own_total{{node=\"{node}\"}}"),
            detections: format!("michican_detections_total{{node=\"{node}\"}}"),
            detection_position: format!("michican_detection_position_bits{{node=\"{node}\"}}"),
            counterattacks: format!("michican_counterattacks_total{{node=\"{node}\"}}"),
            reaction_latency: format!("michican_reaction_latency_bits{{node=\"{node}\"}}"),
        }
    }
}

impl MichiCan {
    /// Creates a defender with the default configuration.
    pub fn new(fsm: DetectionFsm) -> Self {
        Self::with_config(fsm, MichiCanConfig::default())
    }

    /// Creates a defender with an explicit configuration.
    pub fn with_config(fsm: DetectionFsm, config: MichiCanConfig) -> Self {
        let cursor = fsm.start();
        MichiCan {
            fsm,
            config,
            state: HandlerState::BusIdle,
            cnt_sof: 0,
            cnt: 0,
            destuffer: Destuffer::new(),
            cursor,
            start_counterattack: false,
            injecting: false,
            own_transmission: false,
            stats: MichiCanStats::default(),
            recorder: Recorder::disabled(),
            journal: Journal::disabled(),
            node_label: 0,
            keys: None,
            detected_at: None,
        }
    }

    /// Attaches a metrics recorder; `node` is the index used in metric
    /// labels (`michican_*{node="<node>"}`) and trace records. The
    /// reaction-latency histogram is declared up front so it appears in
    /// snapshots even before the first detection.
    pub fn set_recorder(&mut self, recorder: Recorder, node: u32) {
        if recorder.is_enabled() {
            let keys = MetricKeys::for_node(node);
            recorder.declare_histogram(&keys.reaction_latency, can_obs::DEFAULT_BUCKETS);
            self.keys = Some(keys);
        } else {
            self.keys = None;
        }
        self.recorder = recorder;
        self.node_label = node;
    }

    /// Attaches a causal event journal; `node` is the index stamped on
    /// journal events. Detection and injection-window events are emitted
    /// with the current bus frame's causal ids, so a whole
    /// strike→detection→counterattack episode shares one `chain_id`.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.journal = journal;
        self.node_label = node;
    }

    /// The attached recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &MichiCanStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &MichiCanConfig {
        &self.config
    }

    /// Enables or disables prevention at runtime. Disabling releases the
    /// `CAN_TX` pin immediately; detection keeps running (IDS mode). Used
    /// by the health watchdog to fall back to detect-only mode.
    pub fn set_prevention(&mut self, enabled: bool) {
        self.config.prevention_enabled = enabled;
        if !enabled {
            self.injecting = false;
        }
    }

    /// Whether a counterattack is in progress (the `CAN_TX` pin is
    /// multiplexed and pulled dominant).
    pub fn is_injecting(&self) -> bool {
        self.injecting
    }

    /// The detection FSM in use.
    pub fn fsm(&self) -> &DetectionFsm {
        &self.fsm
    }

    fn enter_frame(&mut self) {
        self.state = HandlerState::InFrame;
        self.cnt = 1; // the SOF itself
        self.cnt_sof = 0;
        self.destuffer.reset();
        // The destuffer must know about the SOF for run counting.
        let _ = self.destuffer.push(Level::Dominant);
        self.cursor = self.fsm.start();
        self.start_counterattack = false;
        self.stats.frames_monitored += 1;
        if let Some(keys) = &self.keys {
            self.recorder.inc(&keys.frames_monitored);
        }
    }

    fn leave_frame(&mut self) {
        self.state = HandlerState::BusIdle;
        self.cnt_sof = 0;
        self.cnt = 0;
        self.injecting = false;
    }

    fn handle_frame_bit(&mut self, level: Level, now: BitInstant) {
        match self.destuffer.push(level) {
            Destuffed::StuffBit => return,
            Destuffed::Violation => {
                // Six equal levels: either our own injection or an error
                // flag. Algorithm 1 keeps counting without advancing `cnt`.
                return;
            }
            Destuffed::Bit(_) => {}
        }
        self.cnt += 1;

        // Identifier bits occupy destuffed positions 2..=12. The FSM stops
        // running as soon as it decides (Algorithm 1 line 11).
        if (2..=12).contains(&self.cnt) && self.cursor.decision().is_none() {
            let step = self.fsm.step(&mut self.cursor, level);
            if let Some(keys) = &self.keys {
                self.recorder.inc(&keys.fsm_steps);
            }
            if let FsmStep::Malicious = step {
                if self.own_transmission {
                    // The frame on the bus is this ECU's own transmission
                    // (e.g. its periodic 0x173): never self-attack.
                    self.stats.suppressed_own += 1;
                    if let Some(keys) = &self.keys {
                        self.recorder.inc(&keys.suppressed_own);
                    }
                } else {
                    self.start_counterattack = true;
                    self.stats.attacks_detected += 1;
                    let position = self.cursor.bits_consumed();
                    self.stats.detection_positions.push(position);
                    if let Some(keys) = &self.keys {
                        self.recorder.inc(&keys.detections);
                        self.recorder
                            .observe(&keys.detection_position, u64::from(position));
                        self.recorder.trace(
                            now.bits(),
                            self.node_label,
                            EVT_DETECTION,
                            &format!("pos={position}"),
                        );
                        self.detected_at = Some(now.bits());
                    }
                    if self.journal.is_enabled() {
                        self.journal.event(
                            now.bits(),
                            self.node_label,
                            JK_DETECTION,
                            &format!("pos={position}"),
                        );
                    }
                }
            }
        }

        if self.cnt == self.config.counterattack_start {
            if self.start_counterattack && !self.own_transmission {
                if self.config.prevention_enabled {
                    // Enable CAN_TX multiplexing and pull the bus low
                    // (Algorithm 1 lines 20–23).
                    self.injecting = true;
                    self.stats.counterattacks += 1;
                    if let Some(keys) = &self.keys {
                        self.recorder.inc(&keys.counterattacks);
                        if let Some(detected) = self.detected_at.take() {
                            self.recorder.observe(
                                &keys.reaction_latency,
                                now.bits().saturating_sub(detected),
                            );
                        }
                        self.recorder
                            .trace(now.bits(), self.node_label, EVT_INJECT_START, "");
                    }
                    if self.journal.is_enabled() {
                        self.journal
                            .event(now.bits(), self.node_label, JK_INJECT_START, "");
                    }
                }
                self.start_counterattack = false;
            }
        } else if self.cnt >= self.config.counterattack_end {
            // Disable multiplexing and finish frame processing (lines
            // 16–19). Bit stuffing guarantees no false SOF within the rest
            // of the frame.
            if self.injecting {
                if self.recorder.is_enabled() {
                    self.recorder
                        .trace(now.bits(), self.node_label, EVT_INJECT_END, "");
                }
                if self.journal.is_enabled() {
                    self.journal
                        .event(now.bits(), self.node_label, JK_INJECT_END, "");
                }
            }
            self.leave_frame();
        }
    }
}

impl BitAgent for MichiCan {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        match self.state {
            HandlerState::BusIdle => {
                if level.is_recessive() {
                    self.cnt_sof = self.cnt_sof.saturating_add(1);
                } else if self.cnt_sof >= MIN_INTERFRAME_RECESSIVE as u32 {
                    // Falling edge after ≥ 11 recessive bits: a SOF.
                    self.enter_frame();
                } else {
                    // Dominant without sufficient idle: mid-frame bits of a
                    // frame we joined late (e.g. after boot); stay out.
                    self.cnt_sof = 0;
                }
            }
            HandlerState::InFrame => self.handle_frame_bit(level, now),
        }
    }

    fn tx_level(&self) -> Option<Level> {
        if self.injecting {
            Some(Level::Dominant)
        } else {
            None
        }
    }

    fn set_own_transmission(&mut self, transmitting: bool) {
        self.own_transmission = transmitting;
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        // Hunting for a SOF on an idle bus, the handler only counts
        // recessive bits — a closed-form update handled by `skip_idle`.
        // Mid-frame (or while injecting a counterattack) every bit matters.
        match self.state {
            HandlerState::BusIdle if !self.injecting => None,
            _ => Some(now),
        }
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        // While injecting, the counterattack drives dominant immediately.
        // Otherwise an injection can begin only after the handler has
        // *observed* another bit (`on_bit` at `now` decides the level for
        // `now + 1`), so one bit from now is the earliest possible drive
        // under arbitrary future bus input.
        if self.injecting {
            Some(now)
        } else {
            Some(now + BitDuration::bits(1))
        }
    }

    fn skip_idle(&mut self, bits: u64, _from: BitInstant) {
        debug_assert!(matches!(self.state, HandlerState::BusIdle) && !self.injecting);
        self.cnt_sof = self
            .cnt_sof
            .saturating_add(u32::try_from(bits).unwrap_or(u32::MAX));
        self.own_transmission = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcuList;
    use can_core::bitstream::stuff_frame;
    use can_core::{CanFrame, CanId};

    fn defender_for(list: &[u16], index: usize) -> MichiCan {
        let list = EcuList::from_raw(list);
        MichiCan::new(DetectionFsm::for_ecu(&list, index))
    }

    /// Feeds a frame's wire bits preceded by bus idle; returns the bit
    /// index (within the frame) at which injection began, if any.
    fn feed_frame(defender: &mut MichiCan, frame: &CanFrame) -> Option<usize> {
        let mut t = 0u64;
        for _ in 0..12 {
            defender.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        let wire = stuff_frame(frame);
        let mut injection_start = None;
        for (i, &bit) in wire.bits.iter().enumerate() {
            // Once injecting, the defender would see its own dominant
            // level on the bus.
            let seen = if defender.is_injecting() {
                Level::Dominant
            } else {
                bit
            };
            defender.on_bit(seen, BitInstant::from_bits(t));
            if defender.is_injecting() && injection_start.is_none() {
                injection_start = Some(i);
            }
            t += 1;
        }
        injection_start
    }

    #[test]
    fn benign_frame_is_not_attacked() {
        let mut defender = defender_for(&[0x005, 0x173], 1);
        let benign = CanFrame::data_frame(CanId::from_raw(0x005), &[1, 2, 3]).unwrap();
        assert_eq!(feed_frame(&mut defender, &benign), None);
        assert_eq!(defender.stats().frames_monitored, 1);
        assert_eq!(defender.stats().attacks_detected, 0);
    }

    #[test]
    fn spoofed_own_id_triggers_counterattack_at_rtr() {
        let mut defender = defender_for(&[0x005, 0x173], 1);
        let spoof = CanFrame::data_frame(CanId::from_raw(0x173), &[0xFF; 8]).unwrap();
        let start = feed_frame(&mut defender, &spoof).expect("must counterattack");
        // 0x173 = 00101110011: no stuff bits inside SOF+ID (max run 3), so
        // the wire index of the RTR bit is 12; injection begins when the
        // RTR sample is processed, i.e. the defender drives from the next
        // bit on. `feed_frame` observes `is_injecting` after processing
        // index `i`, so start == 12.
        assert_eq!(start, 12);
        assert_eq!(defender.stats().attacks_detected, 1);
        assert_eq!(defender.stats().counterattacks, 1);
    }

    #[test]
    fn dos_id_triggers_counterattack() {
        let mut defender = defender_for(&[0x173], 0);
        let dos = CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap();
        assert!(feed_frame(&mut defender, &dos).is_some());
        assert_eq!(defender.stats().attacks_detected, 1);
    }

    #[test]
    fn miscellaneous_id_is_ignored() {
        let mut defender = defender_for(&[0x173], 0);
        let misc = CanFrame::data_frame(CanId::from_raw(0x500), &[0; 2]).unwrap();
        assert_eq!(feed_frame(&mut defender, &misc), None);
        assert_eq!(defender.stats().attacks_detected, 0);
    }

    #[test]
    fn injection_window_length_is_bounded() {
        let mut defender = defender_for(&[0x173], 0);
        // Idle, then attack frame; count injected bits.
        for t in 0..12 {
            defender.on_bit(Level::Recessive, BitInstant::from_bits(t));
        }
        let wire = stuff_frame(&CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap());
        let mut injected = 0;
        for (i, &bit) in wire.bits.iter().enumerate() {
            let seen = if defender.is_injecting() {
                injected += 1;
                Level::Dominant
            } else {
                bit
            };
            defender.on_bit(seen, BitInstant::from_bits(12 + i as u64));
        }
        // §IV-E: 6 dominant bits suffice; destuffed counting across the
        // injection stretches the window slightly (stuff-skips), but it
        // must stay well below the attacker's error-flag end.
        assert!((6..=9).contains(&injected), "injected {injected} bits");
        assert!(
            !defender.is_injecting(),
            "pin released by frame position 20"
        );
    }

    #[test]
    fn own_transmission_is_never_attacked() {
        let mut defender = defender_for(&[0x173], 0);
        defender.set_own_transmission(true);
        let own = CanFrame::data_frame(CanId::from_raw(0x173), &[0x11; 8]).unwrap();
        assert_eq!(feed_frame(&mut defender, &own), None);
        assert_eq!(defender.stats().suppressed_own, 1);
        assert_eq!(defender.stats().counterattacks, 0);
    }

    #[test]
    fn detection_only_mode_never_drives() {
        let list = EcuList::from_raw(&[0x173]);
        let mut ids_mode = MichiCan::with_config(
            DetectionFsm::for_ecu(&list, 0),
            MichiCanConfig {
                prevention_enabled: false,
                ..MichiCanConfig::default()
            },
        );
        let dos = CanFrame::data_frame(CanId::from_raw(0x001), &[0; 8]).unwrap();
        assert_eq!(feed_frame(&mut ids_mode, &dos), None);
        assert_eq!(ids_mode.stats().attacks_detected, 1, "still detects");
        assert_eq!(ids_mode.stats().counterattacks, 0);
    }

    #[test]
    fn sof_requires_eleven_recessive_bits() {
        let mut defender = defender_for(&[0x173], 0);
        // Only 5 idle bits before a dominant edge: not a SOF.
        for t in 0..5 {
            defender.on_bit(Level::Recessive, BitInstant::from_bits(t));
        }
        defender.on_bit(Level::Dominant, BitInstant::from_bits(5));
        assert_eq!(defender.stats().frames_monitored, 0);
        // Now a proper gap: SOF recognized.
        for t in 6..18 {
            defender.on_bit(Level::Recessive, BitInstant::from_bits(t));
        }
        defender.on_bit(Level::Dominant, BitInstant::from_bits(18));
        assert_eq!(defender.stats().frames_monitored, 1);
    }

    #[test]
    fn handler_rearms_for_retransmissions() {
        // Detect, inject, then see the attacker's error frame and the
        // retransmission — the handler must detect again.
        let mut defender = defender_for(&[0x173], 0);
        let attack = CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap();
        assert!(feed_frame(&mut defender, &attack).is_some());
        // Error flag (6 dominant) + delimiter (8 recessive) + IFS (3).
        let mut t = 1000;
        for _ in 0..6 {
            defender.on_bit(Level::Dominant, BitInstant::from_bits(t));
            t += 1;
        }
        for _ in 0..11 {
            defender.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        // Retransmission.
        let wire = stuff_frame(&attack);
        for &bit in &wire.bits[..14] {
            let seen = if defender.is_injecting() {
                Level::Dominant
            } else {
                bit
            };
            defender.on_bit(seen, BitInstant::from_bits(t));
            t += 1;
        }
        assert_eq!(defender.stats().attacks_detected, 2);
        assert_eq!(defender.stats().counterattacks, 2);
    }

    #[test]
    fn recorder_captures_detection_and_reaction_latency() {
        let mut defender = defender_for(&[0x005, 0x173], 1);
        let recorder = Recorder::enabled();
        defender.set_recorder(recorder.clone(), 1);
        let spoof = CanFrame::data_frame(CanId::from_raw(0x173), &[0xFF; 8]).unwrap();
        feed_frame(&mut defender, &spoof).expect("must counterattack");
        let reg = recorder.into_registry();
        assert_eq!(reg.counter("michican_detections_total{node=\"1\"}"), 1);
        assert_eq!(reg.counter("michican_counterattacks_total{node=\"1\"}"), 1);
        assert_eq!(
            reg.counter("michican_frames_monitored_total{node=\"1\"}"),
            1
        );
        let latency = reg
            .histogram("michican_reaction_latency_bits{node=\"1\"}")
            .unwrap();
        assert_eq!(latency.count(), 1);
        // Detection happens inside the identifier (positions 2..=12),
        // injection at the RTR bit (destuffed position 13): the gap is at
        // most 11 bit times plus stuffing.
        assert!(latency.max().unwrap() <= 16);
        let events: Vec<&str> = reg.traces().iter().map(|t| t.event.as_str()).collect();
        assert!(events.contains(&can_obs::EVT_DETECTION));
        assert!(events.contains(&can_obs::EVT_INJECT_START));
        assert!(events.contains(&can_obs::EVT_INJECT_END));
    }

    #[test]
    fn journal_captures_episode_without_a_recorder() {
        // The journal is an independent sink: with no recorder attached,
        // detection and the injection window must still be journaled.
        let mut defender = defender_for(&[0x005, 0x173], 1);
        let journal = can_obs::Journal::enabled();
        defender.set_journal(journal.clone(), 1);
        let spoof = CanFrame::data_frame(CanId::from_raw(0x173), &[0xFF; 8]).unwrap();
        feed_frame(&mut defender, &spoof).expect("must counterattack");
        let export = journal.export_jsonl();
        for kind in [JK_DETECTION, JK_INJECT_START, JK_INJECT_END] {
            assert!(
                export.contains(&format!("\"kind\":\"{kind}\"")),
                "missing {kind} in:\n{export}"
            );
        }
    }

    #[test]
    fn disabled_recorder_leaves_stats_identical() {
        let run = |with_recorder: bool| {
            let mut defender = defender_for(&[0x173], 0);
            if with_recorder {
                defender.set_recorder(Recorder::disabled(), 0);
            }
            let dos = CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap();
            feed_frame(&mut defender, &dos);
            defender.stats().clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn detection_positions_are_recorded() {
        let mut defender = defender_for(&[0x400], 0);
        // 0x000 decides after the first identifier bit... but a decision
        // can only be as early as the FSM's pruning allows. Record and
        // check bounds.
        let attack = CanFrame::data_frame(CanId::from_raw(0x000), &[0; 8]).unwrap();
        feed_frame(&mut defender, &attack);
        let positions = &defender.stats().detection_positions;
        assert_eq!(positions.len(), 1);
        assert!((1..=11).contains(&positions[0]));
        assert!(defender.stats().mean_detection_position().is_some());
    }
}

//! Attack classification and detection ranges (Definitions IV.1–IV.4).
//!
//! From the point of view of ECU_i (identifier `own`), an observed
//! identifier `a` is:
//!
//! * **spoofing** if `a == own` (Definition IV.1),
//! * a **DoS attack** if `a < own` and `a` is not a legitimate identifier
//!   (Definition IV.2),
//! * **miscellaneous** if `a` is above the highest legitimate identifier —
//!   or any non-legitimate identifier above `own`, which ECU_i cannot
//!   judge (Definition IV.3; harmless per the paper's analysis),
//! * **legitimate** otherwise.
//!
//! The union of spoofing + DoS identifiers is the *detection range* 𝔻
//! (Definition IV.4), represented here as a sorted interval set over the
//! 11-bit identifier space.

use core::fmt;

use can_core::CanId;
use serde::{Deserialize, Serialize};

use crate::config::{EcuList, Scenario};

/// How ECU_i classifies an observed identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackClass {
    /// The observed identifier equals the ECU's own (Definition IV.1).
    Spoofing,
    /// Higher priority than the ECU's own identifier and not legitimate
    /// (Definition IV.2).
    Dos,
    /// Not legitimate but lower priority than the ECU's own identifier;
    /// cannot win arbitration against anything that matters (Definition
    /// IV.3).
    Miscellaneous,
    /// A legitimate transmission of another ECU.
    Legitimate,
}

impl AttackClass {
    /// Whether this class is attacked (inside the detection range).
    pub fn is_malicious(self) -> bool {
        matches!(self, AttackClass::Spoofing | AttackClass::Dos)
    }
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackClass::Spoofing => f.write_str("spoofing"),
            AttackClass::Dos => f.write_str("DoS"),
            AttackClass::Miscellaneous => f.write_str("miscellaneous"),
            AttackClass::Legitimate => f.write_str("legitimate"),
        }
    }
}

/// Classifies identifier `observed` from the perspective of the ECU at
/// `index` within `list`.
///
/// # Panics
///
/// Panics if `index >= list.len()`.
///
/// ```
/// use michican::config::EcuList;
/// use michican::detect::{classify, AttackClass};
/// use can_core::CanId;
///
/// let list = EcuList::from_raw(&[0x005, 0x00F]);
/// // From ECU 0x00F's perspective (paper §IV-A example):
/// let view = |raw| classify(&list, 1, CanId::new(raw).unwrap());
/// assert_eq!(view(0x00F), AttackClass::Spoofing);
/// assert_eq!(view(0x004), AttackClass::Dos);
/// assert_eq!(view(0x005), AttackClass::Legitimate);
/// assert_eq!(view(0x010), AttackClass::Miscellaneous);
/// ```
pub fn classify(list: &EcuList, index: usize, observed: CanId) -> AttackClass {
    let own = list.id_at(index);
    if observed == own {
        return AttackClass::Spoofing;
    }
    if list.contains(observed) {
        return AttackClass::Legitimate;
    }
    if observed.outranks(own) {
        AttackClass::Dos
    } else {
        AttackClass::Miscellaneous
    }
}

/// A sorted set of disjoint, inclusive identifier intervals — the
/// representation of a detection range 𝔻.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IdSet {
    /// Disjoint, sorted, inclusive `[lo, hi]` intervals.
    intervals: Vec<(u16, u16)>,
}

impl IdSet {
    /// The empty set.
    pub fn empty() -> Self {
        IdSet::default()
    }

    /// A single identifier.
    pub fn singleton(id: CanId) -> Self {
        IdSet {
            intervals: vec![(id.raw(), id.raw())],
        }
    }

    /// The inclusive interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn interval(lo: CanId, hi: CanId) -> Self {
        assert!(lo.raw() <= hi.raw(), "interval bounds reversed");
        IdSet {
            intervals: vec![(lo.raw(), hi.raw())],
        }
    }

    /// The interval `[0, hi]` with the given points removed — the shape of
    /// every detection range 𝔻 (Definition IV.4).
    ///
    /// `excluded` need not be sorted; points outside `[0, hi]` are ignored.
    pub fn prefix_minus_points(hi: CanId, excluded: &[CanId]) -> Self {
        let mut cut: Vec<u16> = excluded
            .iter()
            .map(|id| id.raw())
            .filter(|&p| p <= hi.raw())
            .collect();
        cut.sort_unstable();
        cut.dedup();

        let mut intervals = Vec::with_capacity(cut.len() + 1);
        let mut lo = 0u16;
        for p in cut {
            if p > lo {
                intervals.push((lo, p - 1));
            }
            lo = p + 1;
        }
        if lo <= hi.raw() {
            intervals.push((lo, hi.raw()));
        }
        IdSet { intervals }
    }

    /// Whether `id` belongs to the set.
    pub fn contains(&self, id: CanId) -> bool {
        let raw = id.raw();
        self.intervals
            .binary_search_by(|&(lo, hi)| {
                if raw < lo {
                    std::cmp::Ordering::Greater
                } else if raw > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of identifiers in the set.
    pub fn len(&self) -> usize {
        self.intervals
            .iter()
            .map(|&(lo, hi)| (hi - lo) as usize + 1)
            .sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of identifiers in `[lo, hi)` (half-open, for FSM
    /// construction over power-of-two ranges).
    pub fn count_in(&self, lo: u32, hi: u32) -> u32 {
        let mut count = 0;
        for &(a, b) in &self.intervals {
            let (a, b) = (a as u32, b as u32 + 1); // half-open
            let start = a.max(lo);
            let end = b.min(hi);
            if start < end {
                count += end - start;
            }
        }
        count
    }

    /// Iterates all identifiers in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = CanId> + '_ {
        self.intervals
            .iter()
            .flat_map(|&(lo, hi)| (lo..=hi).map(CanId::from_raw))
    }

    /// The underlying intervals (sorted, disjoint, inclusive).
    pub fn intervals(&self) -> &[(u16, u16)] {
        &self.intervals
    }
}

/// The detection range 𝔻 of the ECU at `index` (Definition IV.4):
/// `{ j | 0 ≤ j ≤ ECU_i ∧ j ≠ ECU_k ∀ k < i }`.
///
/// Includes the ECU's own identifier (spoofing) and every non-legitimate
/// higher-priority identifier (DoS).
pub fn detection_range(list: &EcuList, index: usize) -> IdSet {
    let own = list.id_at(index);
    IdSet::prefix_minus_points(own, &list.ids()[..index])
}

/// The detection range of a non-transmitting monitor (an OBD-II dongle):
/// every non-legitimate identifier that ties or outranks the
/// lowest-priority legitimate identifier — the DoS component of
/// Definition IV.4 from the lowest-priority ECU's perspective, with no
/// spoofing component.
///
/// A dongle owns no identifier, so it must not claim one: only the true
/// owner of an identifier can tell (via its own transmission state)
/// whether a frame carrying that identifier is spoofed. A dongle that
/// "adopts" a list member's identifier would counterattack the owner's
/// legitimate traffic.
pub fn monitor_range(list: &EcuList) -> IdSet {
    let lowest_priority = list.id_at(list.len() - 1);
    IdSet::prefix_minus_points(lowest_priority, list.ids())
}

/// The detection range under a given scenario: the light scenario's lower
/// half only watches its own identifier.
pub fn scenario_range(list: &EcuList, index: usize, scenario: Scenario) -> IdSet {
    if list.runs_full_detection(index, scenario) {
        detection_range(list, index)
    } else {
        IdSet::singleton(list.id_at(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u16) -> CanId {
        CanId::from_raw(raw)
    }

    #[test]
    fn paper_two_ecu_example() {
        // 𝔼 = {0x005, 0x00F}: ECU 0x00F detects 0x000–0x004 and
        // 0x006–0x00F as malicious, cannot judge 0x005.
        let list = EcuList::from_raw(&[0x005, 0x00F]);
        let range = detection_range(&list, 1);
        for raw in 0x000..=0x004 {
            assert!(range.contains(id(raw)), "{raw:#x} must be detected");
        }
        assert!(
            !range.contains(id(0x005)),
            "legitimate peer is not detected"
        );
        for raw in 0x006..=0x00F {
            assert!(range.contains(id(raw)), "{raw:#x} must be detected");
        }
        assert!(!range.contains(id(0x010)), "above own id is out of range");
        assert_eq!(range.len(), 15);
    }

    #[test]
    fn first_ecu_detects_everything_up_to_itself() {
        let list = EcuList::from_raw(&[0x005, 0x00F]);
        let range = detection_range(&list, 0);
        assert_eq!(range.len(), 6); // 0x000..=0x005
        assert!(range.contains(id(0x005)), "own id (spoofing)");
        assert!(!range.contains(id(0x006)));
    }

    #[test]
    fn classification_matches_detection_range() {
        let list = EcuList::from_raw(&[0x010, 0x080, 0x173, 0x400]);
        for index in 0..list.len() {
            let range = detection_range(&list, index);
            for raw in 0..=CanId::MAX_RAW {
                let class = classify(&list, index, id(raw));
                assert_eq!(
                    range.contains(id(raw)),
                    class.is_malicious(),
                    "index {index}, id {raw:#x}, class {class}"
                );
            }
        }
    }

    #[test]
    fn classify_covers_all_classes() {
        let list = EcuList::from_raw(&[0x100, 0x200]);
        assert_eq!(classify(&list, 1, id(0x200)), AttackClass::Spoofing);
        assert_eq!(classify(&list, 1, id(0x100)), AttackClass::Legitimate);
        assert_eq!(classify(&list, 1, id(0x0FF)), AttackClass::Dos);
        assert_eq!(classify(&list, 1, id(0x201)), AttackClass::Miscellaneous);
        // The highest ECU's view of ids above everyone: miscellaneous.
        assert_eq!(classify(&list, 1, id(0x7FF)), AttackClass::Miscellaneous);
    }

    #[test]
    fn prefix_minus_points_edge_cases() {
        // Exclusions at the boundaries.
        let set = IdSet::prefix_minus_points(id(10), &[id(0), id(10)]);
        assert!(!set.contains(id(0)));
        assert!(!set.contains(id(10)));
        assert!(set.contains(id(1)));
        assert!(set.contains(id(9)));
        assert_eq!(set.len(), 9);

        // Adjacent exclusions merge gaps.
        let set = IdSet::prefix_minus_points(id(5), &[id(2), id(3)]);
        assert_eq!(set.intervals(), &[(0, 1), (4, 5)]);

        // Excluding everything.
        let all: Vec<CanId> = (0..=3).map(id).collect();
        let set = IdSet::prefix_minus_points(id(3), &all);
        assert!(set.is_empty());
    }

    #[test]
    fn count_in_half_open_ranges() {
        let set = IdSet::prefix_minus_points(id(0x00F), &[id(0x005)]);
        assert_eq!(set.count_in(0, 2048), 15);
        assert_eq!(set.count_in(0, 6), 5); // 0..=4 (5 excluded)
        assert_eq!(set.count_in(5, 6), 0);
        assert_eq!(set.count_in(0x10, 2048), 0);
    }

    #[test]
    fn singleton_and_interval() {
        let s = IdSet::singleton(id(0x173));
        assert_eq!(s.len(), 1);
        assert!(s.contains(id(0x173)));
        assert!(!s.contains(id(0x172)));

        let i = IdSet::interval(id(4), id(7));
        assert_eq!(i.len(), 4);
        assert_eq!(i.iter().count(), 4);
    }

    #[test]
    fn scenario_ranges() {
        let list = EcuList::from_raw(&[0x10, 0x20, 0x30, 0x40]);
        // Light scenario: index 0 (lower half) watches only itself.
        let light0 = scenario_range(&list, 0, Scenario::Light);
        assert_eq!(light0.len(), 1);
        assert!(light0.contains(id(0x10)));
        // Upper half unchanged.
        let light3 = scenario_range(&list, 3, Scenario::Light);
        assert_eq!(light3, detection_range(&list, 3));
        // Full scenario: everyone full.
        assert_eq!(
            scenario_range(&list, 0, Scenario::Full),
            detection_range(&list, 0)
        );
    }

    #[test]
    fn monitor_range_excludes_every_legitimate_id() {
        let list = EcuList::from_raw(&[0x010, 0x080, 0x173, 0x400]);
        let range = monitor_range(&list);
        for raw in 0..=CanId::MAX_RAW {
            let observed = id(raw);
            let expected = raw <= 0x400 && !list.contains(observed);
            assert_eq!(range.contains(observed), expected, "id {raw:#x}");
        }
        // The lowest-priority legitimate id is NOT watched: the dongle
        // cannot tell its owner's frames from a spoofer's.
        assert!(!range.contains(id(0x400)));
    }

    #[test]
    fn display_names() {
        assert_eq!(AttackClass::Dos.to_string(), "DoS");
        assert_eq!(AttackClass::Spoofing.to_string(), "spoofing");
    }
}

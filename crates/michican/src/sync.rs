//! Software synchronization model (paper §IV-C).
//!
//! MichiCAN bypasses the CAN controller, so it must replicate bit
//! synchronization in software: a timer interrupt fires once per nominal
//! bit time and samples `CAN_RX` at ~70 % of the bit. Two imperfections
//! threaten this:
//!
//! 1. the MCU oscillator drifts relative to the transmitter's, so the
//!    sampling point wanders within (and eventually out of) the bit;
//! 2. the SOF-edge interrupt plus handler prologue consume a constant
//!    number of cycles — the *fudge factor* — that must be subtracted when
//!    restarting the timer.
//!
//! [`SoftSync`] tracks the sampling offset bit by bit; *hard
//! synchronization* at each SOF resets the accumulated error. The model
//! quantifies how many bits a defender can sample correctly without a hard
//! sync — i.e. why resynchronizing at every SOF (as MichiCAN does) is
//! sufficient, and why free-running timers are not.

use can_core::BusSpeed;
use serde::{Deserialize, Serialize};

/// Default sampling point within the nominal bit time (70 %).
pub const DEFAULT_SAMPLE_POINT: f64 = 0.70;

/// Configuration of the software synchronization model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncConfig {
    /// Bus speed (fixes the nominal bit time).
    pub speed: BusSpeed,
    /// Relative oscillator drift between defender and transmitter, in
    /// parts per million. Automotive-grade crystals are within ±100 ppm.
    pub drift_ppm: f64,
    /// Fraction of the bit time at which sampling should occur.
    pub sample_point: f64,
    /// Fixed handler-prologue latency compensated at hard sync, in
    /// nanoseconds (the paper's empirically determined *fudge factor*).
    pub fudge_ns: f64,
}

impl SyncConfig {
    /// A typical configuration at the given speed: ±100 ppm drift, 70 %
    /// sample point, 200 ns prologue.
    pub fn typical(speed: BusSpeed) -> Self {
        SyncConfig {
            speed,
            drift_ppm: 100.0,
            sample_point: DEFAULT_SAMPLE_POINT,
            fudge_ns: 200.0,
        }
    }

    /// Derives the configuration from a solved hardware bit timing: the
    /// software sampler adopts the exact sample point the bus's hardware
    /// controllers use, so both sample the same instant within each bit.
    pub fn from_bit_timing(
        speed: BusSpeed,
        timing: &can_core::bit_timing::BitTiming,
        drift_ppm: f64,
        fudge_ns: f64,
    ) -> Self {
        SyncConfig {
            speed,
            drift_ppm,
            sample_point: timing.sample_point(),
            fudge_ns,
        }
    }
}

/// Sampling-point tracker for a software-synchronized defender.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftSync {
    config: SyncConfig,
    /// Offset of the sample within the current bit, in nanoseconds from
    /// the bit's start.
    offset_ns: f64,
    bits_since_sync: u64,
    hard_syncs: u64,
}

impl SoftSync {
    /// Creates a tracker, initially hard-synchronized.
    pub fn new(config: SyncConfig) -> Self {
        let mut sync = SoftSync {
            config,
            offset_ns: 0.0,
            bits_since_sync: 0,
            hard_syncs: 0,
        };
        sync.hard_sync();
        sync.hard_syncs = 0;
        sync
    }

    /// The configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.config
    }

    /// Nominal bit time in nanoseconds.
    pub fn bit_time_ns(&self) -> f64 {
        self.config.speed.bit_time_ns()
    }

    /// Performs a hard synchronization (SOF edge): the timer restarts so
    /// the next sample lands at the configured sample point, the fudge
    /// factor compensating the handler prologue.
    pub fn hard_sync(&mut self) {
        self.offset_ns = self.config.sample_point * self.bit_time_ns();
        self.bits_since_sync = 0;
        self.hard_syncs += 1;
    }

    /// Advances by one timer period; returns the new sampling offset in
    /// nanoseconds within the (ideal) current bit.
    pub fn advance_bit(&mut self) -> f64 {
        // Each timer period is off by drift_ppm relative to the
        // transmitter's bit time; the error accumulates linearly.
        self.offset_ns += self.bit_time_ns() * self.config.drift_ppm / 1e6;
        self.bits_since_sync += 1;
        self.offset_ns
    }

    /// Current sampling offset as a fraction of the bit time.
    pub fn offset_fraction(&self) -> f64 {
        self.offset_ns / self.bit_time_ns()
    }

    /// Whether the sample still falls inside the intended bit.
    ///
    /// Real controllers additionally require clearance from the bit edges;
    /// this uses the full bit as the validity window, so it is an upper
    /// bound.
    pub fn is_sample_valid(&self) -> bool {
        self.offset_ns > 0.0 && self.offset_ns < self.bit_time_ns()
    }

    /// Bits since the last hard synchronization.
    pub fn bits_since_sync(&self) -> u64 {
        self.bits_since_sync
    }

    /// Number of hard synchronizations performed.
    pub fn hard_syncs(&self) -> u64 {
        self.hard_syncs
    }

    /// How many bits can elapse after a hard sync before the sample drifts
    /// out of the bit, for this configuration (closed form).
    pub fn max_bits_before_desync(&self) -> u64 {
        let drift_per_bit = self.config.drift_ppm.abs() / 1e6;
        if drift_per_bit == 0.0 {
            return u64::MAX;
        }
        // Room from the sample point to the nearer bit edge.
        let room = if self.config.drift_ppm >= 0.0 {
            1.0 - self.config.sample_point
        } else {
            self.config.sample_point
        };
        // Validity is strict (`0 < offset < bit`): an exact multiple is
        // already out, hence the epsilon before flooring.
        ((room / drift_per_bit) - 1e-9).floor() as u64
    }

    /// The paper's first-interrupt delay after the SOF edge: the sample
    /// point of the *next* bit minus the fudge factor, in nanoseconds
    /// ("for a 500 kbit/s CAN bus, the timer interrupt would first
    /// activate after 1.4 µs", §IV-C).
    pub fn first_interrupt_delay_ns(&self) -> f64 {
        self.config.sample_point * self.bit_time_ns() - self.config.fudge_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_first_interrupt_delay_at_500k() {
        // §IV-C: at 500 kbit/s the timer first fires at 1.4 µs (minus the
        // fudge factor).
        let sync = SoftSync::new(SyncConfig {
            speed: BusSpeed::K500,
            drift_ppm: 0.0,
            sample_point: 0.70,
            fudge_ns: 0.0,
        });
        assert!((sync.first_interrupt_delay_ns() - 1400.0).abs() < 1e-9);
    }

    #[test]
    fn fudge_factor_shortens_first_delay() {
        let sync = SoftSync::new(SyncConfig {
            speed: BusSpeed::K500,
            drift_ppm: 0.0,
            sample_point: 0.70,
            fudge_ns: 250.0,
        });
        assert!((sync.first_interrupt_delay_ns() - 1150.0).abs() < 1e-9);
    }

    #[test]
    fn zero_drift_never_desyncs() {
        let mut sync = SoftSync::new(SyncConfig {
            speed: BusSpeed::K125,
            drift_ppm: 0.0,
            ..SyncConfig::typical(BusSpeed::K125)
        });
        for _ in 0..1_000_000 {
            sync.advance_bit();
        }
        assert!(sync.is_sample_valid());
        assert_eq!(sync.max_bits_before_desync(), u64::MAX);
    }

    #[test]
    fn typical_drift_survives_a_max_length_frame() {
        // 100 ppm drift: sample wanders 0.01 % of a bit per bit — a
        // 135-bit worst-case frame accumulates 1.35 % of a bit. Easily
        // valid: per-frame hard sync is sufficient.
        let mut sync = SoftSync::new(SyncConfig::typical(BusSpeed::K500));
        for _ in 0..135 {
            sync.advance_bit();
        }
        assert!(sync.is_sample_valid());
        assert!(sync.offset_fraction() < 0.72);
    }

    #[test]
    fn desync_bound_matches_simulation() {
        let config = SyncConfig {
            speed: BusSpeed::K500,
            drift_ppm: 5000.0, // deliberately terrible oscillator
            sample_point: 0.70,
            fudge_ns: 0.0,
        };
        let mut sync = SoftSync::new(config);
        let bound = sync.max_bits_before_desync();
        // (1.0 - 0.7) / 0.005 = 60 bits exactly; the 60th sample lands on
        // the bit edge and is already invalid.
        assert_eq!(bound, 59);
        for _ in 0..bound {
            sync.advance_bit();
            assert!(sync.is_sample_valid(), "within bound");
        }
        sync.advance_bit();
        assert!(!sync.is_sample_valid(), "one past the bound");
    }

    #[test]
    fn hard_sync_resets_accumulated_error() {
        let mut sync = SoftSync::new(SyncConfig {
            speed: BusSpeed::K50,
            drift_ppm: 1000.0,
            sample_point: 0.70,
            fudge_ns: 100.0,
        });
        for _ in 0..200 {
            sync.advance_bit();
        }
        let drifted = sync.offset_fraction();
        assert!(drifted > 0.70);
        sync.hard_sync();
        assert!((sync.offset_fraction() - 0.70).abs() < 1e-12);
        assert_eq!(sync.bits_since_sync(), 0);
        assert_eq!(sync.hard_syncs(), 1);
    }

    #[test]
    fn config_from_hardware_bit_timing() {
        // Match the software sampler to the classic 16 MHz / 500 kbit/s
        // controller configuration.
        let timing = can_core::bit_timing::solve(16_000_000, BusSpeed::K500, 0.70).unwrap();
        let config = SyncConfig::from_bit_timing(BusSpeed::K500, &timing, 100.0, 150.0);
        assert!((config.sample_point - timing.sample_point()).abs() < 1e-12);
        let sync = SoftSync::new(config);
        assert!(sync.is_sample_valid());
        // The hardware's oscillator-tolerance bound is far looser than the
        // crystal drift we configured — consistent models.
        assert!(timing.max_oscillator_tolerance() > 100.0 / 1e6);
    }

    #[test]
    fn negative_drift_walks_toward_bit_start() {
        let config = SyncConfig {
            speed: BusSpeed::K500,
            drift_ppm: -5000.0,
            sample_point: 0.70,
            fudge_ns: 0.0,
        };
        let mut sync = SoftSync::new(config);
        // 0.7 / 0.005 = 140 bits of room; the edge sample is invalid.
        assert_eq!(sync.max_bits_before_desync(), 139);
        sync.advance_bit();
        assert!(sync.offset_fraction() < 0.70);
    }
}

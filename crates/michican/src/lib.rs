//! # michican — spoofing and DoS protection via integrated CAN controllers
//!
//! A from-scratch Rust reproduction of **MichiCAN** (Pesé et al., DSN
//! 2025): a distributed, backward-compatible, real-time defense that uses
//! the bit-level bus access of integrated CAN controllers to
//!
//! 1. **detect** spoofing and DoS attacks *during the arbitration phase*,
//!    by running a per-ECU finite state machine over the incoming
//!    identifier bits, and
//! 2. **prevent** them, by pulling `CAN_TX` dominant right after the
//!    identifier field — provoking bit/stuff errors that walk the
//!    attacker's transmit error counter to bus-off within 32 attempts.
//!
//! The crate is structured like the paper's five phases:
//!
//! * [`config`] — *Initial Configuration*: the ordered ECU list 𝔼 and
//!   full/light scenarios.
//! * [`detect`] — attack classes (Definitions IV.1–IV.3) and detection
//!   ranges 𝔻 (Definition IV.4).
//! * [`fsm`] — the detection FSM: a pruned, hash-consed binary decision
//!   diagram over the 11-bit identifier space.
//! * [`sync`] — *Synchronization*: the software sampling model (hard sync
//!   at SOF, 70 % sample point, fudge factor, oscillator drift).
//! * [`handler`] — *Detection* + *Pin Multiplexing* + *Prevention*:
//!   Algorithm 1 as a [`BitAgent`](can_core::agent::BitAgent).
//! * [`prevention`] — injection analysis and theoretical bus-off times
//!   (Table III).
//! * [`health`] — watchdog + graceful degradation: detect-only fallback,
//!   capped-backoff re-arm, bounded counterattack budget.
//! * [`codegen`] — per-ECU firmware source generation (C and Rust).
//! * [`analysis`] — exact decision-depth statistics and the deployment
//!   coverage/redundancy matrix (§IV-A's robustness argument).
//!
//! ## Quickstart
//!
//! ```
//! use michican::prelude::*;
//! use can_core::CanId;
//!
//! // OEM configuration: the legitimate identifiers on this bus.
//! let list = EcuList::from_raw(&[0x005, 0x0F0, 0x173, 0x260]);
//! // This ECU transmits 0x173 (index 2).
//! let fsm = DetectionFsm::for_ecu(&list, 2);
//! let defender = MichiCan::new(fsm);
//! assert!(defender.fsm().classify(CanId::new(0x064).unwrap()), "DoS id");
//! assert!(!defender.fsm().classify(CanId::new(0x0F0).unwrap()), "peer id");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codegen;
pub mod config;
pub mod detect;
pub mod fsm;
pub mod handler;
pub mod health;
pub mod prevention;
pub mod sync;

pub use config::{EcuList, Scenario};
pub use detect::{classify, detection_range, monitor_range, AttackClass, IdSet};
pub use fsm::{DetectionFsm, DetectionStats, FsmCursor, FsmStep};
pub use handler::{MichiCan, MichiCanConfig, MichiCanStats};
pub use health::{DegradeReason, HealthConfig, HealthState, HealthStats, SupervisedMichiCan};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::{EcuList, Scenario};
    pub use crate::detect::{classify, detection_range, monitor_range, AttackClass, IdSet};
    pub use crate::fsm::{DetectionFsm, DetectionStats};
    pub use crate::handler::{MichiCan, MichiCanConfig};
    pub use crate::health::{HealthConfig, HealthState, SupervisedMichiCan};
    pub use crate::sync::SyncConfig;
}

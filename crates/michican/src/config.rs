//! Initial configuration (paper §IV-A).
//!
//! MichiCAN is configured offline, once, by the OEM: the ordered list
//! 𝔼 = {ECU₁, …, ECU_N} of legitimate CAN identifiers, where each unique
//! identifier is tied to exactly one ECU. From 𝔼, every ECU derives its
//! *detection range* 𝔻 (Definition IV.4) and a per-ECU FSM is generated and
//! patched into its firmware.

use core::fmt;
use std::error::Error;

use can_core::CanId;
use serde::{Deserialize, Serialize};

/// How an ECU participates in detection (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Every ECU runs the full detection range 𝔻 (spoofing + DoS).
    Full,
    /// The lower half 𝔼₁ detects only spoofing on its own identifier; the
    /// upper half 𝔼₂ runs the full procedure. Cuts CPU load (§V-D) while
    /// the network stays DoS-protected.
    Light,
}

/// Errors constructing an [`EcuList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The list was empty.
    Empty,
    /// The same identifier appeared more than once: identifiers must map
    /// 1:1 to ECUs (§IV-A).
    DuplicateId {
        /// The repeated identifier.
        id: CanId,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Empty => f.write_str("the ECU list must not be empty"),
            ConfigError::DuplicateId { id } => {
                write!(f, "identifier {id} is assigned to more than one ECU")
            }
        }
    }
}

impl Error for ConfigError {}

/// The ordered list 𝔼 of all legitimate CAN identifiers on the IVN,
/// ascending (ECU₁ has the lowest identifier ⇒ highest priority).
///
/// ```
/// use can_core::CanId;
/// use michican::config::EcuList;
///
/// let list = EcuList::new(vec![
///     CanId::new(0x005).unwrap(),
///     CanId::new(0x00F).unwrap(),
/// ]).unwrap();
/// assert_eq!(list.len(), 2);
/// assert_eq!(list.id_at(1).raw(), 0x00F);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcuList {
    ids: Vec<CanId>,
}

impl EcuList {
    /// Builds the ordered list; input order is irrelevant, duplicates are
    /// rejected.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Empty`] for an empty input, or
    /// [`ConfigError::DuplicateId`] when an identifier repeats.
    pub fn new(mut ids: Vec<CanId>) -> Result<Self, ConfigError> {
        if ids.is_empty() {
            return Err(ConfigError::Empty);
        }
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(ConfigError::DuplicateId { id: dup[0] });
        }
        Ok(EcuList { ids })
    }

    /// Builds a list from raw identifier values.
    ///
    /// # Panics
    ///
    /// Panics if a value exceeds 11 bits or on duplicates; intended for
    /// tables and tests.
    pub fn from_raw(ids: &[u16]) -> Self {
        Self::new(ids.iter().map(|&raw| CanId::from_raw(raw)).collect())
            .expect("valid literal ECU list")
    }

    /// Number of ECUs, N.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty (never true for a constructed list).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The identifier of the ECU at `index` (0-based; paper's ECU_{i+1}).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn id_at(&self, index: usize) -> CanId {
        self.ids[index]
    }

    /// All identifiers, ascending.
    pub fn ids(&self) -> &[CanId] {
        &self.ids
    }

    /// The index of `id` within 𝔼, if it is a legitimate identifier.
    pub fn index_of(&self, id: CanId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Whether `id` belongs to some legitimate ECU.
    pub fn contains(&self, id: CanId) -> bool {
        self.index_of(id).is_some()
    }

    /// Splits 𝔼 into (𝔼₁, 𝔼₂) for the light scenario: lower half of the
    /// identifier list and upper half.
    ///
    /// For odd N the extra ECU goes to 𝔼₂ (the DoS-protecting half), the
    /// conservative choice.
    pub fn split_halves(&self) -> (&[CanId], &[CanId]) {
        let mid = self.ids.len() / 2;
        self.ids.split_at(mid)
    }

    /// Whether the ECU at `index` runs the full detection procedure under
    /// `scenario`.
    pub fn runs_full_detection(&self, index: usize, scenario: Scenario) -> bool {
        match scenario {
            Scenario::Full => true,
            Scenario::Light => index >= self.ids.len() / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_sorts_on_construction() {
        let list = EcuList::from_raw(&[0x300, 0x100, 0x200]);
        assert_eq!(
            list.ids().iter().map(|id| id.raw()).collect::<Vec<_>>(),
            vec![0x100, 0x200, 0x300]
        );
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert_eq!(EcuList::new(vec![]), Err(ConfigError::Empty));
        let dup = EcuList::new(vec![CanId::from_raw(5), CanId::from_raw(5)]);
        assert_eq!(
            dup,
            Err(ConfigError::DuplicateId {
                id: CanId::from_raw(5)
            })
        );
    }

    #[test]
    fn index_and_contains() {
        let list = EcuList::from_raw(&[0x005, 0x00F, 0x173]);
        assert_eq!(list.index_of(CanId::from_raw(0x00F)), Some(1));
        assert_eq!(list.index_of(CanId::from_raw(0x010)), None);
        assert!(list.contains(CanId::from_raw(0x173)));
        assert!(!list.contains(CanId::from_raw(0x172)));
    }

    #[test]
    fn split_halves_even_and_odd() {
        let even = EcuList::from_raw(&[1, 2, 3, 4]);
        let (e1, e2) = even.split_halves();
        assert_eq!(e1.len(), 2);
        assert_eq!(e2.len(), 2);

        let odd = EcuList::from_raw(&[1, 2, 3, 4, 5]);
        let (e1, e2) = odd.split_halves();
        assert_eq!(e1.len(), 2);
        assert_eq!(e2.len(), 3, "extra ECU joins the DoS-protecting half");
    }

    #[test]
    fn full_scenario_everyone_runs_detection() {
        let list = EcuList::from_raw(&[1, 2, 3, 4]);
        for i in 0..4 {
            assert!(list.runs_full_detection(i, Scenario::Full));
        }
        assert!(!list.runs_full_detection(0, Scenario::Light));
        assert!(!list.runs_full_detection(1, Scenario::Light));
        assert!(list.runs_full_detection(2, Scenario::Light));
        assert!(list.runs_full_detection(3, Scenario::Light));
    }

    #[test]
    fn error_messages() {
        assert!(ConfigError::Empty.to_string().contains("empty"));
        let e = ConfigError::DuplicateId {
            id: CanId::from_raw(0x7),
        };
        assert!(e.to_string().contains("0x007"));
    }
}

//! Health watchdog and graceful degradation for the MichiCAN defender.
//!
//! The paper's design assumes the defender's own substrate is healthy: the
//! timer interrupt fires every bit, the sampling point stays inside the
//! bit, and a counterattack reliably destroys the attacked frame. On real
//! hardware each of these can fail — interrupts get masked, oscillators
//! drift, marginal transceivers miss the injection window. A defense that
//! keeps counterattacking with a broken clock is itself a bus hazard: it
//! would inject dominant bits at the wrong positions and destroy
//! legitimate frames.
//!
//! [`SupervisedMichiCan`] wraps the [`MichiCan`] handler with a watchdog
//! that observes, from bit-level observables only (the same pin access the
//! defense itself has):
//!
//! * **missed ticks** — gaps in the per-bit timestamps (the timer
//!   interrupt did not fire),
//! * **sync loss** — accumulated oscillator drift pushing the sampling
//!   point out of the bit (tracked with [`SoftSync`], hard-synced at every
//!   observed SOF),
//! * **counterattack failures** — an injection window that is not followed
//!   by the attacked transmitter's error-recovery gap, i.e. the attacked
//!   frame (or its retransmission) survived.
//!
//! On repeated trouble the watchdog **degrades to detect-only mode**
//! (prevention off, detection running), then **re-arms with capped
//! exponential backoff**: prevention returns after `N` consecutive clean
//! frames, where `N` doubles on every degradation up to a cap, and resets
//! after a long healthy streak. Independent of health, a **counterattack
//! budget** bounds injection episodes per time window so that even a
//! pathological detector can never load the bus worse than the Parrot
//! baseline it is compared against (§V-E).
//!
//! ```text
//!                 fault threshold exceeded
//!      ┌─────────┐ ───────────────────────► ┌─────────────┐
//!      │  Armed  │                           │ Detect-only │
//!      └─────────┘ ◄─────────────────────── └─────────────┘
//!                 N consecutive clean frames
//!                 (N = base · 2^k, k capped)
//! ```

use can_core::agent::BitAgent;
use can_core::bitstream::MIN_INTERFRAME_RECESSIVE;
use can_core::{BitInstant, Level};
use can_obs::{Journal, Recorder, EVT_DEGRADED, EVT_REARMED, JK_DEGRADED, JK_REARMED};
use serde::{Deserialize, Serialize};

use crate::handler::MichiCan;
use crate::sync::{SoftSync, SyncConfig};

/// Tuning knobs of the health watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Consecutive counterattack failures that trigger degradation.
    pub max_counterattack_failures: u32,
    /// Bits after an injection release within which the attacked
    /// transmitter's error-recovery gap (≥ 8 recessive bits) must begin
    /// for the counterattack to count as successful.
    pub eradication_horizon: u32,
    /// Missed ticks within one tick window that trigger degradation.
    pub max_missed_ticks: u32,
    /// Length of the missed-tick accounting window, in bit times.
    pub missed_tick_window: u64,
    /// Consecutive clean frames required before re-arming prevention
    /// (base value; doubles per degradation).
    pub rearm_clean_frames: u32,
    /// Cap on the backoff doubling (`N ≤ rearm_clean_frames · 2^cap`).
    pub max_backoff_exponent: u32,
    /// Clean frames while armed after which the backoff resets to base.
    pub backoff_reset_frames: u32,
    /// Length of the counterattack budget window, in bit times.
    pub episode_window_bits: u64,
    /// Maximum counterattack episodes per budget window. With ~8 dominant
    /// bits per episode this caps the defender-induced bus load at
    /// `8 · max / window` — far below a Parrot defender, which occupies
    /// the bus with whole spoofed frames.
    pub max_episodes_per_window: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            max_counterattack_failures: 3,
            eradication_horizon: 24,
            max_missed_ticks: 16,
            missed_tick_window: 2_000,
            rearm_clean_frames: 8,
            max_backoff_exponent: 5,
            backoff_reset_frames: 64,
            // One full worst-case eradication is 32 episodes ≈ 1250 bits
            // (Table III); the budget must not cut an eradication short,
            // while 48 · 8 / 2000 = 19 % duty stays far below Parrot.
            episode_window_bits: 2_000,
            max_episodes_per_window: 48,
        }
    }
}

impl HealthConfig {
    /// The worst-case fraction of bus time the counterattack budget
    /// allows the defender to occupy (episodes × ~8 dominant bits per
    /// window).
    pub fn max_injection_duty(&self) -> f64 {
        if self.episode_window_bits == 0 {
            0.0
        } else {
            (self.max_episodes_per_window as f64 * 8.0) / self.episode_window_bits as f64
        }
    }
}

/// Why the watchdog degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradeReason {
    /// Too many consecutive counterattack failures.
    CounterattackFailures,
    /// Too many missed per-bit ticks within the accounting window.
    MissedTicks,
    /// The sampling point drifted out of the bit.
    SyncLoss,
}

/// The watchdog's prevention state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Prevention armed (subject to the episode budget).
    Armed,
    /// Detect-only fallback: prevention disabled until `needed`
    /// consecutive clean frames are observed.
    DetectOnly {
        /// Consecutive clean frames required to re-arm.
        needed: u32,
        /// Consecutive clean frames observed so far.
        seen: u32,
    },
}

/// Running counters of the watchdog.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthStats {
    /// Ticks that never arrived (timestamp gaps).
    pub missed_ticks: u64,
    /// Times the sampling point left the bit.
    pub sync_losses: u64,
    /// Injection episodes followed by the expected error-recovery gap.
    pub counterattack_successes: u64,
    /// Injection episodes after which the attacked frame survived.
    pub counterattack_failures: u64,
    /// Transitions into detect-only mode.
    pub degradations: u64,
    /// Degradations by reason, in occurrence order.
    pub degrade_reasons: Vec<DegradeReason>,
    /// Transitions back to armed.
    pub rearms: u64,
    /// Times the episode budget withdrew prevention for the remainder of
    /// a window.
    pub budget_suppressions: u64,
    /// Frames observed without any fault indication.
    pub clean_frames: u64,
}

/// [`MichiCan`] under a health watchdog: same [`BitAgent`] contract, but
/// prevention is withdrawn when the defender's own substrate misbehaves
/// and restored with capped exponential backoff once it is clean again.
#[derive(Debug, Clone)]
pub struct SupervisedMichiCan {
    handler: MichiCan,
    config: HealthConfig,
    sync: SoftSync,
    stats: HealthStats,
    state: HealthState,
    /// Exponent `k` of the re-arm backoff (`N = base · 2^k`).
    backoff_exponent: u32,
    /// Clean frames since the last re-arm (for backoff reset).
    armed_clean_streak: u32,
    /// Consecutive counterattack failures.
    consecutive_failures: u32,
    /// Timestamp of the previous tick, if any.
    last_tick: Option<u64>,
    /// Missed ticks in the current accounting window.
    window_missed: u32,
    /// Start of the missed-tick window.
    missed_window_start: u64,
    /// Consecutive recessive bits observed (SOF/hard-sync hunting).
    idle_run: u32,
    /// Open eradication watch: deadline bit time.
    watch_deadline: Option<u64>,
    /// Recessive run observed since the injection release under watch.
    watch_recessive_run: u32,
    /// Episode budget: window start and episodes counted in it.
    episode_window_start: u64,
    episodes_in_window: u32,
    /// Fault epoch: incremented on every fault indication; frames
    /// spanning an epoch change are not clean.
    fault_epoch: u64,
    /// Fault epoch at the previous SOF.
    frame_epoch: u64,
    /// Whether a frame is currently being observed (between SOFs).
    in_frame: bool,
    /// Metrics sink for watchdog events; disabled (no-op) by default.
    recorder: Recorder,
    /// Causal event journal for watchdog transitions; disabled by default.
    journal: Journal,
    /// Node index used in metric labels and trace records.
    node_label: u32,
}

impl SupervisedMichiCan {
    /// Wraps `handler` with a watchdog using typical sync parameters for
    /// the handler's bus speed.
    pub fn new(handler: MichiCan, config: HealthConfig, sync: SyncConfig) -> Self {
        SupervisedMichiCan {
            handler,
            config,
            sync: SoftSync::new(sync),
            stats: HealthStats::default(),
            state: HealthState::Armed,
            backoff_exponent: 0,
            armed_clean_streak: 0,
            consecutive_failures: 0,
            last_tick: None,
            window_missed: 0,
            missed_window_start: 0,
            idle_run: MIN_INTERFRAME_RECESSIVE as u32,
            watch_deadline: None,
            watch_recessive_run: 0,
            episode_window_start: 0,
            episodes_in_window: 0,
            fault_epoch: 0,
            frame_epoch: 0,
            in_frame: false,
            recorder: Recorder::disabled(),
            journal: Journal::disabled(),
            node_label: 0,
        }
    }

    /// Attaches a metrics recorder to the watchdog *and* the wrapped
    /// handler; `node` is the index used in metric labels.
    pub fn set_recorder(&mut self, recorder: Recorder, node: u32) {
        self.handler.set_recorder(recorder.clone(), node);
        self.recorder = recorder;
        self.node_label = node;
    }

    /// Attaches a causal event journal to the watchdog *and* the wrapped
    /// handler; degrade/re-arm transitions join the bus frame's causal
    /// chain so an episode reconstructs end to end.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.handler.set_journal(journal.clone(), node);
        self.journal = journal;
        self.node_label = node;
    }

    /// The wrapped handler.
    pub fn handler(&self) -> &MichiCan {
        &self.handler
    }

    /// The watchdog statistics.
    pub fn stats(&self) -> &HealthStats {
        &self.stats
    }

    /// The current prevention state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether prevention is currently active (armed and within budget).
    pub fn prevention_active(&self) -> bool {
        self.handler.config().prevention_enabled
    }

    /// The current re-arm requirement (`N = base · 2^k`, capped).
    pub fn rearm_requirement(&self) -> u32 {
        let k = self.backoff_exponent.min(self.config.max_backoff_exponent);
        self.config.rearm_clean_frames.saturating_mul(1 << k)
    }

    fn sync_handler_prevention(&mut self) {
        let armed = matches!(self.state, HealthState::Armed);
        let within_budget = self.episodes_in_window < self.config.max_episodes_per_window;
        self.handler.set_prevention(armed && within_budget);
    }

    fn record_fault(&mut self) {
        self.fault_epoch += 1;
    }

    fn degrade(&mut self, reason: DegradeReason) {
        self.record_fault();
        if let HealthState::DetectOnly { seen, .. } = &mut self.state {
            // Already degraded: restart the clean-frame count; the
            // backoff does not double again until the next armed episode.
            *seen = 0;
            return;
        }
        self.stats.degradations += 1;
        self.stats.degrade_reasons.push(reason);
        let why = degrade_reason_label(reason);
        if self.recorder.is_enabled() {
            let node = self.node_label;
            self.recorder.inc(&format!(
                "michican_degradations_total{{node=\"{node}\",reason=\"{why}\"}}"
            ));
            self.recorder
                .trace(self.last_tick.unwrap_or(0), node, EVT_DEGRADED, why);
        }
        if self.journal.is_enabled() {
            self.journal.event(
                self.last_tick.unwrap_or(0),
                self.node_label,
                JK_DEGRADED,
                why,
            );
        }
        self.state = HealthState::DetectOnly {
            needed: self.rearm_requirement(),
            seen: 0,
        };
        self.backoff_exponent = (self.backoff_exponent + 1).min(self.config.max_backoff_exponent);
        self.consecutive_failures = 0;
        self.watch_deadline = None;
        self.sync_handler_prevention();
    }

    fn rearm(&mut self) {
        self.stats.rearms += 1;
        if self.recorder.is_enabled() {
            let node = self.node_label;
            self.recorder
                .inc(&format!("michican_rearms_total{{node=\"{node}\"}}"));
            self.recorder
                .trace(self.last_tick.unwrap_or(0), node, EVT_REARMED, "");
        }
        if self.journal.is_enabled() {
            self.journal
                .event(self.last_tick.unwrap_or(0), self.node_label, JK_REARMED, "");
        }
        self.state = HealthState::Armed;
        self.armed_clean_streak = 0;
        self.consecutive_failures = 0;
        self.sync_handler_prevention();
    }

    /// Accounts for the frame that just ended (a new SOF was observed).
    fn close_frame(&mut self) {
        if !self.in_frame {
            return;
        }
        let clean = self.fault_epoch == self.frame_epoch;
        if clean {
            self.stats.clean_frames += 1;
            match &mut self.state {
                HealthState::DetectOnly { needed, seen } => {
                    *seen += 1;
                    if *seen >= *needed {
                        self.rearm();
                    }
                }
                HealthState::Armed => {
                    self.armed_clean_streak = self.armed_clean_streak.saturating_add(1);
                    if self.armed_clean_streak >= self.config.backoff_reset_frames {
                        self.backoff_exponent = 0;
                    }
                }
            }
        } else if let HealthState::DetectOnly { seen, .. } = &mut self.state {
            *seen = 0;
        }
    }

    fn track_missed_ticks(&mut self, now: u64) {
        if now.saturating_sub(self.missed_window_start) >= self.config.missed_tick_window {
            self.missed_window_start = now;
            self.window_missed = 0;
        }
        if let Some(last) = self.last_tick {
            let gap = now.saturating_sub(last).saturating_sub(1);
            if gap > 0 {
                self.stats.missed_ticks += gap;
                self.window_missed = self
                    .window_missed
                    .saturating_add(gap.min(u32::MAX as u64) as u32);
                self.record_fault();
                if self.in_frame {
                    // The timer free-ran through the gap: drift accumulated.
                    for _ in 0..gap.min(10_000) {
                        self.sync.advance_bit();
                    }
                }
                if self.window_missed > self.config.max_missed_ticks {
                    self.degrade(DegradeReason::MissedTicks);
                }
            }
        }
        self.last_tick = Some(now);
    }

    fn track_sync(&mut self, level: Level, _now: u64) {
        let sof_edge = level.is_dominant() && self.idle_run >= MIN_INTERFRAME_RECESSIVE as u32;
        if level.is_recessive() {
            self.idle_run = self.idle_run.saturating_add(1);
        } else {
            self.idle_run = 0;
        }
        if sof_edge {
            self.close_frame();
            self.in_frame = true;
            self.frame_epoch = self.fault_epoch;
            self.sync.hard_sync();
            return;
        }
        if !self.in_frame {
            // Bus idle: the bit timer is disarmed until the next SOF edge
            // interrupt, so no drift accumulates.
            return;
        }
        self.sync.advance_bit();
        if !self.sync.is_sample_valid() {
            self.stats.sync_losses += 1;
            // The device re-initializes its timer after detecting the
            // loss; detection of further losses re-arms from here.
            self.sync.hard_sync();
            self.degrade(DegradeReason::SyncLoss);
        }
        if self.idle_run >= MIN_INTERFRAME_RECESSIVE as u32 {
            // The frame (and its intermission) is over.
            self.close_frame();
            self.in_frame = false;
        }
    }

    fn track_episode_budget(&mut self, started: bool, released: bool, now: u64) {
        if now.saturating_sub(self.episode_window_start) >= self.config.episode_window_bits {
            self.episode_window_start = now;
            self.episodes_in_window = 0;
            self.sync_handler_prevention();
        }
        if started {
            self.episodes_in_window += 1;
            if self.episodes_in_window >= self.config.max_episodes_per_window {
                self.stats.budget_suppressions += 1;
                if self.recorder.is_enabled() {
                    let node = self.node_label;
                    self.recorder.inc(&format!(
                        "michican_budget_suppressions_total{{node=\"{node}\"}}"
                    ));
                }
            }
        }
        // The budget is applied when the pin is released, never mid-episode:
        // the last in-budget counterattack completes, then prevention rests
        // until the window rolls over.
        if released {
            self.sync_handler_prevention();
        }
    }

    fn track_eradication(&mut self, level: Level, released: bool, now: u64) {
        if released {
            self.watch_deadline = Some(now + self.config.eradication_horizon as u64);
            self.watch_recessive_run = 0;
        }
        let Some(deadline) = self.watch_deadline else {
            return;
        };
        if level.is_recessive() {
            self.watch_recessive_run += 1;
            if self.watch_recessive_run >= 8 {
                // Error delimiter reached: the attacked frame died.
                self.stats.counterattack_successes += 1;
                self.consecutive_failures = 0;
                self.watch_deadline = None;
                if self.recorder.is_enabled() {
                    let node = self.node_label;
                    self.recorder.inc(&format!(
                        "michican_counterattack_success_total{{node=\"{node}\"}}"
                    ));
                }
                return;
            }
        } else {
            self.watch_recessive_run = 0;
        }
        if now >= deadline {
            // No error-recovery gap in time: the frame survived the
            // injection.
            self.stats.counterattack_failures += 1;
            if self.recorder.is_enabled() {
                let node = self.node_label;
                self.recorder.inc(&format!(
                    "michican_counterattack_failure_total{{node=\"{node}\"}}"
                ));
            }
            self.consecutive_failures += 1;
            self.watch_deadline = None;
            self.record_fault();
            if self.consecutive_failures >= self.config.max_counterattack_failures {
                self.degrade(DegradeReason::CounterattackFailures);
            }
        }
    }
}

/// Stable label-value for a [`DegradeReason`].
fn degrade_reason_label(reason: DegradeReason) -> &'static str {
    match reason {
        DegradeReason::CounterattackFailures => "counterattack-failures",
        DegradeReason::MissedTicks => "missed-ticks",
        DegradeReason::SyncLoss => "sync-loss",
    }
}

impl BitAgent for SupervisedMichiCan {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        let t = now.bits();
        self.track_missed_ticks(t);
        self.track_sync(level, t);

        let was_injecting = self.handler.is_injecting();
        self.handler.on_bit(level, now);
        let started = !was_injecting && self.handler.is_injecting();
        let released = was_injecting && !self.handler.is_injecting();

        self.track_episode_budget(started, released, t);
        self.track_eradication(level, released, t);
    }

    fn tx_level(&self) -> Option<Level> {
        self.handler.tx_level()
    }

    fn set_own_transmission(&mut self, transmitting: bool) {
        self.handler.set_own_transmission(transmitting);
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        // Supervision only gates whether the inner handler runs; it never
        // drives the bus itself, so the handler's promise is ours.
        self.handler.drive_horizon(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcuList;
    use crate::fsm::DetectionFsm;
    use can_core::bitstream::stuff_frame;
    use can_core::{BusSpeed, CanFrame, CanId};

    fn supervised(config: HealthConfig) -> SupervisedMichiCan {
        let list = EcuList::from_raw(&[0x173]);
        SupervisedMichiCan::new(
            MichiCan::new(DetectionFsm::for_ecu(&list, 0)),
            config,
            SyncConfig::typical(BusSpeed::K500),
        )
    }

    /// Feeds idle + an attack frame; if the supervisor injects, feeds what
    /// the bus would show (dominant during injection, then error flag +
    /// delimiter if `eradicated`, else the rest of the frame).
    fn feed_attack(agent: &mut SupervisedMichiCan, t: &mut u64, eradicated: bool) -> bool {
        for _ in 0..12 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(*t));
            *t += 1;
        }
        let attack = CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap();
        let wire = stuff_frame(&attack);
        let mut injected = false;
        let mut i = 0;
        while i < wire.bits.len() {
            if agent.handler().is_injecting() {
                injected = true;
                break;
            }
            agent.on_bit(wire.bits[i], BitInstant::from_bits(*t));
            *t += 1;
            i += 1;
        }
        if !injected {
            return false;
        }
        // Injection in progress: the bus shows dominant while the pin is
        // held.
        while agent.handler().is_injecting() {
            agent.on_bit(Level::Dominant, BitInstant::from_bits(*t));
            *t += 1;
        }
        if eradicated {
            // Attacker's error flag (6 dominant) then delimiter (8
            // recessive) — the expected recovery gap.
            for _ in 0..6 {
                agent.on_bit(Level::Dominant, BitInstant::from_bits(*t));
                *t += 1;
            }
            for _ in 0..8 {
                agent.on_bit(Level::Recessive, BitInstant::from_bits(*t));
                *t += 1;
            }
        } else {
            // The frame shrugs the injection off and keeps toggling well
            // past the horizon (no ≥8-bit recessive gap).
            for k in 0..40u64 {
                let lvl = if k % 4 == 0 {
                    Level::Recessive
                } else {
                    Level::Dominant
                };
                agent.on_bit(lvl, BitInstant::from_bits(*t));
                *t += 1;
            }
        }
        true
    }

    fn feed_benign_frame(agent: &mut SupervisedMichiCan, t: &mut u64) {
        for _ in 0..12 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(*t));
            *t += 1;
        }
        let benign = CanFrame::data_frame(CanId::from_raw(0x173), &[1, 2]).unwrap();
        agent.set_own_transmission(true);
        for &bit in &stuff_frame(&benign).bits {
            agent.on_bit(bit, BitInstant::from_bits(*t));
            *t += 1;
        }
        agent.set_own_transmission(false);
    }

    #[test]
    fn successful_counterattacks_stay_armed() {
        let mut agent = supervised(HealthConfig::default());
        let mut t = 0;
        for _ in 0..5 {
            assert!(feed_attack(&mut agent, &mut t, true));
        }
        assert_eq!(agent.stats().counterattack_successes, 5);
        assert_eq!(agent.stats().counterattack_failures, 0);
        assert_eq!(agent.state(), HealthState::Armed);
        assert!(agent.prevention_active());
    }

    #[test]
    fn repeated_failures_degrade_to_detect_only() {
        let config = HealthConfig {
            max_counterattack_failures: 3,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        let mut t = 0;
        for _ in 0..3 {
            assert!(feed_attack(&mut agent, &mut t, false));
        }
        assert_eq!(agent.stats().counterattack_failures, 3);
        assert!(matches!(agent.state(), HealthState::DetectOnly { .. }));
        assert!(!agent.prevention_active());
        assert_eq!(
            agent.stats().degrade_reasons,
            vec![DegradeReason::CounterattackFailures]
        );
        // Detect-only: the next attack is detected but not injected.
        assert!(!feed_attack(&mut agent, &mut t, false));
        assert!(agent.handler().stats().attacks_detected > 3);
    }

    #[test]
    fn clean_frames_rearm_with_backoff() {
        let config = HealthConfig {
            max_counterattack_failures: 1,
            rearm_clean_frames: 4,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        let mut t = 0;
        assert!(feed_attack(&mut agent, &mut t, false));
        assert!(matches!(
            agent.state(),
            HealthState::DetectOnly { needed: 4, .. }
        ));

        // Four clean frames + the SOF of a fifth close them out.
        for _ in 0..5 {
            feed_benign_frame(&mut agent, &mut t);
        }
        assert_eq!(agent.state(), HealthState::Armed);
        assert_eq!(agent.stats().rearms, 1);
        assert!(agent.prevention_active());

        // Second degradation: the requirement doubles.
        assert!(feed_attack(&mut agent, &mut t, false));
        assert!(matches!(
            agent.state(),
            HealthState::DetectOnly { needed: 8, .. }
        ));
    }

    #[test]
    fn backoff_requirement_is_capped() {
        let config = HealthConfig {
            rearm_clean_frames: 8,
            max_backoff_exponent: 3,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        agent.backoff_exponent = 40; // simulate many degradations
        assert_eq!(agent.rearm_requirement(), 8 * 8);
    }

    #[test]
    fn missed_ticks_trigger_degradation() {
        let config = HealthConfig {
            max_missed_ticks: 4,
            missed_tick_window: 10_000,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        let mut t = 0u64;
        // Healthy ticks.
        for _ in 0..20 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        assert!(agent.prevention_active());
        // Five separate one-bit gaps.
        for _ in 0..5 {
            t += 1; // the missing tick
            agent.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        assert_eq!(agent.stats().missed_ticks, 5);
        assert!(matches!(agent.state(), HealthState::DetectOnly { .. }));
        assert_eq!(
            agent.stats().degrade_reasons,
            vec![DegradeReason::MissedTicks]
        );
    }

    #[test]
    fn sync_loss_within_an_overlong_frame_degrades() {
        // A defender with a terrible oscillator hard-syncs at SOF but
        // drifts out of the bit inside a long frame with no further sync
        // edges. (On an idle bus the timer is disarmed, so drift only
        // matters between a SOF and the positions the defense samples.)
        let list = EcuList::from_raw(&[0x173]);
        let mut agent = SupervisedMichiCan::new(
            MichiCan::new(DetectionFsm::for_ecu(&list, 0)),
            HealthConfig {
                // Keep counterattack accounting out of this test's way.
                max_counterattack_failures: u32::MAX,
                ..HealthConfig::default()
            },
            SyncConfig {
                speed: BusSpeed::K500,
                drift_ppm: 5_000.0,
                sample_point: 0.70,
                fudge_ns: 0.0,
            },
        );
        let mut t = 0u64;
        for _ in 0..12 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        agent.on_bit(Level::Dominant, BitInstant::from_bits(t)); // SOF
        t += 1;
        // (1 - 0.7) / 0.005 = 60 bits to the edge; keep the frame busy
        // (never 11 consecutive recessive) so the timer stays armed.
        for k in 0..120u64 {
            let lvl = if k % 3 == 0 {
                Level::Dominant
            } else {
                Level::Recessive
            };
            agent.on_bit(lvl, BitInstant::from_bits(t));
            t += 1;
        }
        assert!(agent.stats().sync_losses >= 1);
        assert!(matches!(agent.state(), HealthState::DetectOnly { .. }));
        assert!(agent
            .stats()
            .degrade_reasons
            .contains(&DegradeReason::SyncLoss));
    }

    #[test]
    fn idle_bus_never_desyncs() {
        // Between frames the bit timer is disarmed (it re-arms on the SOF
        // edge interrupt), so arbitrarily long idle must not degrade even
        // a high-drift oscillator.
        let list = EcuList::from_raw(&[0x173]);
        let mut agent = SupervisedMichiCan::new(
            MichiCan::new(DetectionFsm::for_ecu(&list, 0)),
            HealthConfig::default(),
            SyncConfig {
                speed: BusSpeed::K500,
                drift_ppm: 5_000.0,
                sample_point: 0.70,
                fudge_ns: 0.0,
            },
        );
        for t in 0..10_000u64 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(t));
        }
        assert_eq!(agent.stats().sync_losses, 0);
        assert_eq!(agent.state(), HealthState::Armed);
    }

    #[test]
    fn episode_budget_bounds_injection_rate() {
        let config = HealthConfig {
            episode_window_bits: 10_000,
            max_episodes_per_window: 3,
            // Failures must not degrade in this test.
            max_counterattack_failures: u32::MAX,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        let mut t = 0;
        let mut injected = 0;
        for _ in 0..10 {
            if feed_attack(&mut agent, &mut t, true) {
                injected += 1;
            }
        }
        assert_eq!(injected, 3, "budget caps episodes per window");
        assert!(agent.stats().budget_suppressions >= 1);
        assert_eq!(
            agent.state(),
            HealthState::Armed,
            "budget exhaustion is not a degradation"
        );
        // A new window restores the budget. The bus idles into the next
        // window with contiguous ticks (a timestamp jump would — rightly —
        // look like a dead timer to the watchdog).
        for _ in 0..10_001u64 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        assert!(feed_attack(&mut agent, &mut t, true));
    }

    #[test]
    fn injection_duty_stays_below_parrot() {
        // Parrot answers every spoof with a full counter-frame: under
        // saturation it adds ≥ 50 % bus load. The budget's worst case must
        // stay clearly below that.
        let config = HealthConfig::default();
        assert!(config.max_injection_duty() < 0.5);
        assert!(config.max_injection_duty() > 0.0);
    }

    #[test]
    fn healthy_streak_resets_backoff() {
        let config = HealthConfig {
            max_counterattack_failures: 1,
            rearm_clean_frames: 2,
            backoff_reset_frames: 4,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        let mut t = 0;
        assert!(feed_attack(&mut agent, &mut t, false));
        for _ in 0..3 {
            feed_benign_frame(&mut agent, &mut t);
        }
        assert_eq!(agent.state(), HealthState::Armed);
        assert_eq!(agent.rearm_requirement(), 4, "backoff doubled once");
        // A long healthy streak resets the requirement to base.
        for _ in 0..6 {
            feed_benign_frame(&mut agent, &mut t);
        }
        assert_eq!(agent.rearm_requirement(), 2);
    }

    #[test]
    fn recorder_captures_watchdog_events() {
        let config = HealthConfig {
            max_counterattack_failures: 1,
            rearm_clean_frames: 2,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        let recorder = Recorder::enabled();
        agent.set_recorder(recorder.clone(), 0);
        let mut t = 0;
        assert!(feed_attack(&mut agent, &mut t, false));
        for _ in 0..3 {
            feed_benign_frame(&mut agent, &mut t);
        }
        assert_eq!(agent.state(), HealthState::Armed);
        let reg = recorder.into_registry();
        assert_eq!(
            reg.counter(
                "michican_degradations_total{node=\"0\",reason=\"counterattack-failures\"}"
            ),
            1
        );
        assert_eq!(reg.counter("michican_rearms_total{node=\"0\"}"), 1);
        assert_eq!(
            reg.counter("michican_counterattack_failure_total{node=\"0\"}"),
            1
        );
        // The wrapped handler shares the recorder.
        assert_eq!(reg.counter("michican_detections_total{node=\"0\"}"), 1);
        let events: Vec<&str> = reg.traces().iter().map(|r| r.event.as_str()).collect();
        assert!(events.contains(&can_obs::EVT_DEGRADED));
        assert!(events.contains(&can_obs::EVT_REARMED));
    }

    #[test]
    fn journal_captures_degrade_and_rearm() {
        let config = HealthConfig {
            max_counterattack_failures: 1,
            rearm_clean_frames: 2,
            ..HealthConfig::default()
        };
        let mut agent = supervised(config);
        let journal = Journal::enabled();
        agent.set_journal(journal.clone(), 0);
        let mut t = 0;
        assert!(feed_attack(&mut agent, &mut t, false));
        for _ in 0..3 {
            feed_benign_frame(&mut agent, &mut t);
        }
        assert_eq!(agent.state(), HealthState::Armed);
        let export = journal.export_jsonl();
        assert!(export.contains(&format!("\"kind\":\"{JK_DEGRADED}\"")));
        assert!(export.contains("counterattack-failures"));
        assert!(export.contains(&format!("\"kind\":\"{JK_REARMED}\"")));
        // The wrapped handler shares the journal.
        let inject = can_obs::JK_INJECT_START;
        assert!(export.contains(&format!("\"kind\":\"{inject}\"")));
    }

    #[test]
    fn passthrough_of_agent_contract() {
        let mut agent = supervised(HealthConfig::default());
        assert_eq!(agent.tx_level(), None);
        agent.set_own_transmission(true);
        agent.on_bit(Level::Recessive, BitInstant::ZERO);
        assert_eq!(agent.tx_level(), None);
    }
}

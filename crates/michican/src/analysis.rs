//! Network-level detection analysis.
//!
//! Tools for reasoning about a whole MichiCAN deployment:
//!
//! * exact decision-depth statistics computed from the FSM structure in
//!   O(states) — no per-identifier walks — enabling paper-scale sweeps
//!   (160,000 FSMs) in milliseconds;
//! * the coverage/redundancy matrix behind the paper's robustness
//!   argument (§IV-A): "even if |𝔼| − 1 ECUs fail (which is highly
//!   unlikely), one ECU can still detect the attack".

use std::collections::HashMap;

use can_core::CanId;

use crate::config::{EcuList, Scenario};
use crate::detect::scenario_range;
use crate::fsm::{DetectionFsm, ExportedNode};

/// Exact decision-depth statistics of one FSM, by structural recursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthProfile {
    /// Number of identifiers decided *malicious*, total.
    pub malicious_ids: u64,
    /// Mean decision depth over malicious identifiers (bits consumed).
    pub mean_malicious_depth: f64,
    /// Mean decision depth over benign identifiers.
    pub mean_benign_depth: f64,
    /// Maximum decision depth over all identifiers.
    pub max_depth: u8,
}

/// Computes the exact [`DepthProfile`] of an FSM without enumerating
/// identifiers: each state is visited once per depth it appears at.
///
/// ```
/// use michican::analysis::depth_profile;
/// use michican::fsm::DetectionFsm;
/// use michican::detect::IdSet;
/// use can_core::CanId;
///
/// let set = IdSet::interval(CanId::new(0).unwrap(), CanId::new(0x3FF).unwrap());
/// let profile = depth_profile(&DetectionFsm::from_set(&set));
/// assert_eq!(profile.malicious_ids, 1024);
/// assert_eq!(profile.mean_malicious_depth, 1.0); // the MSB decides
/// ```
pub fn depth_profile(fsm: &DetectionFsm) -> DepthProfile {
    let nodes = fsm.export_nodes();
    // (state, depth) -> number of identifier paths reaching it.
    let mut frontier: HashMap<u16, u64> = HashMap::new();
    frontier.insert(fsm.root(), 1);

    let mut malicious_ids = 0u64;
    let mut malicious_depth_sum = 0u64;
    let mut benign_ids = 0u64;
    let mut benign_depth_sum = 0u64;
    let mut max_depth = 0u8;

    for depth in 0..=CanId::BITS as u8 {
        if frontier.is_empty() {
            break;
        }
        let remaining_bits = CanId::BITS as u64 - depth as u64;
        let mut next: HashMap<u16, u64> = HashMap::new();
        for (&state, &paths) in &frontier {
            match nodes[state as usize] {
                ExportedNode::Malicious => {
                    // Every completion of the remaining bits is malicious,
                    // all decided at this depth.
                    let ids = paths << remaining_bits;
                    malicious_ids += ids;
                    malicious_depth_sum += ids * depth as u64;
                    max_depth = max_depth.max(depth);
                }
                ExportedNode::Benign => {
                    let ids = paths << remaining_bits;
                    benign_ids += ids;
                    benign_depth_sum += ids * depth as u64;
                    max_depth = max_depth.max(depth);
                }
                ExportedNode::Branch { zero, one } => {
                    debug_assert!(depth < CanId::BITS as u8, "branch below max depth");
                    *next.entry(zero).or_insert(0) += paths;
                    *next.entry(one).or_insert(0) += paths;
                }
            }
        }
        frontier = next;
    }

    debug_assert_eq!(malicious_ids + benign_ids, 1 << CanId::BITS);
    DepthProfile {
        malicious_ids,
        mean_malicious_depth: if malicious_ids == 0 {
            0.0
        } else {
            malicious_depth_sum as f64 / malicious_ids as f64
        },
        mean_benign_depth: if benign_ids == 0 {
            0.0
        } else {
            benign_depth_sum as f64 / benign_ids as f64
        },
        max_depth,
    }
}

/// Coverage of one identifier across a deployment: how many ECUs would
/// flag it.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Scenario analyzed.
    pub scenario: Scenario,
    /// For each identifier outside 𝔼: the number of ECUs detecting it
    /// (index = raw identifier).
    detectors: Vec<u16>,
    /// Number of identifiers attackable by a DoS (below the highest
    /// legitimate identifier, not legitimate) that no ECU detects.
    pub uncovered_dos_ids: usize,
    /// Minimum redundancy over all covered malicious identifiers.
    pub min_redundancy: u16,
    /// Mean redundancy over all covered malicious identifiers.
    pub mean_redundancy: f64,
}

impl CoverageReport {
    /// How many ECUs detect `id`.
    pub fn detectors_of(&self, id: CanId) -> u16 {
        self.detectors[id.raw() as usize]
    }
}

/// Builds the deployment coverage report for `list` under `scenario`.
pub fn coverage(list: &EcuList, scenario: Scenario) -> CoverageReport {
    let mut detectors = vec![0u16; 1 << CanId::BITS];
    for index in 0..list.len() {
        let range = scenario_range(list, index, scenario);
        for id in range.iter() {
            detectors[id.raw() as usize] += 1;
        }
    }

    let highest = list.id_at(list.len() - 1);
    let mut uncovered = 0usize;
    let mut covered_counts: Vec<u16> = Vec::new();
    for raw in 0..=CanId::MAX_RAW {
        let id = CanId::from_raw(raw);
        if list.contains(id) {
            continue;
        }
        if id.outranks(highest) || id == highest {
            // A DoS-usable identifier: someone should cover it.
            if detectors[raw as usize] == 0 {
                uncovered += 1;
            } else {
                covered_counts.push(detectors[raw as usize]);
            }
        }
    }

    CoverageReport {
        scenario,
        min_redundancy: covered_counts.iter().copied().min().unwrap_or(0),
        mean_redundancy: if covered_counts.is_empty() {
            0.0
        } else {
            covered_counts.iter().map(|&c| c as u64).sum::<u64>() as f64
                / covered_counts.len() as f64
        },
        uncovered_dos_ids: uncovered,
        detectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detection_range, IdSet};
    use crate::fsm::DetectionFsm;

    #[test]
    fn depth_profile_matches_exhaustive_walk() {
        let list = EcuList::from_raw(&[0x040, 0x173, 0x25F, 0x51C]);
        for index in 0..list.len() {
            let set = detection_range(&list, index);
            let fsm = DetectionFsm::from_set(&set);
            let profile = depth_profile(&fsm);

            // Exhaustive reference.
            let mut sum = 0u64;
            let mut count = 0u64;
            let mut max = 0u8;
            for id in CanId::all() {
                let depth = fsm.decision_position(id);
                max = max.max(depth);
                if fsm.classify(id) {
                    sum += depth as u64;
                    count += 1;
                }
            }
            assert_eq!(profile.malicious_ids, count, "index {index}");
            assert!(
                (profile.mean_malicious_depth - sum as f64 / count as f64).abs() < 1e-9,
                "index {index}"
            );
            assert_eq!(profile.max_depth, max, "index {index}");
        }
    }

    #[test]
    fn constant_fsm_profiles() {
        let empty = depth_profile(&DetectionFsm::from_set(&IdSet::empty()));
        assert_eq!(empty.malicious_ids, 0);
        assert_eq!(empty.mean_benign_depth, 0.0, "root decides at depth 0");

        let full = depth_profile(&DetectionFsm::from_set(&IdSet::interval(
            CanId::from_raw(0),
            CanId::from_raw(0x7FF),
        )));
        assert_eq!(full.malicious_ids, 2048);
        assert_eq!(full.mean_malicious_depth, 0.0);
    }

    #[test]
    fn full_scenario_coverage_has_full_redundancy_at_the_bottom() {
        // Identifier 0x000 is below every ECU: in the full scenario every
        // ECU detects it — the paper's |𝔼|-way redundancy.
        let list = EcuList::from_raw(&[0x100, 0x200, 0x300, 0x400]);
        let report = coverage(&list, Scenario::Full);
        assert_eq!(report.detectors_of(CanId::from_raw(0x000)), 4);
        assert_eq!(report.uncovered_dos_ids, 0, "no DoS identifier escapes");
        assert!(report.min_redundancy >= 1);
        assert!(report.mean_redundancy > 1.0);
    }

    #[test]
    fn light_scenario_halves_redundancy_but_keeps_coverage() {
        let list = EcuList::from_raw(&[0x100, 0x200, 0x300, 0x400]);
        let full = coverage(&list, Scenario::Full);
        let light = coverage(&list, Scenario::Light);
        // The paper's trade-off: still no uncovered DoS identifiers…
        assert_eq!(light.uncovered_dos_ids, 0);
        // …but fewer simultaneous detectors.
        assert!(light.mean_redundancy < full.mean_redundancy);
        assert_eq!(light.detectors_of(CanId::from_raw(0x000)), 2, "only 𝔼₂");
    }

    #[test]
    fn identifiers_between_ecus_are_covered_by_higher_ones() {
        let list = EcuList::from_raw(&[0x100, 0x400]);
        let report = coverage(&list, Scenario::Full);
        // 0x250 outranks 0x400 but not 0x100: only the 0x400 ECU sees it.
        assert_eq!(report.detectors_of(CanId::from_raw(0x250)), 1);
        // 0x050 outranks both.
        assert_eq!(report.detectors_of(CanId::from_raw(0x050)), 2);
        // 0x500 outranks nobody: miscellaneous, covered by nobody.
        assert_eq!(report.detectors_of(CanId::from_raw(0x500)), 0);
    }
}

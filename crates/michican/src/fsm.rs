//! The detection finite state machine (paper §IV-A).
//!
//! "Since integrated CAN controllers allow direct read access to every bit
//! of the incoming CAN frame, the detection ranges 𝔻 can be encoded as a
//! finite state machine. In effect, the FSM is a binary tree since each
//! transition input can be either 0 or 1. The FSM is run for each bit
//! individually and needs to traverse all 11 bits only in the worst case."
//!
//! This module builds the FSM as a *pruned, hash-consed* binary decision
//! diagram over the 11-bit identifier space: a subtree whose prefix range
//! lies entirely inside 𝔻 collapses to the `Malicious` terminal, one
//! entirely outside to `Benign`, and structurally identical subtrees are
//! shared. Early termination (the paper's mean detection bit position of
//! ≈ 9) falls out of the pruning.

use can_core::{CanId, Level};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::detect::IdSet;

/// Identifier bit count — FSM depth bound.
const DEPTH: u32 = CanId::BITS as u32;

/// Terminal/internal node of the detection FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum FsmNode {
    /// The identifier prefix is certainly inside 𝔻.
    Malicious,
    /// The identifier prefix is certainly outside 𝔻.
    Benign,
    /// Decision pending: follow `zero` on a dominant bit, `one` on a
    /// recessive bit.
    Branch {
        /// Next state for a dominant (0) identifier bit.
        zero: u16,
        /// Next state for a recessive (1) identifier bit.
        one: u16,
    },
}

/// Outcome of one FSM step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmStep {
    /// More identifier bits are required.
    Undecided,
    /// The identifier is inside the detection range: attack.
    Malicious,
    /// The identifier is outside the detection range: benign.
    Benign,
}

/// A running traversal of a [`DetectionFsm`], reset per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmCursor {
    state: u16,
    bits_consumed: u8,
    decided: Option<bool>,
}

impl FsmCursor {
    /// Number of identifier bits consumed so far.
    pub fn bits_consumed(&self) -> u8 {
        self.bits_consumed
    }

    /// The decision, if reached (`true` = malicious).
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }
}

/// The per-ECU detection FSM generated at initial-configuration time.
///
/// ```
/// use can_core::{CanId, Level};
/// use michican::config::EcuList;
/// use michican::fsm::{DetectionFsm, FsmStep};
///
/// let list = EcuList::from_raw(&[0x005, 0x00F]);
/// let fsm = DetectionFsm::for_ecu(&list, 1);
/// assert!(fsm.classify(CanId::new(0x003).unwrap())); // DoS id
/// assert!(!fsm.classify(CanId::new(0x005).unwrap())); // legitimate peer
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionFsm {
    nodes: Vec<FsmNode>,
    root: u16,
}

impl DetectionFsm {
    /// Builds the FSM recognizing exactly the identifiers in `set`.
    pub fn from_set(set: &IdSet) -> Self {
        let mut builder = Builder {
            nodes: Vec::new(),
            cache: HashMap::new(),
            malicious: 0,
            benign: 0,
        };
        builder.nodes.push(FsmNode::Malicious);
        builder.nodes.push(FsmNode::Benign);
        builder.malicious = 0;
        builder.benign = 1;
        let root = builder.build(set, 0, 1 << DEPTH);
        DetectionFsm {
            nodes: builder.nodes,
            root,
        }
    }

    /// Builds the full-scenario FSM of the ECU at `index` in `list`
    /// (Definition IV.4).
    ///
    /// # Panics
    ///
    /// Panics if `index >= list.len()`.
    pub fn for_ecu(list: &crate::config::EcuList, index: usize) -> Self {
        Self::from_set(&crate::detect::detection_range(list, index))
    }

    /// Builds the FSM of a non-transmitting monitor (an OBD-II dongle)
    /// aware of the whole list: the DoS range only, no own identifier
    /// (see [`crate::detect::monitor_range`]).
    pub fn for_monitor(list: &crate::config::EcuList) -> Self {
        Self::from_set(&crate::detect::monitor_range(list))
    }

    /// Builds the FSM of the ECU at `index` under `scenario`.
    pub fn for_scenario(
        list: &crate::config::EcuList,
        index: usize,
        scenario: crate::config::Scenario,
    ) -> Self {
        Self::from_set(&crate::detect::scenario_range(list, index, scenario))
    }

    /// Number of FSM states (terminals included) — the firmware footprint.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Starts a traversal (called at each SOF).
    pub fn start(&self) -> FsmCursor {
        let decided = match self.nodes[self.root as usize] {
            FsmNode::Malicious => Some(true),
            FsmNode::Benign => Some(false),
            FsmNode::Branch { .. } => None,
        };
        FsmCursor {
            state: self.root,
            bits_consumed: 0,
            decided,
        }
    }

    /// Advances the cursor with one identifier bit (wire order, MSB first;
    /// dominant = 0).
    ///
    /// Stepping a decided cursor keeps returning the decision without
    /// consuming further bits — mirroring Algorithm 1, which stops running
    /// the FSM once the malicious flag is set.
    pub fn step(&self, cursor: &mut FsmCursor, bit: Level) -> FsmStep {
        if let Some(decided) = cursor.decided {
            return if decided {
                FsmStep::Malicious
            } else {
                FsmStep::Benign
            };
        }
        let FsmNode::Branch { zero, one } = self.nodes[cursor.state as usize] else {
            unreachable!("undecided cursor must sit on a branch");
        };
        cursor.state = if bit.is_dominant() { zero } else { one };
        cursor.bits_consumed += 1;
        match self.nodes[cursor.state as usize] {
            FsmNode::Malicious => {
                cursor.decided = Some(true);
                FsmStep::Malicious
            }
            FsmNode::Benign => {
                cursor.decided = Some(false);
                FsmStep::Benign
            }
            FsmNode::Branch { .. } => {
                debug_assert!(cursor.bits_consumed < DEPTH as u8);
                FsmStep::Undecided
            }
        }
    }

    /// Classifies a complete identifier (true = malicious).
    pub fn classify(&self, id: CanId) -> bool {
        let mut cursor = self.start();
        for bit in id.bits() {
            match self.step(&mut cursor, bit) {
                FsmStep::Undecided => continue,
                FsmStep::Malicious => return true,
                FsmStep::Benign => return false,
            }
        }
        unreachable!("FSM must decide within 11 bits")
    }

    /// Identifier-bit position (1-based) at which the FSM decides for `id`;
    /// `0` if the FSM is constant.
    ///
    /// This is the paper's *detection bit position* (§V-B): multiplied by
    /// the nominal bit time it gives the detection latency.
    pub fn decision_position(&self, id: CanId) -> u8 {
        let mut cursor = self.start();
        if cursor.decided.is_some() {
            return 0;
        }
        for bit in id.bits() {
            match self.step(&mut cursor, bit) {
                FsmStep::Undecided => continue,
                _ => return cursor.bits_consumed,
            }
        }
        unreachable!("FSM must decide within 11 bits")
    }
}

/// Introspection view of one FSM state, for code generation and analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportedNode {
    /// Terminal: identifier inside the detection range.
    Malicious,
    /// Terminal: identifier outside the detection range.
    Benign,
    /// Internal decision node with its two successor state indices.
    Branch {
        /// Successor on a dominant (0) bit.
        zero: u16,
        /// Successor on a recessive (1) bit.
        one: u16,
    },
}

impl DetectionFsm {
    /// The root state index.
    pub fn root(&self) -> u16 {
        self.root
    }

    /// All states, indexable by the `zero`/`one` fields of
    /// [`ExportedNode::Branch`].
    pub fn export_nodes(&self) -> Vec<ExportedNode> {
        self.nodes
            .iter()
            .map(|n| match *n {
                FsmNode::Malicious => ExportedNode::Malicious,
                FsmNode::Benign => ExportedNode::Benign,
                FsmNode::Branch { zero, one } => ExportedNode::Branch { zero, one },
            })
            .collect()
    }
}

struct Builder {
    nodes: Vec<FsmNode>,
    cache: HashMap<(u16, u16), u16>,
    malicious: u16,
    benign: u16,
}

impl Builder {
    /// Builds the subtree deciding the half-open identifier range
    /// `[lo, hi)`.
    fn build(&mut self, set: &IdSet, lo: u32, hi: u32) -> u16 {
        let covered = set.count_in(lo, hi);
        if covered == 0 {
            return self.benign;
        }
        if covered == hi - lo {
            return self.malicious;
        }
        let mid = lo + (hi - lo) / 2;
        let zero = self.build(set, lo, mid);
        let one = self.build(set, mid, hi);
        if let Some(&existing) = self.cache.get(&(zero, one)) {
            return existing;
        }
        let index = self.nodes.len() as u16;
        self.nodes.push(FsmNode::Branch { zero, one });
        self.cache.insert((zero, one), index);
        index
    }
}

/// Aggregate detection-latency statistics of one FSM (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionStats {
    /// Number of identifiers in the detection range.
    pub malicious_ids: usize,
    /// Fraction of malicious identifiers correctly flagged (must be 1.0).
    pub detection_rate: f64,
    /// Fraction of benign identifiers incorrectly flagged (must be 0.0).
    pub false_positive_rate: f64,
    /// Mean decision bit position over malicious identifiers.
    pub mean_detection_position: f64,
    /// Maximum decision bit position over malicious identifiers.
    pub max_detection_position: u8,
}

impl DetectionStats {
    /// Exhaustively evaluates `fsm` against the ground-truth `set` over the
    /// whole 11-bit identifier space.
    pub fn evaluate(fsm: &DetectionFsm, set: &IdSet) -> Self {
        let mut malicious_ids = 0usize;
        let mut detected = 0usize;
        let mut false_positives = 0usize;
        let mut benign_total = 0usize;
        let mut position_sum = 0u64;
        let mut position_max = 0u8;

        for id in CanId::all() {
            let truth = set.contains(id);
            let verdict = fsm.classify(id);
            if truth {
                malicious_ids += 1;
                if verdict {
                    detected += 1;
                    let pos = fsm.decision_position(id);
                    position_sum += pos as u64;
                    position_max = position_max.max(pos);
                }
            } else {
                benign_total += 1;
                if verdict {
                    false_positives += 1;
                }
            }
        }

        DetectionStats {
            malicious_ids,
            detection_rate: if malicious_ids == 0 {
                1.0
            } else {
                detected as f64 / malicious_ids as f64
            },
            false_positive_rate: if benign_total == 0 {
                0.0
            } else {
                false_positives as f64 / benign_total as f64
            },
            mean_detection_position: if detected == 0 {
                0.0
            } else {
                position_sum as f64 / detected as f64
            },
            max_detection_position: position_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcuList;
    use crate::detect::{detection_range, IdSet};

    #[test]
    fn fsm_matches_set_exhaustively() {
        let list = EcuList::from_raw(&[0x005, 0x00F, 0x173, 0x6AA]);
        for index in 0..list.len() {
            let set = detection_range(&list, index);
            let fsm = DetectionFsm::from_set(&set);
            for id in CanId::all() {
                assert_eq!(fsm.classify(id), set.contains(id), "index {index} id {id}");
            }
        }
    }

    #[test]
    fn detection_is_perfect_by_construction() {
        let list = EcuList::from_raw(&[0x010, 0x123, 0x456, 0x700]);
        let set = detection_range(&list, 3);
        let fsm = DetectionFsm::from_set(&set);
        let stats = DetectionStats::evaluate(&fsm, &set);
        assert_eq!(stats.detection_rate, 1.0, "paper §V-B: 100 % detection");
        assert_eq!(stats.false_positive_rate, 0.0);
        assert!(stats.mean_detection_position <= 11.0);
        assert!(stats.max_detection_position <= 11);
    }

    #[test]
    fn early_decision_for_wide_ranges() {
        // 𝔻 = [0x000, 0x3FF]: the first identifier bit decides.
        let set = IdSet::interval(CanId::from_raw(0), CanId::from_raw(0x3FF));
        let fsm = DetectionFsm::from_set(&set);
        assert_eq!(fsm.decision_position(CanId::from_raw(0x000)), 1);
        assert_eq!(fsm.decision_position(CanId::from_raw(0x3FF)), 1);
        assert_eq!(fsm.decision_position(CanId::from_raw(0x400)), 1);
    }

    #[test]
    fn late_decision_for_single_exclusion() {
        // 𝔻 = [0, 0x00F] minus {0x005}: ids sharing a 10-bit prefix with
        // 0x005 need all 11 bits.
        let set = IdSet::prefix_minus_points(CanId::from_raw(0x00F), &[CanId::from_raw(0x005)]);
        let fsm = DetectionFsm::from_set(&set);
        assert_eq!(fsm.decision_position(CanId::from_raw(0x004)), 11);
        assert_eq!(fsm.decision_position(CanId::from_raw(0x005)), 11);
        // 0x008 diverges from the excluded point earlier.
        assert!(fsm.decision_position(CanId::from_raw(0x008)) < 11);
    }

    #[test]
    fn constant_fsms() {
        let empty = DetectionFsm::from_set(&IdSet::empty());
        assert!(!empty.classify(CanId::from_raw(0)));
        assert_eq!(empty.decision_position(CanId::from_raw(0)), 0);

        let full =
            DetectionFsm::from_set(&IdSet::interval(CanId::from_raw(0), CanId::from_raw(0x7FF)));
        assert!(full.classify(CanId::from_raw(0x7FF)));
        assert_eq!(full.node_count(), 2, "terminals only");
    }

    #[test]
    fn hash_consing_shrinks_the_fsm() {
        // A periodic set creates many identical subtrees; hash consing
        // must keep the node count far below the 2^12-node full tree.
        // Even identifiers: equivalent to "LSB == 0".
        let set = IdSet::prefix_minus_points(
            CanId::from_raw(0x7FF),
            &(0..2048u16)
                .filter(|r| r % 2 == 1)
                .map(CanId::from_raw)
                .collect::<Vec<_>>(),
        );
        let fsm = DetectionFsm::from_set(&set);
        assert!(
            fsm.node_count() <= 2 + 11,
            "LSB-test FSM must be tiny, got {}",
            fsm.node_count()
        );
        assert!(fsm.classify(CanId::from_raw(0x123 & !1)));
        assert!(!fsm.classify(CanId::from_raw(0x123 | 1)));
        assert_eq!(fsm.decision_position(CanId::from_raw(0x200)), 11);
    }

    #[test]
    fn cursor_stops_consuming_after_decision() {
        let set = IdSet::interval(CanId::from_raw(0), CanId::from_raw(0x3FF));
        let fsm = DetectionFsm::from_set(&set);
        let mut cursor = fsm.start();
        assert_eq!(fsm.step(&mut cursor, Level::Dominant), FsmStep::Malicious);
        let consumed = cursor.bits_consumed();
        // Further steps are no-ops (Algorithm 1 line 11: FSM stops).
        assert_eq!(fsm.step(&mut cursor, Level::Recessive), FsmStep::Malicious);
        assert_eq!(cursor.bits_consumed(), consumed);
    }

    #[test]
    fn spoofing_only_fsm_detects_exactly_own_id() {
        let set = IdSet::singleton(CanId::from_raw(0x173));
        let fsm = DetectionFsm::from_set(&set);
        let stats = DetectionStats::evaluate(&fsm, &set);
        assert_eq!(stats.malicious_ids, 1);
        assert_eq!(stats.detection_rate, 1.0);
        assert_eq!(stats.false_positive_rate, 0.0);
        assert_eq!(fsm.decision_position(CanId::from_raw(0x173)), 11);
    }

    #[test]
    fn node_count_is_bounded_by_full_tree() {
        let list = EcuList::from_raw(&[0x64, 0x128, 0x25F, 0x260, 0x3AA, 0x5BB, 0x701]);
        for index in 0..list.len() {
            let fsm = DetectionFsm::for_ecu(&list, index);
            assert!(
                fsm.node_count() < 4096,
                "hash-consed FSM beats the naive tree"
            );
        }
    }
}

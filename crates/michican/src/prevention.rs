//! Prevention analysis: injection requirements and theoretical bus-off
//! times (paper §IV-E, §V-C, Table III).
//!
//! MichiCAN cannot inject during arbitration (the attacker would merely
//! lose arbitration without an error), so the counterattack starts right
//! after the identifier field, in the RTR slot. Depending on the attacker's
//! identifier tail and DLC, 1–6 injected dominant bits suffice to force a
//! bit or stuff error; MichiCAN always budgets 6 (excess dominant bits
//! merge harmlessly into the attacker's active error flag).

use can_core::bitstream::{stuff_frame, IFS_BITS};
use can_core::counters::{ERROR_DELIMITER_BITS, ERROR_FLAG_BITS, SUSPEND_BITS};
use can_core::CanFrame;

/// Frame bit position (1-based) at which the error frame starts in the
/// best case: MichiCAN's dominant bit lands on a stuff bit right after the
/// RTR slot (1 SOF + 11 ID + 1 RTR ⇒ 14).
pub const BEST_CASE_FLAG_START: u64 = 14;

/// Frame bit position at which the error frame starts in the worst case:
/// six injected bits are needed (⇒ 19).
pub const WORST_CASE_FLAG_START: u64 = 19;

/// Retransmissions in each fault-confinement phase: 16 errors take the TEC
/// from 0 to 128 (error-passive), 16 more to 256 (bus-off).
pub const RETRANSMISSIONS_PER_PHASE: u64 = 16;

/// Average CAN frame length on the bus including stuff bits (paper: "an
/// average CAN frame consists of 125 bits").
pub const AVERAGE_FRAME_BITS: u64 = 125;

/// Duration of one destroyed transmission attempt while the attacker is
/// error-active, in bits: the frame prefix up to the error flag, the
/// 14-bit error frame (6 flag + 8 delimiter) and the 3-bit intermission.
///
/// ```
/// use michican::prevention::{error_active_time, WORST_CASE_FLAG_START};
/// assert_eq!(error_active_time(WORST_CASE_FLAG_START), 35); // paper §V-C
/// assert_eq!(error_active_time(14), 30); // best case
/// ```
pub const fn error_active_time(flag_start: u64) -> u64 {
    (flag_start - 1) + (ERROR_FLAG_BITS + ERROR_DELIMITER_BITS) as u64 + IFS_BITS as u64
}

/// Duration of one destroyed attempt while the attacker is error-passive:
/// like [`error_active_time`] plus the 8-bit suspend-transmission period.
///
/// ```
/// use michican::prevention::error_passive_time;
/// assert_eq!(error_passive_time(19), 43); // paper §V-C worst case
/// assert_eq!(error_passive_time(14), 38); // best case
/// ```
pub const fn error_passive_time(flag_start: u64) -> u64 {
    error_active_time(flag_start) + SUSPEND_BITS as u64
}

/// Total theoretical bus-off time for a single uninterrupted attacker:
/// `16 · (t_a + t_p)` (Table III, Experiments 2/4/6).
///
/// ```
/// use michican::prevention::single_attacker_total;
/// assert_eq!(single_attacker_total(19), 1248); // worst case, paper §V-C
/// assert_eq!(single_attacker_total(14), 1088); // best case
/// ```
pub const fn single_attacker_total(flag_start: u64) -> u64 {
    RETRANSMISSIONS_PER_PHASE * (error_active_time(flag_start) + error_passive_time(flag_start))
}

/// Error-active attempt time with `interruptions` benign frames (of
/// `frame_bits` each) winning arbitration during the retransmission gap:
/// `t_a = 35 + s_f · c_{h,a}` (Table III, Experiments 1/3).
pub const fn interrupted_active_time(flag_start: u64, frame_bits: u64, interruptions: u64) -> u64 {
    error_active_time(flag_start) + frame_bits * interruptions
}

/// Error-passive attempt time with interrupting frames: in the passive
/// region *any* pending message can intervene thanks to the suspend
/// period: `t_p = 43 + s_f · (c_{h,p} + c_{l,p})`.
pub const fn interrupted_passive_time(flag_start: u64, frame_bits: u64, interruptions: u64) -> u64 {
    error_passive_time(flag_start) + frame_bits * interruptions
}

/// Number of bit times, counting the RTR slot as 1, that MichiCAN must
/// hold the bus dominant before the attacker's transmission errors out —
/// computed exactly from the attacker's stuffed wire form.
///
/// The result is the offset of the attacker's first recessive wire bit at
/// or after the RTR slot (a DLC "1" bit or an inserted stuff bit). Per the
/// paper's analysis this is between 1 and 6; MichiCAN always injects the
/// worst-case budget.
///
/// ```
/// use can_core::{CanFrame, CanId};
/// use michican::prevention::injection_bits_to_error;
///
/// // DLC = 8 ⇒ the DLC's leading "1" errors at the 4th injected bit
/// // (RTR, IDE, r0 are dominant anyway).
/// let f = CanFrame::data_frame(CanId::new(0x173).unwrap(), &[0; 8]).unwrap();
/// assert_eq!(injection_bits_to_error(&f), 4);
/// ```
pub fn injection_bits_to_error(frame: &CanFrame) -> u64 {
    let wire = stuff_frame(frame);
    // Locate the RTR bit on the wire by walking and counting destuffed
    // bits (the RTR is destuffed position 13, SOF = 1).
    let mut destuffed = 0usize;
    let mut rtr_wire = None;
    let mut is_stuff = vec![false; wire.bits.len()];
    for &p in &wire.stuff_positions {
        is_stuff[p] = true;
    }
    for (i, _) in wire.bits.iter().enumerate() {
        if !is_stuff[i] {
            destuffed += 1; // SOF is destuffed index 1
            if destuffed == 13 {
                rtr_wire = Some(i);
                break;
            }
        }
    }
    let rtr_wire = rtr_wire.expect("every frame has an RTR bit");
    for (offset, &bit) in wire.bits[rtr_wire..].iter().enumerate() {
        if bit.is_recessive() {
            return offset as u64 + 1;
        }
    }
    unreachable!("a frame always contains a recessive bit after the RTR slot")
}

/// One row of the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoryRow {
    /// Experiment label (e.g. "2, 4, 6").
    pub experiments: &'static str,
    /// Scenario label ("All", "H.P.", "L.P.").
    pub scenario: &'static str,
    /// Error-active time formula rendered with the given parameters.
    pub active_bits: u64,
    /// Error-passive time with the given parameters.
    pub passive_bits: u64,
    /// Total bus-off time in bits.
    pub total_bits: u64,
}

/// Builds Table III for given interference parameters.
///
/// * `c_ha`, `c_hp_lp` — benign frames interrupting active/passive
///   retransmissions (Experiments 1/3);
/// * `z_ha`, `z_lp`, `z_hp` — adversarial frames intervening in Experiment
///   5's HP/LP cases;
/// * `s_f` — frame length used for the products.
pub fn theory_table(
    s_f: u64,
    c_ha: u64,
    c_hp_lp: u64,
    z_ha: u64,
    z_lp: u64,
    z_hp: u64,
) -> Vec<TheoryRow> {
    let fs = WORST_CASE_FLAG_START;
    let t_a_clean = error_active_time(fs);
    let t_p_clean = error_passive_time(fs);
    let row13_a = interrupted_active_time(fs, s_f, c_ha);
    let row13_p = interrupted_passive_time(fs, s_f, c_hp_lp);
    let hp_p = interrupted_passive_time(fs, s_f, z_lp);
    let lp_a = interrupted_active_time(fs, s_f, z_ha);
    let lp_p = interrupted_passive_time(fs, s_f, z_hp);
    vec![
        TheoryRow {
            experiments: "1, 3",
            scenario: "All",
            active_bits: row13_a,
            passive_bits: row13_p,
            total_bits: RETRANSMISSIONS_PER_PHASE * (row13_a + row13_p),
        },
        TheoryRow {
            experiments: "2, 4, 6",
            scenario: "All",
            active_bits: t_a_clean,
            passive_bits: t_p_clean,
            total_bits: RETRANSMISSIONS_PER_PHASE * (t_a_clean + t_p_clean),
        },
        TheoryRow {
            experiments: "5",
            scenario: "H.P.",
            active_bits: t_a_clean,
            passive_bits: hp_p,
            total_bits: RETRANSMISSIONS_PER_PHASE * t_a_clean + RETRANSMISSIONS_PER_PHASE * hp_p,
        },
        TheoryRow {
            experiments: "5",
            scenario: "L.P.",
            active_bits: lp_a,
            passive_bits: lp_p,
            total_bits: RETRANSMISSIONS_PER_PHASE * (lp_a + lp_p),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::CanId;

    fn frame(id: u16, data: &[u8]) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
    }

    #[test]
    fn paper_attempt_times() {
        assert_eq!(error_active_time(WORST_CASE_FLAG_START), 35);
        assert_eq!(error_active_time(BEST_CASE_FLAG_START), 30);
        assert_eq!(error_passive_time(WORST_CASE_FLAG_START), 43);
        assert_eq!(error_passive_time(BEST_CASE_FLAG_START), 38);
    }

    #[test]
    fn paper_total_bus_off_time() {
        assert_eq!(single_attacker_total(WORST_CASE_FLAG_START), 1248);
        // 16 active at 560 bits total (paper's Exp. 5 HP row constant).
        assert_eq!(
            RETRANSMISSIONS_PER_PHASE * error_active_time(WORST_CASE_FLAG_START),
            560
        );
    }

    #[test]
    fn interruption_formulas() {
        // One average benign frame per active gap adds s_f bits.
        assert_eq!(interrupted_active_time(19, AVERAGE_FRAME_BITS, 1), 160);
        assert_eq!(interrupted_passive_time(19, AVERAGE_FRAME_BITS, 0), 43);
        assert_eq!(interrupted_passive_time(19, 125, 2), 43 + 250);
    }

    #[test]
    fn injection_bits_dlc8_errors_at_fourth_bit() {
        // Paper §IV-E: DLC "1000" ⇒ earliest bit error at the fourth
        // injected bit (RTR, IDE, r0 pass silently).
        for raw in [0x173u16, 0x064, 0x7FF] {
            let f = frame(raw, &[0xAB; 8]);
            assert!(
                injection_bits_to_error(&f) <= 4,
                "id {raw:#x}: {}",
                injection_bits_to_error(&f)
            );
        }
    }

    #[test]
    fn injection_bits_worst_case_is_six() {
        // DLC = 1 ("0001") with a recessive identifier LSB: RTR, IDE, r0,
        // DLC3, DLC2 are five dominant bits, the stuff bit after them is
        // the first recessive ⇒ 6 bits (paper's worst case).
        let f = frame(0x173, &[0x00]); // LSB of 0x173 is 1 (recessive)
        assert_eq!(injection_bits_to_error(&f), 6);
    }

    #[test]
    fn injection_bits_best_case_single_bit() {
        // Four trailing dominant identifier bits + dominant RTR form a run
        // of five; the attacker stuffs a recessive bit right after the RTR
        // slot, which the very first injected bit overrides.
        // 0x7D0 = 11111010000: four trailing dominant bits.
        let f = frame(0x7D0, &[0u8; 8]);
        let bits = injection_bits_to_error(&f);
        assert!(
            (1..=2).contains(&bits),
            "near-best case expected, got {bits}"
        );
    }

    #[test]
    fn injection_bits_always_within_paper_bounds() {
        for raw in (0..=0x7FF).step_by(13) {
            for dlc in [1usize, 4, 8] {
                let f = frame(raw, &vec![0u8; dlc]);
                let bits = injection_bits_to_error(&f);
                assert!(
                    (1..=6).contains(&bits),
                    "id {raw:#x} dlc {dlc}: {bits} outside 1..=6"
                );
            }
        }
    }

    #[test]
    fn theory_table_matches_paper_rows() {
        let table = theory_table(AVERAGE_FRAME_BITS, 0, 0, 0, 0, 0);
        let clean = table.iter().find(|r| r.experiments == "2, 4, 6").unwrap();
        assert_eq!(clean.active_bits, 35);
        assert_eq!(clean.passive_bits, 43);
        assert_eq!(clean.total_bits, 1248);

        // With interference the totals grow by s_f per interruption and
        // attempt.
        let noisy = theory_table(125, 1, 1, 0, 0, 0);
        let row13 = noisy.iter().find(|r| r.experiments == "1, 3").unwrap();
        assert_eq!(row13.total_bits, 16 * (160 + 168));
    }
}

//! Sampling-drift robustness: why MichiCAN hard-synchronizes at every SOF
//! (paper §IV-C).
//!
//! These tests feed the handler bits *resampled through the software
//! clock model*: a continuous waveform is reconstructed from the wire
//! bits and sampled wherever the drifting timer actually fires. In-spec
//! oscillators (±100 ppm) never displace a sample into the wrong bit
//! within one frame, so detection is unaffected; a free-running timer
//! without hard sync accumulates error without bound and eventually
//! samples garbage.

use can_core::agent::BitAgent;
use can_core::bitstream::stuff_frame;
use can_core::{BitInstant, BusSpeed, CanFrame, CanId, Level};
use michican::prelude::*;
use michican::sync::{SoftSync, SyncConfig};

/// Samples `wire` (one level per nominal bit time) at the instants of a
/// drifting per-bit timer: sample k lands at offset `k·(1+drift)` bit
/// times plus the initial sample point.
fn resample(wire: &[Level], config: SyncConfig, hard_sync_at_sof: bool) -> Vec<Level> {
    let bit_ns = config.speed.bit_time_ns();
    let mut sync = SoftSync::new(config);
    if hard_sync_at_sof {
        sync.hard_sync();
    }
    let mut samples = Vec::with_capacity(wire.len());
    // Continuous time of sample k (ns): k bit times + current offset.
    for k in 0..wire.len() {
        let offset = sync.offset_fraction();
        let t = (k as f64 + offset) * bit_ns;
        let index = (t / bit_ns).floor() as usize;
        samples.push(
            *wire
                .get(index.min(wire.len() - 1))
                .unwrap_or(&Level::Recessive),
        );
        sync.advance_bit();
    }
    samples
}

fn defender() -> MichiCan {
    let list = EcuList::from_raw(&[0x173]);
    MichiCan::new(DetectionFsm::for_ecu(&list, 0))
}

/// Feeds idle then the (resampled) attack frame; returns whether the
/// handler launched a counterattack.
fn detects_with(config: SyncConfig, hard_sync: bool) -> bool {
    let mut handler = defender();
    let attack = CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap();
    let wire = stuff_frame(&attack);
    let resampled = resample(&wire.bits, config, hard_sync);

    let mut t = 0u64;
    for _ in 0..12 {
        handler.on_bit(Level::Recessive, BitInstant::from_bits(t));
        t += 1;
    }
    let mut injected = false;
    for &bit in &resampled {
        let seen = if handler.is_injecting() {
            Level::Dominant
        } else {
            bit
        };
        handler.on_bit(seen, BitInstant::from_bits(t));
        injected |= handler.is_injecting();
        t += 1;
    }
    injected
}

#[test]
fn automotive_grade_drift_never_disturbs_detection() {
    // ±100 ppm: the worst automotive crystal pairing. One frame is ~135
    // bits; the sample wanders 1.35 % of a bit — harmless.
    for drift in [-100.0, -50.0, 0.0, 50.0, 100.0] {
        let config = SyncConfig {
            speed: BusSpeed::K500,
            drift_ppm: drift,
            sample_point: 0.70,
            fudge_ns: 0.0,
        };
        assert!(
            detects_with(config, true),
            "{drift} ppm must not break detection"
        );
    }
}

#[test]
fn extreme_drift_within_one_frame_still_detects_the_id_field() {
    // The identifier field is only 12 bits from the SOF: even a terrible
    // 1000 ppm oscillator displaces the sample by 1.2 % of a bit by then.
    let config = SyncConfig {
        speed: BusSpeed::K125,
        drift_ppm: 1_000.0,
        sample_point: 0.70,
        fudge_ns: 0.0,
    };
    assert!(detects_with(config, true));
}

#[test]
fn catastrophic_drift_breaks_sampling_without_hard_sync() {
    // 3 % per bit (30000 ppm): after ~10 bits the sample has slid into the
    // following bit; the identifier is misread and the FSM sees a
    // different (shifted) sequence. This is the regime hard sync exists
    // for — the closed-form bound says ≈ 10 bits of validity.
    let config = SyncConfig {
        speed: BusSpeed::K500,
        drift_ppm: 30_000.0,
        sample_point: 0.70,
        fudge_ns: 0.0,
    };
    let sync = SoftSync::new(config);
    assert!(sync.max_bits_before_desync() <= 10);
    // The misread stream *may* still look malicious by accident; what
    // must hold is that the sampled identifier no longer matches the
    // transmitted one.
    let attack = CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap();
    let wire = stuff_frame(&attack);
    let resampled = resample(&wire.bits, config, true);
    assert_ne!(
        &resampled[..20],
        &wire.bits[..20],
        "30000 ppm must corrupt the sampled prefix"
    );
}

#[test]
fn per_frame_hard_sync_keeps_long_captures_aligned() {
    // Across MANY frames, a free-running timer accumulates unbounded
    // error, while per-SOF hard sync resets it each frame. Emulate 100
    // back-to-back frames and check the hard-synced sampler never leaves
    // the valid window, while the free-running one does.
    let config = SyncConfig {
        speed: BusSpeed::K500,
        drift_ppm: 200.0,
        sample_point: 0.70,
        fudge_ns: 0.0,
    };
    let frame_bits = 135u64;

    // Free-running: offset after 100 frames.
    let mut free = SoftSync::new(config);
    for _ in 0..100 * frame_bits {
        free.advance_bit();
    }
    assert!(
        !free.is_sample_valid(),
        "a free-running timer must eventually desynchronize"
    );

    // Hard-synced at each SOF: never drifts beyond one frame's worth.
    let mut synced = SoftSync::new(config);
    for _ in 0..100 {
        synced.hard_sync();
        for _ in 0..frame_bits {
            synced.advance_bit();
        }
        assert!(synced.is_sample_valid(), "per-frame drift stays harmless");
    }
    assert_eq!(synced.hard_syncs(), 100);
}

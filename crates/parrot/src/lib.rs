//! # parrot — the Parrot baseline defense (Dagan & Wool, ESCAR 2016)
//!
//! Parrot is the closest prior work MichiCAN compares against (§I, §V):
//! a *software-only* anti-spoofing defense in which each ECU monitors the
//! bus for frames carrying its own identifier. Lacking bit-level access,
//! Parrot:
//!
//! 1. can only detect a spoof after the **first complete instance** of the
//!    spoofed frame has been received (the attacker's first message goes
//!    through unopposed), and
//! 2. counterattacks by **flooding**: it transmits back-to-back frames
//!    with the same identifier and an all-dominant payload, hoping to
//!    collide with the attacker's next instances. During the flood the bus
//!    load approaches 100 % (the paper computes 125/128 ≈ 97.7 %).
//!
//! Both deficiencies are exactly what MichiCAN's arbitration-phase
//! detection and synchronized single-frame injection remove. The
//! implementation here is protocol-compliant: the flood raises the
//! attacker's TEC through data-field bit errors, but — unlike MichiCAN —
//! the collisions also destroy Parrot's own frames, so Parrot's TEC climbs
//! in lock-step (quantified by the comparison benches).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use can_core::app::Application;
use can_core::{BitInstant, CanFrame, CanId};
use can_obs::{Journal, Recorder, JK_DETECTION, JK_INJECT_END, JK_INJECT_START};

/// Running counters of a [`ParrotDefender`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParrotStats {
    /// Complete spoofed instances observed (each one reached every ECU —
    /// the detection cost Parrot pays and MichiCAN does not).
    pub spoofs_observed: u64,
    /// Counterattack frames handed to the controller.
    pub flood_frames: u64,
    /// Floods started.
    pub floods: u64,
}

/// The Parrot defense as an ECU application.
///
/// `own_id` is the identifier this ECU legitimately transmits; any
/// complete received frame with that identifier must have been spoofed
/// (identifiers are unique per ECU).
#[derive(Debug, Clone)]
pub struct ParrotDefender {
    own_id: CanId,
    /// Legitimate periodic transmission of this ECU, if any.
    own_period_bits: Option<u64>,
    next_own_due: u64,
    /// Remaining flood window in bit times (refreshed per detection).
    flood_until: Option<u64>,
    flood_window_bits: u64,
    stats: ParrotStats,
    /// Metrics sink; disabled (no-op) by default.
    recorder: Recorder,
    /// Causal event journal; disabled (no-op) by default.
    journal: Journal,
    /// Node index used in metric labels.
    node_label: u32,
    /// Bit time of the spoof detection that opened the current flood, for
    /// the detection→first-counter-frame reaction-latency histogram.
    detected_at: Option<u64>,
}

impl ParrotDefender {
    /// Creates a Parrot defender for `own_id`, flooding for
    /// `flood_window_bits` after each detected spoof instance.
    pub fn new(own_id: CanId, flood_window_bits: u64) -> Self {
        ParrotDefender {
            own_id,
            own_period_bits: None,
            next_own_due: 0,
            flood_until: None,
            flood_window_bits,
            stats: ParrotStats::default(),
            recorder: Recorder::disabled(),
            journal: Journal::disabled(),
            node_label: 0,
            detected_at: None,
        }
    }

    /// Attaches a metrics recorder; `node` is the index used in metric
    /// labels (`parrot_*{node="<node>"}`).
    pub fn set_recorder(&mut self, recorder: Recorder, node: u32) {
        if recorder.is_enabled() {
            recorder.declare_histogram(
                &format!("parrot_reaction_latency_bits{{node=\"{node}\"}}"),
                can_obs::DEFAULT_BUCKETS,
            );
        }
        self.recorder = recorder;
        self.node_label = node;
    }

    /// Attaches a causal event journal; `node` is the index stamped on
    /// journal events. Spoof detections and the flood window (Parrot's
    /// "injection") join the causal chain of the frame that provoked them.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.journal = journal;
        self.node_label = node;
    }

    /// Adds this ECU's legitimate periodic transmission of `own_id`.
    ///
    /// # Panics
    ///
    /// Panics if `period_bits` is zero.
    pub fn with_own_traffic(mut self, period_bits: u64) -> Self {
        assert!(period_bits > 0, "period must be positive");
        self.own_period_bits = Some(period_bits);
        self
    }

    /// The defender's counters.
    pub fn stats(&self) -> ParrotStats {
        self.stats
    }

    /// Whether a flood is currently active.
    pub fn is_flooding(&self, now: BitInstant) -> bool {
        self.flood_until.is_some_and(|until| now.bits() < until)
    }

    fn counterattack_frame(&self) -> CanFrame {
        // All-dominant payload: maximally aggressive in the data field.
        CanFrame::data_frame(self.own_id, &[0u8; 8]).expect("valid counterattack frame")
    }
}

impl Application for ParrotDefender {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if self.is_flooding(now) {
            // Keep the mailbox saturated: the controller transmits
            // back-to-back, colliding with every attacker retransmission.
            self.stats.flood_frames += 1;
            if self.recorder.is_enabled() {
                let node = self.node_label;
                self.recorder
                    .inc(&format!("parrot_flood_frames_total{{node=\"{node}\"}}"));
                if let Some(detected) = self.detected_at.take() {
                    self.recorder.observe(
                        &format!("parrot_reaction_latency_bits{{node=\"{node}\"}}"),
                        now.bits().saturating_sub(detected),
                    );
                }
            }
            return Some(self.counterattack_frame());
        }
        if self.flood_until.take().is_some() && self.journal.is_enabled() {
            self.journal
                .event(now.bits(), self.node_label, JK_INJECT_END, "flood");
        }
        if let Some(period) = self.own_period_bits {
            if now.bits() >= self.next_own_due {
                self.next_own_due = now.bits() + period;
                // Legitimate payload distinct from the counterattack.
                return Some(CanFrame::data_frame(self.own_id, &[0xA5; 8]).expect("valid frame"));
            }
        }
        None
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        // Any pending flood window — even one that has already expired but
        // not yet been lazily cleared by `poll` — means the next poll can
        // mutate state, so it must not be skipped.
        if self.flood_until.is_some() {
            return Some(now);
        }
        self.own_period_bits
            .map(|_| BitInstant::from_bits(self.next_own_due.max(now.bits())))
    }

    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant) {
        if frame.id() == self.own_id {
            // A complete foreign frame with our identifier: spoofing.
            self.stats.spoofs_observed += 1;
            if self.recorder.is_enabled() {
                let node = self.node_label;
                self.recorder
                    .inc(&format!("parrot_spoofs_observed_total{{node=\"{node}\"}}"));
                if self.flood_until.is_none() {
                    self.recorder
                        .inc(&format!("parrot_floods_total{{node=\"{node}\"}}"));
                    self.detected_at = Some(now.bits());
                }
            }
            if self.journal.is_enabled() {
                self.journal
                    .event(now.bits(), self.node_label, JK_DETECTION, "spoof");
                if self.flood_until.is_none() {
                    self.journal
                        .event(now.bits(), self.node_label, JK_INJECT_START, "flood");
                }
            }
            if self.flood_until.is_none() {
                self.stats.floods += 1;
            }
            self.flood_until = Some(now.bits() + self.flood_window_bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spoof() -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(0x173), &[0xFF; 8]).unwrap()
    }

    #[test]
    fn quiet_until_first_spoof_instance() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 5_000);
        for t in 0..1_000 {
            assert!(parrot.poll(BitInstant::from_bits(t)).is_none());
        }
        assert_eq!(parrot.stats().floods, 0);
    }

    #[test]
    fn first_complete_spoof_starts_the_flood() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 5_000);
        parrot.on_frame(&spoof(), BitInstant::from_bits(500));
        assert!(parrot.is_flooding(BitInstant::from_bits(501)));
        let frame = parrot.poll(BitInstant::from_bits(501)).unwrap();
        assert_eq!(frame.id().raw(), 0x173);
        assert_eq!(frame.data(), &[0u8; 8], "all-dominant payload");
        assert_eq!(parrot.stats().floods, 1);
        assert_eq!(parrot.stats().spoofs_observed, 1);
    }

    #[test]
    fn flood_expires_after_the_window() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 1_000);
        parrot.on_frame(&spoof(), BitInstant::from_bits(0));
        assert!(parrot.poll(BitInstant::from_bits(999)).is_some());
        assert!(parrot.poll(BitInstant::from_bits(1_000)).is_none());
        assert!(!parrot.is_flooding(BitInstant::from_bits(1_000)));
    }

    #[test]
    fn repeated_spoofs_extend_the_window_without_new_flood_count() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 1_000);
        parrot.on_frame(&spoof(), BitInstant::from_bits(0));
        parrot.on_frame(&spoof(), BitInstant::from_bits(800));
        assert!(parrot.is_flooding(BitInstant::from_bits(1_500)));
        assert_eq!(parrot.stats().floods, 1, "one logical flood");
        assert_eq!(parrot.stats().spoofs_observed, 2);
    }

    #[test]
    fn own_traffic_flows_outside_floods() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 1_000).with_own_traffic(500);
        let f = parrot.poll(BitInstant::from_bits(0)).unwrap();
        assert_eq!(f.data(), &[0xA5; 8]);
        assert!(parrot.poll(BitInstant::from_bits(1)).is_none());
        assert!(parrot.poll(BitInstant::from_bits(500)).is_some());
    }

    #[test]
    fn recorder_captures_spoofs_and_reaction_latency() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 1_000);
        let recorder = Recorder::enabled();
        parrot.set_recorder(recorder.clone(), 2);
        parrot.on_frame(&spoof(), BitInstant::from_bits(100));
        assert!(parrot.poll(BitInstant::from_bits(140)).is_some());
        assert!(parrot.poll(BitInstant::from_bits(141)).is_some());
        let reg = recorder.into_registry();
        assert_eq!(reg.counter("parrot_spoofs_observed_total{node=\"2\"}"), 1);
        assert_eq!(reg.counter("parrot_floods_total{node=\"2\"}"), 1);
        assert_eq!(reg.counter("parrot_flood_frames_total{node=\"2\"}"), 2);
        let latency = reg
            .histogram("parrot_reaction_latency_bits{node=\"2\"}")
            .unwrap();
        assert_eq!(latency.count(), 1, "latency measured once per flood");
        assert_eq!(latency.max(), Some(40));
    }

    #[test]
    fn journal_captures_flood_lifecycle() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 100);
        let journal = Journal::enabled();
        parrot.set_journal(journal.clone(), 2);
        parrot.on_frame(&spoof(), BitInstant::from_bits(50));
        assert!(parrot.poll(BitInstant::from_bits(60)).is_some());
        assert!(parrot.poll(BitInstant::from_bits(200)).is_none());
        let export = journal.export_jsonl();
        for kind in [JK_DETECTION, JK_INJECT_START, JK_INJECT_END] {
            assert!(
                export.contains(&format!("\"kind\":\"{kind}\"")),
                "missing {kind} in:\n{export}"
            );
        }
    }

    #[test]
    fn foreign_ids_do_not_trigger() {
        let mut parrot = ParrotDefender::new(CanId::from_raw(0x173), 1_000);
        let other = CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap();
        parrot.on_frame(&other, BitInstant::from_bits(0));
        assert_eq!(parrot.stats().spoofs_observed, 0);
        assert!(!parrot.is_flooding(BitInstant::from_bits(1)));
    }
}

//! Offline vendored subset of the `criterion` API.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace-local crate provides the slice of criterion the benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a calibration pass sizes the batch
//! so one sample takes ≥ ~5 ms of wall clock, then a fixed number of
//! samples report min/median/mean per-iteration times. No statistics
//! beyond that, no HTML reports, no comparison baselines — enough to spot
//! order-of-magnitude regressions without any dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, criterion-style.
pub use std::hint::black_box;

/// Target wall-clock time for a single measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Measured samples per benchmark.
const SAMPLES: usize = 15;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            batch: 1,
            calibrated: false,
            per_iter: Vec::new(),
        };
        f(&mut bencher);
        report(name, &bencher.per_iter);
        self
    }
}

/// Runs the closure batches and records per-iteration timings.
#[derive(Debug)]
pub struct Bencher {
    batch: u64,
    calibrated: bool,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, criterion-style.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if !self.calibrated {
            // Grow the batch until one batch meets the sample target.
            loop {
                let start = Instant::now();
                for _ in 0..self.batch {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= TARGET_SAMPLE || self.batch >= 1 << 30 {
                    break;
                }
                let grow = if elapsed.is_zero() {
                    16
                } else {
                    (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
                };
                self.batch = self.batch.saturating_mul(grow.clamp(2, 16));
            }
            self.calibrated = true;
        }
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..self.batch {
                black_box(routine());
            }
            self.per_iter.push(start.elapsed() / self.batch as u32);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<40} median {:>12} min {:>12} mean {:>12}",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else {
        format!("{:.2} ms", nanos as f64 / 1e6)
    }
}

/// Declares a benchmark group: a named function invoking each benchmark
/// function with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn formatting_covers_units() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
    }
}

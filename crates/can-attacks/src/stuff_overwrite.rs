//! Stuff-bit overwrite attacker (CANflict peripheral-conflict family).
//!
//! Bit stuffing keeps CAN receivers synchronized: after five equal bits
//! the transmitter inserts the opposite level, guaranteeing an edge. A
//! recessive stuff bit is undriven — so an attacker with raw bus access
//! can pull it dominant, turning the transmitter's own synchronization
//! aid into a six-bit run. Every receiver sees a stuff error at once, the
//! transmitter sees a bit error (TEC +8), and the frame dies — without
//! the attacker ever forming a frame a defense could classify.
//!
//! [`StuffBitOverwrite`] computes upcoming stuff bits with the shared
//! [`FrameWatch`] destuffer and strikes the `skip`-th *recessive* stuff
//! bit of every frame carrying the victim identifier. (Dominant stuff
//! bits cannot be overwritten on a wired-AND bus.)

use can_core::agent::BitAgent;
use can_core::{BitDuration, BitInstant, CanId, Level};
use can_obs::{Journal, JK_STRIKE};

use crate::watch::{FrameWatch, WatchEvent, ID_COMPLETE_CNT};

/// A bit-level attacker that overwrites a computed recessive stuff bit
/// of the victim's frames with a dominant level.
#[derive(Debug, Clone)]
pub struct StuffBitOverwrite {
    victim: CanId,
    /// Overwritable (recessive) stuff bits to let pass per frame before
    /// striking; `0` hits the first one after arbitration.
    skip: u32,
    watch: FrameWatch,
    armed: bool,
    skipped: u32,
    injecting: bool,
    strikes: u64,
    /// Causal event journal; disabled (no-op) by default.
    journal: Journal,
    /// Node index stamped on journal events.
    node_label: u32,
}

impl StuffBitOverwrite {
    /// Creates an attacker that overwrites the `skip`-th recessive stuff
    /// bit (counting from the end of arbitration) of every `victim` frame.
    pub fn new(victim: CanId, skip: u32) -> Self {
        StuffBitOverwrite {
            victim,
            skip,
            watch: FrameWatch::new(),
            armed: false,
            skipped: 0,
            injecting: false,
            strikes: 0,
            journal: Journal::disabled(),
            node_label: 0,
        }
    }

    /// Frames destroyed by an overwritten stuff bit so far.
    pub fn strikes(&self) -> u64 {
        self.strikes
    }

    /// Attaches a causal event journal; `node` is the index stamped on
    /// [`JK_STRIKE`] events, which join the attacked frame's causal chain.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.journal = journal;
        self.node_label = node;
    }

    fn disarm(&mut self) {
        self.armed = false;
        self.skipped = 0;
    }
}

impl BitAgent for StuffBitOverwrite {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        let struck = self.injecting;
        self.injecting = false;
        match self.watch.push(level) {
            WatchEvent::Sof => self.disarm(),
            WatchEvent::Violation(_) => {
                // Our own dominant drive lands here as a six-bit run; a
                // violation from any other cause also kills the frame.
                if struck {
                    self.strikes += 1;
                }
                self.disarm();
            }
            WatchEvent::FrameEnd => self.disarm(),
            _ => {}
        }
        if !self.armed
            && self.watch.cnt() >= ID_COMPLETE_CNT
            && self.watch.id() == Some(self.victim)
        {
            self.armed = true;
        }
        // The next wire bit is an undriven recessive stuff bit: the only
        // moment the attack works. Decide now; the drive lands next bit.
        if self.armed && self.watch.expecting_recessive_stuff() {
            if self.skipped >= self.skip {
                self.injecting = true;
                if self.journal.is_enabled() {
                    self.journal.event(
                        now.bits(),
                        self.node_label,
                        JK_STRIKE,
                        &format!("stuff-overwrite skip={}", self.skip),
                    );
                }
            } else {
                self.skipped += 1;
            }
        }
    }

    fn tx_level(&self) -> Option<Level> {
        self.injecting.then_some(Level::Dominant)
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        if self.watch.is_idle() && !self.injecting {
            None
        } else {
            Some(now)
        }
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        if self.injecting {
            Some(now)
        } else {
            Some(now + BitDuration::bits(1))
        }
    }

    fn skip_idle(&mut self, bits: u64, _from: BitInstant) {
        debug_assert!(self.watch.is_idle() && !self.injecting);
        self.watch.skip_idle(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::bitstream::stuff_frame;
    use can_core::CanFrame;

    /// Feeds idle bits then a frame, modelling the wired-AND: while the
    /// attacker drives dominant, the bus reads dominant. Returns the wire
    /// indices at which the attacker drove.
    fn feed_frame(attacker: &mut StuffBitOverwrite, frame: &CanFrame) -> Vec<usize> {
        let mut t = 0u64;
        for _ in 0..12 {
            attacker.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        let wire = stuff_frame(frame);
        let mut driven = Vec::new();
        for (i, &bit) in wire.bits.iter().enumerate() {
            let seen = if attacker.tx_level() == Some(Level::Dominant) {
                driven.push(i);
                Level::Dominant
            } else {
                bit
            };
            attacker.on_bit(seen, BitInstant::from_bits(t));
            t += 1;
        }
        driven
    }

    #[test]
    fn overwrites_a_recessive_stuff_bit_of_the_victim() {
        // ID 0x000: SOF + dominant run forces a recessive stuff bit at
        // wire position 5.
        let mut attacker = StuffBitOverwrite::new(CanId::from_raw(0x000), 0);
        let victim = CanFrame::data_frame(CanId::from_raw(0x000), &[]).unwrap();
        let wire = stuff_frame(&victim);
        let driven = feed_frame(&mut attacker, &victim);
        assert_eq!(driven.len(), 1, "exactly one bit driven per frame");
        let at = driven[0];
        assert!(wire.stuff_positions.contains(&at), "wire index {at}");
        assert_eq!(wire.bits[at], Level::Recessive);
        assert_eq!(attacker.strikes(), 1);
    }

    #[test]
    fn skip_selects_a_later_stuff_bit() {
        let victim = CanFrame::data_frame(CanId::from_raw(0x000), &[]).unwrap();
        let wire = stuff_frame(&victim);
        let mut first = StuffBitOverwrite::new(CanId::from_raw(0x000), 0);
        let mut second = StuffBitOverwrite::new(CanId::from_raw(0x000), 1);
        let a = feed_frame(&mut first, &victim);
        let b = feed_frame(&mut second, &victim);
        assert!(b[0] > a[0], "skip=1 strikes later: {a:?} vs {b:?}");
        assert!(wire.stuff_positions.contains(&b[0]));
        assert_eq!(wire.bits[b[0]], Level::Recessive);
    }

    #[test]
    fn ignores_bystander_frames() {
        let mut attacker = StuffBitOverwrite::new(CanId::from_raw(0x000), 0);
        let bystander = CanFrame::data_frame(CanId::from_raw(0x001), &[]).unwrap();
        assert!(feed_frame(&mut attacker, &bystander).is_empty());
        assert_eq!(attacker.strikes(), 0);
    }

    #[test]
    fn quiescent_on_an_idle_bus() {
        let attacker = StuffBitOverwrite::new(CanId::from_raw(0x173), 0);
        assert_eq!(attacker.next_activity(BitInstant::ZERO), None);
        assert_eq!(
            attacker.drive_horizon(BitInstant::ZERO),
            Some(BitInstant::ZERO + BitDuration::bits(1))
        );
    }

    #[test]
    fn skip_idle_matches_bitwise_replay() {
        let victim = CanFrame::data_frame(CanId::from_raw(0x000), &[0xFF]).unwrap();
        let mut skipped = StuffBitOverwrite::new(CanId::from_raw(0x000), 0);
        let mut replayed = skipped.clone();
        skipped.skip_idle(300, BitInstant::ZERO);
        for i in 0..300 {
            replayed.on_bit(Level::Recessive, BitInstant::from_bits(i));
        }
        assert_eq!(
            feed_frame(&mut skipped, &victim),
            feed_frame(&mut replayed, &victim)
        );
    }
}

//! Shared wire observer — re-exported from [`can_core::watch`].
//!
//! [`FrameWatch`] began life in this crate as the common front end of the
//! bit-level adversary zoo. It was promoted to `can-core` so passive
//! observers (the `can-ids` detector taps) can reuse the same SOF-hunt /
//! destuff / field-tracking state machine without depending on the attack
//! crate. This module re-exports it so existing callers compile unchanged.

pub use can_core::watch::{FrameWatch, WatchEvent, ID_COMPLETE_CNT};

//! Frame truncation at a chosen field boundary (CANflict family).
//!
//! The tail of a CAN frame — CRC delimiter, ACK delimiter, end-of-frame —
//! is *fixed-form*: the protocol requires recessive levels there, and a
//! single dominant bit is a form error for every node. An attacker with
//! raw bus access can therefore "truncate" any frame by driving one
//! dominant bit at the boundary of its choice: the frame's payload was
//! fully transmitted, yet no receiver accepts it.
//!
//! [`FrameTruncator`] waits for the victim identifier, tracks the frame
//! through the stuffed region with [`FrameWatch`], and forces the
//! recessive-to-dominant conflict at the configured [`TruncateAt`]
//! boundary.

use can_core::agent::BitAgent;
use can_core::{BitDuration, BitInstant, CanId, Level};
use can_obs::{Journal, JK_STRIKE};

use crate::watch::{FrameWatch, WatchEvent, ID_COMPLETE_CNT};

/// The fixed-form boundary at which a [`FrameTruncator`] strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncateAt {
    /// The CRC delimiter — earliest possible: receivers have the full
    /// CRC but never get to validate the delimiter.
    CrcDelim,
    /// The ACK delimiter — after the ACK slot, so the transmitter saw
    /// its frame acknowledged and still loses it.
    AckDelim,
    /// The first EOF bit — the latest cut that is still a form error for
    /// the transmitter as well as every receiver.
    Eof,
}

impl TruncateAt {
    /// Index within the 10-bit unstuffed frame tail (0 = CRC delimiter).
    fn tail_offset(self) -> u32 {
        match self {
            TruncateAt::CrcDelim => 0,
            TruncateAt::AckDelim => 2,
            TruncateAt::Eof => 3,
        }
    }

    /// Stable name used in scenario labels.
    pub fn label(self) -> &'static str {
        match self {
            TruncateAt::CrcDelim => "crc-delim",
            TruncateAt::AckDelim => "ack-delim",
            TruncateAt::Eof => "eof",
        }
    }
}

/// A bit-level attacker that truncates the victim's frames with one
/// dominant bit at a fixed-form field boundary.
#[derive(Debug, Clone)]
pub struct FrameTruncator {
    victim: CanId,
    at: TruncateAt,
    watch: FrameWatch,
    armed: bool,
    injecting: bool,
    truncations: u64,
    /// Causal event journal; disabled (no-op) by default.
    journal: Journal,
    /// Node index stamped on journal events.
    node_label: u32,
}

impl FrameTruncator {
    /// Creates a truncator striking every `victim` frame at `at`.
    pub fn new(victim: CanId, at: TruncateAt) -> Self {
        FrameTruncator {
            victim,
            at,
            watch: FrameWatch::new(),
            armed: false,
            injecting: false,
            truncations: 0,
            journal: Journal::disabled(),
            node_label: 0,
        }
    }

    /// Frames truncated so far.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Attaches a causal event journal; `node` is the index stamped on
    /// [`JK_STRIKE`] events, which join the attacked frame's causal chain.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.journal = journal;
        self.node_label = node;
    }
}

impl BitAgent for FrameTruncator {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        if self.injecting {
            // The dominant bit just landed on the fixed-form field; the
            // frame is dead and error flags follow. Hunt for the next one.
            self.injecting = false;
            self.truncations += 1;
            self.armed = false;
            self.watch.abort();
            let _ = self.watch.push(level);
            return;
        }
        match self.watch.push(level) {
            WatchEvent::Sof | WatchEvent::Violation(_) | WatchEvent::FrameEnd => {
                self.armed = false;
            }
            _ => {}
        }
        if !self.armed
            && self.watch.cnt() >= ID_COMPLETE_CNT
            && self.watch.id() == Some(self.victim)
        {
            self.armed = true;
        }
        // The next wire bit is the chosen tail boundary: drive it dominant.
        if self.armed && self.watch.next_tail_index() == Some(self.at.tail_offset()) {
            self.injecting = true;
            if self.journal.is_enabled() {
                self.journal.event(
                    now.bits(),
                    self.node_label,
                    JK_STRIKE,
                    &format!("truncate {}", self.at.label()),
                );
            }
        }
    }

    fn tx_level(&self) -> Option<Level> {
        self.injecting.then_some(Level::Dominant)
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        if self.watch.is_idle() && !self.injecting {
            None
        } else {
            Some(now)
        }
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        if self.injecting {
            Some(now)
        } else {
            Some(now + BitDuration::bits(1))
        }
    }

    fn skip_idle(&mut self, bits: u64, _from: BitInstant) {
        debug_assert!(self.watch.is_idle() && !self.injecting);
        self.watch.skip_idle(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::bitstream::{stuff_frame, FrameField, FrameLayout};
    use can_core::CanFrame;

    fn feed_frame(attacker: &mut FrameTruncator, frame: &CanFrame) -> Vec<usize> {
        let mut t = 0u64;
        for _ in 0..12 {
            attacker.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        let wire = stuff_frame(frame);
        let mut driven = Vec::new();
        for (i, &bit) in wire.bits.iter().enumerate() {
            let seen = if attacker.tx_level() == Some(Level::Dominant) {
                driven.push(i);
                Level::Dominant
            } else {
                bit
            };
            attacker.on_bit(seen, BitInstant::from_bits(t));
            t += 1;
        }
        driven
    }

    /// Wire index of the first bit of `field` (tail fields are unstuffed,
    /// so the unstuffed index is offset by the total stuff count).
    fn wire_index_of(frame: &CanFrame, field: FrameField) -> usize {
        let layout = FrameLayout::of(frame);
        let wire = stuff_frame(frame);
        layout.span(field).start + wire.stuff_count()
    }

    #[test]
    fn strikes_the_crc_delimiter() {
        let mut attacker = FrameTruncator::new(CanId::from_raw(0x315), TruncateAt::CrcDelim);
        let frame = CanFrame::data_frame(CanId::from_raw(0x315), &[7; 4]).unwrap();
        let driven = feed_frame(&mut attacker, &frame);
        assert_eq!(driven, vec![wire_index_of(&frame, FrameField::CrcDelim)]);
        assert_eq!(attacker.truncations(), 1);
    }

    #[test]
    fn strikes_the_ack_delimiter() {
        let mut attacker = FrameTruncator::new(CanId::from_raw(0x315), TruncateAt::AckDelim);
        let frame = CanFrame::data_frame(CanId::from_raw(0x315), &[7; 4]).unwrap();
        let driven = feed_frame(&mut attacker, &frame);
        assert_eq!(driven, vec![wire_index_of(&frame, FrameField::AckDelim)]);
    }

    #[test]
    fn strikes_the_first_eof_bit() {
        let mut attacker = FrameTruncator::new(CanId::from_raw(0x315), TruncateAt::Eof);
        let frame = CanFrame::data_frame(CanId::from_raw(0x315), &[7; 4]).unwrap();
        let driven = feed_frame(&mut attacker, &frame);
        assert_eq!(driven, vec![wire_index_of(&frame, FrameField::Eof)]);
    }

    #[test]
    fn ignores_bystander_frames() {
        let mut attacker = FrameTruncator::new(CanId::from_raw(0x315), TruncateAt::CrcDelim);
        let frame = CanFrame::data_frame(CanId::from_raw(0x316), &[7; 4]).unwrap();
        assert!(feed_frame(&mut attacker, &frame).is_empty());
        assert_eq!(attacker.truncations(), 0);
    }

    #[test]
    fn handles_the_trailing_stuff_bit_after_the_crc() {
        // Find a frame whose stuffed region ends in a five-bit run, which
        // forces one trailing stuff bit before the CRC delimiter — the
        // boundary the truncator must still hit exactly.
        let mut found = false;
        for raw in 0..0x200u16 {
            let frame = CanFrame::data_frame(CanId::from_raw(raw), &[raw as u8]).unwrap();
            let wire = stuff_frame(&frame);
            let layout = FrameLayout::of(&frame);
            let delim_unstuffed = layout.span(FrameField::CrcDelim).start;
            if wire
                .stuff_positions
                .last()
                .is_some_and(|&p| p == delim_unstuffed + wire.stuff_count() - 1)
            {
                let mut attacker = FrameTruncator::new(frame.id(), TruncateAt::CrcDelim);
                let driven = feed_frame(&mut attacker, &frame);
                assert_eq!(driven, vec![wire_index_of(&frame, FrameField::CrcDelim)]);
                found = true;
                break;
            }
        }
        assert!(found, "no frame with a trailing stuff bit in the scan");
    }

    #[test]
    fn quiescent_on_an_idle_bus() {
        let attacker = FrameTruncator::new(CanId::from_raw(0x173), TruncateAt::Eof);
        assert_eq!(attacker.next_activity(BitInstant::ZERO), None);
    }
}

//! Mid-frame error-flag injection (CANflict peripheral-conflict family).
//!
//! An active error flag is six consecutive dominant bits — the maximal
//! protocol violation. A node with raw bus access can fabricate one at
//! any point inside a frame: every receiver aborts with a stuff/form
//! error, the transmitter takes a bit error (TEC +8), and the frame is
//! retransmitted — over and over, if the attacker keeps triggering on
//! the same identifier. Unlike a protocol-compliant attacker the
//! injector has no error counters of its own, so error confinement never
//! silences it (the paper's "Attacker Limitations" argument, §VI-A).
//!
//! [`ErrorFlagInjector`] fires on a trigger identifier at a configurable
//! destuffed frame position, driving *exactly* six dominant bits.

use can_core::agent::BitAgent;
use can_core::{BitDuration, BitInstant, CanId, Level};
use can_obs::{Journal, JK_STRIKE};

use crate::watch::{FrameWatch, WatchEvent, ID_COMPLETE_CNT};

/// Length of an active error flag in bits (CAN 2.0 §7).
pub const ERROR_FLAG_BITS: u32 = 6;

/// A bit-level attacker that drives a six-dominant-bit error flag
/// mid-frame whenever the trigger identifier is on the bus.
#[derive(Debug, Clone)]
pub struct ErrorFlagInjector {
    trigger: CanId,
    /// Destuffed frame position (SOF = 1) of the first flag bit.
    flag_at: u32,
    watch: FrameWatch,
    armed: bool,
    /// Remaining dominant bits of the flag currently being driven.
    flag_left: u32,
    flags: u64,
    /// Causal event journal; disabled (no-op) by default.
    journal: Journal,
    /// Node index stamped on journal events.
    node_label: u32,
}

impl ErrorFlagInjector {
    /// Creates an injector that destroys every `trigger` frame with an
    /// error flag starting at destuffed position `flag_at` (SOF = 1).
    ///
    /// # Panics
    ///
    /// Panics if `flag_at <= 12`: the identifier is only complete after
    /// destuffed position 12, so earlier positions cannot be triggered
    /// by identifier.
    pub fn new(trigger: CanId, flag_at: u32) -> Self {
        assert!(
            flag_at > ID_COMPLETE_CNT,
            "flag_at must lie after the arbitration field (destuffed position > 12)"
        );
        ErrorFlagInjector {
            trigger,
            flag_at,
            watch: FrameWatch::new(),
            armed: false,
            flag_left: 0,
            flags: 0,
            journal: Journal::disabled(),
            node_label: 0,
        }
    }

    /// Error flags injected so far.
    pub fn flags_injected(&self) -> u64 {
        self.flags
    }

    /// Attaches a causal event journal; `node` is the index stamped on
    /// [`JK_STRIKE`] events, which join the attacked frame's causal chain.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.journal = journal;
        self.node_label = node;
    }
}

impl BitAgent for ErrorFlagInjector {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        if self.flag_left > 0 {
            // Mid-flag: the frame is already dead; the watch (aborted at
            // the trigger) just sees our dominant bits as bus noise that
            // resets its hunt, exactly like the real error flag would.
            self.flag_left -= 1;
            let _ = self.watch.push(level);
            return;
        }
        match self.watch.push(level) {
            WatchEvent::Sof | WatchEvent::Violation(_) | WatchEvent::FrameEnd => {
                self.armed = false;
            }
            _ => {}
        }
        if !self.armed
            && self.watch.cnt() >= ID_COMPLETE_CNT
            && self.watch.id() == Some(self.trigger)
        {
            self.armed = true;
        }
        // Fire when the *next* destuffed position is the target. If the
        // next wire bit is a stuff bit the count holds, so waiting for
        // `expecting_stuff` to clear lands the first flag bit exactly on
        // destuffed position `flag_at`.
        if self.armed && self.watch.cnt() + 1 == self.flag_at && !self.watch.expecting_stuff() {
            self.flag_left = ERROR_FLAG_BITS;
            self.flags += 1;
            self.armed = false;
            self.watch.abort();
            if self.journal.is_enabled() {
                self.journal.event(
                    now.bits(),
                    self.node_label,
                    JK_STRIKE,
                    &format!("error-flag at={}", self.flag_at),
                );
            }
        }
    }

    fn tx_level(&self) -> Option<Level> {
        (self.flag_left > 0).then_some(Level::Dominant)
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        if self.watch.is_idle() && self.flag_left == 0 {
            None
        } else {
            Some(now)
        }
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        if self.flag_left > 0 {
            Some(now)
        } else {
            Some(now + BitDuration::bits(1))
        }
    }

    fn skip_idle(&mut self, bits: u64, _from: BitInstant) {
        debug_assert!(self.watch.is_idle() && self.flag_left == 0);
        self.watch.skip_idle(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::bitstream::stuff_frame;
    use can_core::CanFrame;

    fn feed_frame(attacker: &mut ErrorFlagInjector, frame: &CanFrame) -> Vec<usize> {
        let mut t = 0u64;
        for _ in 0..12 {
            attacker.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        let wire = stuff_frame(frame);
        let mut driven = Vec::new();
        for (i, &bit) in wire.bits.iter().enumerate() {
            let seen = if attacker.tx_level() == Some(Level::Dominant) {
                driven.push(i);
                Level::Dominant
            } else {
                bit
            };
            attacker.on_bit(seen, BitInstant::from_bits(t));
            t += 1;
        }
        driven
    }

    #[test]
    fn drives_exactly_six_consecutive_bits() {
        let mut attacker = ErrorFlagInjector::new(CanId::from_raw(0x173), 20);
        let frame = CanFrame::data_frame(CanId::from_raw(0x173), &[0x55; 8]).unwrap();
        let driven = feed_frame(&mut attacker, &frame);
        assert_eq!(driven.len(), ERROR_FLAG_BITS as usize);
        for pair in driven.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "flag bits must be consecutive");
        }
        assert_eq!(attacker.flags_injected(), 1);
    }

    #[test]
    fn flag_lands_on_the_configured_destuffed_position() {
        // ID 0x173 with this payload: frame from the PR 3 golden vectors,
        // no stuff bits before position 20 except those the destuffer
        // accounts for — verify via a reference watch.
        let flag_at = 16;
        let mut attacker = ErrorFlagInjector::new(CanId::from_raw(0x173), flag_at);
        let frame = CanFrame::data_frame(CanId::from_raw(0x173), &[1, 2, 3]).unwrap();
        let driven = feed_frame(&mut attacker, &frame);

        // Replay the clean wire through a fresh watch and find the wire
        // index of destuffed position `flag_at`.
        let wire = stuff_frame(&frame);
        let mut watch = FrameWatch::new();
        for _ in 0..12 {
            watch.push(Level::Recessive);
        }
        let mut expected = None;
        for (i, &bit) in wire.bits.iter().enumerate() {
            watch.push(bit);
            if watch.cnt() == flag_at {
                expected = Some(i);
                break;
            }
        }
        assert_eq!(driven.first().copied(), expected);
    }

    #[test]
    fn ignores_non_trigger_frames() {
        let mut attacker = ErrorFlagInjector::new(CanId::from_raw(0x173), 13);
        let frame = CanFrame::data_frame(CanId::from_raw(0x174), &[0; 4]).unwrap();
        assert!(feed_frame(&mut attacker, &frame).is_empty());
        assert_eq!(attacker.flags_injected(), 0);
    }

    #[test]
    #[should_panic(expected = "after the arbitration field")]
    fn rejects_pre_arbitration_positions() {
        let _ = ErrorFlagInjector::new(CanId::from_raw(0x001), 12);
    }

    #[test]
    fn quiescent_on_an_idle_bus() {
        let attacker = ErrorFlagInjector::new(CanId::from_raw(0x173), 13);
        assert_eq!(attacker.next_activity(BitInstant::ZERO), None);
    }
}

//! The toggling attacker of Experiment 6 (paper §V-C).
//!
//! "The attacker node is sending two different CAN IDs consecutively,
//! e.g., toggling between 0x050 and 0x051. An ECU adds each message that
//! it schedules for transmission in a buffer until it is successfully
//! transmitted."

use can_core::app::Application;
use can_core::{BitInstant, CanFrame, CanId};

/// An attacker alternating between two identifiers on every injection.
#[derive(Debug, Clone)]
pub struct TogglingAttacker {
    ids: [CanId; 2],
    payload: [u8; 8],
    period_bits: u64,
    next_due: u64,
    injected: u64,
}

impl TogglingAttacker {
    /// Creates a toggling attacker alternating `first` and `second` every
    /// `period_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `period_bits` is zero or both identifiers are equal.
    pub fn new(first: CanId, second: CanId, period_bits: u64) -> Self {
        assert!(period_bits > 0, "period must be positive");
        assert_ne!(first, second, "toggling requires two distinct identifiers");
        TogglingAttacker {
            ids: [first, second],
            payload: [0; 8],
            period_bits,
            next_due: 0,
            injected: 0,
        }
    }

    /// Frames handed to the controller so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The pair of identifiers.
    pub fn ids(&self) -> [CanId; 2] {
        self.ids
    }
}

impl Application for TogglingAttacker {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if now.bits() >= self.next_due {
            self.next_due = now.bits() + self.period_bits;
            let id = self.ids[(self.injected % 2) as usize];
            self.injected += 1;
            Some(CanFrame::data_frame(id, &self.payload).expect("valid attack frame"))
        } else {
            None
        }
    }

    fn next_activity(&self, _now: BitInstant) -> Option<BitInstant> {
        Some(BitInstant::from_bits(self.next_due))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_alternate() {
        let mut attacker =
            TogglingAttacker::new(CanId::from_raw(0x050), CanId::from_raw(0x051), 10);
        let seq: Vec<u16> = (0..4)
            .map(|i| {
                attacker
                    .poll(BitInstant::from_bits(i * 10))
                    .unwrap()
                    .id()
                    .raw()
            })
            .collect();
        assert_eq!(seq, vec![0x050, 0x051, 0x050, 0x051]);
        assert_eq!(attacker.injected(), 4);
    }

    #[test]
    #[should_panic(expected = "two distinct identifiers")]
    fn equal_identifiers_panic() {
        let id = CanId::from_raw(0x10);
        let _ = TogglingAttacker::new(id, id, 10);
    }
}

//! Fabrication attacks (paper §III).
//!
//! "Fabrication attacks inject spoofed CAN messages with valid IDs but
//! arbitrary data. Without message authentication, ECUs accept them as
//! legitimate. To override real messages, the attacker must transmit at a
//! higher frequency."

use can_core::app::Application;
use can_core::{BitInstant, CanFrame, CanId};

/// A fabrication attacker: spoofs a legitimate identifier with attacker-
/// controlled data at `overdrive`× the legitimate period.
#[derive(Debug, Clone)]
pub struct FabricationAttacker {
    frame: CanFrame,
    period_bits: u64,
    next_due: u64,
    injected: u64,
}

impl FabricationAttacker {
    /// Creates an attacker spoofing `victim_id` with `data`, transmitting
    /// `overdrive` times as often as the victim's `victim_period_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `overdrive` is zero or the data exceeds 8 bytes.
    pub fn new(victim_id: CanId, data: &[u8], victim_period_bits: u64, overdrive: u64) -> Self {
        assert!(overdrive > 0, "overdrive must be positive");
        let frame = CanFrame::data_frame(victim_id, data).expect("payload must fit a CAN frame");
        FabricationAttacker {
            frame,
            period_bits: (victim_period_bits / overdrive).max(1),
            next_due: 0,
            injected: 0,
        }
    }

    /// The spoofed frame.
    pub fn frame(&self) -> &CanFrame {
        &self.frame
    }

    /// Frames handed to the controller so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl Application for FabricationAttacker {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if now.bits() >= self.next_due {
            self.next_due = now.bits() + self.period_bits;
            self.injected += 1;
            Some(self.frame)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overdrive_shortens_the_period() {
        let id = CanId::from_raw(0x1A0);
        let mut attacker = FabricationAttacker::new(id, &[0xFF; 8], 1_000, 4);
        assert!(attacker.poll(BitInstant::from_bits(0)).is_some());
        assert!(attacker.poll(BitInstant::from_bits(249)).is_none());
        assert!(attacker.poll(BitInstant::from_bits(250)).is_some());
        assert_eq!(attacker.injected(), 2);
    }

    #[test]
    fn spoofed_frame_carries_attacker_data() {
        let id = CanId::from_raw(0x2B0);
        let attacker = FabricationAttacker::new(id, &[0xDE, 0xAD], 500, 1);
        assert_eq!(attacker.frame().id(), id);
        assert_eq!(attacker.frame().data(), &[0xDE, 0xAD]);
    }

    #[test]
    #[should_panic(expected = "overdrive must be positive")]
    fn zero_overdrive_panics() {
        let _ = FabricationAttacker::new(CanId::from_raw(1), &[], 100, 0);
    }
}

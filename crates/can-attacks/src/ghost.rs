//! A CANnon-style bit-level attacker (paper §VI-A).
//!
//! Kulandaivel et al.'s CANnon shows the *offensive* use of the same
//! capability MichiCAN uses defensively: an attacker with bit-level bus
//! access can inject single dominant bits into a victim's transmission,
//! forcing error frames until the victim is bused off — without owning a
//! protocol-compliant controller whose TEC could be attacked back.
//!
//! [`GhostInjector`] implements that attacker as a
//! [`can_core::agent::BitAgent`]: it hunts for SOFs, parses the
//! identifier of the ongoing frame, and pulls the bus dominant right
//! after the victim's arbitration field. It demonstrates the paper's
//! "Attacker Limitations" point: MichiCAN's counterattack is powerless
//! against a GPIO-only adversary (there is no transmit error counter to
//! inflate), which is why access to pin multiplexing must be isolated
//! from compromisable software (paper §III, Fig. 3).

use can_core::agent::BitAgent;
use can_core::bitstream::{Destuffed, Destuffer, MIN_INTERFRAME_RECESSIVE};
use can_core::{BitDuration, BitInstant, CanId, Level};
use can_obs::{Journal, JK_STRIKE};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GhostState {
    BusIdle,
    InFrame,
}

/// A bit-level bus-off attacker targeting one victim identifier.
#[derive(Debug, Clone)]
pub struct GhostInjector {
    victim: CanId,
    state: GhostState,
    recessive_run: u32,
    destuffer: Destuffer,
    /// Destuffed frame position, SOF = 1.
    cnt: u32,
    /// Identifier bits accumulated so far.
    id_acc: u16,
    id_bits: u8,
    injecting: bool,
    /// Injections performed (each destroys one victim transmission).
    injections: u64,
    /// Causal event journal; disabled (no-op) by default.
    journal: Journal,
    /// Node index stamped on journal events.
    node_label: u32,
}

impl GhostInjector {
    /// Creates an injector that destroys every transmission of `victim`.
    pub fn new(victim: CanId) -> Self {
        GhostInjector {
            victim,
            state: GhostState::BusIdle,
            recessive_run: 0,
            destuffer: Destuffer::new(),
            cnt: 0,
            id_acc: 0,
            id_bits: 0,
            injecting: false,
            injections: 0,
            journal: Journal::disabled(),
            node_label: 0,
        }
    }

    /// Transmissions destroyed so far.
    pub fn injections(&self) -> u64 {
        self.injections
    }

    /// Attaches a causal event journal; `node` is the index stamped on
    /// [`JK_STRIKE`] events, which join the attacked frame's causal chain.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.journal = journal;
        self.node_label = node;
    }

    fn enter_frame(&mut self) {
        self.state = GhostState::InFrame;
        self.recessive_run = 0;
        self.destuffer.reset();
        let _ = self.destuffer.push(Level::Dominant);
        self.cnt = 1;
        self.id_acc = 0;
        self.id_bits = 0;
    }

    fn leave_frame(&mut self) {
        self.state = GhostState::BusIdle;
        self.recessive_run = 0;
        self.injecting = false;
    }
}

impl BitAgent for GhostInjector {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        match self.state {
            GhostState::BusIdle => {
                if level.is_recessive() {
                    self.recessive_run = self.recessive_run.saturating_add(1);
                } else if self.recessive_run >= MIN_INTERFRAME_RECESSIVE as u32 {
                    self.enter_frame();
                } else {
                    self.recessive_run = 0;
                }
            }
            GhostState::InFrame => {
                match self.destuffer.push(level) {
                    Destuffed::StuffBit | Destuffed::Violation => return,
                    Destuffed::Bit(bit) => {
                        self.cnt += 1;
                        if (2..=12).contains(&self.cnt) {
                            self.id_acc = (self.id_acc << 1) | bit.to_bit() as u16;
                            self.id_bits += 1;
                        }
                    }
                }
                // Inject right after arbitration when the victim matched.
                if self.cnt == 13 && self.id_bits == 11 && self.id_acc == self.victim.raw() {
                    self.injecting = true;
                    self.injections += 1;
                    if self.journal.is_enabled() {
                        self.journal
                            .event(now.bits(), self.node_label, JK_STRIKE, "ghost");
                    }
                }
                if self.cnt >= 20 {
                    self.leave_frame();
                }
            }
        }
    }

    fn tx_level(&self) -> Option<Level> {
        if self.injecting {
            Some(Level::Dominant)
        } else {
            None
        }
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        // Hunting on an idle bus only counts recessive bits (closed form
        // in `skip_idle`); mid-frame every bit matters.
        match self.state {
            GhostState::BusIdle if !self.injecting => None,
            _ => Some(now),
        }
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        // An injection can only begin after the ghost has observed
        // another bit, so one bit from now is the earliest possible drive
        // under arbitrary bus input.
        if self.injecting {
            Some(now)
        } else {
            Some(now + BitDuration::bits(1))
        }
    }

    fn skip_idle(&mut self, bits: u64, _from: BitInstant) {
        debug_assert!(matches!(self.state, GhostState::BusIdle) && !self.injecting);
        self.recessive_run = self
            .recessive_run
            .saturating_add(u32::try_from(bits).unwrap_or(u32::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::bitstream::stuff_frame;
    use can_core::CanFrame;

    fn feed_frame(ghost: &mut GhostInjector, frame: &CanFrame) -> bool {
        let mut t = 0u64;
        for _ in 0..12 {
            ghost.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        let wire = stuff_frame(frame);
        let mut injected = false;
        for &bit in &wire.bits {
            let seen = if ghost.injecting {
                Level::Dominant
            } else {
                bit
            };
            ghost.on_bit(seen, BitInstant::from_bits(t));
            injected |= ghost.injecting;
            t += 1;
        }
        injected
    }

    #[test]
    fn injects_into_the_victim_only() {
        let mut ghost = GhostInjector::new(CanId::from_raw(0x123));
        let victim = CanFrame::data_frame(CanId::from_raw(0x123), &[1; 8]).unwrap();
        let bystander = CanFrame::data_frame(CanId::from_raw(0x124), &[1; 8]).unwrap();
        assert!(feed_frame(&mut ghost, &victim));
        assert!(!feed_frame(&mut ghost, &bystander));
        assert_eq!(ghost.injections(), 1);
    }

    #[test]
    fn releases_the_bus_after_the_window() {
        let mut ghost = GhostInjector::new(CanId::from_raw(0x0F0));
        let victim = CanFrame::data_frame(CanId::from_raw(0x0F0), &[0; 8]).unwrap();
        feed_frame(&mut ghost, &victim);
        assert!(
            ghost.tx_level().is_none(),
            "the pin must be released after the injection window"
        );
    }
}

//! An adaptive attacker that races the defender's reaction window.
//!
//! MichiCAN's counterattack lands a few bits after its detection point
//! (paper §IV-E): the defender must finish classifying the identifier
//! before it may drive the bus. That latency is *observable on the wire*
//! — the counterattack surfaces as a stuff violation at a characteristic
//! destuffed position. [`AdaptiveRacer`] measures it: for a configurable
//! number of probe frames it watches the victim identifier passively and
//! records where frames die; then it starts striking its own error flag
//! `lead` bits *before* the earliest observed kill position, racing the
//! defender to the frame.
//!
//! The racer keeps its measurement in an internal [`can_obs::Histogram`]
//! so its decisions are self-contained and deterministic; an optional
//! [`can_obs::Recorder`] mirror exports the observations and strike
//! counts for analysis without ever influencing behavior.

use can_core::agent::BitAgent;
use can_core::{BitDuration, BitInstant, CanId, Level};
use can_obs::{Histogram, Journal, Recorder, DEFAULT_BUCKETS, JK_PROBE, JK_STRIKE};

use crate::error_flag::ERROR_FLAG_BITS;
use crate::watch::{FrameWatch, WatchEvent, ID_COMPLETE_CNT};

/// Earliest destuffed position the racer will ever strike at: the bit
/// right after the arbitration field (it must see the whole identifier
/// to know the frame is worth attacking).
pub const EARLIEST_STRIKE_CNT: u32 = ID_COMPLETE_CNT + 1;

/// Pre-interned metric keys (built once in [`AdaptiveRacer::set_recorder`]
/// so the per-bit path never formats).
#[derive(Debug, Clone)]
struct RacerKeys {
    recorder: Recorder,
    observed: String,
    strikes: String,
    losses: String,
}

/// A bit-level attacker that measures the defender's reaction latency on
/// the wire and times its injection to beat the counterattack window.
#[derive(Debug, Clone)]
pub struct AdaptiveRacer {
    victim: CanId,
    /// Victim frames to observe passively before striking.
    probe_frames: u32,
    /// Bits to strike ahead of the earliest observed kill position.
    lead: u32,
    /// Strike position used when probing observed no kills (an undefended
    /// victim: any mid-frame position works).
    fallback_at: u32,
    watch: FrameWatch,
    armed: bool,
    probes_seen: u32,
    /// Destuffed positions at which observed victim frames died.
    observed: Histogram,
    flag_left: u32,
    strikes: u64,
    /// Victim frames that died before the racer's planned strike position
    /// while in strike mode — races lost to the defender.
    losses: u64,
    keys: Option<RacerKeys>,
    /// Causal event journal; disabled (no-op) by default.
    journal: Journal,
    /// Node index stamped on journal events.
    node_label: u32,
}

impl AdaptiveRacer {
    /// Creates a racer against `victim` that probes `probe_frames` frames,
    /// then strikes `lead` bits before the earliest observed kill —
    /// falling back to `fallback_at` when probing saw no kills.
    ///
    /// # Panics
    ///
    /// Panics if `fallback_at <= 12` (see [`EARLIEST_STRIKE_CNT`]).
    pub fn new(victim: CanId, probe_frames: u32, lead: u32, fallback_at: u32) -> Self {
        assert!(
            fallback_at >= EARLIEST_STRIKE_CNT,
            "fallback_at must lie after the arbitration field (destuffed position > 12)"
        );
        AdaptiveRacer {
            victim,
            probe_frames,
            lead,
            fallback_at,
            watch: FrameWatch::new(),
            armed: false,
            probes_seen: 0,
            observed: Histogram::new(DEFAULT_BUCKETS),
            flag_left: 0,
            strikes: 0,
            losses: 0,
            keys: None,
            journal: Journal::disabled(),
            node_label: 0,
        }
    }

    /// Attaches a causal event journal; `node` is the index stamped on
    /// events. Probe outcomes ([`JK_PROBE`]) and strikes ([`JK_STRIKE`])
    /// join the causal chain of the victim frame they concern.
    pub fn set_journal(&mut self, journal: Journal, node: u32) {
        self.journal = journal;
        self.node_label = node;
    }

    /// Mirrors the racer's measurements into `recorder` under keys labeled
    /// with `node`. Purely observational: behavior is unchanged whether or
    /// not a recorder is attached or enabled.
    pub fn set_recorder(&mut self, recorder: &Recorder, node: u32) {
        let observed = format!("adaptive_racer_observed_kill_bits{{node=\"{node}\"}}");
        recorder.declare_histogram(&observed, DEFAULT_BUCKETS);
        self.keys = Some(RacerKeys {
            recorder: recorder.clone(),
            observed,
            strikes: format!("adaptive_racer_strikes_total{{node=\"{node}\"}}"),
            losses: format!("adaptive_racer_races_lost_total{{node=\"{node}\"}}"),
        });
    }

    /// Whether the racer is still in its passive probing phase.
    pub fn probing(&self) -> bool {
        self.probes_seen < self.probe_frames
    }

    /// The destuffed position the racer strikes at once probing ends.
    ///
    /// `earliest observed kill − lead`, clamped to just past arbitration;
    /// the fallback when no kill was observed.
    pub fn strike_at(&self) -> u32 {
        match self.observed.min() {
            Some(min) => {
                let min = u32::try_from(min).unwrap_or(u32::MAX);
                min.saturating_sub(self.lead).max(EARLIEST_STRIKE_CNT)
            }
            None => self.fallback_at,
        }
    }

    /// Error flags driven so far.
    pub fn strikes(&self) -> u64 {
        self.strikes
    }

    /// Races lost to the defender (victim frames that died before the
    /// racer's planned position while it was in strike mode).
    pub fn races_lost(&self) -> u64 {
        self.losses
    }

    fn record_kill(&mut self, at: u32) {
        self.observed.observe(u64::from(at));
        if let Some(keys) = &self.keys {
            keys.recorder.observe(&keys.observed, u64::from(at));
        }
    }
}

impl BitAgent for AdaptiveRacer {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        if self.flag_left > 0 {
            self.flag_left -= 1;
            let _ = self.watch.push(level);
            return;
        }
        match self.watch.push(level) {
            WatchEvent::Sof => self.armed = false,
            WatchEvent::Violation(at) => {
                if self.armed {
                    // A victim frame died without us: the defender's
                    // counterattack (or another error) landed at `at`.
                    self.record_kill(at);
                    if self.probing() {
                        self.probes_seen += 1;
                        if self.journal.is_enabled() {
                            self.journal.event(
                                now.bits(),
                                self.node_label,
                                JK_PROBE,
                                &format!("kill={at}"),
                            );
                        }
                    } else {
                        self.losses += 1;
                        if let Some(keys) = &self.keys {
                            keys.recorder.inc(&keys.losses);
                        }
                        if self.journal.is_enabled() {
                            self.journal.event(
                                now.bits(),
                                self.node_label,
                                JK_PROBE,
                                &format!("lost={at}"),
                            );
                        }
                    }
                }
                self.armed = false;
            }
            WatchEvent::FrameEnd => {
                // A victim frame survived untouched; probing learns from
                // that too (no kill observed ⇒ nothing to race).
                if self.armed && self.probing() {
                    self.probes_seen += 1;
                    if self.journal.is_enabled() {
                        self.journal
                            .event(now.bits(), self.node_label, JK_PROBE, "survived");
                    }
                }
                self.armed = false;
            }
            _ => {}
        }
        if !self.armed
            && self.watch.cnt() >= ID_COMPLETE_CNT
            && self.watch.id() == Some(self.victim)
        {
            self.armed = true;
        }
        if self.armed
            && !self.probing()
            && self.watch.cnt() + 1 == self.strike_at()
            && !self.watch.expecting_stuff()
        {
            self.flag_left = ERROR_FLAG_BITS;
            self.strikes += 1;
            if let Some(keys) = &self.keys {
                keys.recorder.inc(&keys.strikes);
            }
            if self.journal.is_enabled() {
                self.journal.event(
                    now.bits(),
                    self.node_label,
                    JK_STRIKE,
                    &format!("adaptive at={}", self.strike_at()),
                );
            }
            self.armed = false;
            self.watch.abort();
        }
    }

    fn tx_level(&self) -> Option<Level> {
        (self.flag_left > 0).then_some(Level::Dominant)
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        if self.watch.is_idle() && self.flag_left == 0 {
            None
        } else {
            Some(now)
        }
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        if self.flag_left > 0 {
            Some(now)
        } else {
            Some(now + BitDuration::bits(1))
        }
    }

    fn skip_idle(&mut self, bits: u64, _from: BitInstant) {
        debug_assert!(self.watch.is_idle() && self.flag_left == 0);
        self.watch.skip_idle(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::bitstream::stuff_frame;
    use can_core::CanFrame;

    /// Feeds a frame, killing it at destuffed position `kill_at` (the
    /// "defender") unless the racer strikes first. Returns what ended the
    /// frame: `Some(true)` racer struck, `Some(false)` defender killed.
    fn feed_contested(
        racer: &mut AdaptiveRacer,
        frame: &CanFrame,
        kill_at: Option<u32>,
    ) -> Option<bool> {
        let mut t = 0u64;
        for _ in 0..20 {
            racer.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        // Reference watch to locate destuffed positions on the wire.
        let mut reference = FrameWatch::new();
        for _ in 0..20 {
            reference.push(Level::Recessive);
        }
        let wire = stuff_frame(frame);
        let mut outcome = None;
        for &bit in &wire.bits {
            if racer.tx_level() == Some(Level::Dominant) {
                // Racer strike: drive the flag to completion, then stop.
                while racer.tx_level() == Some(Level::Dominant) {
                    racer.on_bit(Level::Dominant, BitInstant::from_bits(t));
                    t += 1;
                }
                outcome = Some(true);
                break;
            }
            reference.push(bit);
            racer.on_bit(bit, BitInstant::from_bits(t));
            t += 1;
            if kill_at.is_some_and(|k| reference.cnt() == k) {
                // Defender kill: six dominant bits starting next bit.
                for _ in 0..6 {
                    racer.on_bit(Level::Dominant, BitInstant::from_bits(t));
                    t += 1;
                }
                outcome = Some(false);
                break;
            }
        }
        // Error delimiter / interframe space.
        for _ in 0..14 {
            racer.on_bit(Level::Recessive, BitInstant::from_bits(t));
            t += 1;
        }
        outcome
    }

    #[test]
    fn probes_then_beats_the_observed_kill_position() {
        let victim = CanId::from_raw(0x173);
        let frame = CanFrame::data_frame(victim, &[0xA5; 8]).unwrap();
        let mut racer = AdaptiveRacer::new(victim, 2, 5, 25);
        // Two probe frames killed by a "defender" flooding from destuffed
        // bit 21 on. On the wire the violation completes once the run
        // reaches six — at destuffed position 25 for this frame.
        assert_eq!(feed_contested(&mut racer, &frame, Some(20)), Some(false));
        assert_eq!(feed_contested(&mut racer, &frame, Some(20)), Some(false));
        assert!(!racer.probing());
        assert_eq!(racer.strike_at(), 20, "min(25) - lead(5)");
        // Third frame: the racer strikes before the defender's trigger.
        assert_eq!(feed_contested(&mut racer, &frame, Some(20)), Some(true));
        assert_eq!(racer.strikes(), 1);
        assert_eq!(racer.races_lost(), 0);
    }

    #[test]
    fn falls_back_when_probing_sees_no_kills() {
        let victim = CanId::from_raw(0x0B4);
        let frame = CanFrame::data_frame(victim, &[1, 2]).unwrap();
        let mut racer = AdaptiveRacer::new(victim, 1, 3, 30);
        assert_eq!(feed_contested(&mut racer, &frame, None), None);
        assert!(!racer.probing());
        assert_eq!(racer.strike_at(), 30);
        assert_eq!(feed_contested(&mut racer, &frame, None), Some(true));
        assert_eq!(racer.strikes(), 1);
    }

    #[test]
    fn counts_lost_races() {
        let victim = CanId::from_raw(0x173);
        let frame = CanFrame::data_frame(victim, &[0; 8]).unwrap();
        let mut racer = AdaptiveRacer::new(victim, 1, 0, 25);
        assert_eq!(feed_contested(&mut racer, &frame, Some(30)), Some(false));
        let after_probe = racer.strike_at();
        // A much faster defender beats the racer's planned position.
        assert_eq!(feed_contested(&mut racer, &frame, Some(14)), Some(false));
        assert_eq!(racer.races_lost(), 1);
        // The loss also tightens the next strike.
        assert!(racer.strike_at() < after_probe);
    }

    #[test]
    fn clamps_to_the_post_arbitration_floor() {
        let victim = CanId::from_raw(0x001);
        let frame = CanFrame::data_frame(victim, &[]).unwrap();
        let mut racer = AdaptiveRacer::new(victim, 1, 50, 20);
        assert_eq!(feed_contested(&mut racer, &frame, Some(14)), Some(false));
        assert_eq!(racer.strike_at(), EARLIEST_STRIKE_CNT);
    }

    #[test]
    fn recorder_mirror_does_not_change_behavior() {
        let victim = CanId::from_raw(0x173);
        let frame = CanFrame::data_frame(victim, &[0xA5; 8]).unwrap();
        let mut plain = AdaptiveRacer::new(victim, 1, 2, 25);
        let recorder = Recorder::enabled();
        let mut mirrored = AdaptiveRacer::new(victim, 1, 2, 25);
        mirrored.set_recorder(&recorder, 7);
        for kill in [Some(20), Some(20), Some(18)] {
            assert_eq!(
                feed_contested(&mut plain, &frame, kill),
                feed_contested(&mut mirrored, &frame, kill)
            );
        }
        assert_eq!(plain.strikes(), mirrored.strikes());
        assert_eq!(plain.strike_at(), mirrored.strike_at());
        // And the mirror actually exported the measurement.
        let registry = recorder.into_registry();
        let hist = registry
            .histogram("adaptive_racer_observed_kill_bits{node=\"7\"}")
            .expect("observed-kill histogram exported");
        assert_eq!(hist.count(), 2, "one probe kill + one lost race");
        assert!(hist.min().is_some());
    }
}

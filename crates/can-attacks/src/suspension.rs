//! Suspension (DoS) attackers — Fig. 2 of the paper.
//!
//! A suspension attacker floods the bus with high-priority identifiers so
//! that legitimate messages keep losing arbitration:
//!
//! * **traditional** — identifier 0x000 outranks everything: total DoS;
//! * **targeted** — an identifier just below the victim's: only messages
//!   at or below the victim's priority are suppressed;
//! * **random** — a fresh random identifier below the victim per
//!   injection.

use can_core::app::Application;
use can_core::{BitInstant, CanFrame, CanId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flavor of suspension attack (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DosKind {
    /// Identifier 0x000: blocks every ECU.
    Traditional,
    /// A fixed identifier with higher priority than the victim's.
    Targeted {
        /// The identifier to flood (e.g. 0x25F against ParkSense's 0x260).
        id: CanId,
    },
    /// A fresh random identifier below `below` per injection.
    Random {
        /// Exclusive upper bound for the random identifiers.
        below: CanId,
    },
}

/// A protocol-compliant DoS attacker flooding the bus.
///
/// `period_bits` controls the injection rate; a compromised ECU saturating
/// the bus uses a period shorter than one frame so a frame is always
/// pending (the controller's automatic retransmission does the rest).
#[derive(Debug)]
pub struct SuspensionAttacker {
    kind: DosKind,
    payload: [u8; 8],
    dlc: usize,
    period_bits: u64,
    next_due: u64,
    injected: u64,
    rng: StdRng,
}

impl SuspensionAttacker {
    /// Creates an attacker of the given kind injecting every
    /// `period_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `period_bits` is zero.
    pub fn new(kind: DosKind, period_bits: u64) -> Self {
        assert!(period_bits > 0, "period must be positive");
        SuspensionAttacker {
            kind,
            payload: [0; 8],
            dlc: 8,
            period_bits,
            next_due: 0,
            injected: 0,
            rng: StdRng::seed_from_u64(0x5EED_CADE),
        }
    }

    /// A saturating attacker: always has a frame pending.
    pub fn saturating(kind: DosKind) -> Self {
        Self::new(kind, 1)
    }

    /// Overrides the payload (default: 8 zero bytes).
    pub fn with_payload(mut self, payload: &[u8]) -> Self {
        assert!(payload.len() <= 8);
        self.dlc = payload.len();
        self.payload = [0; 8];
        self.payload[..payload.len()].copy_from_slice(payload);
        self
    }

    /// Number of frames handed to the controller so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The attack kind.
    pub fn kind(&self) -> DosKind {
        self.kind
    }

    fn attack_id(&mut self) -> CanId {
        match self.kind {
            DosKind::Traditional => CanId::HIGHEST_PRIORITY,
            DosKind::Targeted { id } => id,
            DosKind::Random { below } => {
                let bound = below.raw().max(1);
                CanId::from_raw(self.rng.random_range(0..bound))
            }
        }
    }
}

impl Application for SuspensionAttacker {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if now.bits() >= self.next_due {
            self.next_due = now.bits() + self.period_bits;
            self.injected += 1;
            let id = self.attack_id();
            let dlc = self.dlc;
            Some(CanFrame::data_frame(id, &self.payload[..dlc]).expect("valid attack frame"))
        } else {
            None
        }
    }

    fn next_activity(&self, _now: BitInstant) -> Option<BitInstant> {
        Some(BitInstant::from_bits(self.next_due))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_attacker_uses_id_zero() {
        let mut attacker = SuspensionAttacker::saturating(DosKind::Traditional);
        let frame = attacker.poll(BitInstant::ZERO).unwrap();
        assert_eq!(frame.id(), CanId::HIGHEST_PRIORITY);
        assert_eq!(frame.dlc(), 8);
    }

    #[test]
    fn targeted_attacker_uses_configured_id() {
        let id = CanId::from_raw(0x25F);
        let mut attacker = SuspensionAttacker::saturating(DosKind::Targeted { id });
        assert_eq!(attacker.poll(BitInstant::ZERO).unwrap().id(), id);
        assert_eq!(attacker.injected(), 1);
    }

    #[test]
    fn random_attacker_stays_below_bound() {
        let below = CanId::from_raw(0x100);
        let mut attacker = SuspensionAttacker::new(DosKind::Random { below }, 1);
        let mut distinct = std::collections::HashSet::new();
        for t in 0..200 {
            let frame = attacker.poll(BitInstant::from_bits(t)).unwrap();
            assert!(frame.id().raw() < 0x100);
            distinct.insert(frame.id());
        }
        assert!(distinct.len() > 10, "random ids must vary");
    }

    #[test]
    fn random_ids_are_deterministic_per_seed() {
        let below = CanId::from_raw(0x80);
        let mut a = SuspensionAttacker::new(DosKind::Random { below }, 1);
        let mut b = SuspensionAttacker::new(DosKind::Random { below }, 1);
        for t in 0..50 {
            assert_eq!(
                a.poll(BitInstant::from_bits(t)).unwrap().id(),
                b.poll(BitInstant::from_bits(t)).unwrap().id()
            );
        }
    }

    #[test]
    fn injection_respects_period() {
        let mut attacker = SuspensionAttacker::new(DosKind::Traditional, 100);
        assert!(attacker.poll(BitInstant::from_bits(0)).is_some());
        assert!(attacker.poll(BitInstant::from_bits(50)).is_none());
        assert!(attacker.poll(BitInstant::from_bits(100)).is_some());
        assert_eq!(attacker.injected(), 2);
    }

    #[test]
    fn custom_payload_is_carried() {
        let mut attacker =
            SuspensionAttacker::saturating(DosKind::Traditional).with_payload(&[1, 2, 3]);
        let frame = attacker.poll(BitInstant::ZERO).unwrap();
        assert_eq!(frame.data(), &[1, 2, 3]);
    }
}

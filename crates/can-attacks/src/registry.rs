//! The scenario registry: every attacker in this crate, enumerable by
//! stable name with its parameter grid.
//!
//! Campaigns and the `experiments attacks` runner should never hard-code
//! attacker constructors: the registry maps each attack to the variants
//! worth sweeping, so adding an attacker here automatically grows every
//! downstream table, differential pin and CI smoke run.
//!
//! Two attacker classes share the registry:
//!
//! * **bit-level** ([`AttackAgent::Bit`]) — CANflict-style peripheral
//!   adversaries implementing [`can_core::agent::BitAgent`]; they bypass
//!   error confinement entirely.
//! * **controller-level** ([`AttackAgent::App`]) — protocol-compliant
//!   attackers implementing [`can_core::app::Application`]; their TEC is
//!   exactly what MichiCAN's counterattack inflates.
//!
//! Scenario *assembly* (nodes, defenders, simulator) stays in `bench`;
//! the registry only produces the attacker itself, parameterized by the
//! victim identifier and its transmission period.

use can_core::agent::BitAgent;
use can_core::app::Application;
use can_core::CanId;
use can_obs::Journal;

use crate::adaptive::AdaptiveRacer;
use crate::error_flag::ErrorFlagInjector;
use crate::fabrication::FabricationAttacker;
use crate::ghost::GhostInjector;
use crate::masquerade::MasqueradeAttacker;
use crate::stuff_overwrite::StuffBitOverwrite;
use crate::suspension::{DosKind, SuspensionAttacker};
use crate::toggling::TogglingAttacker;
use crate::truncator::{FrameTruncator, TruncateAt};

/// An instantiated attacker, ready to mount on a simulator node.
pub enum AttackAgent {
    /// A bit-level adversary (mount with `Node::with_agent`).
    Bit(Box<dyn BitAgent>),
    /// A controller-level adversary (mount as the node's application).
    App(Box<dyn Application>),
}

/// Parameters of one registry variant. `Copy` so variant tables can be
/// `'static` and labels can be rebuilt anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackParams {
    /// [`StuffBitOverwrite`]: which overwritable stuff bit to strike.
    StuffOverwrite {
        /// Recessive stuff bits to let pass per frame before striking.
        skip: u32,
    },
    /// [`ErrorFlagInjector`]: where the flag lands.
    ErrorFlag {
        /// Destuffed frame position (SOF = 1) of the first flag bit.
        flag_at: u32,
    },
    /// [`FrameTruncator`]: which fixed-form boundary to cut at.
    Truncate {
        /// The boundary to strike.
        at: TruncateAt,
    },
    /// [`AdaptiveRacer`]: probing depth and racing margin.
    Adaptive {
        /// Victim frames observed passively before striking.
        probe_frames: u32,
        /// Bits struck ahead of the earliest observed kill.
        lead: u32,
        /// Strike position when probing saw no kills.
        fallback_at: u32,
    },
    /// [`GhostInjector`]: no parameters.
    Ghost,
    /// [`FabricationAttacker`]: spoof rate relative to the victim.
    Fabrication {
        /// Injection frequency multiple of the victim's own rate.
        overdrive: u64,
    },
    /// [`MasqueradeAttacker`]: suspension-then-fabrication takeover.
    Masquerade {
        /// Victim silence (in multiples of its period) before takeover.
        silence_periods: u64,
    },
    /// [`SuspensionAttacker`] with [`DosKind::Traditional`].
    DosTraditional {
        /// Bits between flood frames.
        period_bits: u64,
    },
    /// [`SuspensionAttacker`] with [`DosKind::Targeted`] at the identifier
    /// just above the victim's priority.
    DosTargeted {
        /// Bits between flood frames.
        period_bits: u64,
    },
    /// [`TogglingAttacker`] alternating the victim identifier with its
    /// lower-priority neighbor.
    Toggling {
        /// Bits between frames.
        period_bits: u64,
    },
}

/// One named, parameterized entry of the adversary zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttackVariant {
    /// Stable registry name of the attack family (e.g. `"stuff-overwrite"`).
    pub attack: &'static str,
    /// This variant's parameters.
    pub params: AttackParams,
}

impl AttackVariant {
    /// Stable scenario label: the attack name plus its distinguishing
    /// parameters, usable in reports, journals and differential pins.
    pub fn label(&self) -> String {
        match self.params {
            AttackParams::StuffOverwrite { skip } => format!("{}[skip={skip}]", self.attack),
            AttackParams::ErrorFlag { flag_at } => format!("{}[at={flag_at}]", self.attack),
            AttackParams::Truncate { at } => format!("{}[{}]", self.attack, at.label()),
            AttackParams::Adaptive {
                probe_frames, lead, ..
            } => format!("{}[probe={probe_frames},lead={lead}]", self.attack),
            AttackParams::Ghost => self.attack.to_string(),
            AttackParams::Fabrication { overdrive } => format!("{}[x{overdrive}]", self.attack),
            AttackParams::Masquerade { silence_periods } => {
                format!("{}[silence={silence_periods}p]", self.attack)
            }
            AttackParams::DosTraditional { .. } | AttackParams::DosTargeted { .. } => {
                self.attack.to_string()
            }
            AttackParams::Toggling { .. } => self.attack.to_string(),
        }
    }

    /// Whether this variant is a bit-level (controller-less) adversary.
    pub fn bit_level(&self) -> bool {
        matches!(
            self.params,
            AttackParams::StuffOverwrite { .. }
                | AttackParams::ErrorFlag { .. }
                | AttackParams::Truncate { .. }
                | AttackParams::Adaptive { .. }
                | AttackParams::Ghost
        )
    }

    /// Builds the attacker against `victim` (transmitting every
    /// `victim_period_bits` bits).
    pub fn instantiate(&self, victim: CanId, victim_period_bits: u64) -> AttackAgent {
        match self.params {
            AttackParams::StuffOverwrite { skip } => {
                AttackAgent::Bit(Box::new(StuffBitOverwrite::new(victim, skip)))
            }
            AttackParams::ErrorFlag { flag_at } => {
                AttackAgent::Bit(Box::new(ErrorFlagInjector::new(victim, flag_at)))
            }
            AttackParams::Truncate { at } => {
                AttackAgent::Bit(Box::new(FrameTruncator::new(victim, at)))
            }
            AttackParams::Adaptive {
                probe_frames,
                lead,
                fallback_at,
            } => AttackAgent::Bit(Box::new(AdaptiveRacer::new(
                victim,
                probe_frames,
                lead,
                fallback_at,
            ))),
            AttackParams::Ghost => AttackAgent::Bit(Box::new(GhostInjector::new(victim))),
            AttackParams::Fabrication { overdrive } => AttackAgent::App(Box::new(
                FabricationAttacker::new(victim, &[0xBA; 8], victim_period_bits, overdrive),
            )),
            AttackParams::Masquerade { silence_periods } => {
                AttackAgent::App(Box::new(MasqueradeAttacker::new(
                    victim,
                    &[0xBA; 8],
                    silence_periods.saturating_mul(victim_period_bits.max(1)),
                    victim_period_bits.max(1),
                )))
            }
            AttackParams::DosTraditional { period_bits } => AttackAgent::App(Box::new(
                SuspensionAttacker::new(DosKind::Traditional, period_bits),
            )),
            AttackParams::DosTargeted { period_bits } => {
                let id = victim
                    .higher_priority_neighbor()
                    .unwrap_or(CanId::HIGHEST_PRIORITY);
                AttackAgent::App(Box::new(SuspensionAttacker::new(
                    DosKind::Targeted { id },
                    period_bits,
                )))
            }
            AttackParams::Toggling { period_bits } => {
                let second = victim.lower_priority_neighbor().unwrap_or(victim);
                AttackAgent::App(Box::new(TogglingAttacker::new(victim, second, period_bits)))
            }
        }
    }

    /// Like [`AttackVariant::instantiate`], but attaches a causal event
    /// [`Journal`] before boxing. Bit-level adversaries emit strike and
    /// probe events stamped with `node`; controller-level attackers leave
    /// their trace through the bus journal itself (frame starts carry the
    /// transmitting node), so they need no explicit wiring.
    pub fn instantiate_observed(
        &self,
        victim: CanId,
        victim_period_bits: u64,
        journal: &Journal,
        node: u32,
    ) -> AttackAgent {
        match self.params {
            AttackParams::StuffOverwrite { skip } => {
                let mut a = StuffBitOverwrite::new(victim, skip);
                a.set_journal(journal.clone(), node);
                AttackAgent::Bit(Box::new(a))
            }
            AttackParams::ErrorFlag { flag_at } => {
                let mut a = ErrorFlagInjector::new(victim, flag_at);
                a.set_journal(journal.clone(), node);
                AttackAgent::Bit(Box::new(a))
            }
            AttackParams::Truncate { at } => {
                let mut a = FrameTruncator::new(victim, at);
                a.set_journal(journal.clone(), node);
                AttackAgent::Bit(Box::new(a))
            }
            AttackParams::Adaptive {
                probe_frames,
                lead,
                fallback_at,
            } => {
                let mut a = AdaptiveRacer::new(victim, probe_frames, lead, fallback_at);
                a.set_journal(journal.clone(), node);
                AttackAgent::Bit(Box::new(a))
            }
            AttackParams::Ghost => {
                let mut a = GhostInjector::new(victim);
                a.set_journal(journal.clone(), node);
                AttackAgent::Bit(Box::new(a))
            }
            _ => self.instantiate(victim, victim_period_bits),
        }
    }
}

/// The full registry: every attack family with its swept variants, in
/// stable enumeration order (bit-level zoo first, then the paper's
/// controller-level attackers).
pub const REGISTRY: &[(&str, &[AttackParams])] = &[
    (
        "stuff-overwrite",
        &[
            AttackParams::StuffOverwrite { skip: 0 },
            AttackParams::StuffOverwrite { skip: 1 },
        ],
    ),
    (
        "error-flag",
        &[
            AttackParams::ErrorFlag { flag_at: 13 },
            AttackParams::ErrorFlag { flag_at: 25 },
        ],
    ),
    (
        "truncate",
        &[
            AttackParams::Truncate {
                at: TruncateAt::CrcDelim,
            },
            AttackParams::Truncate {
                at: TruncateAt::Eof,
            },
        ],
    ),
    (
        "adaptive-racer",
        &[AttackParams::Adaptive {
            probe_frames: 3,
            lead: 5,
            fallback_at: 20,
        }],
    ),
    ("ghost", &[AttackParams::Ghost]),
    ("fabrication", &[AttackParams::Fabrication { overdrive: 2 }]),
    (
        "masquerade",
        &[AttackParams::Masquerade { silence_periods: 3 }],
    ),
    (
        "dos-traditional",
        &[AttackParams::DosTraditional { period_bits: 1_500 }],
    ),
    (
        "dos-targeted",
        &[AttackParams::DosTargeted { period_bits: 1_500 }],
    ),
    ("toggling", &[AttackParams::Toggling { period_bits: 1_500 }]),
];

/// All attack family names, in registry order.
pub fn attack_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(name, _)| *name).collect()
}

/// The swept variants of one attack family, or `None` for an unknown name.
pub fn variants_for(attack: &str) -> Option<Vec<AttackVariant>> {
    REGISTRY
        .iter()
        .find(|(name, _)| *name == attack)
        .map(|(name, grid)| {
            grid.iter()
                .map(|&params| AttackVariant {
                    attack: name,
                    params,
                })
                .collect()
        })
}

/// Every variant of every attack, in registry order.
pub fn all_variants() -> Vec<AttackVariant> {
    REGISTRY
        .iter()
        .flat_map(|(name, grid)| {
            grid.iter().map(|&params| AttackVariant {
                attack: name,
                params,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_enumerable_and_labeled_uniquely() {
        let variants = all_variants();
        assert!(variants.len() >= 12);
        let mut labels: Vec<String> = variants.iter().map(AttackVariant::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), variants.len(), "labels must be unique");
    }

    #[test]
    fn bit_level_zoo_has_at_least_four_new_families() {
        let new_families = [
            "stuff-overwrite",
            "error-flag",
            "truncate",
            "adaptive-racer",
        ];
        for family in new_families {
            let variants = variants_for(family).expect(family);
            assert!(!variants.is_empty());
            assert!(variants.iter().all(AttackVariant::bit_level));
        }
    }

    #[test]
    fn every_variant_instantiates() {
        let victim = CanId::from_raw(0x173);
        for variant in all_variants() {
            match variant.instantiate(victim, 600) {
                AttackAgent::Bit(_) => assert!(variant.bit_level(), "{}", variant.label()),
                AttackAgent::App(_) => assert!(!variant.bit_level(), "{}", variant.label()),
            }
        }
    }

    #[test]
    fn every_variant_instantiates_observed() {
        let victim = CanId::from_raw(0x173);
        let journal = Journal::enabled();
        for variant in all_variants() {
            match variant.instantiate_observed(victim, 600, &journal, 1) {
                AttackAgent::Bit(_) => assert!(variant.bit_level(), "{}", variant.label()),
                AttackAgent::App(_) => assert!(!variant.bit_level(), "{}", variant.label()),
            }
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(variants_for("not-an-attack").is_none());
        assert!(attack_names().contains(&"ghost"));
    }
}

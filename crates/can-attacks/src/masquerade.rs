//! Masquerade attacks (paper §III).
//!
//! "Masquerade attacks combine both fabrication and suspension by first
//! suspending a legitimate ECU's CAN broadcast and then fabricating its
//! data." This attacker watches the victim's traffic; once the victim has
//! been silent for a configurable window (e.g. because an accomplice
//! bus-off attack succeeded, or the victim failed), it takes over the
//! victim's identifier with fabricated data.

use can_core::app::Application;
use can_core::{BitInstant, CanFrame, CanId};

/// Phase of a masquerade attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasqueradePhase {
    /// Monitoring the victim's transmissions.
    Waiting,
    /// The victim is silent; fabricating its traffic.
    Impersonating,
}

/// A masquerade attacker impersonating `victim_id` once it falls silent.
#[derive(Debug, Clone)]
pub struct MasqueradeAttacker {
    victim_id: CanId,
    fabricated: [u8; 8],
    dlc: usize,
    silence_window_bits: u64,
    period_bits: u64,
    last_victim_seen: u64,
    next_due: u64,
    phase: MasqueradePhase,
    impersonated: u64,
}

impl MasqueradeAttacker {
    /// Creates a masquerade attacker.
    ///
    /// * `silence_window_bits` — how long the victim must be silent before
    ///   impersonation starts;
    /// * `period_bits` — fabricated-message period once impersonating.
    ///
    /// # Panics
    ///
    /// Panics if `period_bits` is zero or the payload exceeds 8 bytes.
    pub fn new(
        victim_id: CanId,
        fabricated: &[u8],
        silence_window_bits: u64,
        period_bits: u64,
    ) -> Self {
        assert!(period_bits > 0, "period must be positive");
        assert!(fabricated.len() <= 8, "payload too long");
        let mut payload = [0u8; 8];
        payload[..fabricated.len()].copy_from_slice(fabricated);
        MasqueradeAttacker {
            victim_id,
            fabricated: payload,
            dlc: fabricated.len(),
            silence_window_bits,
            period_bits,
            last_victim_seen: 0,
            next_due: 0,
            phase: MasqueradePhase::Waiting,
            impersonated: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> MasqueradePhase {
        self.phase
    }

    /// Fabricated frames injected so far.
    pub fn impersonated(&self) -> u64 {
        self.impersonated
    }
}

impl Application for MasqueradeAttacker {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if self.phase == MasqueradePhase::Waiting {
            if now.bits().saturating_sub(self.last_victim_seen) < self.silence_window_bits {
                return None;
            }
            // The victim has been silent long enough: take over now.
            self.phase = MasqueradePhase::Impersonating;
            self.next_due = now.bits();
        }
        if now.bits() >= self.next_due {
            self.next_due = now.bits() + self.period_bits;
            self.impersonated += 1;
            Some(
                CanFrame::data_frame(self.victim_id, &self.fabricated[..self.dlc])
                    .expect("valid fabricated frame"),
            )
        } else {
            None
        }
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        // Waiting: the next poll that can do anything is the one at which
        // the victim's silence window expires; Impersonating: the next
        // fabricated frame's due time. Both clamp to `now` so an overdue
        // poll is never skipped.
        let due = match self.phase {
            MasqueradePhase::Waiting => self.last_victim_seen + self.silence_window_bits,
            MasqueradePhase::Impersonating => self.next_due,
        };
        Some(BitInstant::from_bits(due.max(now.bits())))
    }

    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant) {
        if frame.id() == self.victim_id {
            self.last_victim_seen = now.bits();
            // A live victim resets the attack to the monitoring phase.
            self.phase = MasqueradePhase::Waiting;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victim_frame() -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(0x260), &[0x01]).unwrap()
    }

    #[test]
    fn waits_while_victim_is_alive() {
        let mut attacker = MasqueradeAttacker::new(CanId::from_raw(0x260), &[0xBA, 0xD0], 500, 100);
        for t in (0..2_000).step_by(100) {
            attacker.on_frame(&victim_frame(), BitInstant::from_bits(t));
            assert!(attacker.poll(BitInstant::from_bits(t + 1)).is_none());
        }
        assert_eq!(attacker.phase(), MasqueradePhase::Waiting);
        assert_eq!(attacker.impersonated(), 0);
    }

    #[test]
    fn impersonates_after_silence() {
        let mut attacker = MasqueradeAttacker::new(CanId::from_raw(0x260), &[0xBA, 0xD0], 500, 100);
        attacker.on_frame(&victim_frame(), BitInstant::from_bits(100));
        // Victim goes silent; 500 bits later the attacker takes over.
        assert!(attacker.poll(BitInstant::from_bits(400)).is_none());
        assert!(attacker.poll(BitInstant::from_bits(600)).is_some());
        assert_eq!(attacker.phase(), MasqueradePhase::Impersonating);
        let fabricated = attacker.poll(BitInstant::from_bits(700)).unwrap();
        assert_eq!(fabricated.id().raw(), 0x260);
        assert_eq!(fabricated.data(), &[0xBA, 0xD0]);
    }

    #[test]
    fn next_activity_tracks_the_silence_window_and_period() {
        let mut attacker = MasqueradeAttacker::new(CanId::from_raw(0x260), &[0xBA], 500, 100);
        attacker.on_frame(&victim_frame(), BitInstant::from_bits(100));
        // Waiting: nothing can happen before the silence window expires.
        assert_eq!(
            attacker.next_activity(BitInstant::from_bits(200)),
            Some(BitInstant::from_bits(600))
        );
        assert!(attacker.poll(BitInstant::from_bits(600)).is_some());
        // Impersonating: the next poll that matters is the next due frame.
        assert_eq!(
            attacker.next_activity(BitInstant::from_bits(601)),
            Some(BitInstant::from_bits(700))
        );
        // An overdue poll is never pushed into the future.
        assert_eq!(
            attacker.next_activity(BitInstant::from_bits(900)),
            Some(BitInstant::from_bits(900))
        );
    }

    #[test]
    fn victim_reappearing_stops_the_impersonation() {
        let mut attacker = MasqueradeAttacker::new(CanId::from_raw(0x260), &[0xBA], 500, 100);
        attacker.on_frame(&victim_frame(), BitInstant::from_bits(0));
        assert!(attacker.poll(BitInstant::from_bits(600)).is_some());
        attacker.on_frame(&victim_frame(), BitInstant::from_bits(650));
        assert_eq!(attacker.phase(), MasqueradePhase::Waiting);
        assert!(attacker.poll(BitInstant::from_bits(700)).is_none());
    }
}

//! # can-attacks — the paper's threat-model attackers and the adversary zoo
//!
//! Implements every adversary of the MichiCAN threat model (§III) as a
//! [`can_core::app::Application`] runnable on simulator nodes:
//!
//! * [`fabrication`] — spoofed frames with valid identifiers and attacker
//!   data, injected at a higher frequency than the legitimate sender.
//! * [`suspension`] — DoS attackers (Fig. 2): *traditional* (identifier
//!   0x000 blocks everyone), *targeted* (an identifier just below the
//!   victim's) and *random*.
//! * [`masquerade`] — suspension of a victim followed by fabrication of
//!   its traffic.
//! * [`toggling`] — Experiment 6's attacker alternating between two
//!   identifiers.
//!
//! Beyond the controller-level attackers, the *bit-level adversary zoo*
//! implements CANflict-style peripheral-conflict attackers as
//! [`can_core::agent::BitAgent`]s — they drive raw bus levels without a
//! CAN controller and therefore bypass error confinement entirely:
//!
//! * [`ghost`] — a CANnon-style bus-off attacker (§VI-A) overwriting one
//!   identifier bit of a victim frame.
//! * [`stuff_overwrite`] — flips a computed recessive stuff bit dominant
//!   to desynchronize every receiver on the bus.
//! * [`error_flag`] — drives a six-dominant-bit error flag mid-frame on a
//!   trigger identifier.
//! * [`truncator`] — forces a recessive-to-dominant conflict at a chosen
//!   field boundary (CRC delimiter, ACK delimiter, EOF), truncating the
//!   frame.
//! * [`adaptive`] — observes the defender's measured reaction latency and
//!   times its strike to race the counterattack window.
//!
//! The zoo is enumerable: [`registry`] maps stable attack names to
//! scenario constructors with per-attack parameter grids, so campaigns
//! (`experiments attacks --attacks all`) can sweep the whole threat space
//! without naming each attacker in code. [`watch`] holds the shared wire
//! observer (SOF hunting, destuffing, field tracking) the bit-level
//! attackers build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod error_flag;
pub mod fabrication;
pub mod ghost;
pub mod masquerade;
pub mod registry;
pub mod stuff_overwrite;
pub mod suspension;
pub mod toggling;
pub mod truncator;
pub mod watch;

pub use adaptive::AdaptiveRacer;
pub use error_flag::ErrorFlagInjector;
pub use fabrication::FabricationAttacker;
pub use ghost::GhostInjector;
pub use masquerade::MasqueradeAttacker;
pub use registry::{AttackAgent, AttackParams, AttackVariant};
pub use stuff_overwrite::StuffBitOverwrite;
pub use suspension::{DosKind, SuspensionAttacker};
pub use toggling::TogglingAttacker;
pub use truncator::{FrameTruncator, TruncateAt};
pub use watch::{FrameWatch, WatchEvent};

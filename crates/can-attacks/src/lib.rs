//! # can-attacks — the paper's threat-model attackers
//!
//! Implements every adversary of the MichiCAN threat model (§III) as a
//! [`can_core::app::Application`] runnable on simulator nodes:
//!
//! * [`fabrication`] — spoofed frames with valid identifiers and attacker
//!   data, injected at a higher frequency than the legitimate sender.
//! * [`suspension`] — DoS attackers (Fig. 2): *traditional* (identifier
//!   0x000 blocks everyone), *targeted* (an identifier just below the
//!   victim's) and *random*.
//! * [`masquerade`] — suspension of a victim followed by fabrication of
//!   its traffic.
//! * [`toggling`] — Experiment 6's attacker alternating between two
//!   identifiers.
//! * [`ghost`] — a CANnon-style *bit-level* bus-off attacker (§VI-A),
//!   demonstrating the offensive side of integrated-controller access and
//!   why it must be isolated from compromisable software (§III).
//!
//! All attackers comply with the CAN protocol at the controller level
//! (they cannot bypass error handling — that is exactly what MichiCAN
//! exploits to bus them off).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabrication;
pub mod ghost;
pub mod masquerade;
pub mod suspension;
pub mod toggling;

pub use fabrication::FabricationAttacker;
pub use ghost::GhostInjector;
pub use masquerade::MasqueradeAttacker;
pub use suspension::{DosKind, SuspensionAttacker};
pub use toggling::TogglingAttacker;

//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace-local crate provides the (small) slice of the `rand 0.9`
//! surface the code base uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` methods `random`, `random_bool` and `random_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! mixed, and fully deterministic per seed, which is what every consumer in
//! this repository (simulation, fault campaigns, property tests) actually
//! requires. The streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`; nothing in the workspace depends on upstream's exact streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs {
    //! Concrete generator types.

    /// A deterministic pseudo-random generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructors (subset of upstream's trait).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// A type that can be sampled uniformly from its full domain.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The raw-output interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

/// Draws uniformly from `[0, span)` without noticeable bias (Lemire-style
/// widening multiply; the residual bias is < 2^-64 per draw).
fn uniform_below(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods (subset of upstream's `Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value over `T`'s full domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        f64::sample(self) < p
    }

    /// Draws uniformly from the given range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.01)).count();
        assert!((800..=1_200).contains(&hits), "≈1% of 100k: {hits}");
        assert!(!(0..1_000).any(|_| rng.random_bool(0.0)));
        assert!((0..1_000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v: usize = rng.random_range(1..=8);
            assert!((1..=8).contains(&v));
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 1..=8 drawn");
        for _ in 0..1_000 {
            let v: u16 = rng.random_range(0x040..0x640);
            assert!((0x040..0x640).contains(&v));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        rng.random_bool(1.5);
    }
}

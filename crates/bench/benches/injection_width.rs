//! Ablation: counterattack window width (DESIGN.md §4, decision 4).
//!
//! MichiCAN pulls the bus low from destuffed frame position 13 to 20.
//! This bench sweeps the release position, measuring whether the attacker
//! is still bused off and how long the episode takes — demonstrating why
//! the paper budgets the full 6-bit worst case.

use std::hint::black_box;

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_sim::{bus_off_episodes, EventKind, Node, SimBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use michican::handler::{MichiCan, MichiCanConfig};
use michican::prelude::*;

/// Runs one episode with the given counterattack release position;
/// returns bus-off duration in bits, or `None` if never bused off.
fn episode_with_width(end_position: u32) -> Option<u64> {
    // Worst-case attacker shape: recessive identifier LSB, DLC 1.
    let frame = CanFrame::data_frame(CanId::from_raw(0x065), &[0x00]).unwrap();
    let list = EcuList::from_raw(&[0x173]);
    let config = MichiCanConfig {
        counterattack_end: end_position,
        ..MichiCanConfig::default()
    };
    let builder = SimBuilder::new(BusSpeed::K50);
    let attacker = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame, 400, 0)),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication)).with_agent(Box::new(
                MichiCan::with_config(DetectionFsm::for_ecu(&list, 0), config),
            )),
        )
        .build();
    sim.run_until(8_000, |e| matches!(e.kind, EventKind::BusOff))?;
    bus_off_episodes(sim.events(), attacker)
        .first()
        .map(|e| e.duration().as_bits())
}

fn bench_injection_width(c: &mut Criterion) {
    // Report the ablation outcomes once (criterion runs are about timing;
    // the scientific result is printed for the record).
    println!("\ninjection-width ablation (release position -> episode bits):");
    for end in [14u32, 15, 16, 17, 18, 19, 20, 22] {
        match episode_with_width(end) {
            Some(bits) => println!("  release at {end:>2}: bused off in {bits} bits"),
            None => println!("  release at {end:>2}: ATTACKER NOT BUSED OFF"),
        }
    }

    c.bench_function("injection/default_width_episode", |b| {
        b.iter(|| episode_with_width(black_box(20)))
    });
    c.bench_function("injection/narrow_width_episode", |b| {
        b.iter(|| episode_with_width(black_box(16)))
    });
}

criterion_group!(benches, bench_injection_width);
criterion_main!(benches);

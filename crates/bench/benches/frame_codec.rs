//! Wire-codec benchmarks: frame stuffing, decoding and CRC.

use std::hint::black_box;

use can_core::bitstream::{decode_frame, stuff_frame, unstuffed_bits};
use can_core::crc::checksum;
use can_core::{CanFrame, CanId};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_codec(c: &mut Criterion) {
    let frame = CanFrame::data_frame(CanId::from_raw(0x173), &[0xA5; 8]).unwrap();
    let wire = stuff_frame(&frame);
    let raw = unstuffed_bits(&frame);

    c.bench_function("codec/stuff_frame_8_bytes", |b| {
        b.iter(|| stuff_frame(black_box(&frame)))
    });

    c.bench_function("codec/decode_frame_8_bytes", |b| {
        b.iter(|| decode_frame(black_box(&wire.bits)).unwrap())
    });

    c.bench_function("codec/crc15_108_bits", |b| {
        b.iter(|| checksum(black_box(&raw)))
    });

    c.bench_function("codec/roundtrip_all_dlcs", |b| {
        let frames: Vec<CanFrame> = (0..=8usize)
            .map(|dlc| {
                CanFrame::data_frame(CanId::from_raw(0x100 + dlc as u16), &vec![0x3C; dlc]).unwrap()
            })
            .collect();
        b.iter(|| {
            for f in &frames {
                let w = stuff_frame(black_box(f));
                black_box(decode_frame(&w.bits).unwrap());
            }
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);

//! Simulator throughput: bit-ticks per second with realistic node counts —
//! validates that 2-second captures (100k bits at 50 kbit/s) stay cheap.

use std::hint::black_box;

use bench::scenarios::restbus_matrix;
use can_core::app::SilentApplication;
use can_core::BusSpeed;
use can_sim::{Node, SimBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use restbus::ReplayApp;

fn bench_sim(c: &mut Criterion) {
    c.bench_function("sim/idle_bus_3_nodes_1k_bits", |b| {
        b.iter(|| {
            let mut builder = SimBuilder::new(BusSpeed::K500);
            for i in 0..3 {
                builder = builder.node(Node::new(format!("n{i}"), Box::new(SilentApplication)));
            }
            let mut sim = builder.build();
            sim.run(black_box(1_000));
            sim.now()
        })
    });

    c.bench_function("sim/restbus_replay_1k_bits", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(BusSpeed::K50)
                .node(Node::new(
                    "restbus",
                    Box::new(ReplayApp::for_matrix(&restbus_matrix())),
                ))
                .node(Node::new("rx", Box::new(SilentApplication)))
                .build();
            sim.run(black_box(1_000));
            sim.events().len()
        })
    });

    c.bench_function("sim/restbus_replay_1k_bits_no_logging", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(BusSpeed::K50)
                .event_logging(false)
                .node(Node::new(
                    "restbus",
                    Box::new(ReplayApp::for_matrix(&restbus_matrix())),
                ))
                .node(Node::new("rx", Box::new(SilentApplication)))
                .build();
            sim.run(black_box(1_000));
            sim.busy_bits()
        })
    });

    c.bench_function("sim/table2_experiment4_full_episode", |b| {
        use bench::scenarios::{build_experiment, table2_experiments};
        let exp = table2_experiments()
            .into_iter()
            .find(|e| e.number == 4)
            .unwrap();
        b.iter(|| {
            let (mut sim, _) = build_experiment(black_box(&exp));
            sim.run_until(5_000, |e| matches!(e.kind, can_sim::EventKind::BusOff))
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);

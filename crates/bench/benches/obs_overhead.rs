//! Observability overhead guard: the disabled-path recorder must cost
//! nothing on the simulator's per-bit hot path.
//!
//! Three variants of the same restbus replay: no recorder attached (the
//! PR 3 baseline configuration), an explicitly attached *disabled*
//! recorder, and an enabled recorder. The first two must be within noise
//! of each other — a disabled recorder is one untaken `None` branch per
//! instrumentation site and never formats a metric key.

use std::hint::black_box;

use bench::scenarios::restbus_matrix;
use can_core::app::SilentApplication;
use can_core::BusSpeed;
use can_obs::Recorder;
use can_sim::{Node, SimBuilder, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use restbus::ReplayApp;

fn replay_sim(recorder: Option<Recorder>) -> Simulator {
    let mut builder = SimBuilder::new(BusSpeed::K50).event_logging(false);
    if let Some(recorder) = recorder {
        builder = builder.recorder(recorder);
    }
    builder
        .node(Node::new(
            "restbus",
            Box::new(ReplayApp::for_matrix(&restbus_matrix())),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build()
}

fn bench_obs(c: &mut Criterion) {
    c.bench_function("obs/restbus_10k_bits_no_recorder", |b| {
        b.iter(|| {
            let mut sim = replay_sim(None);
            sim.run(black_box(10_000));
            sim.busy_bits()
        })
    });

    c.bench_function("obs/restbus_10k_bits_recorder_disabled", |b| {
        b.iter(|| {
            let mut sim = replay_sim(Some(Recorder::disabled()));
            sim.run(black_box(10_000));
            sim.busy_bits()
        })
    });

    c.bench_function("obs/restbus_10k_bits_recorder_enabled", |b| {
        b.iter(|| {
            let mut sim = replay_sim(Some(Recorder::enabled()));
            sim.run(black_box(10_000));
            sim.busy_bits()
        })
    });
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);

//! Interrupt-handler benchmark: cost of one `on_bit` invocation — the
//! software-model counterpart of the paper's per-bit CPU budget (§V-D).

use std::hint::black_box;

use can_core::agent::BitAgent;
use can_core::bitstream::stuff_frame;
use can_core::{BitInstant, CanFrame, CanId, Level};
use criterion::{criterion_group, criterion_main, Criterion};
use michican::fsm::DetectionFsm;
use michican::handler::MichiCan;
use michican::EcuList;

fn bench_handler(c: &mut Criterion) {
    let list = EcuList::from_raw(&[0x064, 0x173, 0x25F, 0x400]);
    let fsm = DetectionFsm::for_ecu(&list, 1);

    c.bench_function("handler/on_bit_idle_bus", |b| {
        let mut handler = MichiCan::new(fsm.clone());
        let mut t = 0u64;
        b.iter(|| {
            handler.on_bit(black_box(Level::Recessive), BitInstant::from_bits(t));
            t += 1;
        })
    });

    let benign = stuff_frame(&CanFrame::data_frame(CanId::from_raw(0x400), &[0x55; 8]).unwrap());
    c.bench_function("handler/full_benign_frame", |b| {
        let mut handler = MichiCan::new(fsm.clone());
        b.iter(|| {
            let mut t = 0u64;
            for _ in 0..12 {
                handler.on_bit(Level::Recessive, BitInstant::from_bits(t));
                t += 1;
            }
            for &bit in &benign.bits {
                handler.on_bit(black_box(bit), BitInstant::from_bits(t));
                t += 1;
            }
        })
    });

    let attack = stuff_frame(&CanFrame::data_frame(CanId::from_raw(0x064), &[0; 8]).unwrap());
    c.bench_function("handler/attack_frame_with_counterattack", |b| {
        let mut handler = MichiCan::new(fsm.clone());
        b.iter(|| {
            let mut t = 0u64;
            for _ in 0..12 {
                handler.on_bit(Level::Recessive, BitInstant::from_bits(t));
                t += 1;
            }
            for &bit in &attack.bits {
                let seen = if handler.is_injecting() {
                    Level::Dominant
                } else {
                    bit
                };
                handler.on_bit(black_box(seen), BitInstant::from_bits(t));
                t += 1;
            }
        })
    });
}

criterion_group!(benches, bench_handler);
criterion_main!(benches);

//! Micro-benchmarks of the packed bus kernel's word primitives and of a
//! full simulator tick loop under the packed vs lockstep modes.
//!
//! The word primitives (`pack_word`, `extract_window`, `first_mismatch`)
//! are the per-stretch inner loop of `Simulator::run_packed`; the
//! end-to-end pair quantifies the active-bus speedup that
//! `perfbase`'s `packed` section asserts in CI.

use std::hint::black_box;

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{packed, BusSpeed, CanFrame, CanId, Level};
use can_sim::{Node, SimBuilder, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_word_primitives(c: &mut Criterion) {
    let levels: Vec<Level> = (0..64)
        .map(|i| {
            if (i * 7) % 3 == 0 {
                Level::Dominant
            } else {
                Level::Recessive
            }
        })
        .collect();
    c.bench_function("packed/pack_word_64", |b| {
        b.iter(|| packed::pack_word(black_box(&levels)))
    });

    let words: Vec<u64> = (0..8)
        .map(|i| 0xA5A5_5A5A_0F0F_F0F0u64.rotate_left(i))
        .collect();
    c.bench_function("packed/extract_window_unaligned", |b| {
        b.iter(|| packed::extract_window(black_box(&words), black_box(37)))
    });

    let sent = 0xDEAD_BEEF_CAFE_F00Du64;
    let bus = sent & !(1u64 << 41);
    c.bench_function("packed/first_mismatch", |b| {
        b.iter(|| packed::first_mismatch(black_box(sent), black_box(bus), black_box(64)))
    });
    c.bench_function("packed/first_dominant", |b| {
        b.iter(|| packed::first_dominant(black_box(bus), black_box(64)))
    });
}

/// A 60 %-busload periodic-sender bus — the active-bus workload the
/// packed kernel is built for.
fn active_bus() -> Simulator {
    let frame = CanFrame::data_frame(CanId::from_raw(0x222), &[0xA5; 8]).unwrap();
    SimBuilder::new(BusSpeed::K50)
        .node(Node::new(
            "tx",
            Box::new(PeriodicSender::new(frame, 185, 40)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build()
}

fn bench_active_bus(c: &mut Criterion) {
    const BITS: u64 = 50_000;
    c.bench_function("packed/active_bus_lockstep_50k", |b| {
        b.iter(|| {
            let mut sim = active_bus();
            sim.run(black_box(BITS));
            sim.now().bits()
        })
    });
    c.bench_function("packed/active_bus_packed_50k", |b| {
        b.iter(|| {
            let mut sim = active_bus();
            sim.run_packed(black_box(BITS));
            sim.now().bits()
        })
    });
}

criterion_group!(benches, bench_word_primitives, bench_active_bus);
criterion_main!(benches);

//! End-to-end bus-off benchmark: a complete MichiCAN eradication episode
//! (attack start → attacker bus-off), the paper's central operation.

use std::hint::black_box;

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_sim::{EventKind, Node, SimBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use michican::prelude::*;

fn episode(attacker_id: u16) -> u64 {
    let frame = CanFrame::data_frame(CanId::from_raw(attacker_id), &[0; 8]).unwrap();
    let list = EcuList::from_raw(&[0x173]);
    let mut sim = SimBuilder::new(BusSpeed::K50)
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame, 400, 0)),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .build();
    sim.run_until(5_000, |e| matches!(e.kind, EventKind::BusOff))
        .expect("attacker must be bused off");
    sim.now().bits()
}

fn bench_busoff(c: &mut Criterion) {
    c.bench_function("busoff/dos_episode_0x064", |b| {
        b.iter(|| episode(black_box(0x064)))
    });
    c.bench_function("busoff/spoof_episode_0x173", |b| {
        b.iter(|| episode(black_box(0x173)))
    });
}

criterion_group!(benches, bench_busoff);
criterion_main!(benches);

//! FSM benchmarks: construction cost, per-bit step cost, classification
//! throughput — the per-bit step is the heart of MichiCAN's interrupt
//! handler budget (§V-D).

use std::hint::black_box;

use can_core::{CanId, Level};
use criterion::{criterion_group, criterion_main, Criterion};
use michican::detect::detection_range;
use michican::fsm::DetectionFsm;
use michican::EcuList;

fn sample_list(n: usize) -> EcuList {
    // Deterministic spread over the identifier space.
    let ids: Vec<CanId> = (0..n)
        .map(|i| CanId::from_raw(((i * 211 + 17) % 0x7FF) as u16))
        .collect();
    EcuList::new(ids).expect("distinct ids")
}

fn bench_fsm(c: &mut Criterion) {
    let list = sample_list(64);
    let set = detection_range(&list, list.len() - 1);
    let fsm = DetectionFsm::from_set(&set);

    c.bench_function("fsm/build_64_ecus", |b| {
        b.iter(|| DetectionFsm::from_set(black_box(&set)))
    });

    c.bench_function("fsm/step_single_bit", |b| {
        let mut cursor = fsm.start();
        b.iter(|| {
            let out = fsm.step(black_box(&mut cursor), Level::Dominant);
            cursor = fsm.start();
            out
        })
    });

    c.bench_function("fsm/classify_full_id", |b| {
        let id = CanId::from_raw(0x2A5);
        b.iter(|| fsm.classify(black_box(id)))
    });

    c.bench_function("fsm/classify_whole_id_space", |b| {
        b.iter(|| {
            let mut malicious = 0u32;
            for id in CanId::all() {
                malicious += fsm.classify(id) as u32;
            }
            malicious
        })
    });

    // Ablation: pruned/hash-consed FSM vs a naive linear interval scan.
    let intervals: Vec<(u16, u16)> = set.intervals().to_vec();
    c.bench_function("fsm/ablation_interval_scan", |b| {
        let id = CanId::from_raw(0x2A5);
        b.iter(|| {
            let raw = black_box(id).raw();
            intervals.iter().any(|&(lo, hi)| raw >= lo && raw <= hi)
        })
    });
}

criterion_group!(benches, bench_fsm);
criterion_main!(benches);

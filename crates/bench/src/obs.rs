//! Serial observability probe: a short, fully deterministic spoofing run
//! against a MichiCAN defender and a Parrot baseline, with recorders
//! attached end to end.
//!
//! Every `experiments … --metrics-out` invocation runs this probe once,
//! *outside* the sharded region, so the exported snapshot always carries
//! the acceptance-critical series — per-node TEC/REC, error frames by
//! type, defense-FSM step counts and the detection→injection
//! reaction-latency histogram — no matter which subcommand was requested
//! or how many shards it fanned out on. The probe uses no randomness, so
//! its contribution to the snapshot is byte-identical across runs.

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_obs::Recorder;
use can_sim::{Node, SimBuilder};
use michican::prelude::*;
use parrot::ParrotDefender;

/// Identifier the probe's defender owns (the paper's defender id).
pub const PROBE_DEFENDER_ID: u16 = 0x173;

/// Identifier of the probe's benign background sender.
pub const PROBE_BENIGN_ID: u16 = 0x0C4;

/// Bus speed of both probe buses.
pub const PROBE_SPEED: BusSpeed = BusSpeed::K500;

/// Runs the MichiCAN probe and the Parrot baseline probe back to back,
/// feeding both into `recorder`. `run_ms` is the simulated time per bus;
/// 50 ms at 500 kbit/s covers several eradication episodes.
pub fn run_reaction_probe(recorder: &Recorder, run_ms: f64) {
    probe_michican(recorder, run_ms);
    probe_parrot(recorder, run_ms);
}

/// Spoofing attack on the defender's own identifier, supervised MichiCAN
/// defender with recorders on both the simulator and the handler.
fn probe_michican(recorder: &Recorder, run_ms: f64) {
    let list = EcuList::new(vec![
        CanId::from_raw(PROBE_BENIGN_ID),
        CanId::from_raw(PROBE_DEFENDER_ID),
    ])
    .expect("probe ids are unique");
    let index = list
        .index_of(CanId::from_raw(PROBE_DEFENDER_ID))
        .expect("defender id is in the list");
    let mut supervised = SupervisedMichiCan::new(
        MichiCan::new(DetectionFsm::for_ecu(&list, index)),
        HealthConfig::default(),
        SyncConfig::typical(PROBE_SPEED),
    );
    // The defender is added first, so its node id — and the `node` label on
    // every `michican_*` series — is 0.
    supervised.set_recorder(recorder.clone(), 0);

    let benign = CanFrame::data_frame(CanId::from_raw(PROBE_BENIGN_ID), &[0x11; 8])
        .expect("valid benign frame");
    let benign_period = PROBE_SPEED.bits_in_millis(5.0).max(1);
    let mut sim = SimBuilder::new(PROBE_SPEED)
        .recorder(recorder.clone())
        .node(
            Node::new("defender-0x173", Box::new(SilentApplication))
                .with_agent(Box::new(supervised)),
        )
        .node(Node::new(
            "benign",
            Box::new(PeriodicSender::new(benign, benign_period, 10)),
        ))
        .node(Node::new(
            "spoofer",
            Box::new(
                SuspensionAttacker::saturating(DosKind::Targeted {
                    id: CanId::from_raw(PROBE_DEFENDER_ID),
                })
                .with_payload(&[0xFF; 8]),
            ),
        ))
        .build();

    sim.run_millis(run_ms);
}

/// The same spoofing scenario against the Parrot baseline. Only the
/// defender carries a recorder (its `parrot_*` series are disjoint from
/// the MichiCAN probe's); attaching the simulator recorder too would fold
/// a second bus into the per-node `can_*` series under clashing labels.
fn probe_parrot(recorder: &Recorder, run_ms: f64) {
    // Flood for ~10 ms per detected spoof instance.
    let flood_window = PROBE_SPEED.bits_in_millis(10.0).max(1);
    let mut parrot = ParrotDefender::new(CanId::from_raw(PROBE_DEFENDER_ID), flood_window)
        .with_own_traffic(PROBE_SPEED.bits_in_millis(20.0).max(1));
    parrot.set_recorder(recorder.clone(), 0);

    // Periodic (not saturating) spoofer: Parrot can only detect a spoof
    // after a complete instance is delivered, so instances must get
    // through between floods.
    let mut sim = SimBuilder::new(PROBE_SPEED)
        .node(Node::new("parrot-0x173", Box::new(parrot)))
        .node(Node::new(
            "spoofer",
            Box::new(SuspensionAttacker::new(
                DosKind::Targeted {
                    id: CanId::from_raw(PROBE_DEFENDER_ID),
                },
                PROBE_SPEED.bits_in_millis(4.0).max(1),
            )),
        ))
        .build();

    sim.run_millis(run_ms);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_populates_the_acceptance_series() {
        let recorder = Recorder::enabled();
        run_reaction_probe(&recorder, 50.0);
        let reg = recorder.into_registry();

        // Per-node TEC/REC gauges exist for the probe bus.
        assert!(reg.gauge("can_node_tec{node=\"0\"}").is_some());
        assert!(reg.gauge("can_node_rec{node=\"0\"}").is_some());

        // Error frames by type: the injection forces stuff errors on the
        // spoofer.
        let stuff_errors: u64 = reg
            .counters()
            .filter(|(k, _)| k.starts_with("can_errors_total{") && k.contains("kind=\"stuff\""))
            .map(|(_, v)| v)
            .sum();
        assert!(stuff_errors > 0, "injection causes stuff errors");

        // Defense-FSM activity and the reaction-latency histogram.
        assert!(reg.counter("michican_detections_total{node=\"0\"}") >= 1);
        assert!(reg.counter("michican_fsm_steps_total{node=\"0\"}") > 0);
        let latency = reg
            .histogram("michican_reaction_latency_bits{node=\"0\"}")
            .expect("latency histogram declared and populated");
        assert!(latency.count() >= 1, "at least one reaction measured");

        // The Parrot baseline series exist alongside for comparison. (Its
        // latency counts detection→first flood frame; the full-frame
        // detection cost Parrot pays sits *before* that timestamp.)
        assert!(reg.counter("parrot_spoofs_observed_total{node=\"0\"}") >= 1);
        let parrot_latency = reg
            .histogram("parrot_reaction_latency_bits{node=\"0\"}")
            .expect("parrot latency histogram");
        assert!(parrot_latency.count() >= 1);
    }

    #[test]
    fn probe_contribution_is_deterministic() {
        let a = Recorder::enabled();
        run_reaction_probe(&a, 30.0);
        let b = Recorder::enabled();
        run_reaction_probe(&b, 30.0);
        assert_eq!(a.snapshot_json(), b.snapshot_json());
    }
}

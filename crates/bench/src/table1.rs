//! Table I — qualitative comparison of CAN DoS countermeasures.
//!
//! The paper's Table I is a qualitative matrix; the data is encoded here
//! structurally so it can be rendered and asserted on.

/// Rating on a qualitative dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rating {
    /// ● / yes / none-overhead (best).
    Yes,
    /// ◐ / negligible.
    Partial,
    /// ○ / no.
    No,
    /// ◑ medium overhead.
    Medium,
    /// ⬤ very high overhead.
    VeryHigh,
    /// Unknown from the literature.
    Unknown,
}

impl Rating {
    /// Compact glyph for table rendering.
    pub fn glyph(self) -> &'static str {
        match self {
            Rating::Yes => "●",
            Rating::Partial => "◐",
            Rating::No => "○",
            Rating::Medium => "◑",
            Rating::VeryHigh => "⬤",
            Rating::Unknown => "?",
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Countermeasure {
    /// Scheme name.
    pub name: &'static str,
    /// Software-only, deployable on existing ECUs?
    pub backward_compatible: Rating,
    /// Detects attacks in real time (during transmission)?
    pub real_time: Rating,
    /// Traffic overhead imposed on the bus.
    pub traffic_overhead: Rating,
    /// Can it eradicate (not just detect) the attacker?
    pub eradication: Rating,
}

/// The comparison matrix of the paper's Table I.
pub fn table1() -> Vec<Countermeasure> {
    use Rating::*;
    vec![
        Countermeasure {
            name: "IDS [15]-[17]",
            backward_compatible: Yes,
            real_time: No,
            traffic_overhead: Yes, // none: passive monitoring
            eradication: No,
        },
        Countermeasure {
            name: "Parrot+",
            backward_compatible: Yes,
            real_time: No,
            traffic_overhead: VeryHigh,
            eradication: Yes,
        },
        Countermeasure {
            name: "CANSentry",
            backward_compatible: No,
            real_time: No,
            traffic_overhead: Partial,
            eradication: Yes,
        },
        Countermeasure {
            name: "CANeleon",
            backward_compatible: No,
            real_time: Yes,
            traffic_overhead: Medium,
            eradication: Yes,
        },
        Countermeasure {
            name: "CANARY",
            backward_compatible: No,
            real_time: Yes,
            traffic_overhead: Medium,
            eradication: Yes,
        },
        Countermeasure {
            name: "ZBCAN",
            backward_compatible: Yes,
            real_time: Yes,
            traffic_overhead: Partial,
            eradication: Yes,
        },
        Countermeasure {
            name: "MichiCAN",
            backward_compatible: Yes,
            real_time: Yes,
            traffic_overhead: Yes, // none outside counterattacks
            eradication: Yes,
        },
    ]
}

/// Renders Table I as aligned text.
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>10} {:>12}\n",
        "Scheme", "Backward", "Real-time", "Overhead", "Eradication"
    ));
    for row in &rows {
        out.push_str(&format!(
            "{:<16} {:>10} {:>10} {:>10} {:>12}\n",
            row.name,
            row.backward_compatible.glyph(),
            row.real_time.glyph(),
            row.traffic_overhead.glyph(),
            row.eradication.glyph()
        ));
    }
    out.push_str("● yes/none  ◐ negligible  ◑ medium  ⬤ very high  ○ no\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn michican_is_the_only_fully_positive_row() {
        let rows = table1();
        let michican = rows.iter().find(|r| r.name == "MichiCAN").unwrap();
        assert_eq!(michican.backward_compatible, Rating::Yes);
        assert_eq!(michican.real_time, Rating::Yes);
        assert_eq!(michican.traffic_overhead, Rating::Yes);
        assert_eq!(michican.eradication, Rating::Yes);

        let fully_positive = rows
            .iter()
            .filter(|r| {
                r.backward_compatible == Rating::Yes
                    && r.real_time == Rating::Yes
                    && r.traffic_overhead == Rating::Yes
                    && r.eradication == Rating::Yes
            })
            .count();
        assert_eq!(fully_positive, 1);
    }

    #[test]
    fn ids_detects_but_does_not_eradicate() {
        let rows = table1();
        let ids = rows.iter().find(|r| r.name.starts_with("IDS")).unwrap();
        assert_eq!(ids.eradication, Rating::No);
        assert_eq!(ids.real_time, Rating::No);
    }

    #[test]
    fn parrot_has_very_high_overhead() {
        let rows = table1();
        let parrot = rows.iter().find(|r| r.name.starts_with("Parrot")).unwrap();
        assert_eq!(parrot.traffic_overhead, Rating::VeryHigh);
    }

    #[test]
    fn rendering_contains_every_scheme() {
        let text = render_table1();
        for row in table1() {
            assert!(text.contains(row.name.split(' ').next().unwrap()));
        }
    }
}

//! # bench — the MichiCAN evaluation harness
//!
//! Shared scenario builders and analysis used by the `experiments` binary
//! (which regenerates every table and figure of the paper) and by the
//! Criterion benches.
//!
//! * [`scenarios`] — the six Table II experiments, the multi-attacker
//!   sweep and the on-vehicle ParkSense test;
//! * [`table1`] — the qualitative countermeasure comparison;
//! * [`detection`] — the random-FSM detection-latency sweep (§V-B);
//! * [`cpu`] — CPU-utilization tables (§V-D);
//! * [`busload`] — MichiCAN vs Parrot bus-load comparison (§V-E);
//! * [`idsbench`] — the timing-IDS bake-off: the `can_ids::registry`
//!   detector grid attached as passive taps to a defense × scenario
//!   cell grid, plus the focused IDS-vs-MichiCAN flood duel (extension;
//!   `ids_compare` holds the deprecated shims of the duel's old entry
//!   points);
//! * [`availability`] — benign-traffic delivery under persistent attack,
//!   healthy vs undefended vs defended (extension);
//! * [`campaign`] — the seeded fault-injection campaign grid (robustness
//!   extension);
//! * [`differential`] — the lockstep-vs-fast-forward equivalence harness
//!   backing the byte-identity guarantee of `Simulator::run_fast`;
//! * [`runner`] — the parallel deterministic experiment engine the grid
//!   artifacts (campaign, FSM sweep, Table II, multi-attacker scan) fan
//!   out on;
//! * [`obs`] — the serial observability probe backing
//!   `experiments … --metrics-out`;
//! * [`sweep`] — the crash-tolerant campaign sweep engine: journaled
//!   checkpoint/resume, shard supervision with per-cell timeout and
//!   retry, and panic quarantine (`experiments sweep`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attackzoo;
pub mod availability;
pub mod busload;
pub mod campaign;
pub mod cpu;
pub mod detection;
pub mod differential;
pub mod ids_compare;
pub mod idsbench;
pub mod obs;
pub mod runner;
pub mod scenarios;
pub mod sweep;
pub mod table1;

//! Deprecated forwarding shims for the old IDS-vs-MichiCAN comparison.
//!
//! The flood duel now lives in [`crate::idsbench`] (which also hosts the
//! full detector × defense × scenario bake-off): the IDS side runs as
//! passive detector taps in a single simulation instead of the old
//! rebuild-and-replay double run. These shims keep the old call sites
//! compiling one release longer.

pub use crate::idsbench::DefenseLatency;

/// Runs the flooding attack against the frame-level IDS.
#[deprecated(note = "use `idsbench::flood_ids_defense` (single-run, tap-attached IDS)")]
pub fn ids_defense(run_bits: u64) -> DefenseLatency {
    crate::idsbench::flood_ids_defense(run_bits)
}

/// Runs the same flood against MichiCAN.
#[deprecated(note = "use `idsbench::flood_michican_defense`")]
pub fn michican_defense(run_bits: u64) -> DefenseLatency {
    crate::idsbench::flood_michican_defense(run_bits)
}

//! Quantifying Table I's IDS row (extension beyond the paper's
//! qualitative matrix): detection latency and outcome of a frame-level
//! IDS versus MichiCAN against the same flooding attack.
//!
//! * The IDS observes complete frames: its first alert necessarily comes
//!   after several whole attack frames have traversed the bus, and it has
//!   no eradication path — the flood continues.
//! * MichiCAN flags the *first* malicious frame inside its identifier
//!   field and has destroyed it before its data field even starts.

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::SilentApplication;
use can_core::{BusSpeed, CanId};
use can_ids::IdsMonitor;
use can_sim::{EventKind, Node, SimBuilder, Simulator};
use michican::prelude::*;

/// Outcome of one defense-vs-flood run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseLatency {
    /// Bits from the first attack bit to the defense's detection instant.
    pub detection_latency_bits: Option<u64>,
    /// Attack frames that fully traversed the bus before detection.
    pub frames_before_detection: u64,
    /// Whether the attacker ended up eradicated (bus-off).
    pub eradicated: bool,
    /// Attack frames delivered over the whole run.
    pub total_attack_frames_delivered: u64,
}

const SPEED: BusSpeed = BusSpeed::K500;
const ATTACK_ID: u16 = 0x064;

fn attack_start(sim: &Simulator, attacker: usize) -> Option<u64> {
    sim.events()
        .iter()
        .find(|e| e.node == attacker && matches!(e.kind, EventKind::TransmissionStarted { .. }))
        .map(|e| e.at.bits())
}

fn delivered_attack_frames(sim: &Simulator, observer: usize, until: Option<u64>) -> u64 {
    sim.events()
        .iter()
        .filter(|e| {
            e.node == observer
                && until.is_none_or(|t| e.at.bits() <= t)
                && matches!(&e.kind, EventKind::FrameReceived { frame }
                    if frame.id() == CanId::from_raw(ATTACK_ID))
        })
        .count() as u64
}

/// Runs the flooding attack against the frame-level IDS.
pub fn ids_defense(run_bits: u64) -> DefenseLatency {
    let builder = SimBuilder::new(SPEED);
    let attacker = builder.node_id();
    let builder = builder.node(Node::new(
        "attacker",
        Box::new(SuspensionAttacker::new(
            DosKind::Targeted {
                id: CanId::from_raw(ATTACK_ID),
            },
            400,
        )),
    ));
    let ids_node = builder.node_id();
    let mut sim = builder
        .node(Node::new("ids", Box::new(IdsMonitor::typical_500k())))
        .build();
    sim.run(run_bits);

    // Extract the monitor's first alert through the application API.
    // (Downcast via a second pass: rebuild is cheap and deterministic.)
    let builder2 = SimBuilder::new(SPEED);
    let attacker2 = builder2.node_id();
    let mut sim2 = builder2
        .node(Node::new(
            "attacker",
            Box::new(SuspensionAttacker::new(
                DosKind::Targeted {
                    id: CanId::from_raw(ATTACK_ID),
                },
                400,
            )),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    let mut monitor = IdsMonitor::typical_500k();
    sim2.run(run_bits);
    for e in sim2.events() {
        if let EventKind::FrameReceived { frame } = &e.kind {
            use can_core::app::Application;
            monitor.on_frame(frame, e.at);
        }
    }
    let start = attack_start(&sim2, attacker2);
    let first_alert = monitor.first_alert().map(|a| a.at.bits());

    DefenseLatency {
        detection_latency_bits: match (first_alert, start) {
            (Some(alert), Some(start)) => Some(alert.saturating_sub(start)),
            _ => None,
        },
        frames_before_detection: delivered_attack_frames(&sim2, 1, first_alert),
        eradicated: sim
            .events()
            .iter()
            .any(|e| e.node == attacker && matches!(e.kind, EventKind::BusOff)),
        total_attack_frames_delivered: delivered_attack_frames(&sim, ids_node, None),
    }
}

/// Runs the same flood against MichiCAN.
pub fn michican_defense(run_bits: u64) -> DefenseLatency {
    let builder = SimBuilder::new(SPEED);
    let attacker = builder.node_id();
    let builder = builder.node(Node::new(
        "attacker",
        Box::new(SuspensionAttacker::new(
            DosKind::Targeted {
                id: CanId::from_raw(ATTACK_ID),
            },
            400,
        )),
    ));
    let list = EcuList::from_raw(&[0x173]);
    let observer = builder.node_id();
    let mut sim = builder
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .build();
    sim.run(run_bits);

    let start = attack_start(&sim, attacker);
    // MichiCAN's detection instant: the first transmitter-side error the
    // counterattack provokes (within the first malicious frame).
    let first_kill = sim
        .events()
        .iter()
        .find(|e| {
            e.node == attacker
                && matches!(
                    e.kind,
                    EventKind::ErrorDetected {
                        role: can_sim::ErrorRole::Transmitter,
                        ..
                    }
                )
        })
        .map(|e| e.at.bits());

    DefenseLatency {
        detection_latency_bits: match (first_kill, start) {
            (Some(kill), Some(start)) => Some(kill.saturating_sub(start)),
            _ => None,
        },
        frames_before_detection: delivered_attack_frames(&sim, observer, first_kill),
        eradicated: sim
            .events()
            .iter()
            .any(|e| e.node == attacker && matches!(e.kind, EventKind::BusOff)),
        total_attack_frames_delivered: delivered_attack_frames(&sim, observer, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUN: u64 = 40_000;

    #[test]
    fn ids_detects_late_and_never_eradicates() {
        let ids = ids_defense(RUN);
        let latency = ids.detection_latency_bits.expect("the flood must alert");
        assert!(
            latency > 1_000,
            "IDS needs many complete frames: {latency} bits"
        );
        assert!(ids.frames_before_detection >= 5);
        assert!(!ids.eradicated, "an IDS cannot bus the attacker off");
        assert!(
            ids.total_attack_frames_delivered > 50,
            "the flood continues after detection"
        );
    }

    #[test]
    fn michican_detects_within_the_first_frame_and_eradicates() {
        let michican = michican_defense(RUN);
        let latency = michican
            .detection_latency_bits
            .expect("the counterattack must fire");
        assert!(
            latency < 25,
            "MichiCAN kills within the first frame's control field: {latency} bits"
        );
        assert_eq!(michican.frames_before_detection, 0);
        assert!(michican.eradicated);
        assert_eq!(
            michican.total_attack_frames_delivered, 0,
            "not one attack frame may complete"
        );
    }

    #[test]
    fn michican_is_orders_of_magnitude_faster() {
        let ids = ids_defense(RUN);
        let michican = michican_defense(RUN);
        let ratio = ids.detection_latency_bits.unwrap() as f64
            / michican.detection_latency_bits.unwrap() as f64;
        assert!(ratio > 50.0, "latency ratio {ratio:.0}× must be dramatic");
    }
}

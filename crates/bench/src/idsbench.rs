//! The timing-IDS bake-off: every registry detector against every
//! defense × scenario cell, in one table.
//!
//! Table I of the paper classifies IDS approaches \[15\]–\[17\] as
//! backward compatible but *not real-time* and *without eradication*.
//! This bench measures that classification: the full
//! [`can_ids::registry`] detector grid rides along every cell of a
//! defense-comparison grid as passive [`DetectorTap`]s, so a single run
//! yields per-detector detection latency and false-positive rate next to
//! the in-controller defense's reaction latency and eradication count.
//!
//! Cell shape: the victim ECU owns identifier 0x173 and transmits
//! periodically; a second benign sender keeps the identifier
//! distribution non-trivial (so the entropy detector has a baseline
//! worth the name); the attacker — instantiated from
//! [`can_attacks::registry`] and gated behind [`IDS_ATTACK_START_BITS`]
//! — starts mid-run, after every trainable detector has been armed at
//! [`IDS_ARM_AT_BITS`]; a silent receiver completes the bus. Defenses
//! reuse the zoo's [`ZooDefense`] column set (none / michican / parrot).
//!
//! Cells fan out with [`crate::runner::ExperimentPlan`], so the table is
//! byte-identical at any `--shards` count and in all three simulation
//! modes (pinned by `tests/differential_fast_forward.rs`).
//!
//! The table's honesty invariant ([`assert_ids_honesty`]): a frame-level
//! detector only sees *completed* frames, so its detection latency can
//! never undercut one whole frame ([`ONE_FRAME_BITS`]) — while MichiCAN,
//! deciding inside the identifier field of the first malicious frame,
//! must come in under it on the same cells.

use can_attacks::registry::{variants_for, AttackAgent, AttackVariant};
use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::{Application, PeriodicSender, SilentApplication};
use can_core::{BitInstant, CanFrame, CanId};
use can_ids::registry::{all_variants as all_detectors, DetectorVariant};
use can_ids::{DetectorTap, FrequencyIds, IntervalIds};
use can_obs::{Journal, Recorder};
use can_sim::{bus_off_episodes, ErrorRole, EventKind, Node, NodeId, SimBuilder, Simulator};
use michican::prelude::*;
use parrot::ParrotDefender;

use crate::attackzoo::ZooDefense;
use crate::runner::{ExecOpts, ExperimentPlan};
use crate::scenarios::TABLE2_SPEED;

/// The victim ECU's identifier (the paper's defender id).
pub const IDS_VICTIM_ID: u16 = 0x173;

/// Bits between victim transmissions.
pub const IDS_VICTIM_PERIOD_BITS: u64 = 600;

/// The victim's payload (all-dominant, maximizing stuff bits).
pub const IDS_VICTIM_PAYLOAD: [u8; 8] = [0x00; 8];

/// A second benign sender: keeps the identifier distribution non-trivial
/// so the entropy baseline is meaningful.
pub const IDS_BENIGN_ID: u16 = 0x300;

/// Bits between benign-sender transmissions.
pub const IDS_BENIGN_PERIOD_BITS: u64 = 800;

/// Run horizon per cell, in bus bits.
pub const IDS_HORIZON_BITS: u64 = 40_000;

/// Sim time at which every trainable detector is armed (training ends).
pub const IDS_ARM_AT_BITS: u64 = 12_000;

/// Sim time before which the attacker is gated silent. Training and
/// arming both complete on clean traffic, so false positives and
/// detection latency are measured against a trained detector.
pub const IDS_ATTACK_START_BITS: u64 = 16_000;

/// The shortest possible complete frame on the wire (a 0-byte data frame
/// before stuffing): the frame-level detector latency floor.
pub const ONE_FRAME_BITS: u64 = 44;

/// Pseudo-node id under which detector-tap journal events are stamped
/// (one past the bus's four real nodes).
pub const IDS_TAP_JOURNAL_NODE: u32 = 4;

/// The traffic a bake-off cell runs: clean, or one registry attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdsScenario {
    /// Benign traffic only — the false-positive floor.
    Clean,
    /// One controller-level registry attack, gated behind
    /// [`IDS_ATTACK_START_BITS`].
    Attack(AttackVariant),
}

impl IdsScenario {
    /// Stable row label.
    pub fn label(&self) -> String {
        match self {
            IdsScenario::Clean => "clean".to_string(),
            IdsScenario::Attack(variant) => variant.label(),
        }
    }
}

/// The bake-off scenario list: clean plus every controller-level attack
/// family a frame-level IDS can plausibly observe (bit-level adversaries
/// never complete an own frame, so there is nothing for a frame-level
/// detector to see).
pub fn ids_scenarios() -> Vec<IdsScenario> {
    let mut scenarios = vec![IdsScenario::Clean];
    for family in ["fabrication", "dos-traditional", "dos-targeted", "toggling"] {
        let variants = variants_for(family).expect("registry family exists");
        scenarios.extend(variants.into_iter().map(IdsScenario::Attack));
    }
    scenarios
}

/// One cell of the bake-off grid: a scenario against a defense. Every
/// selected detector observes every cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdsCell {
    /// The traffic scenario.
    pub scenario: IdsScenario,
    /// The defense on the victim node.
    pub defense: ZooDefense,
}

/// The full cell grid: every scenario × every defense, in scenario-major
/// order (the table's row order).
pub fn ids_cells() -> Vec<IdsCell> {
    ids_scenarios()
        .into_iter()
        .flat_map(|scenario| ZooDefense::ALL.map(|defense| IdsCell { scenario, defense }))
        .collect()
}

/// The detector grid for a `--detectors` selection: one registry family
/// by name, or the full grid for `"all"`. `None` for an unknown name.
pub fn detector_grid_for(detectors: &str) -> Option<Vec<DetectorVariant>> {
    if detectors == "all" {
        return Some(all_detectors());
    }
    can_ids::registry::variants_for(detectors)
}

/// An application gated silent until a fixed sim time: before
/// `start_bits` it never polls a frame out of `inner` and advertises the
/// gate as its quiescence horizon; from `start_bits` on it is `inner`.
/// Receive-side callbacks always forward (the wrapped attacker may probe
/// passively while gated).
struct DelayedApp {
    inner: Box<dyn Application>,
    start_bits: u64,
}

impl Application for DelayedApp {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if now.bits() < self.start_bits {
            None
        } else {
            self.inner.poll(now)
        }
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        if now.bits() < self.start_bits {
            Some(BitInstant::from_bits(self.start_bits))
        } else {
            self.inner.next_activity(now)
        }
    }

    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant) {
        self.inner.on_frame(frame, now);
    }

    fn on_transmit_success(&mut self, frame: &CanFrame, now: BitInstant) {
        self.inner.on_transmit_success(frame, now);
    }

    fn on_bus_off(&mut self, now: BitInstant) {
        self.inner.on_bus_off(now);
    }

    fn on_recovered(&mut self, now: BitInstant) {
        self.inner.on_recovered(now);
    }
}

/// One detector's column of a bake-off cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorOutcome {
    /// The detector variant's stable label.
    pub detector: String,
    /// Frames the detector observed over the whole run.
    pub frames_observed: u64,
    /// Bits from the attack's first transmitted bit to the detector's
    /// first alert at or after it (`None` on clean cells or when the
    /// detector never alerted).
    pub detection_latency_bits: Option<u64>,
    /// Alerts inside the false-positive window: armed-to-attack-start on
    /// attack cells, armed-to-horizon on clean cells.
    pub false_alerts: u64,
    /// Frames observed inside the same window (the false-alert base).
    pub window_frames: u64,
    /// False alerts per 1000 observed window frames (integer, exact).
    pub fp_per_1k_frames: u64,
}

/// Outcome of one bake-off cell: the defense-side measurements plus one
/// [`DetectorOutcome`] per attached detector, in registry order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdsOutcome {
    /// The scenario's stable label.
    pub scenario: String,
    /// The defense's stable label.
    pub defense: &'static str,
    /// First bit of the attacker's first transmission at or after the
    /// gate (`None` on clean cells, or when the defense silenced the
    /// attacker before it ever started).
    pub attack_start_bits: Option<u64>,
    /// MichiCAN's reaction: bits from attack start to the first
    /// transmitter-side error the counterattack provokes on the attacker
    /// node (`None` for other defenses or when it never fired).
    pub defense_latency_bits: Option<u64>,
    /// Bus-off episodes inflicted on the attacker ("eradication").
    pub attacker_bus_offs: usize,
    /// Per-detector columns, in selection order.
    pub detectors: Vec<DetectorOutcome>,
}

/// One assembled bake-off cell, ready to run.
pub struct IdsSim {
    /// The assembled four-node simulator with all taps installed.
    pub sim: Simulator,
    /// Always-enabled probe carrying the defense's and the detectors'
    /// metric series.
    pub probe: Recorder,
    /// Shared handles to the attached detector taps, in selection order.
    pub taps: Vec<DetectorTap>,
    /// The victim ECU's node id.
    pub victim_node: NodeId,
    /// The attacker's node id (a silent placeholder on clean cells, so
    /// node numbering — and thus the event stream shape — is identical
    /// across scenarios).
    pub attacker_node: NodeId,
    /// The second benign sender's node id.
    pub benign_node: NodeId,
    /// The silent receiver's node id.
    pub rx_node: NodeId,
}

/// Assembles one bake-off cell: victim (+defense), gated attacker,
/// benign sender, receiver — and one passive [`DetectorTap`] per
/// selected detector variant, all observing the same bus in this single
/// run. Pure with respect to `recorder`/`journal`.
pub fn build_ids_cell(cell: &IdsCell, detectors: &[DetectorVariant], recorder: Recorder) -> IdsSim {
    build_ids_cell_observed(cell, detectors, recorder, Journal::disabled())
}

/// [`build_ids_cell`] with a causal event [`Journal`] threaded through
/// the bus, the defense (node 0), the attacker (node 1) and every
/// detector tap ([`IDS_TAP_JOURNAL_NODE`]) — detector alerts land as
/// `ids_alert` events at the triggering frame's completion bit,
/// inheriting its `frame_seq`/`chain_id`, so an attack-frame →
/// alert chain reconstructs from the export.
pub fn build_ids_cell_observed(
    cell: &IdsCell,
    detectors: &[DetectorVariant],
    recorder: Recorder,
    journal: Journal,
) -> IdsSim {
    let victim = CanId::from_raw(IDS_VICTIM_ID);
    let probe = Recorder::enabled();

    let mut builder = SimBuilder::new(TABLE2_SPEED)
        .recorder(recorder)
        .journal(journal.clone());

    // Node 0: the victim ECU (and, when defended, the defense).
    let victim_node = builder.node_id();
    let frame = CanFrame::data_frame(victim, &IDS_VICTIM_PAYLOAD).expect("valid victim frame");
    builder = match cell.defense {
        ZooDefense::Undefended => builder.node(Node::new(
            "victim-0x173",
            Box::new(PeriodicSender::new(frame, IDS_VICTIM_PERIOD_BITS, 0)),
        )),
        ZooDefense::MichiCan => {
            let list = EcuList::from_raw(&[IDS_VICTIM_ID]);
            let mut handler = MichiCan::new(DetectionFsm::for_ecu(&list, 0));
            handler.set_recorder(probe.clone(), 0);
            handler.set_journal(journal.clone(), 0);
            builder.node(
                Node::new(
                    "victim-0x173",
                    Box::new(PeriodicSender::new(frame, IDS_VICTIM_PERIOD_BITS, 0)),
                )
                .with_agent(Box::new(handler)),
            )
        }
        ZooDefense::Parrot => {
            let mut parrot =
                ParrotDefender::new(victim, 5_000).with_own_traffic(IDS_VICTIM_PERIOD_BITS);
            parrot.set_recorder(probe.clone(), 0);
            parrot.set_journal(journal.clone(), 0);
            builder.node(Node::new("victim-0x173", Box::new(parrot)))
        }
    };

    // Node 1: the attacker, gated behind the start deadline — or a
    // silent placeholder on clean cells.
    let attacker_node = builder.node_id();
    builder = match cell.scenario {
        IdsScenario::Clean => builder.node(Node::new("attacker-idle", Box::new(SilentApplication))),
        IdsScenario::Attack(variant) => {
            match variant.instantiate_observed(victim, IDS_VICTIM_PERIOD_BITS, &journal, 1) {
                AttackAgent::App(app) => builder.node(Node::new(
                    "attacker",
                    Box::new(DelayedApp {
                        inner: app,
                        start_bits: IDS_ATTACK_START_BITS,
                    }),
                )),
                // Bit-level adversaries are excluded from ids_scenarios()
                // (nothing for a frame-level detector to observe), but
                // keep custom grids honest: mount ungated.
                AttackAgent::Bit(agent) => builder.node(
                    Node::new("attacker-bitlevel", Box::new(SilentApplication)).with_agent(agent),
                ),
            }
        }
    };

    // Node 2: the second benign sender.
    let benign_node = builder.node_id();
    let benign_frame = CanFrame::data_frame(CanId::from_raw(IDS_BENIGN_ID), &[0x55; 4])
        .expect("valid benign frame");
    builder = builder.node(Node::new(
        "benign-0x300",
        Box::new(PeriodicSender::new(
            benign_frame,
            IDS_BENIGN_PERIOD_BITS,
            200,
        )),
    ));

    // Node 3: a silent receiver (acknowledges and counts delivery).
    let rx_node = builder.node_id();
    builder = builder.node(Node::new("rx", Box::new(SilentApplication)));

    // The detector taps: passive multi-tap attachment, one shared handle
    // kept per variant, a boxed clone installed on the bus.
    let mut taps = Vec::with_capacity(detectors.len());
    for variant in detectors {
        let tap = DetectorTap::new(variant.label(), variant.instantiate())
            .with_arm_at(IDS_ARM_AT_BITS)
            .with_recorder(probe.clone())
            .with_journal(journal.clone(), IDS_TAP_JOURNAL_NODE);
        builder = builder.tap(tap.as_frame_tap());
        taps.push(tap);
    }

    IdsSim {
        sim: builder.build(),
        probe,
        taps,
        victim_node,
        attacker_node,
        benign_node,
        rx_node,
    }
}

fn attack_start(sim: &Simulator, attacker: NodeId) -> Option<u64> {
    sim.events()
        .iter()
        .find(|e| {
            e.node == attacker
                && e.at.bits() >= IDS_ATTACK_START_BITS
                && matches!(e.kind, EventKind::TransmissionStarted { .. })
        })
        .map(|e| e.at.bits())
}

fn michican_kill(sim: &Simulator, attacker: NodeId, from_bits: u64) -> Option<u64> {
    sim.events()
        .iter()
        .find(|e| {
            e.node == attacker
                && e.at.bits() >= from_bits
                && matches!(
                    e.kind,
                    EventKind::ErrorDetected {
                        role: ErrorRole::Transmitter,
                        ..
                    }
                )
        })
        .map(|e| e.at.bits())
}

/// Runs one bake-off cell for `horizon_bits`.
pub fn run_ids_cell(
    cell: &IdsCell,
    detectors: &[DetectorVariant],
    horizon_bits: u64,
    opts: &ExecOpts,
) -> IdsOutcome {
    let IdsSim {
        mut sim,
        probe,
        taps,
        attacker_node,
        ..
    } = build_ids_cell_observed(cell, detectors, opts.recorder.clone(), opts.journal.clone());

    opts.run(&mut sim, horizon_bits);

    let start = attack_start(&sim, attacker_node);
    let defense_latency_bits = match (cell.defense, start) {
        (ZooDefense::MichiCan, Some(start)) => {
            michican_kill(&sim, attacker_node, start).map(|kill| kill - start)
        }
        _ => None,
    };
    let attacker_bus_offs = bus_off_episodes(sim.events(), attacker_node).len();

    // The false-positive window: armed detectors judging clean traffic.
    let fp_window_end = start.unwrap_or(horizon_bits);
    let detector_outcomes = taps
        .iter()
        .map(|tap| {
            let false_alerts = tap.alerts_in(IDS_ARM_AT_BITS, fp_window_end);
            let window_frames = tap.frames_observed_in(IDS_ARM_AT_BITS, fp_window_end);
            DetectorOutcome {
                detector: tap.label(),
                frames_observed: tap.frames_observed(),
                detection_latency_bits: start
                    .and_then(|s| tap.first_alert_at_or_after(s).map(|alert| alert - s)),
                false_alerts,
                window_frames,
                fp_per_1k_frames: (false_alerts * 1_000)
                    .checked_div(window_frames)
                    .unwrap_or(0),
            }
        })
        .collect();

    // Export the defense/detector series alongside the cell's can_* series.
    opts.recorder.merge_registry(&probe.into_registry());

    IdsOutcome {
        scenario: cell.scenario.label(),
        defense: cell.defense.label(),
        attack_start_bits: start,
        defense_latency_bits,
        attacker_bus_offs,
        detectors: detector_outcomes,
    }
}

/// Runs the bake-off grid fanned out on `opts.shards` workers; outcomes
/// come back in grid order and per-cell registries/journals merge in
/// index order, so the result — and any metrics snapshot or journal
/// export — is byte-identical for every shard count and mode.
pub fn run_ids_with(
    cells: Vec<IdsCell>,
    detectors: Vec<DetectorVariant>,
    horizon_bits: u64,
    opts: &ExecOpts,
) -> Vec<IdsOutcome> {
    let mode = opts.mode;
    ExperimentPlan::new(cells, 0)
        .with_shards(opts.shards.max(1))
        .run_observed(
            &opts.recorder,
            &opts.journal,
            move |_index, _seed, cell, cell_recorder, cell_journal| {
                let cell_opts = ExecOpts::new()
                    .with_mode(mode)
                    .with_recorder(cell_recorder.clone())
                    .with_journal(cell_journal.clone());
                run_ids_cell(&cell, &detectors, horizon_bits, &cell_opts)
            },
        )
}

/// Renders the bake-off table in the `experiments` stdout format: one
/// row per scenario × defense × detector, with the cell-level defense
/// columns repeated on each of its detector rows.
pub fn render_ids_table(outcomes: &[IdsOutcome]) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario             defense   detector                  frames  ids-latency  false  fp/1k  def-latency  atk-busoff\n",
    );
    for o in outcomes {
        let def_latency = o
            .defense_latency_bits
            .map_or("-".to_string(), |b| b.to_string());
        for d in &o.detectors {
            let latency = d
                .detection_latency_bits
                .map_or("-".to_string(), |b| b.to_string());
            out.push_str(&format!(
                "{:<20} {:<9} {:<25} {:>6} {:>11} {:>6} {:>6} {:>11} {:>11}\n",
                o.scenario,
                o.defense,
                d.detector,
                d.frames_observed,
                latency,
                d.false_alerts,
                d.fp_per_1k_frames,
                def_latency,
                o.attacker_bus_offs,
            ));
        }
    }
    out
}

/// The bake-off's honesty invariant (Table I, measured): a frame-level
/// detector's latency can never undercut one complete frame, while
/// MichiCAN's in-frame reaction must, wherever both fired on the same
/// cell.
///
/// # Panics
///
/// Panics when either half of the invariant is violated.
pub fn assert_ids_honesty(outcomes: &[IdsOutcome]) {
    for o in outcomes {
        if o.attack_start_bits.is_none() {
            continue;
        }
        for d in &o.detectors {
            if let Some(latency) = d.detection_latency_bits {
                assert!(
                    latency >= ONE_FRAME_BITS,
                    "{} on {}/{}: frame-level latency {latency} bits undercuts one frame",
                    d.detector,
                    o.scenario,
                    o.defense
                );
            }
        }
        if let Some(kill) = o.defense_latency_bits {
            assert!(
                kill < ONE_FRAME_BITS,
                "michican on {}: in-frame reaction took {kill} bits (≥ one frame)",
                o.scenario
            );
        }
    }
}

// ---------------------------------------------------------------------
// The focused flood duel (absorbed from the old `ids_compare` module):
// one flooding attack, IDS-via-tap vs MichiCAN, in single runs.
// ---------------------------------------------------------------------

/// Outcome of one defense-vs-flood run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseLatency {
    /// Bits from the first attack bit to the defense's detection instant.
    pub detection_latency_bits: Option<u64>,
    /// Attack frames that fully traversed the bus before detection.
    pub frames_before_detection: u64,
    /// Whether the attacker ended up eradicated (bus-off).
    pub eradicated: bool,
    /// Attack frames delivered over the whole run.
    pub total_attack_frames_delivered: u64,
}

const FLOOD_SPEED: can_core::BusSpeed = can_core::BusSpeed::K500;
const FLOOD_ATTACK_ID: u16 = 0x064;
const FLOOD_PERIOD_BITS: u64 = 400;

fn flood_attacker() -> Box<dyn Application> {
    Box::new(SuspensionAttacker::new(
        DosKind::Targeted {
            id: CanId::from_raw(FLOOD_ATTACK_ID),
        },
        FLOOD_PERIOD_BITS,
    ))
}

fn first_tx_start(sim: &Simulator, attacker: NodeId) -> Option<u64> {
    sim.events()
        .iter()
        .find(|e| e.node == attacker && matches!(e.kind, EventKind::TransmissionStarted { .. }))
        .map(|e| e.at.bits())
}

fn delivered_attack_frames(sim: &Simulator, observer: NodeId, until: Option<u64>) -> u64 {
    sim.events()
        .iter()
        .filter(|e| {
            e.node == observer
                && until.is_none_or(|t| e.at.bits() <= t)
                && matches!(&e.kind, EventKind::FrameReceived { frame }
                    if frame.id() == CanId::from_raw(FLOOD_ATTACK_ID))
        })
        .count() as u64
}

/// Runs the flooding attack against the classic frame-level IDS pair
/// (frequency + interval, the `typical_500k` configuration), attached as
/// passive taps — one simulation, no rebuild.
pub fn flood_ids_defense(run_bits: u64) -> DefenseLatency {
    let builder = SimBuilder::new(FLOOD_SPEED);
    let attacker = builder.node_id();
    let builder = builder.node(Node::new("attacker", flood_attacker()));
    let rx = builder.node_id();
    let builder = builder.node(Node::new("rx", Box::new(SilentApplication)));

    let frequency = DetectorTap::new("frequency", Box::new(FrequencyIds::new(5_000, 10)));
    let interval = DetectorTap::new("interval", Box::new(IntervalIds::new(8, 0.5)));
    let mut sim = builder
        .tap(frequency.as_frame_tap())
        .tap(interval.as_frame_tap())
        .build();
    sim.run(run_bits);

    let start = first_tx_start(&sim, attacker);
    let first_alert = [&frequency, &interval]
        .iter()
        .filter_map(|tap| tap.first_alert_at_or_after(0))
        .min();

    DefenseLatency {
        detection_latency_bits: match (first_alert, start) {
            (Some(alert), Some(start)) => Some(alert.saturating_sub(start)),
            _ => None,
        },
        frames_before_detection: delivered_attack_frames(&sim, rx, first_alert),
        eradicated: sim
            .events()
            .iter()
            .any(|e| e.node == attacker && matches!(e.kind, EventKind::BusOff)),
        total_attack_frames_delivered: delivered_attack_frames(&sim, rx, None),
    }
}

/// Runs the same flood against MichiCAN.
pub fn flood_michican_defense(run_bits: u64) -> DefenseLatency {
    let builder = SimBuilder::new(FLOOD_SPEED);
    let attacker = builder.node_id();
    let builder = builder.node(Node::new("attacker", flood_attacker()));
    let list = EcuList::from_raw(&[IDS_VICTIM_ID]);
    let observer = builder.node_id();
    let mut sim = builder
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .build();
    sim.run(run_bits);

    let start = first_tx_start(&sim, attacker);
    let first_kill = start.and_then(|s| michican_kill(&sim, attacker, s));

    DefenseLatency {
        detection_latency_bits: match (first_kill, start) {
            (Some(kill), Some(start)) => Some(kill.saturating_sub(start)),
            _ => None,
        },
        frames_before_detection: delivered_attack_frames(&sim, observer, first_kill),
        eradicated: sim
            .events()
            .iter()
            .any(|e| e.node == attacker && matches!(e.kind, EventKind::BusOff)),
        total_attack_frames_delivered: delivered_attack_frames(&sim, observer, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_scenario_defense_pair() {
        let cells = ids_cells();
        let scenarios = ids_scenarios();
        assert_eq!(cells.len(), scenarios.len() * ZooDefense::ALL.len());
        assert!(scenarios.contains(&IdsScenario::Clean));
        assert!(scenarios.len() >= 5, "clean + four attack families");
    }

    #[test]
    fn detector_selection_mirrors_the_registry() {
        assert_eq!(
            detector_grid_for("all").unwrap().len(),
            all_detectors().len()
        );
        assert_eq!(detector_grid_for("cusum").unwrap().len(), 2);
        assert!(detector_grid_for("not-a-detector").is_none());
    }

    #[test]
    fn delayed_app_gates_poll_and_advertises_the_gate() {
        let frame = CanFrame::data_frame(CanId::from_raw(0x100), &[0]).unwrap();
        let mut app = DelayedApp {
            inner: Box::new(PeriodicSender::new(frame, 100, 0)),
            start_bits: 1_000,
        };
        assert!(app.poll(BitInstant::from_bits(999)).is_none());
        assert_eq!(
            app.next_activity(BitInstant::from_bits(0)),
            Some(BitInstant::from_bits(1_000)),
            "the gate is the quiescence horizon"
        );
        assert!(app.poll(BitInstant::from_bits(1_000)).is_some());
    }

    #[test]
    fn one_attack_cell_measures_latency_above_the_frame_floor() {
        let cell = IdsCell {
            scenario: IdsScenario::Attack(variants_for("dos-targeted").unwrap()[0]),
            defense: ZooDefense::Undefended,
        };
        let detectors = detector_grid_for("cusum").unwrap();
        let outcome = run_ids_cell(&cell, &detectors, IDS_HORIZON_BITS, &ExecOpts::new());
        let start = outcome.attack_start_bits.expect("the flood starts");
        assert!(
            start >= IDS_ATTACK_START_BITS,
            "the gate held until {start}"
        );
        let latency = outcome.detectors[0]
            .detection_latency_bits
            .expect("an un-defended flood of an unseen id must alert");
        assert!(latency >= ONE_FRAME_BITS, "frame floor: {latency}");
        assert_ids_honesty(&[outcome]);
    }

    #[test]
    fn clean_cell_has_no_attack_and_a_quiet_fp_window() {
        let cell = IdsCell {
            scenario: IdsScenario::Clean,
            defense: ZooDefense::Undefended,
        };
        let detectors = detector_grid_for("interval").unwrap();
        let outcome = run_ids_cell(&cell, &detectors, IDS_HORIZON_BITS, &ExecOpts::new());
        assert_eq!(outcome.attack_start_bits, None);
        assert_eq!(outcome.detectors[0].detection_latency_bits, None);
        assert_eq!(
            outcome.detectors[0].false_alerts, 0,
            "trained interval detector must not alert on its own training traffic"
        );
        assert!(outcome.detectors[0].window_frames > 0);
    }
}

//! CPU-utilization tables (paper §V-D).
//!
//! For each of the eight evaluation buses, the FSM of ECU_N (the largest
//! detection range — "maximum testing coverage") is built and its handler
//! cost evaluated on each modeled MCU at each bus speed, in the full and
//! light scenarios.

use can_core::BusSpeed;
use mcu::{DetectionMode, McuProfile};
use michican::fsm::DetectionFsm;
use michican::{EcuList, Scenario};
use restbus::{all_buses, CommMatrix};

/// One row of the CPU-utilization report.
#[derive(Debug, Clone)]
pub struct CpuRow {
    /// Bus (matrix) name.
    pub bus: String,
    /// MCU name.
    pub mcu: &'static str,
    /// Bus speed.
    pub speed: BusSpeed,
    /// Scenario.
    pub scenario: Scenario,
    /// FSM state count of ECU_N.
    pub fsm_nodes: usize,
    /// Idle-path utilization (bus idle).
    pub idle_load: f64,
    /// Active-path utilization (frame on the bus).
    pub active_load: f64,
    /// Combined load at the matrix's predicted bus utilization.
    pub combined_load: f64,
}

/// Builds the ECU_N detection FSM for a matrix under a scenario.
pub fn ecu_n_fsm(matrix: &CommMatrix, scenario: Scenario) -> DetectionFsm {
    let list = EcuList::new(matrix.ids()).expect("matrix identifiers are unique");
    DetectionFsm::for_scenario(&list, list.len() - 1, scenario)
}

/// Evaluates the full CPU report over the eight vehicle buses.
pub fn cpu_report(
    profiles: &[&'static McuProfile],
    speeds: &[BusSpeed],
    scenarios: &[Scenario],
) -> Vec<CpuRow> {
    let mut rows = Vec::new();
    for matrix in all_buses(BusSpeed::K500) {
        let busy = matrix.predicted_bus_load().min(1.0);
        for &scenario in scenarios {
            let fsm = ecu_n_fsm(&matrix, scenario);
            // ECU_N always runs the full range even in the light scenario
            // (it is in 𝔼₂); the light savings show on 𝔼₁ members, modeled
            // via the SpoofOnly mode.
            let mode = match scenario {
                Scenario::Full => DetectionMode::Full {
                    fsm_nodes: fsm.node_count(),
                },
                Scenario::Light => DetectionMode::SpoofOnly,
            };
            for &profile in profiles {
                for &speed in speeds {
                    rows.push(CpuRow {
                        bus: matrix.name.clone(),
                        mcu: profile.name,
                        speed,
                        scenario,
                        fsm_nodes: fsm.node_count(),
                        idle_load: mcu::idle_utilization(profile, speed),
                        active_load: mcu::active_utilization(profile, speed, mode),
                        combined_load: mcu::combined_utilization(profile, speed, mode, busy),
                    });
                }
            }
        }
    }
    rows
}

/// Averages the active load over all buses for one (MCU, speed, scenario).
pub fn mean_active_load(
    rows: &[CpuRow],
    mcu_name: &str,
    speed: BusSpeed,
    scenario: Scenario,
) -> Option<f64> {
    let selected: Vec<f64> = rows
        .iter()
        .filter(|r| r.mcu == mcu_name && r.speed == speed && r.scenario == scenario)
        .map(|r| r.active_load)
        .collect();
    if selected.is_empty() {
        None
    } else {
        Some(selected.iter().sum::<f64>() / selected.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu::{ARDUINO_DUE, NXP_S32K144};

    #[test]
    fn due_paper_calibration_holds_over_real_matrices() {
        let rows = cpu_report(
            &[&ARDUINO_DUE],
            &[BusSpeed::K125],
            &[Scenario::Full, Scenario::Light],
        );
        let full =
            mean_active_load(&rows, ARDUINO_DUE.name, BusSpeed::K125, Scenario::Full).unwrap();
        let light =
            mean_active_load(&rows, ARDUINO_DUE.name, BusSpeed::K125, Scenario::Light).unwrap();
        assert!((0.35..=0.45).contains(&full), "full {full:.3}");
        assert!((0.25..=0.35).contains(&light), "light {light:.3}");
        assert!(full > light, "paper: full ≈ 40 %, light ≈ 30 %");
    }

    #[test]
    fn s32k144_paper_calibration_holds() {
        let rows = cpu_report(&[&NXP_S32K144], &[BusSpeed::K500], &[Scenario::Full]);
        let load =
            mean_active_load(&rows, NXP_S32K144.name, BusSpeed::K500, Scenario::Full).unwrap();
        assert!((0.38..=0.50).contains(&load), "S32K144 {load:.3}");
    }

    #[test]
    fn report_covers_eight_buses() {
        let rows = cpu_report(&[&ARDUINO_DUE], &[BusSpeed::K125], &[Scenario::Full]);
        let buses: std::collections::HashSet<_> = rows.iter().map(|r| r.bus.clone()).collect();
        assert_eq!(buses.len(), 8);
    }

    #[test]
    fn combined_sits_between_idle_and_active() {
        for row in cpu_report(&[&ARDUINO_DUE], &[BusSpeed::K125], &[Scenario::Full]) {
            assert!(row.idle_load <= row.combined_load + 1e-12);
            assert!(row.combined_load <= row.active_load + 1e-12);
        }
    }
}

//! Reusable experiment scenarios — the six Table II experiments, the
//! multi-attacker sweep and the on-vehicle ParkSense test, built exactly
//! as described in paper §V.

use can_attacks::{DosKind, SuspensionAttacker, TogglingAttacker};
use can_core::app::SilentApplication;
use can_core::{BusSpeed, CanId};
use can_sim::{bus_off_episodes, DurationStats, EventKind, Node, NodeId, SimBuilder, Simulator};
use michican::prelude::*;
use restbus::{
    pacifica_matrix, vehicle_matrix, ParkSense, ReplayApp, Vehicle, ATTACK_ID, PARKSENSE_ID,
};

use crate::runner::{ExecOpts, ExperimentPlan};

/// The bus speed of the paper's online evaluation (Table II).
pub const TABLE2_SPEED: BusSpeed = BusSpeed::K50;

/// The defender ECU's identifier in all Table II experiments.
pub const DEFENDER_ID: u16 = 0x173;

/// Description of one Table II experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment number (1–6).
    pub number: u8,
    /// Attacker identifiers.
    pub attacker_ids: Vec<u16>,
    /// Whether benign Veh. D restbus traffic is replayed.
    pub restbus: bool,
    /// Attack class label for the report.
    pub kind: &'static str,
}

/// The paper's six experiments (§V-C).
pub fn table2_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            number: 1,
            attacker_ids: vec![0x173],
            restbus: true,
            kind: "spoofing",
        },
        Experiment {
            number: 2,
            attacker_ids: vec![0x173],
            restbus: false,
            kind: "spoofing",
        },
        Experiment {
            number: 3,
            attacker_ids: vec![0x064],
            restbus: true,
            kind: "DoS",
        },
        Experiment {
            number: 4,
            attacker_ids: vec![0x064],
            restbus: false,
            kind: "DoS",
        },
        Experiment {
            number: 5,
            attacker_ids: vec![0x066, 0x067],
            restbus: false,
            kind: "2×DoS",
        },
        Experiment {
            number: 6,
            attacker_ids: vec![0x050, 0x051],
            restbus: false,
            kind: "toggling",
        },
    ]
}

/// Result of one experiment run: per-attacker bus-off statistics.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The experiment.
    pub experiment: Experiment,
    /// Per attacker identifier: its bus-off duration statistics.
    pub per_attacker: Vec<(u16, Option<DurationStats>)>,
    /// Observed bus load over the full capture.
    pub bus_load: f64,
}

/// Identifiers that must not appear in replayed restbus traffic (they are
/// reserved for attackers and the defender in the experiments).
fn reserved_ids() -> Vec<u16> {
    vec![0x050, 0x051, 0x064, 0x066, 0x067, 0x173]
}

/// The Veh. D restbus matrix at 50 kbit/s with reserved identifiers
/// removed and periods stretched 40× (the paper's Veh. D recordings stem
/// from 500 kbit/s buses; replaying them verbatim on a 50 kbit/s bus would
/// exceed 100 % load — the stretch keeps the replay at the light level at
/// which, like in the paper, "only few benign messages interrupt the
/// bus-off attempt").
pub fn restbus_matrix() -> restbus::CommMatrix {
    let full = vehicle_matrix(Vehicle::D, 0, TABLE2_SPEED);
    let reserved = reserved_ids();
    let messages: Vec<restbus::Message> = full
        .messages()
        .iter()
        .filter(|m| !reserved.contains(&m.id.raw()))
        .map(|m| {
            let mut m = m.clone();
            m.period_ms *= 40;
            m
        })
        .collect();
    restbus::CommMatrix::new("veh-d/bus-0@50k", TABLE2_SPEED, messages)
}

/// Builds the defender's ECU list for an experiment: the restbus
/// identifiers (when replayed) plus the defender's own 0x173.
pub fn defender_ecu_list(with_restbus: bool) -> EcuList {
    let mut ids = vec![CanId::from_raw(DEFENDER_ID)];
    if with_restbus {
        ids.extend(restbus_matrix().ids());
    }
    EcuList::new(ids).expect("experiment identifier sets are valid")
}

/// Constructs the simulator for one Table II experiment. Returns the
/// simulator and the attacker node ids (in `attacker_ids` order).
pub fn build_experiment(exp: &Experiment) -> (Simulator, Vec<NodeId>) {
    build_experiment_with(exp, &ExecOpts::default())
}

/// [`build_experiment`] honouring the recorder of `opts`.
pub fn build_experiment_with(exp: &Experiment, opts: &ExecOpts) -> (Simulator, Vec<NodeId>) {
    let (builder, attackers) = experiment_builder(exp, opts);
    (builder.build(), attackers)
}

/// [`build_experiment`] with a full signal trace attached (figure runs
/// that render the bus waveform, e.g. Fig. 6's VCD export).
pub fn build_experiment_traced(exp: &Experiment) -> (Simulator, Vec<NodeId>) {
    let (builder, attackers) = experiment_builder(exp, &ExecOpts::default());
    (builder.trace().build(), attackers)
}

/// The shared construction: a configured [`SimBuilder`] plus the attacker
/// node ids, ready for callers to add tracing before `build()`.
fn experiment_builder(exp: &Experiment, opts: &ExecOpts) -> (SimBuilder, Vec<NodeId>) {
    let mut builder = SimBuilder::new(TABLE2_SPEED)
        .recorder(opts.recorder.clone())
        .journal(opts.journal.clone());

    let mut attacker_nodes = Vec::new();
    if exp.number == 6 {
        // One attacker node toggling between the two identifiers.
        attacker_nodes.push(builder.node_id());
        builder = builder.node(Node::new(
            "attacker-toggle",
            Box::new(TogglingAttacker::new(
                CanId::from_raw(exp.attacker_ids[0]),
                CanId::from_raw(exp.attacker_ids[1]),
                200,
            )),
        ));
    } else {
        for (i, &raw) in exp.attacker_ids.iter().enumerate() {
            attacker_nodes.push(builder.node_id());
            builder = builder.node(Node::new(
                format!("attacker-{raw:03x}"),
                Box::new(SuspensionAttacker::new(
                    DosKind::Targeted {
                        id: CanId::from_raw(raw),
                    },
                    // Staggered periods so multi-attacker schedules drift
                    // across each other over the capture (the paper's two
                    // Experiment 5 patterns both occur).
                    1_500 + 37 * i as u64,
                )),
            ));
        }
    }

    if exp.restbus {
        builder = builder.node(Node::new(
            "restbus-veh-d",
            Box::new(ReplayApp::for_matrix(&restbus_matrix())),
        ));
    }

    // The defender ECU owns 0x173 and runs MichiCAN. It does not transmit
    // during the capture: the paper's tight Experiment 1/2 deviations
    // (σ ≤ 2.6 ms) imply episodes free of owner/spoofer identifier
    // collisions, which lockstep-damage both parties (see
    // tests/id_collision.rs for that phenomenon).
    let list = defender_ecu_list(exp.restbus);
    let index = list
        .index_of(CanId::from_raw(DEFENDER_ID))
        .expect("defender id is in the list");
    let defender_node = builder.node_id();
    let mut handler = MichiCan::new(DetectionFsm::for_ecu(&list, index));
    handler.set_journal(opts.journal.clone(), defender_node as u32);
    let builder = builder.node(
        Node::new("defender-0x173", Box::new(SilentApplication)).with_agent(Box::new(handler)),
    );

    (builder, attacker_nodes)
}

/// Runs one Table II experiment for `capture_ms` (the paper records 2 s)
/// and extracts bus-off statistics.
pub fn run_experiment(exp: &Experiment, capture_ms: f64) -> ExperimentOutcome {
    run_experiment_with(exp, capture_ms, &ExecOpts::default())
}

/// [`run_experiment`] under explicit execution options: metrics recorder
/// (per-node TEC/REC, error frames by type, bus utilization) and
/// lockstep/fast-forward mode.
pub fn run_experiment_with(
    exp: &Experiment,
    capture_ms: f64,
    opts: &ExecOpts,
) -> ExperimentOutcome {
    let (mut sim, attackers) = build_experiment_with(exp, opts);
    opts.run_millis(&mut sim, capture_ms);

    let per_attacker = if exp.number == 6 {
        // One node, two identifiers: all episodes belong to the node; the
        // paper reports a single row per identifier with identical stats.
        let episodes = bus_off_episodes(sim.events(), attackers[0]);
        let stats = DurationStats::from_durations(episodes.iter().map(|e| e.duration()));
        exp.attacker_ids.iter().map(|&id| (id, stats)).collect()
    } else {
        attackers
            .iter()
            .zip(&exp.attacker_ids)
            .map(|(&node, &id)| {
                let episodes = bus_off_episodes(sim.events(), node);
                (
                    id,
                    DurationStats::from_durations(episodes.iter().map(|e| e.duration())),
                )
            })
            .collect()
    };

    ExperimentOutcome {
        experiment: exp.clone(),
        per_attacker,
        bus_load: sim.observed_bus_load(),
    }
}

/// Runs all six Table II experiments for `capture_ms` each, fanned out on
/// `shards` workers.
///
/// The experiments are seed-free (their builders are fully deterministic),
/// so the plan's master seed is irrelevant; cells are still reduced in
/// experiment order, making the report identical for every shard count.
pub fn run_table2(capture_ms: f64, shards: usize) -> Vec<ExperimentOutcome> {
    run_table2_with(capture_ms, &ExecOpts::default().with_shards(shards))
}

/// [`run_table2`] under explicit execution options. Per-experiment
/// registries are merged into `opts.recorder` in experiment order
/// (byte-identical for every shard count and simulation mode).
pub fn run_table2_with(capture_ms: f64, opts: &ExecOpts) -> Vec<ExperimentOutcome> {
    // Only the mode crosses into the workers: recorders are per-cell (a
    // `Recorder` is single-threaded by design) and merged in index order.
    let mode = opts.mode;
    ExperimentPlan::new(table2_experiments(), 0)
        .with_shards(opts.shards.max(1))
        .run_observed(
            &opts.recorder,
            &opts.journal,
            move |_index, _seed, exp, cell_recorder, cell_journal| {
                let cell_opts = ExecOpts::new()
                    .with_mode(mode)
                    .with_recorder(cell_recorder.clone())
                    .with_journal(cell_journal.clone());
                run_experiment_with(&exp, capture_ms, &cell_opts)
            },
        )
}

/// Runs [`run_multi_attacker`] for every count in `counts` on `shards`
/// workers, returning `(count, eradication_bits)` pairs in input order.
pub fn run_multi_attacker_scan(
    counts: &[usize],
    horizon_bits: u64,
    shards: usize,
) -> Vec<(usize, Option<u64>)> {
    run_multi_attacker_scan_with(
        counts,
        horizon_bits,
        &ExecOpts::default().with_shards(shards),
    )
}

/// [`run_multi_attacker_scan`] under explicit execution options;
/// per-count registries are merged in input order.
pub fn run_multi_attacker_scan_with(
    counts: &[usize],
    horizon_bits: u64,
    opts: &ExecOpts,
) -> Vec<(usize, Option<u64>)> {
    let mode = opts.mode;
    ExperimentPlan::new(counts.to_vec(), 0)
        .with_shards(opts.shards.max(1))
        .run_observed(
            &opts.recorder,
            &opts.journal,
            move |_index, _seed, count, cell_recorder, cell_journal| {
                let cell_opts = ExecOpts::new()
                    .with_mode(mode)
                    .with_recorder(cell_recorder.clone())
                    .with_journal(cell_journal.clone());
                (
                    count,
                    run_multi_attacker_with(count, horizon_bits, &cell_opts),
                )
            },
        )
}

/// Multi-attacker sweep (§V-C, "Experiments with more than two
/// attackers"): `count` saturating attackers; returns the total bits from
/// the first attack bit until the last attacker enters bus-off, or `None`
/// if not all attackers were eradicated within the horizon.
///
/// The event log is drained every bit instead of accumulated, so memory
/// stays flat no matter how long the horizon is (large scans used to
/// retain the full log just to find two timestamps).
pub fn run_multi_attacker(count: usize, horizon_bits: u64) -> Option<u64> {
    run_multi_attacker_with(count, horizon_bits, &ExecOpts::default())
}

/// [`run_multi_attacker`] under explicit execution options.
pub fn run_multi_attacker_with(count: usize, horizon_bits: u64, opts: &ExecOpts) -> Option<u64> {
    let mut builder = SimBuilder::new(TABLE2_SPEED)
        .recorder(opts.recorder.clone())
        .journal(opts.journal.clone());
    let mut attackers = Vec::new();
    for i in 0..count {
        let id = 0x066 + i as u16;
        attackers.push(builder.node_id());
        builder = builder.node(Node::new(
            format!("attacker-{id:03x}"),
            Box::new(SuspensionAttacker::new(
                DosKind::Targeted {
                    id: CanId::from_raw(id),
                },
                2_000 + 41 * i as u64,
            )),
        ));
    }
    let list = defender_ecu_list(false);
    let index = list.index_of(CanId::from_raw(DEFENDER_ID)).unwrap();
    let defender_node = builder.node_id();
    let mut handler = MichiCan::new(DetectionFsm::for_ecu(&list, index));
    handler.set_journal(opts.journal.clone(), defender_node as u32);
    let mut sim = builder
        .node(Node::new("defender", Box::new(SilentApplication)).with_agent(Box::new(handler)))
        .build();

    // Stop as soon as every attacker has gone bus-off once. Track the two
    // timestamps of interest while draining, then drop the drained batch.
    // The loop advances one mode-dependent quantum at a time (one bit in
    // lockstep, a whole idle gap under fast-forward); events carry their
    // own timestamps, so the drained view is identical either way.
    let mut remaining: std::collections::HashSet<NodeId> = attackers.iter().copied().collect();
    let mut first_start: Option<u64> = None;
    let mut last_off: Option<u64> = None;
    let mut batch = Vec::new();
    while sim.now().bits() < horizon_bits {
        let left = horizon_bits - sim.now().bits();
        opts.advance(&mut sim, left);
        sim.take_events_into(&mut batch);
        for e in batch.drain(..) {
            match e.kind {
                EventKind::TransmissionStarted { .. }
                    if first_start.is_none() && attackers.contains(&e.node) =>
                {
                    first_start = Some(e.at.bits());
                }
                EventKind::BusOff => {
                    remaining.remove(&e.node);
                    let at = e.at.bits();
                    last_off = Some(last_off.map_or(at, |v| v.max(at)));
                }
                _ => {}
            }
        }
        if remaining.is_empty() {
            break;
        }
    }
    if !remaining.is_empty() {
        return None;
    }
    Some(last_off? - first_start?)
}

/// Outcome of the on-vehicle ParkSense scenario (§V-F).
#[derive(Debug, Clone)]
pub struct ParkSenseOutcome {
    /// Whether the dashboard would show "PARKSENSE UNAVAILABLE".
    pub became_unavailable: bool,
    /// Milliseconds into the run at which availability was lost, if it was.
    pub unavailable_at_ms: Option<f64>,
    /// Bus-off episodes inflicted on the attacker.
    pub attacker_bus_offs: usize,
    /// Attempts within the first bus-off episode (the paper's "within 32
    /// transmission attempts").
    pub first_episode_attempts: Option<u32>,
    /// ParkSense status frames delivered during the run.
    pub status_frames_received: usize,
}

/// Runs the Pacifica ParkSense scenario at 500 kbit/s for `run_ms`,
/// with or without the MichiCAN dongle on the OBD-II port.
pub fn run_parksense(defended: bool, run_ms: f64) -> ParkSenseOutcome {
    run_parksense_with(defended, run_ms, &ExecOpts::default())
}

/// [`run_parksense`] under explicit execution options.
pub fn run_parksense_with(defended: bool, run_ms: f64, opts: &ExecOpts) -> ParkSenseOutcome {
    let speed = BusSpeed::K500;
    let matrix = pacifica_matrix(speed);
    let mut builder = SimBuilder::new(speed)
        .recorder(opts.recorder.clone())
        .journal(opts.journal.clone());

    // One node per sending ECU for full arbitration fidelity.
    let senders: Vec<String> = matrix.by_sender().keys().map(|s| s.to_string()).collect();
    for sender in &senders {
        builder = builder.node(Node::new(
            sender.clone(),
            Box::new(ReplayApp::for_sender(&matrix, sender)),
        ));
    }

    // The attacker floods 0x25F from the OBD-II port.
    let attacker = builder.node_id();
    builder = builder.node(Node::new(
        "obd-attacker",
        Box::new(SuspensionAttacker::saturating(DosKind::Targeted {
            id: ATTACK_ID,
        })),
    ));

    // The MichiCAN dongle (Arduino Due on the OBD-II splitter) knows the
    // full matrix but owns no identifier, so it watches the DoS range
    // only: adopting a list member's id would attack its owner.
    if defended {
        let list = EcuList::new(matrix.ids()).expect("matrix ids are unique");
        let fsm = DetectionFsm::for_monitor(&list);
        let dongle_node = builder.node_id();
        let mut handler = MichiCan::new(fsm);
        handler.set_journal(opts.journal.clone(), dongle_node as u32);
        builder = builder.node(
            Node::new("michican-dongle", Box::new(SilentApplication)).with_agent(Box::new(handler)),
        );
    }

    let mut sim = builder.build();
    opts.run_millis(&mut sim, run_ms);

    // Feed the ParkSense availability model from the frames delivered to
    // one fixed observer (the IPC node — a dashboard would sit there).
    let observer = senders
        .iter()
        .position(|s| s != "parksense")
        .expect("the matrix has non-parksense senders");
    let mut parksense = ParkSense::with_default_timeout();
    let mut status_frames = 0usize;
    let mut became_unavailable = false;
    let mut unavailable_at = None;
    let mut cursor = 0usize;
    let events = sim.events();
    let total_bits = sim.now().bits();
    let ms_per_bit = speed.bit_time_us() / 1000.0;
    for t in 0..total_bits {
        let now_ms = t as f64 * ms_per_bit;
        while cursor < events.len() && events[cursor].at.bits() <= t {
            if events[cursor].node == observer {
                if let EventKind::FrameReceived { frame } = &events[cursor].kind {
                    if frame.id() == PARKSENSE_ID {
                        parksense.on_frame(frame.id(), now_ms);
                        status_frames += 1;
                    }
                }
            }
            cursor += 1;
        }
        if !parksense.is_available(now_ms) && !became_unavailable {
            became_unavailable = true;
            unavailable_at = Some(now_ms);
        }
    }

    let episodes = bus_off_episodes(sim.events(), attacker);
    ParkSenseOutcome {
        became_unavailable,
        unavailable_at_ms: unavailable_at,
        attacker_bus_offs: episodes.len(),
        first_episode_attempts: episodes.first().map(|e| e.attempts),
        status_frames_received: status_frames,
    }
}

//! Bus-load comparison: MichiCAN vs the Parrot baseline (paper §V-E).
//!
//! MichiCAN adds load only while a counterattack is in progress (the
//! attacker's destroyed retransmissions), a ≈ 25 ms spike per bus-off
//! episode. Parrot floods the bus with back-to-back counterattack frames,
//! pushing the load toward 125/128 ≈ 97.7 %.

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId, ErrorState};
use can_sim::{bus_off_episodes, Node, SimBuilder, Simulator};
use michican::prelude::*;
use parrot::ParrotDefender;

/// Measured loads of one defense scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseLoad {
    /// Bus load over the full run.
    pub overall: f64,
    /// Bus load within the defense window (first attack bit → first
    /// attacker bus-off, or the whole run if never bused off).
    pub during_defense: f64,
    /// Whether the attacker was bused off.
    pub attacker_bused_off: bool,
    /// Bits from first attack bit to the attacker's first bus-off.
    pub busoff_bits: Option<u64>,
    /// The defender's own TEC at the end (self-damage).
    pub defender_tec: u16,
    /// The defender's final error state.
    pub defender_state: ErrorState,
}

const SPEED: BusSpeed = BusSpeed::K50;
const DEFENDER_ID: u16 = 0x173;

fn benign_background(builder: SimBuilder) -> SimBuilder {
    // A light benign stream so the baseline load is realistic but leaves
    // room to observe the defense spike.
    let f = CanFrame::data_frame(CanId::from_raw(0x300), &[0x11; 8]).unwrap();
    builder.node(Node::new(
        "benign-0x300",
        Box::new(PeriodicSender::new(f, SPEED.bits_in_millis(50.0), 60)),
    ))
}

/// Steps `sim` while sampling busy bits; returns (overall, windowed) load
/// where the window is `[start, end)` in bits.
fn run_with_window(sim: &mut Simulator, total_bits: u64, window: (u64, u64)) -> (f64, f64) {
    sim.run(window.0);
    let busy_at_start = sim.busy_bits();
    sim.run(window.1 - window.0);
    let busy_in_window = sim.busy_bits() - busy_at_start;
    sim.run(total_bits.saturating_sub(window.1));
    let overall = sim.observed_bus_load();
    let span = (window.1 - window.0).max(1);
    (overall, busy_in_window as f64 / span as f64)
}

/// Runs the MichiCAN defense against a spoofing attacker and measures the
/// load inside and outside the counterattack window.
pub fn michican_load(run_ms: f64) -> DefenseLoad {
    let list = EcuList::from_raw(&[DEFENDER_ID, 0x300]);
    let index = list.index_of(CanId::from_raw(DEFENDER_ID)).unwrap();
    let build = |list: &EcuList| {
        let builder = SimBuilder::new(SPEED);
        let attacker = builder.node_id();
        let builder = builder.node(Node::new(
            "attacker",
            Box::new(
                SuspensionAttacker::new(
                    DosKind::Targeted {
                        id: CanId::from_raw(DEFENDER_ID),
                    },
                    SPEED.bits_in_millis(40.0),
                )
                .with_payload(&[0xFF; 8]),
            ),
        ));
        let builder = benign_background(builder);
        // The defender owns 0x173 but is quiescent during the capture (an
        // actively transmitting owner would collide in lockstep with the
        // same-identifier spoofer — see tests/id_collision.rs).
        let defender = builder.node_id();
        let sim = builder
            .node(
                Node::new("michican", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(list, index)))),
            )
            .build();
        (sim, attacker, defender)
    };

    // First pass to find the defense window.
    let total_bits = SPEED.bits_in_millis(run_ms);
    let (mut sim, attacker, defender) = build(&list);
    sim.run(total_bits);
    let episodes = bus_off_episodes(sim.events(), attacker);
    let window = episodes
        .first()
        .map(|e| (e.started.bits(), e.finished.bits()))
        .unwrap_or((0, total_bits));
    let defender_tec = sim.node(defender).controller().counters().tec();
    let defender_state = sim.node(defender).controller().error_state();
    let overall = sim.observed_bus_load();

    // Second pass, identical construction, sampling the window.
    let (mut sim2, _, _) = build(&list);
    let (_, during) = run_with_window(&mut sim2, total_bits, window);

    DefenseLoad {
        overall,
        during_defense: during,
        attacker_bused_off: !episodes.is_empty(),
        busoff_bits: episodes.first().map(|e| e.duration().as_bits()),
        defender_tec,
        defender_state,
    }
}

/// Runs the Parrot defense against the same spoofing attacker.
pub fn parrot_load(run_ms: f64) -> DefenseLoad {
    let build = || {
        let builder = SimBuilder::new(SPEED);
        let attacker = builder.node_id();
        let builder = builder.node(Node::new(
            "attacker",
            Box::new(
                SuspensionAttacker::new(
                    DosKind::Targeted {
                        id: CanId::from_raw(DEFENDER_ID),
                    },
                    SPEED.bits_in_millis(40.0),
                )
                .with_payload(&[0xFF; 8]),
            ),
        ));
        let builder = benign_background(builder);
        let defender = builder.node_id();
        // A silent receiver so frames are acknowledged even while both
        // contenders transmit.
        let sim = builder
            .node(Node::new(
                "parrot",
                Box::new(
                    ParrotDefender::new(CanId::from_raw(DEFENDER_ID), SPEED.bits_in_millis(200.0))
                        .with_own_traffic(SPEED.bits_in_millis(100.0)),
                ),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .build();
        (sim, attacker, defender)
    };

    let total_bits = SPEED.bits_in_millis(run_ms);
    let (mut sim, attacker, defender) = build();
    sim.run(total_bits);
    let episodes = bus_off_episodes(sim.events(), attacker);
    let window = episodes
        .first()
        .map(|e| (e.started.bits(), e.finished.bits()))
        .unwrap_or((0, total_bits));
    let overall = sim.observed_bus_load();
    let defender_tec = sim.node(defender).controller().counters().tec();
    let defender_state = sim.node(defender).controller().error_state();

    let (mut sim2, _, _) = build();
    let (_, during) = run_with_window(&mut sim2, total_bits, window);

    DefenseLoad {
        overall,
        during_defense: during,
        attacker_bused_off: !episodes.is_empty(),
        busoff_bits: episodes.first().map(|e| e.duration().as_bits()),
        defender_tec,
        defender_state,
    }
}

/// Parrot's theoretical flood load: a 125-bit frame every 128 bits
/// (frame + 3-bit IFS) ≈ 97.7 % (paper §V-E).
pub fn parrot_theoretical_flood_load() -> f64 {
    125.0 / 128.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn michican_busoff_spike_is_bounded() {
        let load = michican_load(400.0);
        assert!(load.attacker_bused_off, "MichiCAN must eradicate");
        assert_eq!(load.defender_tec, 0, "no self-damage");
        // During the counterattack the destroyed retransmissions occupy
        // the bus almost fully — but only for ≈ 26 ms.
        assert!(load.during_defense > 0.8);
        let bits = load.busoff_bits.unwrap();
        assert!((1100..=1500).contains(&bits));
        // Overall load stays moderate because the spike is short.
        assert!(load.overall < 0.75, "overall {}", load.overall);
    }

    #[test]
    fn parrot_floods_and_wounds_itself() {
        let load = parrot_load(600.0);
        // The flood drives the bus toward saturation during defense.
        assert!(
            load.during_defense > 0.9,
            "parrot flood load {}",
            load.during_defense
        );
        // And unlike MichiCAN, the collisions raise Parrot's own TEC.
        assert!(
            load.defender_tec > 0 || load.defender_state != ErrorState::ErrorActive,
            "parrot pays with its own error counters"
        );
    }

    #[test]
    fn theoretical_flood_load_matches_paper() {
        assert!((parrot_theoretical_flood_load() - 0.9766).abs() < 1e-3);
    }
}

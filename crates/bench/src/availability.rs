//! Availability under persistent attack (quantifying §V-E's "the
//! remaining CAN communications will continue normally").
//!
//! A persistent DoS attacker recovers from every bus-off and attacks
//! again; the defended bus alternates ≈ 26 ms eradication episodes with
//! ≈ 28 ms recovery windows. This experiment measures what fraction of
//! the benign traffic actually gets through — undefended, defended by
//! MichiCAN, and on a healthy bus — over multi-second horizons.

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::SilentApplication;
use can_core::{BusSpeed, CanId};
use can_sim::{EventKind, Node, SimBuilder};
use michican::prelude::*;
use parrot::ParrotDefender;
use restbus::{vehicle_matrix, ReplayApp, Vehicle};

/// Outcome of one availability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Availability {
    /// Benign frames delivered to the monitor.
    pub benign_delivered: u64,
    /// Attack frames delivered to the monitor.
    pub attack_delivered: u64,
    /// Times the attacker was forced off the bus.
    pub eradications: u64,
    /// Observed bus load.
    pub bus_load: f64,
}

/// Scenario variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// No attacker at all (the baseline).
    Healthy,
    /// Attacker present, no defense.
    Undefended,
    /// Attacker present, MichiCAN on the bus.
    MichiCan,
    /// Attacker present, the Parrot baseline defending the attacked id.
    Parrot,
}

const ATTACK_ID_RAW: u16 = 0x041;

/// Runs the availability scenario for `run_ms` at 500 kbit/s with Veh. D
/// restbus traffic.
pub fn run(defense: Defense, run_ms: f64) -> Availability {
    let speed = BusSpeed::K500;
    // Drop the attack identifier from the matrix if present.
    let full = vehicle_matrix(Vehicle::D, 0, speed);
    let messages: Vec<restbus::Message> = full
        .messages()
        .iter()
        .filter(|m| m.id.raw() != ATTACK_ID_RAW)
        .cloned()
        .collect();
    let matrix = restbus::CommMatrix::new("veh-d-availability", speed, messages);

    let mut builder = SimBuilder::new(speed).node(Node::new(
        "restbus",
        Box::new(ReplayApp::for_matrix(&matrix)),
    ));
    let monitor = builder.node_id();
    builder = builder.node(Node::new("monitor", Box::new(SilentApplication)));

    let attacker = if defense != Defense::Healthy {
        let id = builder.node_id();
        builder = builder.node(Node::new(
            "attacker",
            Box::new(
                SuspensionAttacker::saturating(DosKind::Targeted {
                    id: CanId::from_raw(ATTACK_ID_RAW),
                })
                // Distinct payload: a spoof that is byte-identical to the
                // defender's counterattack frames would collide invisibly.
                .with_payload(&[0xFF; 8]),
            ),
        ));
        Some(id)
    } else {
        None
    };

    match defense {
        Defense::MichiCan => {
            let list = EcuList::new(matrix.ids()).expect("matrix ids unique");
            // Dongle: DoS range only — it owns no id, and adopting a list
            // member's id would attack that member's legitimate frames.
            let fsm = DetectionFsm::for_monitor(&list);
            builder = builder.node(
                Node::new("michican", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(fsm))),
            );
        }
        Defense::Parrot => {
            // Parrot can only defend its OWN identifier; pretend the
            // attacked id belongs to the Parrot ECU (best case for the
            // baseline).
            builder = builder.node(Node::new(
                "parrot",
                Box::new(ParrotDefender::new(
                    CanId::from_raw(ATTACK_ID_RAW),
                    speed.bits_in_millis(50.0),
                )),
            ));
        }
        Defense::Healthy | Defense::Undefended => {}
    }

    let mut sim = builder.build();
    sim.run_millis(run_ms);

    let mut benign = 0u64;
    let mut attack = 0u64;
    for e in sim.events() {
        if e.node != monitor {
            continue;
        }
        if let EventKind::FrameReceived { frame } = &e.kind {
            if frame.id().raw() == ATTACK_ID_RAW {
                attack += 1;
            } else {
                benign += 1;
            }
        }
    }
    let eradications = attacker
        .map(|a| {
            sim.events()
                .iter()
                .filter(|e| e.node == a && matches!(e.kind, EventKind::BusOff))
                .count() as u64
        })
        .unwrap_or(0);

    Availability {
        benign_delivered: benign,
        attack_delivered: attack,
        eradications,
        bus_load: sim.observed_bus_load(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn michican_restores_most_of_the_traffic() {
        let healthy = run(Defense::Healthy, 400.0);
        let undefended = run(Defense::Undefended, 400.0);
        let defended = run(Defense::MichiCan, 400.0);

        // The undefended DoS starves the bus almost completely.
        assert!(
            (undefended.benign_delivered as f64) < healthy.benign_delivered as f64 * 0.05,
            "undefended: {} vs healthy {}",
            undefended.benign_delivered,
            healthy.benign_delivered
        );
        assert!(undefended.attack_delivered > 500, "the flood owns the bus");

        // Parrot's flood fights the attacker but starves the bus itself.
        let parrot = run(Defense::Parrot, 400.0);
        assert!(
            parrot.benign_delivered < defended.benign_delivered / 2,
            "parrot restores far less than MichiCAN: {} vs {}",
            parrot.benign_delivered,
            defended.benign_delivered
        );

        // MichiCAN brings delivery back to a large fraction of healthy.
        let restored = defended.benign_delivered as f64 / healthy.benign_delivered as f64;
        assert!(
            restored > 0.55,
            "defended delivery restored only {:.0} %",
            restored * 100.0
        );
        assert_eq!(
            defended.attack_delivered, 0,
            "not one attack frame completes under MichiCAN"
        );
        assert!(defended.eradications >= 3, "persistent re-eradication");
    }
}

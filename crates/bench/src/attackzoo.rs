//! The adversary-zoo outcome table: every registry attack against every
//! defense, with eradication / bus-off / detection-latency columns.
//!
//! This is the defense-comparison surface the paper's Table II does not
//! cover: beyond the controller-level spoofing/DoS attackers, the zoo
//! includes CANflict-style bit-level adversaries (stuff-bit overwrite,
//! mid-frame error flags, frame truncation, adaptive racing) that no
//! error-confinement counterattack can bus off — the table shows exactly
//! where each defense's coverage ends.
//!
//! Scenario shape (one cell = one attack variant × one defense): the
//! victim ECU owns identifier 0x173 and transmits periodically; the
//! attacker is instantiated from [`can_attacks::registry`]; a silent
//! receiver completes the bus. Defenses: MichiCAN on the victim node,
//! the Parrot baseline as the victim's application, or none.
//!
//! Cells are fanned out with [`crate::runner::ExperimentPlan`], so the
//! table is byte-identical at any `--shards` count and in all three
//! simulation modes (pinned by `tests/differential_fast_forward.rs`).

use can_attacks::registry::{all_variants, variants_for, AttackAgent, AttackParams, AttackVariant};
use can_attacks::AdaptiveRacer;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{CanFrame, CanId};
use can_obs::{Journal, Recorder};
use can_sim::{bus_off_episodes, EventKind, Node, NodeId, SimBuilder, Simulator};
use michican::prelude::*;
use parrot::ParrotDefender;

use crate::runner::{ExecOpts, ExperimentPlan};
use crate::scenarios::TABLE2_SPEED;

/// The victim ECU's identifier (the paper's defender id).
pub const ZOO_VICTIM_ID: u16 = 0x173;

/// Bits between victim transmissions.
pub const ZOO_VICTIM_PERIOD_BITS: u64 = 600;

/// The victim's payload. All-dominant data maximizes stuff bits, so every
/// registry attack (including stuff-bit overwrite) has something to hit.
pub const ZOO_VICTIM_PAYLOAD: [u8; 8] = [0x00; 8];

/// Default run horizon per cell, in bus bits.
pub const ZOO_HORIZON_BITS: u64 = 40_000;

/// The defense mounted on the victim node in one zoo cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooDefense {
    /// No defense: the attack's raw effect.
    Undefended,
    /// MichiCAN on the victim's integrated controller.
    MichiCan,
    /// The Parrot flooding baseline as the victim's application.
    Parrot,
}

impl ZooDefense {
    /// All defenses, in table column order.
    pub const ALL: [ZooDefense; 3] = [
        ZooDefense::Undefended,
        ZooDefense::MichiCan,
        ZooDefense::Parrot,
    ];

    /// Stable column label.
    pub fn label(self) -> &'static str {
        match self {
            ZooDefense::Undefended => "none",
            ZooDefense::MichiCan => "michican",
            ZooDefense::Parrot => "parrot",
        }
    }
}

/// One cell of the zoo table: an attack variant against a defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZooCell {
    /// The attack variant.
    pub variant: AttackVariant,
    /// The defense on the victim node.
    pub defense: ZooDefense,
}

/// The full cell grid: every registry variant × every defense, in
/// registry order (the table's row order).
pub fn zoo_cells() -> Vec<ZooCell> {
    cells_of(all_variants())
}

/// The cell grid restricted to one attack family, or `None` for an
/// unknown name (`"all"` selects the full grid).
pub fn zoo_cells_for(attack: &str) -> Option<Vec<ZooCell>> {
    if attack == "all" {
        return Some(zoo_cells());
    }
    variants_for(attack).map(cells_of)
}

fn cells_of(variants: Vec<AttackVariant>) -> Vec<ZooCell> {
    variants
        .into_iter()
        .flat_map(|variant| ZooDefense::ALL.map(|defense| ZooCell { variant, defense }))
        .collect()
}

/// Outcome of one zoo cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooOutcome {
    /// The attack variant's stable label.
    pub attack: String,
    /// The defense's stable label.
    pub defense: &'static str,
    /// Whether the attacker is bit-level (controller-less).
    pub bit_level: bool,
    /// Attack instances detected by the defense (0 for none).
    pub detections: u64,
    /// Bus-off episodes inflicted on the attacker ("eradication"; always
    /// 0 for bit-level attackers — they have no error counters).
    pub attacker_bus_offs: usize,
    /// Transmission attempts within the attacker's first bus-off episode
    /// (the paper's "within 32 attempts" pin), if any.
    pub first_episode_attempts: Option<u32>,
    /// Bus-off episodes suffered by the victim node.
    pub victim_bus_offs: usize,
    /// Median detection→injection reaction latency in bits, if measured.
    pub reaction_p50_bits: Option<u64>,
    /// Victim frames delivered intact to the receiver node.
    pub victim_frames_delivered: usize,
}

/// One assembled zoo cell, ready to run: the simulator, the internal
/// defense/attacker probe recorder, and the three node ids.
pub struct ZooSim {
    /// The assembled three-node simulator.
    pub sim: Simulator,
    /// Always-enabled probe carrying the defense's (and the adaptive
    /// racer's) metric series.
    pub probe: Recorder,
    /// The victim ECU's node id.
    pub victim_node: NodeId,
    /// The attacker's node id.
    pub attacker_node: NodeId,
    /// The silent receiver's node id.
    pub rx_node: NodeId,
}

/// Assembles one zoo cell (victim + attacker + receiver) around the given
/// simulation recorder. Pure with respect to `recorder`: the same cell
/// always builds the same bus, so differential checks can hand this a
/// fresh recorder per execution mode.
pub fn build_zoo_cell(cell: &ZooCell, recorder: Recorder) -> ZooSim {
    build_zoo_cell_observed(cell, recorder, Journal::disabled())
}

/// [`build_zoo_cell`] with a causal event [`Journal`] threaded through the
/// bus (frame lifecycle), the defense (detection / injection / watchdog
/// events at node 0) and the attacker (strike / probe events at node 1) —
/// every event of one attack episode shares the attacked frame's
/// `chain_id`, so a complete strike→detection→counterattack chain can be
/// reconstructed from the export.
pub fn build_zoo_cell_observed(cell: &ZooCell, recorder: Recorder, journal: Journal) -> ZooSim {
    let victim = CanId::from_raw(ZOO_VICTIM_ID);
    // Internal probe: always enabled so detection/latency columns are
    // populated regardless of the caller's recorder. Merged into the cell
    // recorder after the run (a no-op when that recorder is disabled).
    let probe = Recorder::enabled();

    let mut builder = SimBuilder::new(TABLE2_SPEED)
        .recorder(recorder)
        .journal(journal.clone());

    // Node 0: the victim ECU (and, when defended, the defense).
    let victim_node = builder.node_id();
    let frame = CanFrame::data_frame(victim, &ZOO_VICTIM_PAYLOAD).expect("valid victim frame");
    builder = match cell.defense {
        ZooDefense::Undefended => builder.node(Node::new(
            "victim-0x173",
            Box::new(PeriodicSender::new(frame, ZOO_VICTIM_PERIOD_BITS, 0)),
        )),
        ZooDefense::MichiCan => {
            let list = EcuList::from_raw(&[ZOO_VICTIM_ID]);
            let mut handler = MichiCan::new(DetectionFsm::for_ecu(&list, 0));
            handler.set_recorder(probe.clone(), 0);
            handler.set_journal(journal.clone(), 0);
            builder.node(
                Node::new(
                    "victim-0x173",
                    Box::new(PeriodicSender::new(frame, ZOO_VICTIM_PERIOD_BITS, 0)),
                )
                .with_agent(Box::new(handler)),
            )
        }
        ZooDefense::Parrot => {
            let mut parrot =
                ParrotDefender::new(victim, 5_000).with_own_traffic(ZOO_VICTIM_PERIOD_BITS);
            parrot.set_recorder(probe.clone(), 0);
            parrot.set_journal(journal.clone(), 0);
            builder.node(Node::new("victim-0x173", Box::new(parrot)))
        }
    };

    // Node 1: the attacker.
    let attacker_node = builder.node_id();
    let agent = match cell.variant.params {
        // Built directly (not via the registry) so the racer's latency
        // measurements reach the probe recorder.
        AttackParams::Adaptive {
            probe_frames,
            lead,
            fallback_at,
        } => {
            let mut racer = AdaptiveRacer::new(victim, probe_frames, lead, fallback_at);
            racer.set_recorder(&probe, 1);
            racer.set_journal(journal.clone(), 1);
            AttackAgent::Bit(Box::new(racer))
        }
        _ => cell
            .variant
            .instantiate_observed(victim, ZOO_VICTIM_PERIOD_BITS, &journal, 1),
    };
    builder = match agent {
        AttackAgent::Bit(agent) => builder
            .node(Node::new("attacker-bitlevel", Box::new(SilentApplication)).with_agent(agent)),
        AttackAgent::App(app) => builder.node(Node::new("attacker", app)),
    };

    // Node 2: a silent receiver (acknowledges and counts delivery).
    let rx_node = builder.node_id();
    let sim = builder
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();

    ZooSim {
        sim,
        probe,
        victim_node,
        attacker_node,
        rx_node,
    }
}

/// Runs one zoo cell for `horizon_bits`.
pub fn run_zoo_cell(cell: &ZooCell, horizon_bits: u64, opts: &ExecOpts) -> ZooOutcome {
    let victim = CanId::from_raw(ZOO_VICTIM_ID);
    let ZooSim {
        mut sim,
        probe,
        victim_node,
        attacker_node,
        rx_node,
    } = build_zoo_cell_observed(cell, opts.recorder.clone(), opts.journal.clone());

    opts.run(&mut sim, horizon_bits);

    let victim_frames_delivered = sim
        .events()
        .iter()
        .filter(|e| {
            e.node == rx_node
                && matches!(&e.kind, EventKind::FrameReceived { frame } if frame.id() == victim)
        })
        .count();
    let attacker_episodes = bus_off_episodes(sim.events(), attacker_node);
    let victim_episodes = bus_off_episodes(sim.events(), victim_node);

    let (detections, reaction_p50_bits) = probe
        .with_registry(|registry| {
            let detections = match cell.defense {
                ZooDefense::Undefended => 0,
                ZooDefense::MichiCan => registry.counter("michican_detections_total{node=\"0\"}"),
                ZooDefense::Parrot => registry.counter("parrot_spoofs_observed_total{node=\"0\"}"),
            };
            let latency_key = match cell.defense {
                ZooDefense::Undefended => None,
                ZooDefense::MichiCan => Some("michican_reaction_latency_bits{node=\"0\"}"),
                ZooDefense::Parrot => Some("parrot_reaction_latency_bits{node=\"0\"}"),
            };
            let p50 = latency_key
                .and_then(|key| registry.histogram(key))
                .and_then(|h| h.quantile(0.5))
                .map(|q| q as u64);
            (detections, p50)
        })
        .expect("the probe recorder is enabled");

    // Export the defense/attacker series alongside the cell's can_* series.
    opts.recorder.merge_registry(&probe.into_registry());

    ZooOutcome {
        attack: cell.variant.label(),
        defense: cell.defense.label(),
        bit_level: cell.variant.bit_level(),
        detections,
        attacker_bus_offs: attacker_episodes.len(),
        first_episode_attempts: attacker_episodes.first().map(|e| e.attempts),
        victim_bus_offs: victim_episodes.len(),
        reaction_p50_bits,
        victim_frames_delivered,
    }
}

/// Runs the full zoo grid (or one family via [`zoo_cells_for`]) fanned
/// out on `opts.shards` workers; outcomes come back in grid order and
/// per-cell registries merge in index order, so the result — and any
/// metrics snapshot — is byte-identical for every shard count and mode.
pub fn run_zoo_with(cells: Vec<ZooCell>, horizon_bits: u64, opts: &ExecOpts) -> Vec<ZooOutcome> {
    let mode = opts.mode;
    ExperimentPlan::new(cells, 0)
        .with_shards(opts.shards.max(1))
        .run_observed(
            &opts.recorder,
            &opts.journal,
            move |_index, _seed, cell, cell_recorder, cell_journal| {
                let cell_opts = ExecOpts::new()
                    .with_mode(mode)
                    .with_recorder(cell_recorder.clone())
                    .with_journal(cell_journal.clone());
                run_zoo_cell(&cell, horizon_bits, &cell_opts)
            },
        )
}

/// Renders the outcome table in the `experiments` stdout format.
pub fn render_zoo_table(outcomes: &[ZooOutcome]) -> String {
    let mut out = String::new();
    out.push_str(
        "attack                         defense   class  detect  atk-busoff  1st-era  vic-busoff  react-p50  delivered\n",
    );
    for o in outcomes {
        let era = o
            .first_episode_attempts
            .map_or("-".to_string(), |a| a.to_string());
        let p50 = o
            .reaction_p50_bits
            .map_or("-".to_string(), |b| b.to_string());
        out.push_str(&format!(
            "{:<30} {:<9} {:<6} {:>6} {:>11} {:>8} {:>11} {:>10} {:>10}\n",
            o.attack,
            o.defense,
            if o.bit_level { "bit" } else { "frame" },
            o.detections,
            o.attacker_bus_offs,
            era,
            o.victim_bus_offs,
            p50,
            o.victim_frames_delivered,
        ));
    }
    out
}

/// A quick structural sanity check used by the smoke tests: the grid must
/// contain at least four bit-level attack families beyond ghost.
pub fn assert_zoo_coverage(outcomes: &[ZooOutcome]) {
    let bit_rows = outcomes.iter().filter(|o| o.bit_level).count();
    assert!(
        bit_rows >= 4 * ZooDefense::ALL.len(),
        "expected at least four bit-level families × defenses, got {bit_rows} rows"
    );
    // Bit-level attackers have no controller: no defense may ever claim a
    // bus-off against one. This is the zoo's honesty invariant.
    for o in outcomes {
        if o.bit_level {
            assert_eq!(
                o.attacker_bus_offs, 0,
                "bit-level attacker {} reported bused off",
                o.attack
            );
        }
    }
}

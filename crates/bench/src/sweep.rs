//! The crash-tolerant campaign sweep engine.
//!
//! `bench::campaign` runs a 16-cell grid in one process: a single
//! panicking cell, OOM, or `kill -9` ends the whole run and throws away
//! every finished cell. This module is the fleet-scale answer — a
//! resumable, memory-bounded sweep over an arbitrarily large cell grid,
//! built from four pieces:
//!
//! 1. **Streaming shard scheduler.** Cells are enumerated lazily by index
//!    from a [`SweepWorkload`] (no materialized grid) and grouped into
//!    fixed-size *chunks* — the unit of scheduling, checkpointing and
//!    recovery. `shards` worker threads pull chunk indices from a shared
//!    queue.
//! 2. **Supervision.** Every cell attempt runs under
//!    `std::panic::catch_unwind`, optionally on a watchdog thread with a
//!    timeout. Panics and timeouts are retried with capped exponential
//!    backoff; a cell that keeps failing (or whose scenario construction
//!    fails deterministically — see
//!    [`crate::campaign::CellBuildError::is_retryable`]) is *quarantined*
//!    into a [`PoisonedCell`] list with its seed and error, and the sweep
//!    carries on.
//! 3. **Incremental aggregation.** Each cell gets a fresh
//!    [`can_obs::Recorder`]; its registry is merged into the chunk's
//!    registry and dropped immediately, so resident state is one chunk,
//!    not the grid.
//! 4. **Journal.** Each completed chunk is appended to a versioned JSONL
//!    journal (`journal.jsonl`) as a record carrying the chunk's merged
//!    `can-obs/v1` snapshot and its quarantine list, flushed before the
//!    next chunk is accepted. A killed run resumes by re-running only the
//!    chunks missing from the journal; a torn trailing record (the only
//!    kind a `SIGKILL` can produce) is detected and dropped.
//!
//! **Determinism contract, extended to recovery:** cell seeds are derived
//! from `(master seed, cell index)` and the final snapshot is produced by
//! merging chunk snapshots *from the journal, in chunk-index order* — the
//! same code path whether the run was serial, sharded, killed and resumed,
//! or already complete. Same grid + seeds ⇒ byte-identical final merged
//! snapshot at any shard count and across any kill/resume point
//! (`crates/bench/tests/sweep_resume.rs` and the `sweep-crash-smoke` CI
//! job assert exactly this).

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Once};
use std::thread;
use std::time::{Duration, Instant};

use can_obs::json::{self, JsonValue};
use can_obs::{Recorder, Registry, PERCENT_BUCKETS};

use crate::campaign::{default_grid, try_run_cell_with, FaultSpec, Traffic};
use crate::runner::{derive_seed, ExecOpts, SimMode};

/// Schema tag of the sweep journal; bump on any incompatible change.
pub const JOURNAL_SCHEMA: &str = "michican-sweep/v1";
/// Journal file name inside a sweep directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Final merged snapshot file name inside a sweep directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// Schema tag of heartbeat progress records (`--progress-out`).
pub const PROGRESS_SCHEMA: &str = "michican-sweep-progress/v1";

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

/// A cell failure surfaced by a workload (as opposed to a panic or a
/// timeout, which the supervisor catches on its own).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Human-readable cause, preserved into the quarantine list.
    pub message: String,
    /// Whether the supervisor should retry the cell. Deterministic
    /// failures (scenario construction) must say `false`.
    pub retryable: bool,
}

impl CellError {
    /// A deterministic failure: quarantined immediately, never retried.
    pub fn fatal(message: impl Into<String>) -> Self {
        CellError {
            message: message.into(),
            retryable: false,
        }
    }

    /// A transient failure: retried up to [`SweepConfig::max_attempts`].
    pub fn retryable(message: impl Into<String>) -> Self {
        CellError {
            message: message.into(),
            retryable: true,
        }
    }
}

/// A lazily-enumerable grid of independent, seeded cells.
///
/// Implementations must be pure: `run_cell(index, seed, …)` may not read
/// ambient state, and every observable outcome must flow through the
/// per-cell recorder — the merged snapshot *is* the sweep's result. The
/// `attempt` number is passed so deterministic chaos injection (tests, CI)
/// can distinguish first tries from retries; real workloads ignore it.
pub trait SweepWorkload: Send + Sync {
    /// Number of cells in the grid.
    fn total_cells(&self) -> u64;

    /// Runs one cell, feeding all results into `recorder`.
    fn run_cell(
        &self,
        index: u64,
        seed: u64,
        attempt: u32,
        recorder: &Recorder,
    ) -> Result<(), CellError>;

    /// A stable JSON-object description of the workload, embedded in the
    /// journal header. Resume refuses to continue under a different
    /// descriptor, and [`workload_from_descriptor`] rebuilds the workload
    /// from it.
    fn descriptor(&self) -> String;
}

/// The fault-injection campaign grid as a sweep workload: `replicas`
/// seed-replicas of the 16-cell (traffic × fault) grid, each cell a full
/// Veh. D restbus simulation. Cell outcomes are folded into the snapshot
/// as `sweep_*` series labelled by cell kind, on top of the `can_*` /
/// `michican_*` series the simulation records itself.
pub struct CampaignSweep {
    grid: Vec<(Traffic, FaultSpec)>,
    replicas: u64,
    run_ms: f64,
    mode: SimMode,
}

impl CampaignSweep {
    /// A sweep of `replicas` seed-replicas of the default campaign grid,
    /// each cell simulating `run_ms` milliseconds of bus time.
    pub fn new(replicas: u64, run_ms: f64, mode: SimMode) -> Self {
        let grid = [Traffic::Benign, Traffic::Attack]
            .into_iter()
            .flat_map(|traffic| {
                default_grid()
                    .into_iter()
                    .map(move |fault| (traffic, fault))
            })
            .collect();
        CampaignSweep {
            grid,
            replicas,
            run_ms,
            mode,
        }
    }
}

impl SweepWorkload for CampaignSweep {
    fn total_cells(&self) -> u64 {
        self.grid.len() as u64 * self.replicas
    }

    fn run_cell(
        &self,
        index: u64,
        seed: u64,
        _attempt: u32,
        recorder: &Recorder,
    ) -> Result<(), CellError> {
        let slot = (index % self.grid.len() as u64) as usize;
        let (traffic, fault) = self.grid[slot];
        let opts = ExecOpts::new()
            .with_mode(self.mode)
            .with_recorder(recorder.clone());
        let outcome =
            try_run_cell_with(traffic, fault, seed, self.run_ms, &opts).map_err(|e| CellError {
                message: e.to_string(),
                retryable: e.is_retryable(),
            })?;
        let label = format!("cell=\"{}\"", outcome.label());
        for (name, value) in [
            ("sweep_benign_delivered_total", outcome.benign_delivered),
            ("sweep_attack_delivered_total", outcome.attack_delivered),
            ("sweep_eradications_total", outcome.eradications),
            ("sweep_benign_bus_offs_total", outcome.benign_bus_offs),
            ("sweep_attacks_detected_total", outcome.attacks_detected),
            ("sweep_counterattacks_total", outcome.counterattacks),
            ("sweep_degradations_total", outcome.degradations),
            ("sweep_rearms_total", outcome.rearms),
        ] {
            recorder.add(&format!("{name}{{{label}}}"), value);
        }
        recorder.observe_with(
            &format!("sweep_bus_load_pct{{{label}}}"),
            PERCENT_BUCKETS,
            (outcome.bus_load * 100.0).round() as u64,
        );
        recorder.inc("sweep_cells_total");
        Ok(())
    }

    fn descriptor(&self) -> String {
        format!(
            "{{\"kind\":\"campaign\",\"replicas\":{},\"run_ms\":{},\"fast\":{}}}",
            self.replicas,
            self.run_ms,
            matches!(self.mode, SimMode::FastForward)
        )
    }
}

/// A cheap, deterministic workload for exercising the engine itself
/// (tests, the crash-smoke job): `work` rounds of integer mixing per cell,
/// with counters, a histogram, a gauge and occasional traces so every
/// merge-ordering hazard in the snapshot plane is represented.
pub struct SyntheticSweep {
    /// Number of cells.
    pub cells: u64,
    /// Mixing iterations per cell (tunes wall time per cell).
    pub work: u64,
}

impl SweepWorkload for SyntheticSweep {
    fn total_cells(&self) -> u64 {
        self.cells
    }

    fn run_cell(
        &self,
        index: u64,
        seed: u64,
        _attempt: u32,
        recorder: &Recorder,
    ) -> Result<(), CellError> {
        let mut acc = seed | 1;
        for _ in 0..self.work {
            acc = acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_add(index);
        }
        recorder.inc("synthetic_cells_total");
        recorder.add("synthetic_mix_total", acc & 0xFF);
        recorder.observe("synthetic_seed_low_bits", seed % 4099);
        // Gauges are last-write-wins under merge: deterministic only
        // because chunks merge in index order. Keep one to guard that.
        recorder.set_gauge("synthetic_last_cell", index as i64);
        if index.is_multiple_of(97) {
            recorder.trace(index, 0, "synthetic", &format!("seed=0x{seed:016X}"));
        }
        Ok(())
    }

    fn descriptor(&self) -> String {
        format!(
            "{{\"kind\":\"synthetic\",\"cells\":{},\"work\":{}}}",
            self.cells, self.work
        )
    }
}

/// Deterministic fault injection for the supervisor itself: which cells
/// panic or hang, and whether they do so on every attempt (→ quarantine)
/// or only on the first (→ exercised retry path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    /// Every `panic_every`-th cell (at `(index + 1) % panic_every == 0`)
    /// panics; `0` disables.
    pub panic_every: u64,
    /// Panicking cells recover on retry (attempt ≥ 1) when `true`.
    pub panic_transient: bool,
    /// Every `hang_every`-th cell (at `(index + 2) % hang_every == 0`)
    /// sleeps `hang_ms` before running; `0` disables.
    pub hang_every: u64,
    /// Hanging cells recover on retry when `true`.
    pub hang_transient: bool,
    /// How long a hanging cell sleeps — set it well above the sweep's
    /// cell timeout.
    pub hang_ms: u64,
}

impl ChaosSpec {
    /// No injected faults.
    pub const NONE: ChaosSpec = ChaosSpec {
        panic_every: 0,
        panic_transient: false,
        hang_every: 0,
        hang_transient: false,
        hang_ms: 0,
    };

    /// `true` when this spec injects nothing (both periods disabled),
    /// regardless of what the remaining knobs are set to.
    pub fn is_inert(&self) -> bool {
        self.panic_every == 0 && self.hang_every == 0
    }
}

/// Wraps any workload with deterministic [`ChaosSpec`] fault injection.
/// Because the injection is a pure function of `(cell index, attempt)`,
/// a chaotic sweep still satisfies the byte-identity contract: the same
/// cells are quarantined in the killed-and-resumed run and in the
/// uninterrupted reference.
pub struct Chaotic {
    /// The real workload.
    pub inner: Arc<dyn SweepWorkload>,
    /// What to break, where.
    pub chaos: ChaosSpec,
}

impl SweepWorkload for Chaotic {
    fn total_cells(&self) -> u64 {
        self.inner.total_cells()
    }

    fn run_cell(
        &self,
        index: u64,
        seed: u64,
        attempt: u32,
        recorder: &Recorder,
    ) -> Result<(), CellError> {
        let c = self.chaos;
        if c.hang_every > 0
            && (index + 2).is_multiple_of(c.hang_every)
            && (attempt == 0 || !c.hang_transient)
        {
            thread::sleep(Duration::from_millis(c.hang_ms));
        }
        if c.panic_every > 0
            && (index + 1).is_multiple_of(c.panic_every)
            && (attempt == 0 || !c.panic_transient)
        {
            panic!("chaos panic cell={index} attempt={attempt}");
        }
        self.inner.run_cell(index, seed, attempt, recorder)
    }

    fn descriptor(&self) -> String {
        let c = self.chaos;
        if c.is_inert() {
            return self.inner.descriptor();
        }
        format!(
            "{{\"kind\":\"chaos\",\"panic_every\":{},\"panic_transient\":{},\"hang_every\":{},\"hang_transient\":{},\"hang_ms\":{},\"inner\":{}}}",
            c.panic_every,
            c.panic_transient,
            c.hang_every,
            c.hang_transient,
            c.hang_ms,
            self.inner.descriptor()
        )
    }
}

/// Rebuilds a workload from a journal-header descriptor (the inverse of
/// [`SweepWorkload::descriptor`]) — this is what lets
/// `experiments sweep --resume <dir>` reconstruct the exact grid without
/// the original command line.
pub fn workload_from_descriptor(descriptor: &str) -> Result<Arc<dyn SweepWorkload>, String> {
    let doc = json::parse(descriptor).map_err(|e| format!("bad workload descriptor: {e}"))?;
    workload_from_json(&doc)
}

fn workload_from_json(doc: &JsonValue) -> Result<Arc<dyn SweepWorkload>, String> {
    let u64_field = |name: &str| {
        doc.get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("descriptor field '{name}' missing or not a u64"))
    };
    let bool_field = |name: &str| {
        doc.get(name)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("descriptor field '{name}' missing or not a bool"))
    };
    match doc.get("kind").and_then(JsonValue::as_str) {
        Some("campaign") => {
            let run_ms = doc
                .get("run_ms")
                .and_then(JsonValue::as_f64)
                .ok_or("descriptor field 'run_ms' missing or not a number")?;
            let mode = if bool_field("fast")? {
                SimMode::FastForward
            } else {
                SimMode::Lockstep
            };
            Ok(Arc::new(CampaignSweep::new(
                u64_field("replicas")?,
                run_ms,
                mode,
            )))
        }
        Some("synthetic") => Ok(Arc::new(SyntheticSweep {
            cells: u64_field("cells")?,
            work: u64_field("work")?,
        })),
        Some("chaos") => {
            let inner = doc.get("inner").ok_or("chaos descriptor missing 'inner'")?;
            Ok(Arc::new(Chaotic {
                inner: workload_from_json(inner)?,
                chaos: ChaosSpec {
                    panic_every: u64_field("panic_every")?,
                    panic_transient: bool_field("panic_transient")?,
                    hang_every: u64_field("hang_every")?,
                    hang_transient: bool_field("hang_transient")?,
                    hang_ms: u64_field("hang_ms")?,
                },
            }))
        }
        other => Err(format!("unknown workload kind {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Configuration, report, errors
// ---------------------------------------------------------------------

/// Execution parameters of a sweep. Everything that affects *what* the
/// sweep computes (`seed`, `chunk_cells`, `max_attempts`) is recorded in
/// the journal header and validated on resume; everything that only
/// affects *how fast* (shards, timeout, backoff, the RSS guard) may differ
/// between the original and the resuming invocation.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed; cell `i` runs with `derive_seed(seed, i)`.
    pub seed: u64,
    /// Worker threads (`1` = the serial reference path).
    pub shards: usize,
    /// Cells per chunk — the scheduling, checkpoint and recovery unit.
    pub chunk_cells: u64,
    /// Attempts per cell before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Wall-clock budget per cell attempt; `None` disables the watchdog
    /// (cells then run inline on the shard worker, with panic isolation
    /// only).
    pub cell_timeout: Option<Duration>,
    /// Base retry backoff, doubled per retry (capped at 2¹⁶×).
    pub retry_backoff: Duration,
    /// Fail fast (resumably) when the process RSS exceeds this many MiB,
    /// sampled between chunk checkpoints. `None` disables the guard.
    pub max_rss_mb: Option<u64>,
    /// Test hook: behave as if the process died after this many chunk
    /// records were appended in this invocation ([`SweepError::Aborted`]).
    pub stop_after_chunks: Option<u64>,
    /// Live telemetry sink; `None` disables the heartbeat entirely.
    /// Heartbeats are a *how fast*-class knob: they are not recorded in
    /// the journal header, so a resuming invocation may add, drop or
    /// retarget them freely.
    pub heartbeat: Option<HeartbeatConfig>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0x00D5_2025,
            shards: 1,
            chunk_cells: 16,
            max_attempts: 3,
            cell_timeout: None,
            retry_backoff: Duration::from_millis(10),
            max_rss_mb: None,
            stop_after_chunks: None,
            heartbeat: None,
        }
    }
}

/// Where the live sweep telemetry goes.
///
/// Both sinks are optional and independent: the JSONL stream is the
/// machine-readable progress feed (one [`PROGRESS_SCHEMA`] record per
/// beat, appended and flushed), the Prometheus textfile is a
/// last-beat-wins snapshot for node-exporter-style collection, replaced
/// by an atomic write-to-temp-then-rename so scrapers never observe a
/// torn file.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatConfig {
    /// Append one progress JSONL record per beat here.
    pub progress_out: Option<PathBuf>,
    /// Atomically swap a Prometheus textfile snapshot here.
    pub prom_out: Option<PathBuf>,
    /// Minimum seconds between beats; `0` beats after every chunk.
    pub min_interval_secs: u64,
}

/// The supervisor-side heartbeat state: cumulative progress (including
/// chunks recovered from a previous invocation's journal) plus the wall
/// clock the rate/ETA estimates are derived from. Wall-clock readings are
/// deliberately excluded from every determinism-checked artifact — they
/// only ever flow into these telemetry sinks.
struct Heartbeat {
    config: HeartbeatConfig,
    started: Instant,
    last_beat: Option<Instant>,
    total_cells: u64,
    total_chunks: u64,
    chunks_done: u64,
    cells_done: u64,
    quarantined: u64,
    retries: u64,
    /// Cells completed by *this* invocation (the rate basis — resumed
    /// chunks were free).
    cells_this_run: u64,
}

impl Heartbeat {
    fn new(
        config: HeartbeatConfig,
        total_cells: u64,
        total_chunks: u64,
        resumed: &ResumedProgress,
    ) -> Self {
        Heartbeat {
            config,
            started: Instant::now(),
            last_beat: None,
            total_cells,
            total_chunks,
            chunks_done: resumed.chunks,
            cells_done: resumed.cells,
            quarantined: resumed.quarantined,
            retries: resumed.retries,
            cells_this_run: 0,
        }
    }

    fn on_chunk(&mut self, result: &ChunkResult) {
        self.chunks_done += 1;
        self.cells_done += result.cells;
        self.cells_this_run += result.cells;
        self.quarantined += result.poisoned.len() as u64;
        self.retries += result.retries;
    }

    /// Emits a beat if the configured interval elapsed (`force` skips the
    /// interval check — used for the final beat). Sink errors are
    /// reported once per call but never fail the sweep: telemetry must
    /// not take down the computation it observes.
    fn beat(&mut self, force: bool) {
        let now = Instant::now();
        if !force {
            if let Some(last) = self.last_beat {
                if now.duration_since(last).as_secs() < self.config.min_interval_secs {
                    return;
                }
            }
        }
        self.last_beat = Some(now);
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let cells_per_sec = if elapsed > 0.0 {
            self.cells_this_run as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total_cells.saturating_sub(self.cells_done);
        let eta_secs = if cells_per_sec > 0.0 {
            (remaining as f64 / cells_per_sec).round() as u64
        } else {
            0
        };
        let rss_mb = current_rss_mb().unwrap_or(0);
        let complete = self.chunks_done == self.total_chunks;
        if let Some(path) = &self.config.progress_out {
            let record = format!(
                "{{\"schema\":\"{}\",\"chunks_done\":{},\"total_chunks\":{},\"cells_done\":{},\"total_cells\":{},\"quarantined\":{},\"retries\":{},\"cells_per_sec\":{:.2},\"eta_secs\":{},\"rss_mb\":{},\"elapsed_secs\":{:.2},\"complete\":{}}}\n",
                PROGRESS_SCHEMA,
                self.chunks_done,
                self.total_chunks,
                self.cells_done,
                self.total_cells,
                self.quarantined,
                self.retries,
                cells_per_sec,
                eta_secs,
                rss_mb,
                elapsed,
                complete,
            );
            let appended = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(record.as_bytes()).and_then(|()| f.flush()));
            if let Err(e) = appended {
                eprintln!("sweep heartbeat: cannot append to {}: {e}", path.display());
            }
        }
        if let Some(path) = &self.config.prom_out {
            if let Err(e) = atomic_write(path, &self.prometheus_text(cells_per_sec, eta_secs)) {
                eprintln!("sweep heartbeat: cannot swap {}: {e}", path.display());
            }
        }
    }

    /// Renders the Prometheus textfile via a throwaway [`Registry`], so
    /// the exposition format (HELP/TYPE lines, escaping) stays in one
    /// tested place.
    fn prometheus_text(&self, cells_per_sec: f64, eta_secs: u64) -> String {
        let reg = Recorder::enabled();
        reg.set_gauge("michican_sweep_chunks_done", self.chunks_done as i64);
        reg.set_gauge("michican_sweep_chunks", self.total_chunks as i64);
        reg.set_gauge("michican_sweep_cells_done", self.cells_done as i64);
        reg.set_gauge("michican_sweep_cells", self.total_cells as i64);
        reg.set_gauge("michican_sweep_quarantined", self.quarantined as i64);
        reg.set_gauge("michican_sweep_retries", self.retries as i64);
        reg.set_gauge(
            "michican_sweep_cells_per_sec_milli",
            (cells_per_sec * 1000.0).round() as i64,
        );
        reg.set_gauge("michican_sweep_eta_seconds", eta_secs as i64);
        reg.set_gauge(
            "michican_sweep_rss_mib",
            current_rss_mb().unwrap_or(0) as i64,
        );
        reg.prometheus_text()
    }
}

/// Writes `content` to `path` atomically: write + flush a `.tmp` sibling,
/// then `rename` over the target (atomic on POSIX filesystems), so a
/// concurrent reader sees either the old snapshot or the new one — never
/// a prefix.
fn atomic_write(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

/// Progress already banked in the journal when this invocation started
/// (zero for a fresh sweep).
#[derive(Debug, Default)]
struct ResumedProgress {
    chunks: u64,
    cells: u64,
    quarantined: u64,
    retries: u64,
}

/// A cell the supervisor gave up on: its identity, seed, how many
/// attempts were made, and the last error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonedCell {
    /// Grid index of the cell.
    pub cell: u64,
    /// The seed the cell ran with (for offline reproduction).
    pub seed: u64,
    /// Attempts made before quarantine.
    pub attempts: u32,
    /// The last attempt's error.
    pub error: String,
}

/// Outcome of a completed sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Master seed of the sweep.
    pub seed: u64,
    /// Grid size.
    pub total_cells: u64,
    /// Number of chunks the grid was split into.
    pub total_chunks: u64,
    /// Attempt budget per cell.
    pub max_attempts: u32,
    /// Workload descriptor (from the journal header).
    pub workload: String,
    /// Cells that completed and contributed to the snapshot.
    pub contributed_cells: u64,
    /// Retry attempts performed across all cells.
    pub retries: u64,
    /// Quarantined cells, sorted by cell index.
    pub poisoned: Vec<PoisonedCell>,
    /// The final merged `can-obs/v1` snapshot.
    pub snapshot: String,
    /// Where the snapshot was written (`<dir>/snapshot.json`).
    pub snapshot_path: PathBuf,
    /// Counter series in the merged snapshot (a cheap shape summary).
    pub snapshot_counters: usize,
    /// Trace records in the merged snapshot.
    pub snapshot_traces: usize,
}

impl SweepReport {
    /// Renders the deterministic text report. Everything in it is a pure
    /// function of the grid and seeds — never of shard count, kill/resume
    /// history, or this invocation's share of the work — so the rendering
    /// of a killed-and-resumed sweep diffs clean against an uninterrupted
    /// one.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep seed 0x{:08X}: {} cells in {} chunks, max {} attempt(s)/cell",
            self.seed, self.total_cells, self.total_chunks, self.max_attempts
        );
        let _ = writeln!(out, "workload {}", self.workload);
        let _ = writeln!(
            out,
            "contributed {} cells, quarantined {}, retries {}",
            self.contributed_cells,
            self.poisoned.len(),
            self.retries
        );
        for p in &self.poisoned {
            let _ = writeln!(
                out,
                "poisoned cell {} (seed 0x{:016X}, {} attempt(s)): {}",
                p.cell, p.seed, p.attempts, p.error
            );
        }
        let _ = writeln!(
            out,
            "snapshot {} bytes, {} counter series, {} traces",
            self.snapshot.len(),
            self.snapshot_counters,
            self.snapshot_traces
        );
        out
    }
}

/// Why a sweep invocation stopped without a report.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem trouble (journal or snapshot).
    Io(String),
    /// The journal is corrupt beyond the tolerated torn tail, or belongs
    /// to a different grid/config.
    Journal(String),
    /// The RSS guard tripped. The journal is intact; resume with a bigger
    /// budget (or more shards of a smaller grid).
    MemoryLimit {
        /// Sampled resident set size, MiB.
        rss_mb: u64,
        /// The configured limit, MiB.
        limit_mb: u64,
    },
    /// The [`SweepConfig::stop_after_chunks`] test hook fired.
    Aborted {
        /// Chunk records appended by this invocation before the abort.
        chunks_done: u64,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(detail) => write!(f, "sweep I/O error: {detail}"),
            SweepError::Journal(detail) => write!(f, "sweep journal error: {detail}"),
            SweepError::MemoryLimit { rss_mb, limit_mb } => write!(
                f,
                "sweep stopped: RSS {rss_mb} MiB exceeds --max-rss-mb {limit_mb} \
                 (the journal is intact — resume to continue)"
            ),
            SweepError::Aborted { chunks_done } => {
                write!(f, "sweep aborted by test hook after {chunks_done} chunk(s)")
            }
        }
    }
}

impl std::error::Error for SweepError {}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct JournalHeader {
    seed: u64,
    total_cells: u64,
    chunk_cells: u64,
    max_attempts: u32,
    workload: String,
}

#[derive(Debug, Clone, PartialEq)]
struct ChunkRecord {
    chunk: u64,
    cells: u64,
    retries: u64,
    poisoned: Vec<PoisonedCell>,
    obs: String,
}

fn render_header(h: &JournalHeader) -> String {
    format!(
        "{{\"schema\":\"{}\",\"seed\":{},\"total_cells\":{},\"chunk_cells\":{},\"max_attempts\":{},\"workload\":\"{}\"}}\n",
        JOURNAL_SCHEMA,
        h.seed,
        h.total_cells,
        h.chunk_cells,
        h.max_attempts,
        json::escape(&h.workload)
    )
}

fn render_chunk(r: &ChunkRecord) -> String {
    let mut poisoned = String::new();
    for (i, p) in r.poisoned.iter().enumerate() {
        let _ = write!(
            poisoned,
            "{}{{\"cell\":{},\"seed\":{},\"attempts\":{},\"error\":\"{}\"}}",
            if i == 0 { "" } else { "," },
            p.cell,
            p.seed,
            p.attempts,
            json::escape(&p.error)
        );
    }
    format!(
        "{{\"type\":\"chunk\",\"chunk\":{},\"cells\":{},\"retries\":{},\"poisoned\":[{}],\"obs\":\"{}\"}}\n",
        r.chunk,
        r.cells,
        r.retries,
        poisoned,
        json::escape(&r.obs)
    )
}

fn parse_header(doc: &JsonValue) -> Result<JournalHeader, String> {
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == JOURNAL_SCHEMA => {}
        other => return Err(format!("unsupported journal schema {other:?}")),
    }
    let u64_field = |name: &str| {
        doc.get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("header field '{name}' missing or not a u64"))
    };
    Ok(JournalHeader {
        seed: u64_field("seed")?,
        total_cells: u64_field("total_cells")?,
        chunk_cells: u64_field("chunk_cells")?,
        max_attempts: u32::try_from(u64_field("max_attempts")?)
            .map_err(|_| "max_attempts out of range".to_string())?,
        workload: doc
            .get("workload")
            .and_then(JsonValue::as_str)
            .ok_or("header field 'workload' missing")?
            .to_string(),
    })
}

fn parse_chunk(doc: &JsonValue) -> Result<ChunkRecord, String> {
    let u64_field = |name: &str| {
        doc.get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("chunk field '{name}' missing or not a u64"))
    };
    let mut poisoned = Vec::new();
    for (i, p) in doc
        .get("poisoned")
        .and_then(JsonValue::as_array)
        .ok_or("chunk field 'poisoned' missing")?
        .iter()
        .enumerate()
    {
        let field = |name: &str| {
            p.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("poisoned[{i}] field '{name}' missing"))
        };
        poisoned.push(PoisonedCell {
            cell: field("cell")?,
            seed: field("seed")?,
            attempts: u32::try_from(field("attempts")?)
                .map_err(|_| format!("poisoned[{i}] attempts out of range"))?,
            error: p
                .get("error")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("poisoned[{i}] field 'error' missing"))?
                .to_string(),
        });
    }
    Ok(ChunkRecord {
        chunk: u64_field("chunk")?,
        cells: u64_field("cells")?,
        retries: u64_field("retries")?,
        poisoned,
        obs: doc
            .get("obs")
            .and_then(JsonValue::as_str)
            .ok_or("chunk field 'obs' missing")?
            .to_string(),
    })
}

/// A parsed journal: the header, every completed chunk record keyed by
/// chunk index, and the byte length of the valid prefix (everything after
/// it is a torn tail that a resuming writer must truncate away before
/// appending).
struct Journal {
    header: JournalHeader,
    chunks: BTreeMap<u64, ChunkRecord>,
    valid_len: u64,
}

/// Reads a journal. A torn final line — the only damage a `SIGKILL`
/// between `write` and `flush` can leave — is dropped (and excluded from
/// `valid_len`); corruption anywhere else is an error.
fn read_journal(path: &Path) -> Result<Journal, SweepError> {
    let text = fs::read_to_string(path)
        .map_err(|e| SweepError::Io(format!("cannot read {}: {e}", path.display())))?;
    let journal_err =
        |line: usize, detail: String| SweepError::Journal(format!("line {}: {detail}", line + 1));
    let lines: Vec<&str> = text.split('\n').collect();
    // A well-formed journal ends with '\n', so the final split segment is
    // empty; anything else is a torn tail and is dropped.
    let complete = match lines.last() {
        Some(&"") => &lines[..lines.len() - 1],
        Some(_) => &lines[..lines.len() - 1],
        None => &lines[..],
    };
    let mut header = None;
    let mut chunks = BTreeMap::new();
    let mut valid_len = 0u64;
    for (i, line) in complete.iter().enumerate() {
        let parsed = match json::parse(line) {
            Ok(value) => value,
            // A torn *final* complete-looking line (e.g. the filesystem
            // persisted a prefix of the record plus the newline) is
            // tolerated like a missing one; earlier lines must parse.
            Err(e) if i + 1 == complete.len() => {
                let _ = e;
                break;
            }
            Err(e) => return Err(journal_err(i, format!("unparsable record: {e}"))),
        };
        if i == 0 {
            header = Some(parse_header(&parsed).map_err(|d| journal_err(i, d))?);
            valid_len += line.len() as u64 + 1;
            continue;
        }
        match parsed.get("type").and_then(JsonValue::as_str) {
            Some("chunk") => {
                let record = parse_chunk(&parsed).map_err(|d| journal_err(i, d))?;
                chunks.insert(record.chunk, record);
                valid_len += line.len() as u64 + 1;
            }
            other => return Err(journal_err(i, format!("unknown record type {other:?}"))),
        }
    }
    let header = header.ok_or_else(|| SweepError::Journal("journal has no header".into()))?;
    Ok(Journal {
        header,
        chunks,
        valid_len,
    })
}

// ---------------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------------

/// Suppresses the default panic-hook stderr spam for panics the sweep
/// supervisor catches and classifies (threads named `sweep-…`); panics on
/// any other thread keep the previous hook's behavior.
fn install_quarantine_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let suppressed = thread::current()
                .name()
                .is_some_and(|name| name.starts_with("sweep-"));
            if !suppressed {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

enum AttemptOutcome {
    Completed(Registry),
    Retryable(String),
    Fatal(String),
}

fn attempt_inline(
    workload: &dyn SweepWorkload,
    cell: u64,
    seed: u64,
    attempt: u32,
) -> AttemptOutcome {
    let recorder = Recorder::enabled();
    match panic::catch_unwind(AssertUnwindSafe(|| {
        workload.run_cell(cell, seed, attempt, &recorder)
    })) {
        Ok(Ok(())) => AttemptOutcome::Completed(recorder.into_registry()),
        Ok(Err(e)) if e.retryable => AttemptOutcome::Retryable(e.message),
        Ok(Err(e)) => AttemptOutcome::Fatal(e.message),
        Err(payload) => {
            AttemptOutcome::Retryable(format!("panic: {}", panic_message(payload.as_ref())))
        }
    }
}

fn run_attempt(
    workload: &Arc<dyn SweepWorkload>,
    cell: u64,
    seed: u64,
    attempt: u32,
    timeout: Option<Duration>,
) -> AttemptOutcome {
    let Some(timeout) = timeout else {
        return attempt_inline(workload.as_ref(), cell, seed, attempt);
    };
    let (tx, rx) = mpsc::channel();
    let worker = Arc::clone(workload);
    let spawned = thread::Builder::new()
        .name(format!("sweep-cell-{cell}"))
        .spawn(move || {
            let _ = tx.send(attempt_inline(worker.as_ref(), cell, seed, attempt));
        });
    match spawned {
        Err(e) => AttemptOutcome::Retryable(format!("cannot spawn cell thread: {e}")),
        // A timed-out cell thread is abandoned (its result, if it ever
        // arrives, is dropped with the channel); the shard moves on.
        Ok(_detached) => match rx.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(_) => AttemptOutcome::Retryable(format!("timed out after {timeout:?}")),
        },
    }
}

/// Runs one cell to completion or quarantine; returns the cell's registry
/// (or the poison record) plus the number of retries performed.
fn supervise_cell(
    workload: &Arc<dyn SweepWorkload>,
    cell: u64,
    seed: u64,
    config: &SweepConfig,
) -> (Result<Registry, PoisonedCell>, u64) {
    let mut last_error = String::new();
    for attempt in 0..config.max_attempts {
        if attempt > 0 && !config.retry_backoff.is_zero() {
            thread::sleep(
                config
                    .retry_backoff
                    .saturating_mul(1u32 << (attempt - 1).min(16)),
            );
        }
        match run_attempt(workload, cell, seed, attempt, config.cell_timeout) {
            AttemptOutcome::Completed(registry) => return (Ok(registry), attempt as u64),
            AttemptOutcome::Fatal(error) => {
                return (
                    Err(PoisonedCell {
                        cell,
                        seed,
                        attempts: attempt + 1,
                        error,
                    }),
                    attempt as u64,
                )
            }
            AttemptOutcome::Retryable(error) => last_error = error,
        }
    }
    (
        Err(PoisonedCell {
            cell,
            seed,
            attempts: config.max_attempts,
            error: last_error,
        }),
        (config.max_attempts - 1) as u64,
    )
}

struct ChunkResult {
    chunk: u64,
    cells: u64,
    retries: u64,
    poisoned: Vec<PoisonedCell>,
    registry: Registry,
}

fn run_chunk(
    workload: &Arc<dyn SweepWorkload>,
    config: &SweepConfig,
    total_cells: u64,
    chunk: u64,
) -> ChunkResult {
    let first = chunk * config.chunk_cells;
    let last = (first + config.chunk_cells).min(total_cells);
    let mut registry = Registry::new();
    let mut poisoned = Vec::new();
    let mut retries = 0u64;
    for cell in first..last {
        let seed = derive_seed(config.seed, cell as usize);
        let (result, cell_retries) = supervise_cell(workload, cell, seed, config);
        retries += cell_retries;
        match result {
            // Merge and drop: per-cell state never outlives the cell.
            Ok(cell_registry) => registry.merge(&cell_registry),
            Err(poison) => poisoned.push(poison),
        }
    }
    ChunkResult {
        chunk,
        cells: last - first,
        retries,
        poisoned,
        registry,
    }
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// The grid-defining parameters persisted in a sweep directory's journal
/// header — everything `experiments sweep --resume <dir>` needs to rebuild
/// the workload and config without the original command line.
#[derive(Debug, Clone)]
pub struct ResumeParams {
    /// Master seed of the original invocation.
    pub seed: u64,
    /// Chunk size of the original invocation.
    pub chunk_cells: u64,
    /// Attempt budget of the original invocation.
    pub max_attempts: u32,
    /// Workload descriptor (feed to [`workload_from_descriptor`]).
    pub workload: String,
}

/// Reads the resume parameters back from `<dir>/journal.jsonl`.
pub fn resume_params(dir: &Path) -> Result<ResumeParams, SweepError> {
    let journal = read_journal(&dir.join(JOURNAL_FILE))?;
    Ok(ResumeParams {
        seed: journal.header.seed,
        chunk_cells: journal.header.chunk_cells,
        max_attempts: journal.header.max_attempts,
        workload: journal.header.workload,
    })
}

/// The process's current resident set size in MiB, if the platform
/// exposes it (`/proc/self/status`). `None` disables the RSS guard
/// gracefully on platforms without procfs.
pub fn current_rss_mb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024)
}

/// Runs (or resumes) a sweep in `dir`.
///
/// If `dir` holds no journal, one is created and every chunk runs; if it
/// holds a journal for the *same* grid and config, only the chunks missing
/// from it run (resume); a journal for a different grid is an error. On
/// success the final merged snapshot is written to `<dir>/snapshot.json`
/// and returned in the report — built by merging the journal's chunk
/// snapshots from disk in chunk-index order, whatever order they were
/// completed or recovered in.
pub fn run_sweep(
    workload: Arc<dyn SweepWorkload>,
    config: &SweepConfig,
    dir: &Path,
) -> Result<SweepReport, SweepError> {
    if config.chunk_cells == 0 {
        return Err(SweepError::Journal("chunk_cells must be ≥ 1".into()));
    }
    if config.max_attempts == 0 {
        return Err(SweepError::Journal("max_attempts must be ≥ 1".into()));
    }
    fs::create_dir_all(dir)
        .map_err(|e| SweepError::Io(format!("cannot create {}: {e}", dir.display())))?;
    let journal_path = dir.join(JOURNAL_FILE);
    let total_cells = workload.total_cells();
    let total_chunks = total_cells.div_ceil(config.chunk_cells);
    let header = JournalHeader {
        seed: config.seed,
        total_cells,
        chunk_cells: config.chunk_cells,
        max_attempts: config.max_attempts,
        workload: workload.descriptor(),
    };

    let mut resumed = ResumedProgress::default();
    let already_done: std::collections::BTreeSet<u64> = if journal_path.exists() {
        let existing = read_journal(&journal_path)?;
        if existing.header != header {
            return Err(SweepError::Journal(format!(
                "journal belongs to a different sweep (journal: {:?}, requested: {header:?})",
                existing.header
            )));
        }
        // Cut away any torn tail a crash left, so this run's appends start
        // on a record boundary instead of gluing onto half a line.
        let on_disk = fs::metadata(&journal_path)
            .map_err(|e| SweepError::Io(format!("cannot stat {}: {e}", journal_path.display())))?
            .len();
        if on_disk > existing.valid_len {
            OpenOptions::new()
                .write(true)
                .open(&journal_path)
                .and_then(|f| f.set_len(existing.valid_len))
                .map_err(|e| {
                    SweepError::Io(format!(
                        "cannot truncate torn tail of {}: {e}",
                        journal_path.display()
                    ))
                })?;
        }
        for record in existing.chunks.values() {
            resumed.chunks += 1;
            resumed.cells += record.cells;
            resumed.quarantined += record.poisoned.len() as u64;
            resumed.retries += record.retries;
        }
        existing.chunks.keys().copied().collect()
    } else {
        fs::write(&journal_path, render_header(&header))
            .map_err(|e| SweepError::Io(format!("cannot write {}: {e}", journal_path.display())))?;
        Default::default()
    };
    let pending: Vec<u64> = (0..total_chunks)
        .filter(|c| !already_done.contains(c))
        .collect();
    let mut heartbeat = config
        .heartbeat
        .clone()
        .map(|hc| Heartbeat::new(hc, total_cells, total_chunks, &resumed));

    if !pending.is_empty() {
        install_quarantine_hook();
        let queue = Arc::new(Mutex::new(
            pending.iter().copied().collect::<VecDeque<u64>>(),
        ));
        let (tx, rx) = mpsc::channel::<ChunkResult>();
        let shards = config.shards.max(1).min(pending.len());
        let mut workers = Vec::with_capacity(shards);
        for w in 0..shards {
            let queue = Arc::clone(&queue);
            let tx = tx.clone();
            let workload = Arc::clone(&workload);
            let config = config.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("sweep-worker-{w}"))
                    .spawn(move || loop {
                        let next = queue.lock().expect("queue lock").pop_front();
                        let Some(chunk) = next else { break };
                        let result = run_chunk(&workload, &config, total_cells, chunk);
                        if tx.send(result).is_err() {
                            break; // supervisor gone (abort / guard trip)
                        }
                    })
                    .map_err(|e| SweepError::Io(format!("cannot spawn shard worker: {e}")))?,
            );
        }
        drop(tx);

        let mut journal = OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .map_err(|e| SweepError::Io(format!("cannot open {}: {e}", journal_path.display())))?;
        let stop_dispatch = || queue.lock().expect("queue lock").clear();
        let mut written = 0u64;
        while written < pending.len() as u64 {
            let result = match rx.recv() {
                Ok(result) => result,
                Err(_) => {
                    return Err(SweepError::Journal(
                        "shard workers exited before completing the sweep".into(),
                    ))
                }
            };
            if let Some(hb) = heartbeat.as_mut() {
                hb.on_chunk(&result);
            }
            let record = ChunkRecord {
                chunk: result.chunk,
                cells: result.cells,
                retries: result.retries,
                poisoned: result.poisoned,
                obs: result.registry.snapshot_json(),
            };
            journal
                .write_all(render_chunk(&record).as_bytes())
                .and_then(|()| journal.flush())
                .map_err(|e| {
                    SweepError::Io(format!("cannot append to {}: {e}", journal_path.display()))
                })?;
            written += 1;
            // Beat only once the chunk is durably journaled, so the feed
            // never claims progress a crash could roll back.
            if let Some(hb) = heartbeat.as_mut() {
                hb.beat(false);
            }
            if let (Some(limit_mb), Some(rss_mb)) = (config.max_rss_mb, current_rss_mb()) {
                if rss_mb > limit_mb {
                    stop_dispatch();
                    return Err(SweepError::MemoryLimit { rss_mb, limit_mb });
                }
            }
            if config.stop_after_chunks == Some(written) {
                stop_dispatch();
                return Err(SweepError::Aborted {
                    chunks_done: written,
                });
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
    }
    // Final beat regardless of interval, so the sinks always end on the
    // completed state (also emitted when resume found nothing to do).
    if let Some(hb) = heartbeat.as_mut() {
        hb.beat(true);
    }

    // Finalize from the journal — the one code path shared by fresh,
    // sharded, killed-and-resumed and already-complete sweeps, so the
    // snapshot round trip is exercised on every run, not only after a
    // crash.
    let journal = read_journal(&journal_path)?;
    let (header, chunks) = (journal.header, journal.chunks);
    let complete = chunks.len() as u64 == total_chunks
        && chunks.keys().next_back().is_none_or(|&k| k < total_chunks);
    if !complete {
        return Err(SweepError::Journal(format!(
            "journal incomplete after run: {} of {total_chunks} chunks present",
            chunks.len()
        )));
    }
    let mut merged = Registry::new();
    let mut poisoned = Vec::new();
    let mut retries = 0u64;
    for record in chunks.values() {
        merged.merge_snapshot_json(&record.obs).map_err(|e| {
            SweepError::Journal(format!("chunk {} snapshot corrupt: {e}", record.chunk))
        })?;
        poisoned.extend(record.poisoned.iter().cloned());
        retries += record.retries;
    }
    poisoned.sort_by_key(|p| p.cell);
    let snapshot = merged.snapshot_json();
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    fs::write(&snapshot_path, &snapshot)
        .map_err(|e| SweepError::Io(format!("cannot write {}: {e}", snapshot_path.display())))?;
    Ok(SweepReport {
        seed: header.seed,
        total_cells,
        total_chunks,
        max_attempts: header.max_attempts,
        workload: header.workload,
        contributed_cells: total_cells - poisoned.len() as u64,
        retries,
        poisoned,
        snapshot_counters: merged.counters().count(),
        snapshot_traces: merged.traces().len(),
        snapshot,
        snapshot_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_records_round_trip() {
        let header = JournalHeader {
            seed: 0xDEAD_BEEF,
            total_cells: 100,
            chunk_cells: 16,
            max_attempts: 3,
            workload: "{\"kind\":\"synthetic\",\"cells\":100,\"work\":1}".into(),
        };
        let record = ChunkRecord {
            chunk: 4,
            cells: 16,
            retries: 2,
            poisoned: vec![PoisonedCell {
                cell: 65,
                seed: 42,
                attempts: 3,
                error: "panic: \"quoted\"\nmultiline".into(),
            }],
            obs: Registry::new().snapshot_json(),
        };
        let text = render_header(&header) + &render_chunk(&record);
        let dir = std::env::temp_dir().join(format!("sweep_unit_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        fs::write(&path, &text).unwrap();
        let journal = read_journal(&path).unwrap();
        assert_eq!(journal.header, header);
        assert_eq!(journal.chunks.len(), 1);
        assert_eq!(journal.chunks[&4], record);
        assert_eq!(journal.valid_len, text.len() as u64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn descriptors_round_trip_through_the_parser() {
        for workload in [
            Arc::new(SyntheticSweep { cells: 7, work: 3 }) as Arc<dyn SweepWorkload>,
            Arc::new(CampaignSweep::new(2, 2.5, SimMode::FastForward)),
            Arc::new(Chaotic {
                inner: Arc::new(SyntheticSweep { cells: 9, work: 0 }),
                chaos: ChaosSpec {
                    panic_every: 4,
                    panic_transient: true,
                    hang_every: 0,
                    hang_transient: false,
                    hang_ms: 0,
                },
            }),
        ] {
            let descriptor = workload.descriptor();
            let rebuilt = workload_from_descriptor(&descriptor).unwrap();
            assert_eq!(rebuilt.descriptor(), descriptor);
            assert_eq!(rebuilt.total_cells(), workload.total_cells());
        }
        assert!(workload_from_descriptor("{\"kind\":\"nope\"}").is_err());
    }

    #[test]
    fn chaosless_chaotic_wrapper_is_transparent() {
        let plain = SyntheticSweep { cells: 3, work: 1 };
        let wrapped = Chaotic {
            inner: Arc::new(SyntheticSweep { cells: 3, work: 1 }),
            chaos: ChaosSpec::NONE,
        };
        assert_eq!(plain.descriptor(), wrapped.descriptor());
    }

    #[test]
    fn fatal_cell_errors_skip_retries() {
        struct AlwaysFatal;
        impl SweepWorkload for AlwaysFatal {
            fn total_cells(&self) -> u64 {
                1
            }
            fn run_cell(&self, _: u64, _: u64, _: u32, _: &Recorder) -> Result<(), CellError> {
                Err(CellError::fatal("bad scenario"))
            }
            fn descriptor(&self) -> String {
                "{\"kind\":\"test\"}".into()
            }
        }
        let workload: Arc<dyn SweepWorkload> = Arc::new(AlwaysFatal);
        let config = SweepConfig::default();
        let (result, retries) = supervise_cell(&workload, 0, 1, &config);
        let poison = result.unwrap_err();
        assert_eq!(poison.attempts, 1, "fatal errors are not retried");
        assert_eq!(retries, 0);
        assert_eq!(poison.error, "bad scenario");
    }

    #[test]
    fn heartbeat_sinks_fill_and_the_snapshot_stays_byte_identical() {
        let dir = std::env::temp_dir().join(format!("sweep_heartbeat_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let progress = dir.join("progress.jsonl");
        let prom = dir.join("sweep.prom");
        let workload: Arc<dyn SweepWorkload> = Arc::new(SyntheticSweep {
            cells: 40,
            work: 10,
        });
        let config = SweepConfig {
            chunk_cells: 8,
            heartbeat: Some(HeartbeatConfig {
                progress_out: Some(progress.clone()),
                prom_out: Some(prom.clone()),
                min_interval_secs: 0, // beat on every chunk
            }),
            ..SweepConfig::default()
        };
        let with_hb = run_sweep(Arc::clone(&workload), &config, &dir.join("hb")).unwrap();

        let feed = fs::read_to_string(&progress).unwrap();
        let beats: Vec<&str> = feed.lines().collect();
        // One beat per chunk plus the forced final beat.
        assert_eq!(beats.len(), 6, "feed:\n{feed}");
        for line in &beats {
            let doc = json::parse(line).unwrap();
            assert_eq!(
                doc.get("schema").and_then(JsonValue::as_str),
                Some(PROGRESS_SCHEMA)
            );
            assert_eq!(doc.get("total_cells").and_then(JsonValue::as_u64), Some(40));
        }
        let last = json::parse(beats.last().unwrap()).unwrap();
        assert_eq!(last.get("cells_done").and_then(JsonValue::as_u64), Some(40));
        assert_eq!(
            last.get("complete").and_then(JsonValue::as_bool),
            Some(true)
        );

        let prom_text = fs::read_to_string(&prom).unwrap();
        assert!(prom_text.contains("michican_sweep_cells_done 40"));
        assert!(prom_text.contains("michican_sweep_chunks_done 5"));
        assert!(
            !prom.with_extension("tmp").exists(),
            "the temp file must be renamed away"
        );

        // The heartbeat is pure telemetry: the merged snapshot is
        // byte-identical to a sweep without it.
        let silent = SweepConfig {
            chunk_cells: 8,
            ..SweepConfig::default()
        };
        let without_hb = run_sweep(workload, &silent, &dir.join("plain")).unwrap();
        assert_eq!(with_hb.snapshot, without_hb.snapshot);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rss_sampler_reports_on_linux() {
        if let Some(rss) = current_rss_mb() {
            assert!(rss > 0, "a live test process occupies memory");
        }
    }
}

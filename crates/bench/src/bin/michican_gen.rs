//! `michican-gen` — the OEM-side initial-configuration tool (paper
//! §IV-A): reads a communication matrix (mini-DBC subset), derives every
//! ECU's detection range and emits the per-ECU FSM firmware sources.
//!
//! ```text
//! michican-gen <matrix.dbc> [--lang c|rust|dot] [--scenario full|light]
//!              [--ecu <hex-id>] [--out <dir>] [--report]
//! michican-gen --builtin pacifica [--report]
//! ```
//!
//! Without `--out`, sources go to stdout. `--report` prints the coverage/
//! redundancy analysis instead of generating code.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use can_core::{BusSpeed, CanId};
use michican::analysis::{coverage, depth_profile};
use michican::codegen::{emit_c, emit_dot, emit_rust};
use michican::fsm::DetectionFsm;
use michican::{EcuList, Scenario};
use restbus::dbc::parse_dbc;
use restbus::{pacifica_matrix, CommMatrix};

struct Options {
    source: Source,
    lang: Lang,
    scenario: Scenario,
    only_ecu: Option<CanId>,
    out_dir: Option<PathBuf>,
    report: bool,
}

enum Source {
    DbcFile(PathBuf),
    Builtin(String),
}

#[derive(Clone, Copy, PartialEq)]
enum Lang {
    C,
    Rust,
    Dot,
}

fn usage() -> &'static str {
    "usage: michican-gen <matrix.dbc> [--lang c|rust|dot] [--scenario full|light]\n\
     \x20                  [--ecu <hex-id>] [--out <dir>] [--report]\n\
     \x20      michican-gen --builtin pacifica [--report]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = env::args().skip(1).peekable();
    let mut source = None;
    let mut lang = Lang::C;
    let mut scenario = Scenario::Full;
    let mut only_ecu = None;
    let mut out_dir = None;
    let mut report = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lang" => {
                lang = match args.next().as_deref() {
                    Some("c") => Lang::C,
                    Some("rust") => Lang::Rust,
                    Some("dot") => Lang::Dot,
                    other => return Err(format!("unknown language {other:?}")),
                };
            }
            "--scenario" => {
                scenario = match args.next().as_deref() {
                    Some("full") => Scenario::Full,
                    Some("light") => Scenario::Light,
                    other => return Err(format!("unknown scenario {other:?}")),
                };
            }
            "--ecu" => {
                let raw = args.next().ok_or("--ecu needs a hex identifier")?;
                let raw = raw.trim_start_matches("0x");
                let value =
                    u16::from_str_radix(raw, 16).map_err(|_| format!("bad identifier {raw}"))?;
                only_ecu = Some(CanId::new(value).map_err(|e| e.to_string())?);
            }
            "--out" => {
                out_dir = Some(PathBuf::from(args.next().ok_or("--out needs a directory")?));
            }
            "--builtin" => {
                source = Some(Source::Builtin(
                    args.next().ok_or("--builtin needs a matrix name")?,
                ));
            }
            "--report" => report = true,
            "--help" | "-h" => return Err(usage().to_string()),
            path if !path.starts_with('-') => {
                source = Some(Source::DbcFile(PathBuf::from(path)));
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }

    Ok(Options {
        source: source.ok_or_else(|| usage().to_string())?,
        lang,
        scenario,
        only_ecu,
        out_dir,
        report,
    })
}

fn load_matrix(source: &Source) -> Result<CommMatrix, String> {
    match source {
        Source::DbcFile(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            parse_dbc(
                path.file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("matrix"),
                BusSpeed::K500,
                &text,
            )
            .map_err(|e| e.to_string())
        }
        Source::Builtin(name) => match name.as_str() {
            "pacifica" => Ok(pacifica_matrix(BusSpeed::K500)),
            other => Err(format!("unknown builtin matrix {other}")),
        },
    }
}

fn print_report(list: &EcuList, scenario: Scenario) {
    let report = coverage(list, scenario);
    println!(
        "deployment report ({} ECUs, {:?} scenario):",
        list.len(),
        scenario
    );
    println!("  uncovered DoS identifiers: {}", report.uncovered_dos_ids);
    println!(
        "  redundancy over covered identifiers: min {}, mean {:.2}",
        report.min_redundancy, report.mean_redundancy
    );
    println!(
        "{:<8} {:>12} {:>14} {:>14}",
        "ECU", "FSM states", "mean depth", "max depth"
    );
    for index in 0..list.len() {
        let fsm = DetectionFsm::for_scenario(list, index, scenario);
        let profile = depth_profile(&fsm);
        println!(
            "{:<8} {:>12} {:>14.2} {:>14}",
            format!("{}", list.id_at(index)),
            fsm.node_count(),
            profile.mean_malicious_depth,
            profile.max_depth
        );
    }
}

fn run() -> Result<(), String> {
    let options = parse_args()?;
    let matrix = load_matrix(&options.source)?;
    let list = EcuList::new(matrix.ids()).map_err(|e| e.to_string())?;

    if options.report {
        print_report(&list, options.scenario);
        return Ok(());
    }

    if let Some(dir) = &options.out_dir {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }

    let mut generated = 0usize;
    for index in 0..list.len() {
        let id = list.id_at(index);
        if options.only_ecu.is_some_and(|only| only != id) {
            continue;
        }
        let fsm = DetectionFsm::for_scenario(&list, index, options.scenario);
        let symbol = format!("ecu_{:03x}", id.raw());
        let (source, extension) = match options.lang {
            Lang::C => (emit_c(&fsm, &symbol), "c"),
            Lang::Rust => (emit_rust(&fsm, &symbol), "rs"),
            Lang::Dot => (emit_dot(&fsm, &symbol), "dot"),
        };
        match &options.out_dir {
            Some(dir) => {
                let path = dir.join(format!("{symbol}.{extension}"));
                fs::write(&path, &source)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                eprintln!("wrote {} ({} states)", path.display(), fsm.node_count());
            }
            None => {
                println!("// ===== {} ({} states) =====", id, fsm.node_count());
                println!("{source}");
            }
        }
        generated += 1;
    }

    if generated == 0 {
        return Err("no ECU matched --ecu".into());
    }
    eprintln!(
        "generated {generated} FSM(s) for {} ({:?} scenario)",
        matrix.name, options.scenario
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

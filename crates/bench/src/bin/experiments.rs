//! Regenerates every table and figure of the MichiCAN evaluation.
//!
//! ```text
//! experiments [all|table1|table2|table3|fig1a|fig1b|fig2|fig4b|fig6|
//!              detection|cpu|bus_load|multi_attacker|on_vehicle|
//!              ids_latency|feasibility|availability|faults|attacks|ids]
//!             [--full]
//!             [--artifacts <dir>]   # fig6 CSV + VCD output
//!             [--shards <n> | -j <n>]  # parallel workers (0 = all cores)
//!             [--metrics-out <path>]   # per-run observability export
//!             [--journal-out <path>]   # causal sim-time event journal export
//!             [--fast]                 # idle fast-forward simulation core
//!             [--packed]               # word-packed bus kernel
//!             [--attacks <name|all>]   # adversary-zoo selection (attacks)
//!             [--detectors <name|all>] # detector selection (ids bake-off)
//! ```
//!
//! `attacks` runs the adversary zoo (`bench::attackzoo`): every attack
//! variant of `can_attacks::registry` — bit-level stuff-bit overwrite,
//! mid-frame error flags, frame truncation, adaptive racing, ghost
//! injection, plus the controller-level spoofing/DoS/toggling attackers —
//! against MichiCAN, the Parrot baseline and an undefended victim, and
//! prints the per-attack eradication/bus-off/detection-latency table.
//! `--attacks <name>` restricts the grid to one attack family. The table
//! is byte-identical for every `--shards` count and simulation mode.
//!
//! `ids` runs the timing-IDS bake-off (`bench::idsbench`): every
//! detector variant of `can_ids::registry` attached as a passive tap to
//! every defense × scenario cell, printing per-detector detection
//! latency and false-positive rate next to MichiCAN's in-frame reaction
//! and eradication count. `--detectors <name>` restricts the grid to one
//! detector family. The table is byte-identical for every `--shards`
//! count and simulation mode.
//!
//! `--full` runs the paper-scale parameterizations (e.g. 160,000 random
//! FSMs); the default is a faster configuration with identical shape.
//!
//! `--fast` runs the simulator-backed grid artifacts (table2,
//! multi_attacker, faults) with the idle fast-forward core
//! (`SimMode::FastForward`). The output is byte-identical to the default
//! lockstep mode — CI diffs the two — it just skips quiescent bus
//! stretches in closed form (see `DESIGN.md §9`).
//!
//! `--packed` runs the same artifacts with the word-packed bus kernel
//! (`SimMode::Packed`): event-free stretches resolve the wired-AND up to
//! 64 bits at a time (see `DESIGN.md §11`). Output is again
//! byte-identical — CI diffs this mode too.
//!
//! `--shards` fans the grid artifacts (faults, detection, table2,
//! multi_attacker) out across worker threads; the output is byte-identical
//! for every shard count (see `bench::runner` for the determinism
//! contract).
//!
//! `--metrics-out <path>` enables the metrics recorder: the grid artifacts
//! run metered (per-cell registries merged in cell order), a serial
//! observability probe (`bench::obs`) runs once so the snapshot always
//! carries the per-node TEC/REC, error-type and reaction-latency series,
//! and the run's deterministic JSON snapshot is written to `<path>` with a
//! Prometheus text rendering next to it (`<path>` with the extension
//! replaced by `.prom`). The JSON snapshot is byte-identical for every
//! shard count; status messages go to stderr so stdout stays diffable.
//!
//! `--journal-out <path>` enables the causal event journal: the
//! simulator-backed artifacts (table2, multi_attacker, faults, attacks,
//! on_vehicle) emit sim-time events with stable `frame_seq`/`chain_id`
//! causal ids, and the canonical `can-obs-journal/v1` JSONL export is
//! written to `<path>` with a Chrome-trace (Perfetto) rendering next to it
//! (extension replaced by `trace.json` — open it in `ui.perfetto.dev`).
//! Like the metrics snapshot, the journal export is byte-identical for
//! every `--shards` count and simulation mode (see `DESIGN.md §13`).
//!
//! ## `experiments sweep` — the crash-tolerant campaign sweep
//!
//! ```text
//! experiments sweep --dir <path> [--workload campaign|synthetic]
//!                   [--replicas <n>] [--run-ms <f>] [--fast]     # campaign
//!                   [--cells <n>] [--cell-work <n>]              # synthetic
//!                   [--seed <n|0xHEX>] [--chunk <cells>] [--max-attempts <n>]
//!                   [--shards <n> | -j <n>] [--timeout-ms <n>] [--backoff-ms <n>]
//!                   [--max-rss-mb <n>]          # resumable fail-fast RSS guard
//!                   [--progress-out <path>] [--heartbeat-secs <n>]  # live telemetry
//!                   [--chaos-panic <n>] [--chaos-hang <n>] [--chaos-hang-ms <n>]
//!                   [--stop-after-chunks <n>]   # crash-simulation test hook
//! experiments sweep --resume <dir> [--shards|--timeout-ms|--backoff-ms|--max-rss-mb|--progress-out …]
//! ```
//!
//! Progress is checkpointed to `<dir>/journal.jsonl` after every chunk; a
//! killed (or RSS-guard-stopped) run continues with `--resume <dir>`,
//! which rebuilds the workload from the journal header. The final merged
//! `can-obs/v1` snapshot lands in `<dir>/snapshot.json` and is
//! byte-identical for every shard count and across any kill/resume point
//! (see `DESIGN.md §10`). The report on stdout is deterministic; progress
//! and paths go to stderr.
//!
//! `--progress-out <path>` turns on the live heartbeat: after each durably
//! journaled chunk (rate-limited to one beat per `--heartbeat-secs`,
//! default every chunk) a `michican-sweep-progress/v1` JSONL record is
//! appended to `<path>` and an atomically-swapped Prometheus textfile
//! lands next to it (extension replaced by `.prom`) for a node-exporter
//! textfile collector to scrape mid-run. Heartbeat flags are run-local
//! "how fast" knobs like `--shards`: they may differ freely between the
//! original run and a `--resume`, and they never affect the snapshot.

use std::env;
use std::path::PathBuf;

use bench::runner::{parse_shards, ExecOpts};
use bench::scenarios::{self, table2_experiments, TABLE2_SPEED};
use bench::{busload, cpu, detection, table1};
use can_core::bitstream::{FrameField, FrameLayout};
use can_core::counters::ERRORS_TO_BUS_OFF;
use can_core::{BusSpeed, CanFrame, CanId, ErrorCounters, ErrorState};
use can_obs::{Journal, Recorder};
use can_sim::{ErrorRole, EventKind};
use can_trace::{Timeline, TimelineEvent};
use mcu::{ARDUINO_DUE, NXP_S32K144};
use michican::prevention;
use michican::Scenario;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        match sweep_command(&args[1..]) {
            Ok(()) => return,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
        }
    }
    let (shards, args) = match parse_shards(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let full = args.iter().any(|a| a == "--full");
    let mode = if args.iter().any(|a| a == "--packed") {
        bench::runner::SimMode::Packed
    } else if args.iter().any(|a| a == "--fast") {
        bench::runner::SimMode::FastForward
    } else {
        bench::runner::SimMode::Lockstep
    };
    let artifacts: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let metrics_out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let journal_out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--journal-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let attack_selection: String = args
        .iter()
        .position(|a| a == "--attacks")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let detector_selection: String = args
        .iter()
        .position(|a| a == "--detectors")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let mut skip_next = false;
    let which = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--artifacts"
                || *a == "--metrics-out"
                || *a == "--journal-out"
                || *a == "--attacks"
                || *a == "--detectors"
            {
                skip_next = true;
                return false;
            }
            true
        })
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    // One root recorder for the whole invocation: disabled (all no-ops)
    // unless --metrics-out asked for the export.
    let recorder = if metrics_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    // Likewise one root journal, enabled only when --journal-out asked for
    // the causal export.
    let journal = if journal_out.is_some() {
        Journal::enabled()
    } else {
        Journal::disabled()
    };

    let run = |name: &str| which == "all" || which == name;

    if run("table1") {
        section("Table I — countermeasure comparison");
        print!("{}", table1::render_table1());
    }
    if run("fig1a") {
        section("Fig. 1a — CAN 2.0A data frame layout");
        fig1a();
    }
    if run("fig1b") {
        section("Fig. 1b — error-state transitions");
        fig1b();
    }
    if run("fig2") {
        section("Fig. 2 — DoS attack taxonomy");
        fig2();
    }
    if run("fig4b") {
        section("Fig. 4b — worst-case counterattack pattern");
        fig4b();
    }
    if run("detection") {
        section("§V-B — detection latency (random FSMs)");
        detection_latency(full, shards, &recorder);
    }
    if run("table2") {
        section("Table II — empirical bus-off time (six experiments, 50 kbit/s)");
        table2(full, shards, mode, &recorder, &journal);
    }
    if run("table3") {
        section("Table III — theoretical bus-off time");
        table3();
    }
    if run("fig6") {
        section("Fig. 6 — Experiment 5 bus pattern (0x066 vs 0x067)");
        fig6(artifacts.as_deref());
    }
    if run("multi_attacker") {
        section("§V-C — more than two attackers");
        multi_attacker(shards, mode, &recorder, &journal);
    }
    if run("cpu") {
        section("§V-D — CPU utilization");
        cpu_utilization();
    }
    if run("bus_load") {
        section("§V-E — bus load: MichiCAN vs Parrot");
        bus_load();
    }
    if run("on_vehicle") {
        section("§V-F — on-vehicle ParkSense test (2017 Pacifica)");
        on_vehicle(&journal);
    }
    if run("ids_latency") {
        section("Extension — quantifying Table I's IDS row");
        ids_latency();
    }
    if run("feasibility") {
        section("Extension — analytic deadline feasibility (response-time analysis)");
        feasibility();
    }
    if run("availability") {
        section("Extension — benign-traffic availability under persistent attack");
        availability();
    }
    if run("faults") {
        section("Extension — fault-injection campaign (robustness grid)");
        faults(full, shards, mode, &recorder, &journal);
    }
    if run("attacks") {
        section("Extension — adversary zoo (bit-level + controller-level registry)");
        attacks(full, shards, mode, &recorder, &journal, &attack_selection);
    }
    if run("ids") {
        section("Extension — timing-IDS bake-off (detector × defense × scenario)");
        ids(full, shards, mode, &recorder, &journal, &detector_selection);
    }

    if let Some(path) = metrics_out {
        write_metrics(&recorder, &path);
    }
    if let Some(path) = journal_out {
        write_journal(&journal, &path);
    }
}

/// The `experiments sweep` subcommand: a crash-tolerant, resumable
/// campaign sweep (see `bench::sweep` and `DESIGN.md §10`).
fn sweep_command(raw: &[String]) -> Result<(), String> {
    use bench::sweep::{
        self, CampaignSweep, ChaosSpec, Chaotic, HeartbeatConfig, SweepConfig, SweepError,
        SweepWorkload, SyntheticSweep,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let (shards, args) = parse_shards(raw)?;
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    fn num<T: std::str::FromStr>(
        value: Option<&String>,
        name: &str,
        default: T,
    ) -> Result<T, String> {
        match value {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("invalid value for {name}: {s}")),
        }
    }

    let timeout_ms: u64 = num(value("--timeout-ms"), "--timeout-ms", 0)?;
    let heartbeat_secs: u64 = num(value("--heartbeat-secs"), "--heartbeat-secs", 0)?;
    let heartbeat = match value("--progress-out").map(PathBuf::from) {
        Some(progress) => Some(HeartbeatConfig {
            prom_out: Some(progress.with_extension("prom")),
            progress_out: Some(progress),
            min_interval_secs: heartbeat_secs,
        }),
        None if heartbeat_secs > 0 => {
            return Err("--heartbeat-secs needs --progress-out <path>".to_string())
        }
        None => None,
    };
    let base_config = SweepConfig {
        shards,
        cell_timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        retry_backoff: Duration::from_millis(num(value("--backoff-ms"), "--backoff-ms", 10)?),
        max_rss_mb: value("--max-rss-mb")
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("invalid value for --max-rss-mb: {s}"))
            })
            .transpose()?,
        stop_after_chunks: value("--stop-after-chunks")
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("invalid value for --stop-after-chunks: {s}"))
            })
            .transpose()?,
        heartbeat,
        ..SweepConfig::default()
    };

    let (workload, config, dir) = if let Some(dir) = value("--resume").map(PathBuf::from) {
        let params = sweep::resume_params(&dir).map_err(|e| e.to_string())?;
        let workload = sweep::workload_from_descriptor(&params.workload)?;
        eprintln!(
            "resuming sweep in {} (workload {})",
            dir.display(),
            params.workload
        );
        let config = SweepConfig {
            seed: params.seed,
            chunk_cells: params.chunk_cells,
            max_attempts: params.max_attempts,
            ..base_config
        };
        (workload, config, dir)
    } else {
        let dir: PathBuf = value("--dir")
            .map(PathBuf::from)
            .ok_or("sweep needs --dir <path> (or --resume <dir>)")?;
        if dir.join(sweep::JOURNAL_FILE).exists() {
            return Err(format!(
                "{} already holds a sweep journal — continue it with \
                 `experiments sweep --resume {}`, or pick a fresh --dir",
                dir.display(),
                dir.display()
            ));
        }
        let seed = match value("--seed") {
            None => SweepConfig::default().seed,
            Some(s) => {
                let parsed = match s.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => s.parse(),
                };
                parsed.map_err(|_| format!("invalid value for --seed: {s}"))?
            }
        };
        let kind = value("--workload")
            .map(String::as_str)
            .unwrap_or("campaign");
        let inner: Arc<dyn SweepWorkload> = match kind {
            "campaign" => {
                let mode = if args.iter().any(|a| a == "--fast") {
                    bench::runner::SimMode::FastForward
                } else {
                    bench::runner::SimMode::Lockstep
                };
                Arc::new(CampaignSweep::new(
                    num(value("--replicas"), "--replicas", 4)?,
                    num(value("--run-ms"), "--run-ms", 150.0)?,
                    mode,
                ))
            }
            "synthetic" => Arc::new(SyntheticSweep {
                cells: num(value("--cells"), "--cells", 10_000)?,
                work: num(value("--cell-work"), "--cell-work", 1_000)?,
            }),
            other => return Err(format!("unknown --workload {other} (campaign|synthetic)")),
        };
        let chaos = ChaosSpec {
            panic_every: num(value("--chaos-panic"), "--chaos-panic", 0)?,
            panic_transient: false,
            hang_every: num(value("--chaos-hang"), "--chaos-hang", 0)?,
            hang_transient: true,
            hang_ms: num(value("--chaos-hang-ms"), "--chaos-hang-ms", 60_000)?,
        };
        let workload: Arc<dyn SweepWorkload> = if chaos.is_inert() {
            inner
        } else {
            Arc::new(Chaotic { inner, chaos })
        };
        let config = SweepConfig {
            seed,
            chunk_cells: num(value("--chunk"), "--chunk", 16)?,
            max_attempts: num(value("--max-attempts"), "--max-attempts", 3)?,
            ..base_config
        };
        (workload, config, dir)
    };

    match sweep::run_sweep(workload, &config, &dir) {
        Ok(report) => {
            print!("{}", report.render());
            eprintln!("snapshot: {}", report.snapshot_path.display());
            Ok(())
        }
        Err(e @ SweepError::MemoryLimit { .. }) => Err(e.to_string()),
        Err(e @ SweepError::Aborted { .. }) => Err(format!(
            "{e} (the journal in {} is resumable)",
            dir.display()
        )),
        Err(e) => Err(e.to_string()),
    }
}

/// The base execution options for a grid artifact: metered by the root
/// recorder, journaled by the root journal, in the simulation mode
/// `--fast`/`--packed` asked for.
fn exec_opts(mode: bench::runner::SimMode, recorder: &Recorder, journal: &Journal) -> ExecOpts {
    ExecOpts::new()
        .with_recorder(recorder.clone())
        .with_journal(journal.clone())
        .with_mode(mode)
}

/// Runs the serial observability probe and writes the run's metrics: the
/// deterministic JSON snapshot to `path` and the Prometheus text rendering
/// (which additionally carries the host-dependent wall-time spans) next to
/// it with a `.prom` extension.
fn write_metrics(recorder: &Recorder, path: &std::path::Path) {
    bench::obs::run_reaction_probe(recorder, 50.0);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(path, recorder.snapshot_json()) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let prom = path.with_extension("prom");
    if let Err(e) = std::fs::write(&prom, recorder.prometheus_text()) {
        eprintln!("cannot write {}: {e}", prom.display());
        std::process::exit(1);
    }
    eprintln!("metrics: wrote {} and {}", path.display(), prom.display());
}

/// Writes the run's causal event journal: the canonical
/// `can-obs-journal/v1` JSONL export to `path`, and the Chrome-trace
/// (Perfetto) rendering next to it with a `trace.json` extension.
fn write_journal(journal: &Journal, path: &std::path::Path) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    let export = journal.export_jsonl();
    if let Err(e) = std::fs::write(path, &export) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let trace = path.with_extension("trace.json");
    match can_trace::chrome_trace_json(&export) {
        Ok(doc) => {
            if let Err(e) = std::fs::write(&trace, doc) {
                eprintln!("cannot write {}: {e}", trace.display());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("cannot render chrome trace: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("journal: wrote {} and {}", path.display(), trace.display());
}

fn faults(
    full: bool,
    shards: usize,
    mode: bench::runner::SimMode,
    recorder: &Recorder,
    journal: &Journal,
) {
    use bench::campaign::{run_campaign_with, CampaignConfig};
    let config = CampaignConfig {
        run_ms: if full { 600.0 } else { 150.0 },
        shards,
        ..CampaignConfig::default()
    };
    let opts = exec_opts(mode, recorder, journal);
    print!("{}", run_campaign_with(&config, &opts).render());
    println!("(seeded and deterministic: rerunning reproduces this table byte for byte)");
}

fn attacks(
    full: bool,
    shards: usize,
    mode: bench::runner::SimMode,
    recorder: &Recorder,
    journal: &Journal,
    selection: &str,
) {
    use bench::attackzoo::{self, ZooDefense, ZOO_HORIZON_BITS};
    let cells = match attackzoo::zoo_cells_for(selection) {
        Some(cells) => cells,
        None => {
            eprintln!(
                "error: unknown attack '{selection}' (known: all, {})",
                can_attacks::registry::attack_names().join(", ")
            );
            std::process::exit(2);
        }
    };
    let horizon = if full { 100_000 } else { ZOO_HORIZON_BITS };
    println!(
        "registry: {} variants x {} defenses = {} cells, {} bits each at {}",
        cells.len() / ZooDefense::ALL.len(),
        ZooDefense::ALL.len(),
        cells.len(),
        horizon,
        TABLE2_SPEED
    );
    let outcomes = attackzoo::run_zoo_with(
        cells,
        horizon,
        &exec_opts(mode, recorder, journal).with_shards(shards),
    );
    print!("{}", attackzoo::render_zoo_table(&outcomes));
    if selection == "all" {
        attackzoo::assert_zoo_coverage(&outcomes);
        println!(
            "\n(bit-level attackers have no error counters: no counterattack can bus them off —"
        );
        println!("the paper's integrated-controller isolation argument, quantified per attack)");
    }
}

fn ids(
    full: bool,
    shards: usize,
    mode: bench::runner::SimMode,
    recorder: &Recorder,
    journal: &Journal,
    selection: &str,
) {
    use bench::attackzoo::ZooDefense;
    use bench::idsbench::{self, IDS_HORIZON_BITS};
    let detectors = match idsbench::detector_grid_for(selection) {
        Some(detectors) => detectors,
        None => {
            eprintln!(
                "error: unknown detector '{selection}' (known: all, {})",
                can_ids::registry::detector_names().join(", ")
            );
            std::process::exit(2);
        }
    };
    let cells = idsbench::ids_cells();
    let horizon = if full { 100_000 } else { IDS_HORIZON_BITS };
    println!(
        "grid: {} scenarios x {} defenses = {} cells, {} detectors each, {} bits at {}",
        cells.len() / ZooDefense::ALL.len(),
        ZooDefense::ALL.len(),
        cells.len(),
        detectors.len(),
        horizon,
        TABLE2_SPEED
    );
    let outcomes = idsbench::run_ids_with(
        cells,
        detectors,
        horizon,
        &exec_opts(mode, recorder, journal).with_shards(shards),
    );
    print!("{}", idsbench::render_ids_table(&outcomes));
    idsbench::assert_ids_honesty(&outcomes);
    println!(
        "\n(honesty invariant held: every frame-level detection took at least one whole frame;"
    );
    println!("MichiCAN's in-frame reaction, where it fired, came in under one frame)");
}

fn availability() {
    use bench::availability::{run as run_avail, Defense};
    let ms = 400.0;
    let healthy = run_avail(Defense::Healthy, ms);
    let undefended = run_avail(Defense::Undefended, ms);
    let defended = run_avail(Defense::MichiCan, ms);
    let parrot = run_avail(Defense::Parrot, ms);
    println!("Veh. D restbus at 500 kbit/s, {ms} ms, saturating DoS on 0x041\n");
    println!(
        "{:<14} {:>14} {:>14} {:>13} {:>10}",
        "scenario", "benign frames", "attack frames", "eradications", "bus load"
    );
    for (label, a) in [
        ("healthy", healthy),
        ("undefended", undefended),
        ("MichiCAN", defended),
        ("Parrot", parrot),
    ] {
        println!(
            "{:<14} {:>14} {:>14} {:>13} {:>9.1}%",
            label,
            a.benign_delivered,
            a.attack_delivered,
            a.eradications,
            a.bus_load * 100.0
        );
    }
    println!(
        "\nbenign delivery restored: {:.0} % of healthy (undefended: {:.1} %)",
        defended.benign_delivered as f64 / healthy.benign_delivered as f64 * 100.0,
        undefended.benign_delivered as f64 / healthy.benign_delivered as f64 * 100.0
    );
}

fn feasibility() {
    use restbus::schedulability::{analyze, max_tolerable_blocking};
    use restbus::{vehicle_matrix, Vehicle};
    let matrix = vehicle_matrix(Vehicle::D, 0, BusSpeed::K500);
    println!(
        "matrix: {} ({} messages, min deadline {} ms)",
        matrix.name,
        matrix.len(),
        matrix.min_deadline_ms().unwrap_or(0)
    );
    println!(
        "{:<36} {:>12} {:>14}",
        "defense-episode blocking", "bits", "all deadlines?"
    );
    for (label, blocking) in [
        ("healthy bus", 0u64),
        ("A=1 episode (measured)", 1_293),
        ("A=2 episode (measured)", 2_389),
        ("A=3 episode (measured)", 3_581),
        ("A=4 episode (measured)", 4_693),
        ("A=5 episode (measured)", 6_106),
    ] {
        let result = analyze(&matrix, blocking);
        println!(
            "{:<36} {:>12} {:>14}",
            label,
            blocking,
            if result.all_schedulable() {
                "yes"
            } else {
                "NO"
            }
        );
    }
    let budget = max_tolerable_blocking(&matrix);
    println!(
        "\nexact tolerable blocking budget: {} bits ({:.2} ms at 500 kbit/s)",
        budget,
        budget as f64 * 0.002
    );
    println!("(paper's crude bound: 5000 bits; the exact analysis accounts for interference)");
}

fn ids_latency() {
    use bench::idsbench::{flood_ids_defense, flood_michican_defense};
    let ids = flood_ids_defense(40_000);
    let michican = flood_michican_defense(40_000);
    println!("{:<34} {:>14} {:>14}", "metric", "frame IDS", "MichiCAN");
    println!(
        "{:<34} {:>14} {:>14}",
        "detection latency (bits)",
        ids.detection_latency_bits
            .map(|b| b.to_string())
            .unwrap_or_else(|| "never".into()),
        michican
            .detection_latency_bits
            .map(|b| b.to_string())
            .unwrap_or_else(|| "never".into()),
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "attack frames before detection",
        ids.frames_before_detection,
        michican.frames_before_detection
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "attack frames delivered (total)",
        ids.total_attack_frames_delivered,
        michican.total_attack_frames_delivered
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "attacker eradicated", ids.eradicated, michican.eradicated
    );
    println!("\n(the measured form of Table I: IDS = detection without real-time or eradication)");
}

fn section(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn fig1a() {
    let layout = FrameLayout::for_payload(8);
    println!("{:<16} {:>8} {:>8} {:>8}", "Field", "start", "end", "bits");
    for field in FrameField::ALL {
        let span = layout.span(field);
        println!(
            "{:<16} {:>8} {:>8} {:>8}",
            field.name(),
            span.start,
            span.end,
            span.len()
        );
    }
    println!("(unstuffed bit offsets, 8-byte payload; stuffing applies SOF..CRC)");
}

fn fig1b() {
    let mut counters = ErrorCounters::new();
    println!("transmit-error ladder (TEC +8 per error, thresholds 128/256):");
    let mut last_state = ErrorState::ErrorActive;
    for error in 1..=ERRORS_TO_BUS_OFF {
        let state = counters.on_transmit_error();
        if state != last_state {
            println!(
                "  after error {:>2} (TEC {:>3}): {} -> {}",
                error,
                counters.tec(),
                last_state,
                state
            );
            last_state = state;
        }
    }
    println!("  recovery: 128 sequences of 11 recessive bits -> error-active (TEC/REC reset)");
}

fn fig2() {
    use can_attacks::{DosKind, SuspensionAttacker};
    use can_core::app::Application;
    use can_core::BitInstant;
    let kinds: [(&str, DosKind); 3] = [
        ("traditional", DosKind::Traditional),
        (
            "targeted",
            DosKind::Targeted {
                id: CanId::from_raw(0x25F),
            },
        ),
        (
            "random",
            DosKind::Random {
                below: CanId::from_raw(0x100),
            },
        ),
    ];
    for (name, kind) in kinds {
        let mut attacker = SuspensionAttacker::new(kind, 1);
        let ids: Vec<String> = (0..8)
            .filter_map(|t| attacker.poll(BitInstant::from_bits(t)))
            .map(|f| format!("{}", f.id()))
            .collect();
        println!("{name:>12}: {}", ids.join(" "));
    }
}

fn fig4b() {
    println!("attacker frame (worst case: recessive ID LSB, DLC=1):");
    let frame = CanFrame::data_frame(CanId::from_raw(0x173), &[0x00]).unwrap();
    let needed = prevention::injection_bits_to_error(&frame);
    println!("  injected dominant bits until stuff error: {needed}");
    println!(
        "  error frame starts at frame bit {} -> t_a = {} bits, t_p = {} bits",
        prevention::WORST_CASE_FLAG_START,
        prevention::error_active_time(prevention::WORST_CASE_FLAG_START),
        prevention::error_passive_time(prevention::WORST_CASE_FLAG_START)
    );
    println!("per-identifier injected-bit requirement (sampled):");
    for raw in [0x000u16, 0x050, 0x064, 0x066, 0x173, 0x25F, 0x7D0] {
        for dlc in [1usize, 8] {
            let f = CanFrame::data_frame(CanId::from_raw(raw), &vec![0u8; dlc]).unwrap();
            println!(
                "  id {:>5}  dlc {}  -> {} bits",
                format!("{}", f.id()),
                dlc,
                prevention::injection_bits_to_error(&f)
            );
        }
    }
}

fn detection_latency(full: bool, shards: usize, recorder: &Recorder) {
    let fsms = if full { 160_000 } else { 4_000 };
    println!(
        "sweep: {} random FSMs (IVN sizes 150-450; use --full for 160k)",
        fsms
    );
    let sweep = detection::run_sweep_with(
        fsms,
        0xD5_2025,
        &ExecOpts::new()
            .with_shards(shards)
            .with_recorder(recorder.clone()),
    );
    println!(
        "  detection rate:          {:.1} %   (paper: 100 %)",
        sweep.detection_rate * 100.0
    );
    println!(
        "  false positives:         {:.3} %  (paper: 0 %)",
        sweep.false_positive_rate * 100.0
    );
    println!(
        "  mean detection position: {:.2} bits (paper: 9)",
        sweep.mean_detection_position
    );
    println!("  mean FSM states:         {:.0}", sweep.mean_nodes);
    println!("position vs IVN size (figure-style series):");
    for n in [10usize, 20, 50, 100, 200, 300, 400] {
        let s = detection::run_sweep_with_sizes_sharded(
            if full { 2_000 } else { 200 },
            0xD5,
            n,
            n,
            shards,
        );
        println!(
            "  N = {n:>3}: mean position {:.2}",
            s.mean_detection_position
        );
    }
}

fn table2(
    full: bool,
    shards: usize,
    mode: bench::runner::SimMode,
    recorder: &Recorder,
    journal: &Journal,
) {
    let capture_ms = if full { 10_000.0 } else { 2_000.0 };
    println!("capture: {capture_ms} ms per experiment (paper: 2 s)");
    println!(
        "{:<5} {:<10} {:<9} {:>10} {:>12} {:>10} {:>9}",
        "Exp.", "Attacker", "Restbus", "mu (ms)", "sigma (ms)", "max (ms)", "episodes"
    );
    let paper: &[(f64, f64, f64)] = &[
        (24.6, 2.64, 58.6),
        (24.2, 0.27, 25.2),
        (25.1, 1.39, 38.3),
        (24.9, 0.45, 25.2),
        (39.0, 0.79, 48.6),
        (35.4, 0.60, 44.0),
        (24.9, 0.01, 25.4),
        (24.9, 0.01, 25.4),
    ];
    let mut row = 0usize;
    let opts = exec_opts(mode, recorder, journal).with_shards(shards);
    for outcome in scenarios::run_table2_with(capture_ms, &opts) {
        let exp = &outcome.experiment;
        for (id, stats) in &outcome.per_attacker {
            match stats {
                Some(s) => println!(
                    "{:<5} 0x{:03X}     {:<9} {:>10.1} {:>12.2} {:>10.1} {:>9}   (paper: mu={} sd={} max={})",
                    exp.number,
                    id,
                    if exp.restbus { "yes" } else { "no" },
                    s.mean_millis(TABLE2_SPEED),
                    s.std_millis(TABLE2_SPEED),
                    s.max_millis(TABLE2_SPEED),
                    s.count,
                    paper[row].0,
                    paper[row].1,
                    paper[row].2,
                ),
                None => println!(
                    "{:<5} 0x{id:03X}  -- no bus-off within capture --",
                    exp.number
                ),
            }
            row += 1;
        }
    }
}

fn table3() {
    println!("clean runs (no interference):");
    println!(
        "{:<8} {:<6} {:>14} {:>15} {:>16}",
        "Exp.", "Scen.", "t_a (bits)", "t_p (bits)", "total (bits)"
    );
    for row in prevention::theory_table(prevention::AVERAGE_FRAME_BITS, 0, 0, 0, 0, 0) {
        println!(
            "{:<8} {:<6} {:>14} {:>15} {:>16}",
            row.experiments, row.scenario, row.active_bits, row.passive_bits, row.total_bits
        );
    }
    println!("\nwith one interfering frame per gap (c_h,a = c_h,p+c_l,p = z_* = 1, s_f = 125):");
    println!(
        "{:<8} {:<6} {:>14} {:>15} {:>16}",
        "Exp.", "Scen.", "t_a (bits)", "t_p (bits)", "total (bits)"
    );
    for row in prevention::theory_table(prevention::AVERAGE_FRAME_BITS, 1, 1, 1, 1, 1) {
        println!(
            "{:<8} {:<6} {:>14} {:>15} {:>16}",
            row.experiments, row.scenario, row.active_bits, row.passive_bits, row.total_bits
        );
    }
    println!(
        "\nworst-case single attacker: {} bits = {:.2} ms at 50 kbit/s (paper: 1248)",
        prevention::single_attacker_total(prevention::WORST_CASE_FLAG_START),
        (prevention::single_attacker_total(prevention::WORST_CASE_FLAG_START) as f64) * 0.02
    );
    println!(
        "best-case single attacker:  {} bits",
        prevention::single_attacker_total(prevention::BEST_CASE_FLAG_START)
    );
}

fn fig6(artifacts: Option<&std::path::Path>) {
    // Re-run Experiment 5 with event capture and render the timeline.
    let exp = table2_experiments()
        .into_iter()
        .find(|e| e.number == 5)
        .unwrap();
    let (mut sim, attackers) = scenarios::build_experiment_traced(&exp);
    // Run until both attackers are bused off once.
    let mut off = std::collections::HashSet::new();
    let mut checked = 0usize;
    for _ in 0..20_000u64 {
        sim.step();
        while checked < sim.events().len() {
            if matches!(sim.events()[checked].kind, EventKind::BusOff) {
                off.insert(sim.events()[checked].node);
            }
            checked += 1;
        }
        if attackers.iter().all(|a| off.contains(a)) {
            break;
        }
    }
    let events: Vec<TimelineEvent> = sim
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TransmissionStarted { .. } => Some(TimelineEvent::TransmissionStarted {
                node: e.node,
                at: e.at,
            }),
            EventKind::TransmissionSucceeded { .. } => Some(TimelineEvent::TransmissionSucceeded {
                node: e.node,
                at: e.at,
            }),
            EventKind::ErrorDetected {
                role: ErrorRole::Transmitter,
                ..
            } => Some(TimelineEvent::TransmitError {
                node: e.node,
                at: e.at,
            }),
            EventKind::BusOff => Some(TimelineEvent::BusOff {
                node: e.node,
                at: e.at,
            }),
            EventKind::Recovered => Some(TimelineEvent::Recovered {
                node: e.node,
                at: e.at,
            }),
            _ => None,
        })
        .collect();
    let horizon = sim.now().bits();
    let timeline = Timeline::build(&events, &attackers, horizon);
    print!(
        "{}",
        timeline.render_ascii(&[(attackers[0], "0x066"), (attackers[1], "0x067")], 100)
    );

    if let Some(dir) = artifacts {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
        } else {
            let csv_path = dir.join("fig6_spans.csv");
            let _ = std::fs::write(&csv_path, timeline.to_csv());
            if let Some(trace) = sim.trace() {
                let vcd_path = dir.join("fig6_bus.vcd");
                let signal = can_trace::VcdSignal::new("CAN_RX", trace.levels().to_vec());
                let _ = std::fs::write(&vcd_path, can_trace::write_vcd(TABLE2_SPEED, &[signal]));
                println!(
                    "artifacts: {} and {} written",
                    csv_path.display(),
                    vcd_path.display()
                );
            }
        }
    }

    // The paper's intertwining summary.
    let errors = |node: usize| {
        sim.events()
            .iter()
            .filter(|e| {
                e.node == node
                    && matches!(
                        e.kind,
                        EventKind::ErrorDetected {
                            role: ErrorRole::Transmitter,
                            ..
                        }
                    )
            })
            .count()
    };
    println!(
        "0x066: {} destroyed attempts; 0x067: {} destroyed attempts (32 each expected)",
        errors(attackers[0]),
        errors(attackers[1])
    );
}

fn multi_attacker(
    shards: usize,
    mode: bench::runner::SimMode,
    recorder: &Recorder,
    journal: &Journal,
) {
    println!(
        "{:>3} {:>14} {:>12}   {:<30}",
        "A", "total (bits)", "total (ms)", "verdict vs 5000-bit deadline"
    );
    let paper: [(usize, Option<u64>); 5] = [
        (1, Some(1248)),
        (2, None),
        (3, Some(3515)),
        (4, Some(4660)),
        (5, None),
    ];
    let counts: Vec<usize> = paper.iter().map(|&(count, _)| count).collect();
    let scan = scenarios::run_multi_attacker_scan_with(
        &counts,
        60_000,
        &exec_opts(mode, recorder, journal).with_shards(shards),
    );
    for ((count, result), (_, paper_bits)) in scan.into_iter().zip(paper) {
        match result {
            Some(bits) => {
                let verdict = if bits <= 5_000 {
                    "operable"
                } else {
                    "BUS INOPERABLE"
                };
                let reference = paper_bits
                    .map(|b| format!(" (paper: {b})"))
                    .unwrap_or_default();
                println!(
                    "{count:>3} {bits:>14} {:>12.1}   {verdict:<16}{reference}",
                    bits as f64 * TABLE2_SPEED.bit_time_us() / 1000.0
                );
            }
            None => println!("{count:>3}  -- not all attackers eradicated within horizon --"),
        }
    }
}

fn cpu_utilization() {
    let rows = cpu::cpu_report(
        &[&ARDUINO_DUE, &NXP_S32K144],
        &[BusSpeed::K125, BusSpeed::K250, BusSpeed::K500],
        &[Scenario::Full, Scenario::Light],
    );
    println!(
        "{:<30} {:<12} {:<7} {:>9} {:>9} {:>9}",
        "MCU", "speed", "scen.", "idle", "active", "combined"
    );
    for (mcu_name, speed, scenario) in [
        (ARDUINO_DUE.name, BusSpeed::K125, Scenario::Full),
        (ARDUINO_DUE.name, BusSpeed::K125, Scenario::Light),
        (ARDUINO_DUE.name, BusSpeed::K250, Scenario::Full),
        (NXP_S32K144.name, BusSpeed::K500, Scenario::Full),
        (NXP_S32K144.name, BusSpeed::K500, Scenario::Light),
    ] {
        let sel: Vec<&cpu::CpuRow> = rows
            .iter()
            .filter(|r| r.mcu == mcu_name && r.speed == speed && r.scenario == scenario)
            .collect();
        let mean =
            |f: fn(&cpu::CpuRow) -> f64| sel.iter().map(|r| f(r)).sum::<f64>() / sel.len() as f64;
        println!(
            "{:<30} {:<12} {:<7} {:>8.1}% {:>8.1}% {:>8.1}%",
            mcu_name,
            speed.to_string(),
            format!("{scenario:?}"),
            mean(|r| r.idle_load) * 100.0,
            mean(|r| r.active_load) * 100.0,
            mean(|r| r.combined_load) * 100.0
        );
    }
    println!("(averages over the 8 vehicle buses; paper: Due@125k full=40%, light=30%, Due@250k=80%, S32K144@500k=44%)");
}

fn bus_load() {
    let michican = busload::michican_load(400.0);
    let parrot = busload::parrot_load(600.0);
    println!("{:<26} {:>12} {:>12}", "metric", "MichiCAN", "Parrot");
    println!(
        "{:<26} {:>12.1} {:>12.1}",
        "load during defense (%)",
        michican.during_defense * 100.0,
        parrot.during_defense * 100.0
    );
    println!(
        "{:<26} {:>12.1} {:>12.1}",
        "overall load (%)",
        michican.overall * 100.0,
        parrot.overall * 100.0
    );
    println!(
        "{:<26} {:>12} {:>12}",
        "attacker bused off", michican.attacker_bused_off, parrot.attacker_bused_off
    );
    println!(
        "{:<26} {:>12} {:>12}",
        "defender TEC after run", michican.defender_tec, parrot.defender_tec
    );
    println!(
        "\nParrot theoretical flood load: {:.1} % (paper: 125/128 = 97.7 %)",
        busload::parrot_theoretical_flood_load() * 100.0
    );
    if let Some(bits) = michican.busoff_bits {
        println!(
            "MichiCAN counterattack spike: {} bits = {:.1} ms at 50 kbit/s, then the bus is clean",
            bits,
            bits as f64 * 0.02
        );
    }
}

fn on_vehicle(journal: &Journal) {
    let opts = ExecOpts::new().with_journal(journal.clone());
    let undefended = scenarios::run_parksense_with(false, 600.0, &opts);
    let defended = scenarios::run_parksense_with(true, 600.0, &opts);
    println!("targeted DoS on ParkSense: inject 0x25F against lowest relevant id 0x260\n");
    println!("without MichiCAN dongle:");
    println!(
        "  PARKSENSE UNAVAILABLE: {} (at {:?} ms)  status frames: {}",
        undefended.became_unavailable,
        undefended.unavailable_at_ms,
        undefended.status_frames_received
    );
    println!("with MichiCAN dongle on the OBD-II splitter:");
    println!(
        "  PARKSENSE UNAVAILABLE: {}   attacker bus-offs: {}  first episode attempts: {:?}",
        defended.became_unavailable, defended.attacker_bus_offs, defended.first_episode_attempts
    );
    println!(
        "  status frames delivered: {}",
        defended.status_frames_received
    );
    println!("(paper: attack eradicated within 32 transmission attempts, ParkSense restored)");
}

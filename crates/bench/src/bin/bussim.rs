//! `bussim` — an ad-hoc scenario runner for the bit-level CAN simulator.
//!
//! ```text
//! bussim [--speed 50|125|250|500|1000] [--ms <capture-ms>]
//!        [--sender <id>:<period-ms>[:<dlc>]]...
//!        [--attack <id>]... [--toggle <id>,<id>]
//!        [--defend <own-id>[,<peer-id>...]]
//!        [--parrot <own-id>] [--ids] [--ber <rate>]
//!        [--timeline] [--candump] [--vcd]
//! ```
//!
//! Examples:
//!
//! ```text
//! # The paper's Experiment 4 in one line:
//! bussim --speed 50 --ms 500 --attack 0x064 --defend 0x173 --timeline
//!
//! # Healthy bus with three senders, candump output:
//! bussim --sender 0x0A4:10 --sender 0x260:50 --sender 0x3E6:200 --candump
//! ```

use std::env;
use std::process::ExitCode;

use can_attacks::{DosKind, SuspensionAttacker, TogglingAttacker};
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_ids::IdsMonitor;
use can_sim::{bus_off_episodes, ErrorRole, EventKind, FaultModel, Node, SimBuilder};
use can_trace::{write_log, LogEntry, Timeline, TimelineEvent};
use michican::prelude::*;
use parrot::ParrotDefender;

#[derive(Debug, Default)]
struct Scenario {
    speed: Option<BusSpeed>,
    capture_ms: f64,
    senders: Vec<(CanId, f64, u8)>,
    attacks: Vec<CanId>,
    toggle: Option<(CanId, CanId)>,
    defend: Option<Vec<CanId>>,
    parrot: Option<CanId>,
    ids: bool,
    ber: Option<f64>,
    timeline: bool,
    candump: bool,
    vcd: bool,
}

fn parse_id(token: &str) -> Result<CanId, String> {
    let raw = token.trim().trim_start_matches("0x");
    let value = u16::from_str_radix(raw, 16).map_err(|_| format!("bad identifier {token}"))?;
    CanId::new(value).map_err(|e| e.to_string())
}

fn parse_args() -> Result<Scenario, String> {
    let mut scenario = Scenario {
        capture_ms: 200.0,
        ..Scenario::default()
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--speed" => {
                scenario.speed = Some(match next("--speed")?.as_str() {
                    "50" => BusSpeed::K50,
                    "125" => BusSpeed::K125,
                    "250" => BusSpeed::K250,
                    "500" => BusSpeed::K500,
                    "1000" => BusSpeed::M1,
                    other => return Err(format!("unknown speed {other}")),
                });
            }
            "--ms" => {
                scenario.capture_ms = next("--ms")?
                    .parse()
                    .map_err(|_| "bad --ms value".to_string())?;
            }
            "--sender" => {
                let spec = next("--sender")?;
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() < 2 || parts.len() > 3 {
                    return Err(format!("--sender expects id:period-ms[:dlc], got {spec}"));
                }
                let id = parse_id(parts[0])?;
                let period: f64 = parts[1]
                    .parse()
                    .map_err(|_| format!("bad period in {spec}"))?;
                let dlc: u8 = if parts.len() == 3 {
                    parts[2].parse().map_err(|_| format!("bad dlc in {spec}"))?
                } else {
                    8
                };
                if dlc > 8 {
                    return Err("dlc must be 0-8".into());
                }
                scenario.senders.push((id, period, dlc));
            }
            "--attack" => scenario.attacks.push(parse_id(&next("--attack")?)?),
            "--toggle" => {
                let spec = next("--toggle")?;
                let (a, b) = spec
                    .split_once(',')
                    .ok_or(format!("--toggle expects id,id, got {spec}"))?;
                scenario.toggle = Some((parse_id(a)?, parse_id(b)?));
            }
            "--defend" => {
                let ids: Result<Vec<CanId>, String> =
                    next("--defend")?.split(',').map(parse_id).collect();
                scenario.defend = Some(ids?);
            }
            "--parrot" => scenario.parrot = Some(parse_id(&next("--parrot")?)?),
            "--ids" => scenario.ids = true,
            "--ber" => {
                scenario.ber = Some(
                    next("--ber")?
                        .parse()
                        .map_err(|_| "bad --ber value".to_string())?,
                );
            }
            "--timeline" => scenario.timeline = true,
            "--candump" => scenario.candump = true,
            "--vcd" => scenario.vcd = true,
            other => return Err(format!("unknown option {other} (see module docs)")),
        }
    }
    Ok(scenario)
}

fn run() -> Result<(), String> {
    let scenario = parse_args()?;
    let speed = scenario.speed.unwrap_or(BusSpeed::K500);
    let mut builder = SimBuilder::new(speed);
    let mut watched: Vec<(usize, String)> = Vec::new();

    for &(id, period_ms, dlc) in &scenario.senders {
        let payload = vec![0x5Au8; dlc as usize];
        let frame = CanFrame::data_frame(id, &payload).map_err(|e| e.to_string())?;
        watched.push((builder.node_id(), format!("{id}")));
        builder = builder.node(Node::new(
            format!("sender-{id}"),
            Box::new(PeriodicSender::new(
                frame,
                speed.bits_in_millis(period_ms).max(1),
                0,
            )),
        ));
    }

    for &id in &scenario.attacks {
        watched.push((builder.node_id(), format!("atk {id}")));
        builder = builder.node(Node::new(
            format!("attacker-{id}"),
            Box::new(SuspensionAttacker::new(
                DosKind::Targeted { id },
                speed.bits_in_millis(30.0).max(1),
            )),
        ));
    }
    if let Some((a, b)) = scenario.toggle {
        watched.push((builder.node_id(), format!("tgl {a}")));
        builder = builder.node(Node::new(
            "attacker-toggle",
            Box::new(TogglingAttacker::new(
                a,
                b,
                speed.bits_in_millis(10.0).max(1),
            )),
        ));
    }

    if let Some(ids) = &scenario.defend {
        let mut all = ids.clone();
        all.sort_unstable();
        let list = EcuList::new(all).map_err(|e| e.to_string())?;
        let own = ids[0];
        let index = list.index_of(own).expect("own id is in the list");
        builder = builder.node(
            Node::new(format!("michican-{own}"), Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, index)))),
        );
    }
    if let Some(own) = scenario.parrot {
        builder = builder.node(Node::new(
            format!("parrot-{own}"),
            Box::new(ParrotDefender::new(own, speed.bits_in_millis(100.0))),
        ));
    }
    if scenario.ids {
        builder = builder.node(Node::new("ids", Box::new(IdsMonitor::typical_500k())));
    }
    // An always-present listener keeps lone senders acknowledged.
    let monitor = builder.node_id();
    builder = builder.node(Node::new("monitor", Box::new(SilentApplication)));

    if let Some(ber) = scenario.ber {
        builder = builder.fault(FaultModel::random(ber, 0xB5));
    }
    if scenario.vcd {
        builder = builder.trace();
    }

    let mut sim = builder.build();
    sim.run_millis(scenario.capture_ms);

    // Report.
    println!(
        "capture: {:.1} ms at {} — {} nodes, {} events, bus load {:.1} %",
        scenario.capture_ms,
        speed,
        sim.node_count(),
        sim.events().len(),
        sim.observed_bus_load() * 100.0
    );
    let count = |f: &dyn Fn(&EventKind) -> bool| sim.events().iter().filter(|e| f(&e.kind)).count();
    println!(
        "  frames delivered: {}   errors: {}   bus-offs: {}   recoveries: {}",
        count(&|k| matches!(k, EventKind::FrameReceived { .. })) / sim.node_count().max(1),
        count(&|k| matches!(k, EventKind::ErrorDetected { .. })),
        count(&|k| matches!(k, EventKind::BusOff)),
        count(&|k| matches!(k, EventKind::Recovered)),
    );
    for &(node, ref label) in &watched {
        let episodes = bus_off_episodes(sim.events(), node);
        for ep in episodes {
            println!(
                "  {label}: bused off after {} attempts in {} bits ({:.2} ms)",
                ep.attempts,
                ep.duration().as_bits(),
                ep.duration().as_millis(speed)
            );
        }
    }

    if scenario.timeline {
        let events: Vec<TimelineEvent> = sim
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::TransmissionStarted { .. } => Some(TimelineEvent::TransmissionStarted {
                    node: e.node,
                    at: e.at,
                }),
                EventKind::TransmissionSucceeded { .. } => {
                    Some(TimelineEvent::TransmissionSucceeded {
                        node: e.node,
                        at: e.at,
                    })
                }
                EventKind::ErrorDetected {
                    role: ErrorRole::Transmitter,
                    ..
                } => Some(TimelineEvent::TransmitError {
                    node: e.node,
                    at: e.at,
                }),
                EventKind::BusOff => Some(TimelineEvent::BusOff {
                    node: e.node,
                    at: e.at,
                }),
                EventKind::Recovered => Some(TimelineEvent::Recovered {
                    node: e.node,
                    at: e.at,
                }),
                _ => None,
            })
            .collect();
        let nodes: Vec<usize> = watched.iter().map(|&(n, _)| n).collect();
        let labels: Vec<(usize, &str)> =
            watched.iter().map(|&(n, ref l)| (n, l.as_str())).collect();
        let timeline = Timeline::build(&events, &nodes, sim.now().bits());
        print!("{}", timeline.render_ascii(&labels, 100));
    }

    if scenario.vcd {
        if let Some(trace) = sim.trace() {
            let signal = can_trace::VcdSignal::new("CAN_RX", trace.levels().to_vec());
            print!("{}", can_trace::write_vcd(speed, &[signal]));
        }
    }

    if scenario.candump {
        let log: Vec<LogEntry> = sim
            .events()
            .iter()
            .filter(|e| e.node == monitor)
            .filter_map(|e| match &e.kind {
                EventKind::FrameReceived { frame } => {
                    Some(LogEntry::from_bits(e.at.bits(), speed, "vcan0", *frame))
                }
                _ => None,
            })
            .collect();
        print!("{}", write_log(&log));
    }

    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

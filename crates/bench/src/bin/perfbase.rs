//! Performance baseline: measures simulator throughput and the parallel
//! experiment engine's speedup, and writes the results as JSON.
//!
//! ```text
//! perfbase [--quick] [--shards <n> | -j <n>] [--out <path>]
//! ```
//!
//! * `--quick` shrinks every workload (CI smoke configuration);
//! * `--shards` sets the parallel worker count (default: all cores);
//! * `--out` sets the JSON path (default `BENCH_sim.json`).
//!
//! The JSON records single-thread vs parallel bits/sec on the
//! fault-campaign grid (with the speedup), raw simulator bits/sec with
//! event logging on and off, the metrics layer's hot-path cost with the
//! recorder disabled vs enabled (the disabled path must be within noise
//! of no recorder at all), lockstep vs idle fast-forward throughput at
//! 10/30/60 % busload (the 10 % row must clear a 3× speedup),
//! cells/sec for the campaign grid, and wall time per grid artifact. Numbers depend on the host; the *outputs* of
//! every measured workload stay byte-identical across shard counts (see
//! `bench::runner` — this binary asserts it for the campaign report *and*
//! for the merged metrics snapshot of the metered campaign).

use std::time::Instant;

use bench::campaign::{run_campaign, run_campaign_with, CampaignConfig};
use bench::detection::run_sweep_sharded;
use bench::runner::{parse_shards, ExecOpts};
use bench::scenarios::{restbus_matrix, run_multi_attacker_scan, run_table2};
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_obs::{Journal, Recorder};
use can_sim::{Node, SimBuilder};
use restbus::ReplayApp;

/// One timed run: returns (elapsed seconds, result).
fn timed<R>(work: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = work();
    (start.elapsed().as_secs_f64(), result)
}

/// Raw simulator throughput: Veh. D restbus replay plus a receiver,
/// stepped for `bits` bit times. Returns bits/sec.
fn sim_bits_per_sec(bits: u64, event_logging: bool) -> f64 {
    sim_bits_per_sec_with(bits, event_logging, None, None)
}

/// [`sim_bits_per_sec`] with an explicit recorder and/or journal attached
/// (when `Some`); used to quantify each observability layer's hot-path
/// cost in both states.
fn sim_bits_per_sec_with(
    bits: u64,
    event_logging: bool,
    recorder: Option<Recorder>,
    journal: Option<Journal>,
) -> f64 {
    let mut builder = SimBuilder::new(BusSpeed::K50).event_logging(event_logging);
    if let Some(recorder) = recorder {
        builder = builder.recorder(recorder);
    }
    if let Some(journal) = journal {
        builder = builder.journal(journal);
    }
    let mut sim = builder
        .node(Node::new(
            "restbus",
            Box::new(ReplayApp::for_matrix(&restbus_matrix())),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    let (secs, _) = timed(|| sim.run(bits));
    bits as f64 / secs
}

/// The kernel self-telemetry of one bus, run in all three engines: the
/// `kernel_telemetry` section of `BENCH_sim.json`. Bits/skips/stretches
/// are integer counters from the kernels themselves, so the section
/// doubles as a cheap engine-coverage check (the packed run must report
/// packed bits, the fast run skipped bits).
fn kernel_telemetry_section(bits: u64, target_load: f64) -> String {
    let speed = BusSpeed::K50;
    let frame = CanFrame::data_frame(CanId::from_raw(0x222), &[0xA5; 8]).expect("valid frame");
    let period = ((111.0 / target_load).round() as u64).max(130);
    let build = || {
        SimBuilder::new(speed)
            .node(Node::new(
                "tx",
                Box::new(PeriodicSender::new(frame, period, 40)),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .build()
    };
    let mut lockstep = build();
    lockstep.run(bits);
    let mut fast = build();
    fast.run_fast(bits);
    let mut packed = build();
    packed.run_packed(bits);
    format!(
        "{{\n    \"lockstep\": {},\n    \"fast_forward\": {},\n    \"packed\": {}\n  }}",
        lockstep.kernel_telemetry().to_json(),
        fast.kernel_telemetry().to_json(),
        packed.kernel_telemetry().to_json()
    )
}

/// One fast-forward speedup sample at an approximate target busload.
struct FastForwardSample {
    target_load: f64,
    observed_load: f64,
    lockstep_bits_per_sec: f64,
    fast_bits_per_sec: f64,
    speedup: f64,
}

/// Measures lockstep vs fast-forward wall clock on a periodic-sender bus
/// whose duty cycle approximates `target_load`. Both runs are verified to
/// land on the same clock and the same busy-bit count (the differential
/// tests prove the full byte-identity contract; this is the cheap guard).
fn fast_forward_sample(bits: u64, target_load: f64) -> FastForwardSample {
    let speed = BusSpeed::K50;
    let frame = CanFrame::data_frame(CanId::from_raw(0x222), &[0xA5; 8]).expect("valid frame");
    // An 8-byte data frame occupies ≈ 111 bus bits before stuffing; the
    // period sets the duty cycle.
    let period = ((111.0 / target_load).round() as u64).max(130);
    let build = || {
        SimBuilder::new(speed)
            .node(Node::new(
                "tx",
                Box::new(PeriodicSender::new(frame, period, 40)),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .build()
    };
    let mut lockstep = build();
    let (lock_secs, _) = timed(|| lockstep.run(bits));
    let mut fast = build();
    let (fast_secs, _) = timed(|| fast.run_fast(bits));
    assert_eq!(lockstep.now(), fast.now(), "fast-forward clock mismatch");
    assert_eq!(
        lockstep.busy_bits(),
        fast.busy_bits(),
        "fast-forward busy-bit mismatch"
    );
    FastForwardSample {
        target_load,
        observed_load: fast.observed_bus_load(),
        lockstep_bits_per_sec: bits as f64 / lock_secs,
        fast_bits_per_sec: bits as f64 / fast_secs,
        speedup: lock_secs / fast_secs,
    }
}

/// One packed-kernel speedup sample at an approximate target busload.
struct PackedSample {
    target_load: f64,
    observed_load: f64,
    lockstep_bits_per_sec: f64,
    packed_bits_per_sec: f64,
    speedup: f64,
}

/// Measures lockstep vs packed-kernel wall clock on the same
/// periodic-sender bus as [`fast_forward_sample`]. Unlike fast-forward,
/// the packed kernel keeps winning as busload rises: frame bodies resolve
/// word-at-a-time instead of bit-by-bit.
fn packed_sample(bits: u64, target_load: f64) -> PackedSample {
    let speed = BusSpeed::K50;
    let frame = CanFrame::data_frame(CanId::from_raw(0x222), &[0xA5; 8]).expect("valid frame");
    let period = ((111.0 / target_load).round() as u64).max(130);
    let build = || {
        SimBuilder::new(speed)
            .node(Node::new(
                "tx",
                Box::new(PeriodicSender::new(frame, period, 40)),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .build()
    };
    let mut lockstep = build();
    let (lock_secs, _) = timed(|| lockstep.run(bits));
    let mut packed = build();
    let (packed_secs, _) = timed(|| packed.run_packed(bits));
    assert_eq!(lockstep.now(), packed.now(), "packed clock mismatch");
    assert_eq!(
        lockstep.busy_bits(),
        packed.busy_bits(),
        "packed busy-bit mismatch"
    );
    PackedSample {
        target_load,
        observed_load: packed.observed_bus_load(),
        lockstep_bits_per_sec: bits as f64 / lock_secs,
        packed_bits_per_sec: bits as f64 / packed_secs,
        speedup: lock_secs / packed_secs,
    }
}

fn json_f(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut shards, args) = match parse_shards(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if shards == 1 {
        // Default to all cores: the point of the baseline is the speedup.
        shards = threads;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());

    eprintln!("perfbase: {threads} core(s) available, measuring with {shards} shard(s)");

    // 1. Raw per-bit hot path, logging on vs off.
    let sim_bits: u64 = if quick { 200_000 } else { 1_000_000 };
    let bps_on = sim_bits_per_sec(sim_bits, true);
    let bps_off = sim_bits_per_sec(sim_bits, false);
    eprintln!("  sim: {bps_on:.0} bits/s (events on), {bps_off:.0} bits/s (events off)");

    // 1b. Metrics-layer cost on the same hot path: an attached-but-
    // disabled recorder must be free (one untaken branch per site); the
    // enabled cost is reported for context.
    let bps_obs_disabled = sim_bits_per_sec_with(sim_bits, false, Some(Recorder::disabled()), None);
    let bps_obs_enabled = sim_bits_per_sec_with(sim_bits, false, Some(Recorder::enabled()), None);
    eprintln!(
        "  obs: {bps_obs_disabled:.0} bits/s (recorder disabled), \
         {bps_obs_enabled:.0} bits/s (recorder enabled)"
    );

    // 1c. Causal-journal cost on the same hot path, same contract as the
    // recorder: an attached-but-disabled journal must sit within the
    // obs-overhead noise budget of the no-journal baseline.
    let bps_jrn_disabled = sim_bits_per_sec_with(sim_bits, false, None, Some(Journal::disabled()));
    let bps_jrn_enabled = sim_bits_per_sec_with(sim_bits, false, None, Some(Journal::enabled()));
    eprintln!(
        "  journal: {bps_jrn_disabled:.0} bits/s (disabled), \
         {bps_jrn_enabled:.0} bits/s (enabled)"
    );

    // 2. Campaign grid, serial vs parallel. 16 cells at 500 kbit/s.
    let run_ms = if quick { 60.0 } else { 150.0 };
    let serial_config = CampaignConfig {
        run_ms,
        shards: 1,
        ..CampaignConfig::default()
    };
    let parallel_config = CampaignConfig {
        shards,
        ..serial_config
    };
    let (serial_secs, serial_report) = timed(|| run_campaign(&serial_config));
    let (parallel_secs, parallel_report) = timed(|| run_campaign(&parallel_config));
    assert_eq!(
        serial_report.render(),
        parallel_report.render(),
        "determinism contract: parallel campaign must be byte-identical to serial"
    );

    // The metered campaign inherits the contract: merged per-cell metric
    // registries must yield the same snapshot for every shard count.
    let serial_recorder = Recorder::enabled();
    run_campaign_with(
        &serial_config,
        &ExecOpts::new().with_recorder(serial_recorder.clone()),
    );
    let parallel_recorder = Recorder::enabled();
    run_campaign_with(
        &parallel_config,
        &ExecOpts::new().with_recorder(parallel_recorder.clone()),
    );
    assert_eq!(
        serial_recorder.snapshot_json(),
        parallel_recorder.snapshot_json(),
        "determinism contract: merged metrics snapshot must be byte-identical to serial"
    );
    eprintln!("  obs: metered campaign snapshot byte-identical across shard counts");
    let cells = serial_report.cells.len();
    let grid_bits = cells as f64 * BusSpeed::K500.bits_in_millis(run_ms) as f64;
    let speedup = serial_secs / parallel_secs;
    eprintln!(
        "  campaign: {cells} cells, serial {serial_secs:.2}s, parallel {parallel_secs:.2}s \
         ({speedup:.2}x with {shards} shards)"
    );

    // 2b. Idle fast-forward: lockstep vs quiescent skip-ahead at three
    // busloads. The speedup is the inverse of the duty cycle minus the
    // closed-form skip bookkeeping; at 10 % load it must clear 3×.
    let ff_bits: u64 = if quick { 400_000 } else { 2_000_000 };
    let ff_samples: Vec<FastForwardSample> = [0.10, 0.30, 0.60]
        .iter()
        .map(|&load| fast_forward_sample(ff_bits, load))
        .collect();
    for s in &ff_samples {
        eprintln!(
            "  fast_forward: target {:.0}% (observed {:.1}%): lockstep {:.0} bits/s, \
             fast {:.0} bits/s ({:.1}x)",
            s.target_load * 100.0,
            s.observed_load * 100.0,
            s.lockstep_bits_per_sec,
            s.fast_bits_per_sec,
            s.speedup
        );
    }
    assert!(
        ff_samples[0].speedup >= 3.0,
        "fast-forward must clear 3x at 10% busload, measured {:.2}x",
        ff_samples[0].speedup
    );

    // 2c. Packed bus kernel: lockstep vs word-at-a-time wired-AND on an
    // *active* bus. Sampled at higher busloads than the fast-forward rows
    // because this is where idle skipping stops helping and the packed
    // frame-body resolution has to carry the speedup by itself.
    let packed_samples: Vec<PackedSample> = [0.30, 0.60, 0.90]
        .iter()
        .map(|&load| packed_sample(ff_bits, load))
        .collect();
    for s in &packed_samples {
        eprintln!(
            "  packed: target {:.0}% (observed {:.1}%): lockstep {:.0} bits/s, \
             packed {:.0} bits/s ({:.1}x)",
            s.target_load * 100.0,
            s.observed_load * 100.0,
            s.lockstep_bits_per_sec,
            s.packed_bits_per_sec,
            s.speedup
        );
    }
    assert!(
        packed_samples[0].speedup >= 5.0,
        "the packed kernel must clear 5x at 30% busload, measured {:.2}x",
        packed_samples[0].speedup
    );

    // 3. Wall time per grid artifact (at the parallel shard count).
    let (faults_secs, _) = timed(|| run_campaign(&parallel_config));
    let fsms = if quick { 400 } else { 4_000 };
    let (detection_secs, _) = timed(|| run_sweep_sharded(fsms, 0xD5_2025, shards));
    let capture_ms = if quick { 500.0 } else { 2_000.0 };
    let (table2_secs, _) = timed(|| run_table2(capture_ms, shards));
    let counts = [1usize, 2, 3, 4, 5];
    let horizon = if quick { 20_000 } else { 60_000 };
    let (multi_secs, _) = timed(|| run_multi_attacker_scan(&counts, horizon, shards));
    eprintln!(
        "  artifacts: faults {faults_secs:.2}s, detection {detection_secs:.2}s, \
         table2 {table2_secs:.2}s, multi_attacker {multi_secs:.2}s"
    );

    // 4. Kernel self-telemetry of one 30 %-load bus under all three
    // engines (pure integer counters — host-independent).
    let telemetry_bits: u64 = if quick { 200_000 } else { 1_000_000 };
    let kernel_telemetry = kernel_telemetry_section(telemetry_bits, 0.30);

    let packed_rows: String = packed_samples
        .iter()
        .map(|s| {
            format!(
                r#"      {{
        "target_load": {target},
        "observed_load": {observed},
        "lockstep_bits_per_sec": {lock},
        "packed_bits_per_sec": {packed},
        "speedup": {speedup}
      }}"#,
                target = json_f(s.target_load),
                observed = json_f(s.observed_load),
                lock = json_f(s.lockstep_bits_per_sec),
                packed = json_f(s.packed_bits_per_sec),
                speedup = json_f(s.speedup),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let ff_rows: String = ff_samples
        .iter()
        .map(|s| {
            format!(
                r#"      {{
        "target_load": {target},
        "observed_load": {observed},
        "lockstep_bits_per_sec": {lock},
        "fast_bits_per_sec": {fast},
        "speedup": {speedup}
      }}"#,
                target = json_f(s.target_load),
                observed = json_f(s.observed_load),
                lock = json_f(s.lockstep_bits_per_sec),
                fast = json_f(s.fast_bits_per_sec),
                speedup = json_f(s.speedup),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        r#"{{
  "schema": "michican-perfbase/v1",
  "quick": {quick},
  "threads_available": {threads},
  "shards": {shards},
  "sim": {{
    "bits_simulated": {sim_bits},
    "bits_per_sec_events_on": {bps_on},
    "bits_per_sec_events_off": {bps_off}
  }},
  "obs": {{
    "bits_per_sec_recorder_disabled": {bps_obs_disabled},
    "bits_per_sec_recorder_enabled": {bps_obs_enabled},
    "bits_per_sec_journal_disabled": {bps_jrn_disabled},
    "bits_per_sec_journal_enabled": {bps_jrn_enabled},
    "metered_snapshot_deterministic": true
  }},
  "kernel_telemetry": {kernel_telemetry},
  "fast_forward": {{
    "bits_simulated": {ff_bits},
    "loads": [
{ff_rows}
    ]
  }},
  "packed": {{
    "bits_simulated": {ff_bits},
    "loads": [
{packed_rows}
    ]
  }},
  "campaign_grid": {{
    "cells": {cells},
    "shards": {shards},
    "run_ms_per_cell": {run_ms},
    "bits_total": {grid_bits},
    "serial_wall_secs": {serial_secs},
    "parallel_wall_secs": {parallel_secs},
    "serial_bits_per_sec": {serial_bps},
    "parallel_bits_per_sec": {parallel_bps},
    "serial_cells_per_sec": {serial_cps},
    "parallel_cells_per_sec": {parallel_cps},
    "speedup": {speedup}
  }},
  "artifact_wall_secs": {{
    "faults": {faults_secs},
    "detection": {detection_secs},
    "table2": {table2_secs},
    "multi_attacker": {multi_secs}
  }}
}}
"#,
        bps_on = json_f(bps_on),
        bps_off = json_f(bps_off),
        bps_obs_disabled = json_f(bps_obs_disabled),
        bps_obs_enabled = json_f(bps_obs_enabled),
        bps_jrn_disabled = json_f(bps_jrn_disabled),
        bps_jrn_enabled = json_f(bps_jrn_enabled),
        grid_bits = json_f(grid_bits),
        serial_secs = json_f(serial_secs),
        parallel_secs = json_f(parallel_secs),
        serial_bps = json_f(grid_bits / serial_secs),
        parallel_bps = json_f(grid_bits / parallel_secs),
        serial_cps = json_f(cells as f64 / serial_secs),
        parallel_cps = json_f(cells as f64 / parallel_secs),
        speedup = json_f(speedup),
        faults_secs = json_f(faults_secs),
        detection_secs = json_f(detection_secs),
        table2_secs = json_f(table2_secs),
        multi_secs = json_f(multi_secs),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("perfbase: wrote {out_path}");
}

//! Detection-latency sweep (paper §V-B).
//!
//! "Our evaluation with 160,000 random FSMs yielded a mean detection bit
//! position of 9 bits. Furthermore, the evaluation confirmed a 100 %
//! detection rate." This module reruns exactly that: random ECU lists,
//! the FSM of the highest-priority-list member, and exhaustive
//! verification of the detection range.

use can_core::CanId;
use can_obs::Recorder;
use michican::detect::detection_range;
use michican::fsm::DetectionFsm;
use michican::EcuList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::runner::{ExecOpts, ExperimentPlan};

/// Aggregate result of the random-FSM sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionSweep {
    /// Number of FSMs evaluated.
    pub fsm_count: usize,
    /// Mean detection bit position over all (FSM, malicious id) pairs.
    pub mean_detection_position: f64,
    /// Fraction of malicious identifiers correctly flagged (must be 1.0).
    pub detection_rate: f64,
    /// Fraction of benign identifiers incorrectly flagged (must be 0.0).
    pub false_positive_rate: f64,
    /// Mean FSM state count (firmware footprint).
    pub mean_nodes: f64,
}

/// Generates a random ECU list of `n` identifiers.
fn random_list(rng: &mut StdRng, n: usize) -> EcuList {
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < n {
        ids.insert(rng.random_range(0..=CanId::MAX_RAW));
    }
    EcuList::new(ids.into_iter().map(CanId::from_raw).collect()).expect("unique ids")
}

/// Integer tallies of one FSM cell — everything the sweep summary needs,
/// in exactly-summable form (no floats until the final reduction, so the
/// summary is bit-identical for any execution order).
#[derive(Debug, Clone, Copy, Default)]
struct FsmCellTally {
    position_sum: u64,
    malicious_total: u64,
    detected: u64,
    benign_total: u64,
    false_positives: u64,
    nodes: u64,
}

/// Evaluates one random FSM: builds a random list seeded by the cell seed,
/// the FSM of a random member, and verifies detection exhaustively over
/// the 2048-identifier space.
fn sweep_cell(seed: u64, n_min: usize, n_max: usize, recorder: &Recorder) -> FsmCellTally {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(n_min..=n_max);
    let list = random_list(&mut rng, n);
    let index = rng.random_range(0..list.len());
    let set = detection_range(&list, index);
    let fsm = DetectionFsm::from_set(&set);

    let mut tally = FsmCellTally {
        nodes: fsm.node_count() as u64,
        ..FsmCellTally::default()
    };
    let obs = recorder.is_enabled();
    if obs {
        recorder.inc("sweep_fsms_total");
        recorder.observe("sweep_fsm_nodes", tally.nodes);
    }
    for id in CanId::all() {
        let truth = set.contains(id);
        let verdict = fsm.classify(id);
        if truth {
            tally.malicious_total += 1;
            if verdict {
                tally.detected += 1;
                let position = fsm.decision_position(id) as u64;
                tally.position_sum += position;
                if obs {
                    recorder.observe("sweep_detection_position_bits", position);
                }
            }
        } else {
            tally.benign_total += 1;
            if verdict {
                tally.false_positives += 1;
            }
        }
    }
    if obs {
        recorder.add("sweep_malicious_ids_total", tally.malicious_total);
        recorder.add("sweep_detected_ids_total", tally.detected);
        recorder.add("sweep_benign_ids_total", tally.benign_total);
        recorder.add("sweep_false_positives_total", tally.false_positives);
    }
    tally
}

/// Runs the sweep over `fsm_count` random FSMs with IVN sizes drawn
/// uniformly from `[n_min, n_max]`, fanned out on `shards` workers.
///
/// For each random list the FSM of a random member is built; detection
/// correctness is verified exhaustively over the 2048-identifier space and
/// the decision position is accumulated over the malicious identifiers.
/// Every FSM is an independent cell whose RNG is seeded from the master
/// seed by cell index, so the summary is identical for every shard count.
///
/// The mean detection position grows with the IVN size (the paper's "as
/// the size of IVN 𝔼 grows, the detection bit position rises"): ≈ 4.7
/// bits at N = 10, ≈ 7.7 at N = 100, ≈ 9 at N ≈ 300 — the regime matching
/// the paper's reported mean of 9.
pub fn run_sweep_with_sizes_sharded(
    fsm_count: usize,
    seed: u64,
    n_min: usize,
    n_max: usize,
    shards: usize,
) -> DetectionSweep {
    run_sweep_with_sizes_with(
        fsm_count,
        seed,
        n_min,
        n_max,
        &ExecOpts::default().with_shards(shards),
    )
}

/// [`run_sweep_with_sizes_sharded`] under explicit execution options:
/// per-cell registries (FSM/id tallies and the decision-position
/// histogram) are merged into `opts.recorder` in cell index order, so the
/// merged snapshot is byte-identical for every shard count. (The sweep is
/// pure FSM verification — no simulator is involved, so `opts.mode` has
/// no effect here.)
pub fn run_sweep_with_sizes_with(
    fsm_count: usize,
    seed: u64,
    n_min: usize,
    n_max: usize,
    opts: &ExecOpts,
) -> DetectionSweep {
    assert!(n_min >= 1 && n_min <= n_max && n_max <= 1024);
    let tallies = ExperimentPlan::new(vec![(); fsm_count], seed)
        .with_shards(opts.shards.max(1))
        .run_metered(&opts.recorder, |_index, cell_seed, (), cell_recorder| {
            sweep_cell(cell_seed, n_min, n_max, cell_recorder)
        });

    let mut total = FsmCellTally::default();
    for t in &tallies {
        total.position_sum += t.position_sum;
        total.malicious_total += t.malicious_total;
        total.detected += t.detected;
        total.benign_total += t.benign_total;
        total.false_positives += t.false_positives;
        total.nodes += t.nodes;
    }

    DetectionSweep {
        fsm_count,
        mean_detection_position: if total.detected == 0 {
            0.0
        } else {
            total.position_sum as f64 / total.detected as f64
        },
        detection_rate: if total.malicious_total == 0 {
            1.0
        } else {
            total.detected as f64 / total.malicious_total as f64
        },
        false_positive_rate: if total.benign_total == 0 {
            0.0
        } else {
            total.false_positives as f64 / total.benign_total as f64
        },
        mean_nodes: total.nodes as f64 / fsm_count.max(1) as f64,
    }
}

/// Serial-path wrapper of [`run_sweep_with_sizes_sharded`] (`shards == 1`).
pub fn run_sweep_with_sizes(
    fsm_count: usize,
    seed: u64,
    n_min: usize,
    n_max: usize,
) -> DetectionSweep {
    run_sweep_with_sizes_sharded(fsm_count, seed, n_min, n_max, 1)
}

/// The default sweep: IVN sizes in the large-vehicle regime (N 150–450)
/// where the paper's mean detection position of ≈ 9 bits is reproduced.
pub fn run_sweep(fsm_count: usize, seed: u64) -> DetectionSweep {
    run_sweep_sharded(fsm_count, seed, 1)
}

/// [`run_sweep`] on `shards` workers; the summary is identical for every
/// shard count.
pub fn run_sweep_sharded(fsm_count: usize, seed: u64, shards: usize) -> DetectionSweep {
    run_sweep_with_sizes_sharded(fsm_count, seed, 150, 450, shards)
}

/// [`run_sweep`] under explicit execution options (default IVN sizes).
pub fn run_sweep_with(fsm_count: usize, seed: u64, opts: &ExecOpts) -> DetectionSweep {
    run_sweep_with_sizes_with(fsm_count, seed, 150, 450, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_perfect_and_early() {
        let sweep = run_sweep(200, 7);
        assert_eq!(sweep.detection_rate, 1.0, "paper: 100 % detection");
        assert_eq!(sweep.false_positive_rate, 0.0);
        // Paper: mean detection bit position of ≈ 9 bits.
        assert!(
            (8.0..=10.0).contains(&sweep.mean_detection_position),
            "mean position {}",
            sweep.mean_detection_position
        );
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        assert_eq!(run_sweep(50, 42), run_sweep(50, 42));
        assert_ne!(run_sweep(50, 42), run_sweep(50, 43));
    }

    #[test]
    fn fsms_stay_compact() {
        let sweep = run_sweep(100, 1);
        assert!(
            sweep.mean_nodes < 512.0,
            "hash-consed FSMs are small: {}",
            sweep.mean_nodes
        );
    }
}

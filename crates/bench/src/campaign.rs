//! Fault-injection campaign: a seeded scenario × fault grid over the
//! full simulated vehicle bus.
//!
//! The paper evaluates MichiCAN on a clean breadboard bus; this module
//! asks what happens when the substrate misbehaves. Each campaign cell
//! runs the Veh. D restbus (with or without a saturating DoS attacker and
//! always with a supervised MichiCAN dongle) under one fault regime:
//! iid or bursty channel bit errors, a stuck-dominant / babbling /
//! crash-restarting transmitter, or sampling faults on the defender's own
//! pin. Every cell is seeded, so the same seed produces a byte-identical
//! report — the campaign is a regression artifact, not a statistical
//! estimate.
//!
//! Three invariants are checked on the cells at or below the documented
//! sporadic-fault threshold ([`SPORADIC_BER_THRESHOLD`]):
//!
//! 1. **no benign bus-off** — sporadic channel faults never walk a benign
//!    transmitter to bus-off (the +8/−1 TEC ladder needs a sustained
//!    error rate, cf. §IV-E's robustness argument);
//! 2. **eradication still succeeds** — the defender buses the attacker
//!    off despite sporadic faults;
//! 3. **the defender stays silent on benign traffic** — zero
//!    counterattacks in attack-free cells.
//!
//! Cells above the threshold are reported but not asserted: they document
//! where the defense degrades (and show the health watchdog withdrawing
//! prevention rather than flailing).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::agent::BitAgent;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BitInstant, BusSpeed, CanFrame, CanId, Level};
use can_sim::{
    BurstParams, EventKind, FaultModel, FaultyAgent, Node, PinFaultConfig, SimBuilder, TxFault,
};
use michican::prelude::*;
use restbus::{vehicle_matrix, CommMatrix, Message, Vehicle};

use crate::runner::{derive_seed, ExecOpts, ExperimentPlan};

/// Documented sporadic-fault threshold: iid channel BERs at or below this
/// rate must not disturb benign delivery or eradication (invariants 1–3).
pub const SPORADIC_BER_THRESHOLD: f64 = 1e-5;

/// The identifier the DoS attacker floods (kept out of the restbus).
pub const ATTACK_ID_RAW: u16 = 0x041;

/// Traffic on the bus during a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traffic {
    /// Restbus only — the defender must stay silent.
    Benign,
    /// Restbus plus a saturating targeted DoS attacker.
    Attack,
}

impl Traffic {
    fn name(self) -> &'static str {
        match self {
            Traffic::Benign => "benign",
            Traffic::Attack => "attack",
        }
    }
}

/// One fault regime of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// No faults (the control cell).
    Clean,
    /// Iid channel bit errors at the given BER.
    BitErrors {
        /// Per-bit flip probability on the wired-AND bus.
        ber: f64,
    },
    /// Gilbert–Elliott bursty channel errors.
    Burst(BurstParams),
    /// A benign transmitter whose driver sticks dominant for a window
    /// (fractions of the run).
    StuckDominantTx,
    /// A benign transmitter babbling random dominant bits for a window.
    BabblingTx,
    /// A benign transmitter that crashes mid-run and restarts later.
    CrashRestartTx,
    /// Sampling faults on the defender's own pin (jitter, missed bit
    /// interrupts, delayed SOF hard-sync).
    DefenderPin(PinFaultConfig),
}

impl FaultSpec {
    /// Stable cell label (used in the report and in invariant messages).
    pub fn name(&self) -> String {
        match self {
            FaultSpec::Clean => "clean".into(),
            FaultSpec::BitErrors { ber } => format!("iid ber={ber:.0e}"),
            FaultSpec::Burst(p) => format!("burst mean={:.0e}", p.mean_ber()),
            FaultSpec::StuckDominantTx => "stuck-dominant tx".into(),
            FaultSpec::BabblingTx => "babbling tx".into(),
            FaultSpec::CrashRestartTx => "crash-restart tx".into(),
            FaultSpec::DefenderPin(_) => "defender pin".into(),
        }
    }

    /// Whether the invariants apply to this cell: the fault regime is at
    /// or below the documented sporadic threshold (or does not corrupt
    /// bus levels at all).
    pub fn below_threshold(&self) -> bool {
        match self {
            FaultSpec::Clean | FaultSpec::CrashRestartTx => true,
            FaultSpec::BitErrors { ber } => *ber <= SPORADIC_BER_THRESHOLD,
            FaultSpec::Burst(p) => p.mean_ber() <= SPORADIC_BER_THRESHOLD,
            // A jammed or babbling medium is a gross fault by definition.
            FaultSpec::StuckDominantTx | FaultSpec::BabblingTx => false,
            FaultSpec::DefenderPin(c) => {
                c.sample_flip_prob <= SPORADIC_BER_THRESHOLD
                    && c.missed_bit_prob <= SPORADIC_BER_THRESHOLD
            }
        }
    }
}

/// The default fault grid: one control cell, channel faults straddling
/// the threshold, the three transmitter faults, and defender pin faults.
pub fn default_grid() -> Vec<FaultSpec> {
    vec![
        FaultSpec::Clean,
        FaultSpec::BitErrors {
            ber: SPORADIC_BER_THRESHOLD,
        },
        FaultSpec::BitErrors { ber: 1e-3 },
        FaultSpec::Burst(BurstParams {
            p_good_to_bad: 2e-4,
            p_bad_to_good: 0.1,
            ber_good: 0.0,
            ber_bad: 0.25,
        }),
        FaultSpec::StuckDominantTx,
        FaultSpec::BabblingTx,
        FaultSpec::CrashRestartTx,
        FaultSpec::DefenderPin(PinFaultConfig {
            sample_flip_prob: SPORADIC_BER_THRESHOLD,
            missed_bit_prob: SPORADIC_BER_THRESHOLD,
            sof_delay_prob: 0.0,
            sof_delay_bits: 0,
        }),
    ]
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every cell derives its own sub-seeds from it.
    pub seed: u64,
    /// Simulated wall time per cell, in milliseconds at 500 kbit/s.
    pub run_ms: f64,
    /// Worker count for the grid (1 = serial reference path). The report
    /// is byte-identical for every value — cells are seeded by grid index
    /// and reduced in grid order (see [`crate::runner`]).
    pub shards: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x00D5_2025,
            run_ms: 200.0,
            shards: 1,
        }
    }
}

/// Measured outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Traffic regime of the cell.
    pub traffic: Traffic,
    /// Fault regime of the cell.
    pub fault: FaultSpec,
    /// Benign frames delivered to the monitor node.
    pub benign_delivered: u64,
    /// Attack frames delivered to the monitor node.
    pub attack_delivered: u64,
    /// Times the attacker was forced to bus-off.
    pub eradications: u64,
    /// Bus-off events on benign nodes (restbus, monitor, flaky sender).
    pub benign_bus_offs: u64,
    /// Frames the defender flagged as attacks.
    pub attacks_detected: u64,
    /// Counterattacks the defender launched.
    pub counterattacks: u64,
    /// Times the health watchdog fell back to detect-only.
    pub degradations: u64,
    /// Times the watchdog re-armed prevention.
    pub rearms: u64,
    /// Whether prevention was armed when the run ended.
    pub armed_at_end: bool,
    /// Observed bus load over the run.
    pub bus_load: f64,
}

impl CellOutcome {
    /// Stable cell label (`traffic/fault`).
    pub fn label(&self) -> String {
        format!("{}/{}", self.traffic.name(), self.fault.name())
    }
}

/// One invariant broken by a below-threshold cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Label of the offending cell.
    pub cell: String,
    /// Which invariant broke.
    pub invariant: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

/// The full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Master seed the campaign ran with.
    pub seed: u64,
    /// Per-cell simulated time, milliseconds.
    pub run_ms: f64,
    /// Every cell outcome, in grid order.
    pub cells: Vec<CellOutcome>,
    /// Invariant violations among below-threshold cells (empty = pass).
    pub violations: Vec<InvariantViolation>,
}

impl CampaignReport {
    /// Renders the deterministic text report (same seed → identical
    /// bytes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "seed 0x{:08X}, {} ms per cell, {} cells ({} below threshold ber<={:.0e})",
            self.seed,
            self.run_ms,
            self.cells.len(),
            self.cells
                .iter()
                .filter(|c| c.fault.below_threshold())
                .count(),
            SPORADIC_BER_THRESHOLD,
        );
        let _ = writeln!(
            out,
            "{:<8} {:<18} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>6} {:>6}",
            "traffic",
            "fault",
            "thr",
            "benign",
            "attack",
            "erad",
            "b-off",
            "det",
            "cntr",
            "deg",
            "armed",
            "load"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<8} {:<18} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>6} {:>5.1}%",
                c.traffic.name(),
                c.fault.name(),
                if c.fault.below_threshold() { "<=" } else { ">" },
                c.benign_delivered,
                c.attack_delivered,
                c.eradications,
                c.benign_bus_offs,
                c.attacks_detected,
                c.counterattacks,
                c.degradations,
                if c.armed_at_end { "yes" } else { "no" },
                c.bus_load * 100.0,
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "invariants: OK (all below-threshold cells clean)");
        } else {
            let _ = writeln!(out, "invariants: {} VIOLATION(S)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  {} — {}: {}", v.cell, v.invariant, v.detail);
            }
        }
        out
    }
}

/// A clonable handle to the supervised defender, so the campaign can read
/// its statistics after the simulator consumed the agent.
#[derive(Clone)]
struct SharedDefender(Rc<RefCell<SupervisedMichiCan>>);

impl BitAgent for SharedDefender {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        self.0.borrow_mut().on_bit(level, now);
    }

    fn tx_level(&self) -> Option<Level> {
        self.0.borrow().tx_level()
    }

    fn set_own_transmission(&mut self, transmitting: bool) {
        self.0.borrow_mut().set_own_transmission(transmitting);
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        self.0.borrow().next_activity(now)
    }

    fn skip_idle(&mut self, bits: u64, from: BitInstant) {
        self.0.borrow_mut().skip_idle(bits, from);
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        self.0.borrow().drive_horizon(now)
    }
}

/// A campaign cell whose scenario could not be constructed.
///
/// Construction failures are pure functions of the cell's parameters (a
/// malformed matrix, an invalid frame, duplicate identifiers) — rerunning
/// the same cell deterministically fails the same way, so a sweep
/// supervisor must classify them as **fatal** (quarantine immediately)
/// rather than retryable, in contrast to panics and timeouts which get a
/// bounded retry. [`CellBuildError::is_retryable`] encodes that contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellBuildError {
    /// Which construction stage failed (`matrix`, `frame`, `ecu-list`).
    pub stage: &'static str,
    /// Human-readable cause.
    pub detail: String,
}

impl CellBuildError {
    fn new(stage: &'static str, detail: impl std::fmt::Display) -> Self {
        CellBuildError {
            stage,
            detail: detail.to_string(),
        }
    }

    /// Whether a supervisor should retry the cell. Always `false`:
    /// scenario construction is deterministic, so a failed build never
    /// heals on retry — only panics and timeouts are worth retrying.
    pub fn is_retryable(&self) -> bool {
        false
    }
}

impl std::fmt::Display for CellBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell construction failed at {}: {}",
            self.stage, self.detail
        )
    }
}

impl std::error::Error for CellBuildError {}

/// Runs one cell of the campaign.
///
/// # Panics
///
/// Panics if the cell scenario cannot be constructed; supervised callers
/// (the sweep engine) use [`try_run_cell_with`] instead and classify the
/// error.
pub fn run_cell(traffic: Traffic, fault: FaultSpec, seed: u64, run_ms: f64) -> CellOutcome {
    run_cell_with(traffic, fault, seed, run_ms, &ExecOpts::default())
}

/// [`run_cell`] under explicit execution options; panics on construction
/// errors (see [`try_run_cell_with`] for the fallible form).
pub fn run_cell_with(
    traffic: Traffic,
    fault: FaultSpec,
    seed: u64,
    run_ms: f64,
    opts: &ExecOpts,
) -> CellOutcome {
    match try_run_cell_with(traffic, fault, seed, run_ms, opts) {
        Ok(outcome) => outcome,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`run_cell_with`]: scenario-construction failures come
/// back as [`CellBuildError`] instead of panicking, so a sweep supervisor
/// can classify them (fatal, never retried) separately from panics and
/// timeouts (retryable). The recorder is attached to the simulator and the
/// supervised defender; the defender's metrics are labelled with its node
/// index on the cell's bus, matching the simulator's `can_*` series.
pub fn try_run_cell_with(
    traffic: Traffic,
    fault: FaultSpec,
    seed: u64,
    run_ms: f64,
    opts: &ExecOpts,
) -> Result<CellOutcome, CellBuildError> {
    let recorder = &opts.recorder;
    let speed = BusSpeed::K500;
    let run_bits = speed.bits_in_millis(run_ms);

    // Veh. D restbus minus the attack id; the highest id goes to a
    // dedicated "flaky" node so transmitter faults have a victim that is
    // a real matrix participant.
    let full = vehicle_matrix(Vehicle::D, 0, speed);
    let mut messages: Vec<Message> = full
        .messages()
        .iter()
        .filter(|m| m.id.raw() != ATTACK_ID_RAW)
        .cloned()
        .collect();
    let flaky_index = messages
        .iter()
        .enumerate()
        .max_by_key(|(_, m)| m.id.raw())
        .map(|(i, _)| i)
        .ok_or_else(|| CellBuildError::new("matrix", "restbus matrix is empty"))?;
    let flaky_msg = messages.remove(flaky_index);
    let matrix = CommMatrix::new("veh-d-campaign", speed, messages);

    let mut builder = SimBuilder::new(speed)
        .recorder(recorder.clone())
        .journal(opts.journal.clone())
        .node(Node::new(
            "restbus",
            Box::new(restbus::ReplayApp::for_matrix(&matrix)),
        ));
    let monitor = builder.node_id();
    builder = builder.node(Node::new("monitor", Box::new(SilentApplication)));

    // The flaky node periodically sends the message carved out above.
    let flaky_frame = CanFrame::data_frame(flaky_msg.id, &vec![0x5A; flaky_msg.dlc as usize])
        .map_err(|e| CellBuildError::new("frame", e))?;
    let flaky_period = speed.bits_in_millis(flaky_msg.period_ms as f64);
    let mut flaky_node = Node::new(
        "flaky",
        Box::new(PeriodicSender::new(flaky_frame, flaky_period.max(1), 40)),
    );
    match fault {
        FaultSpec::StuckDominantTx => {
            flaky_node = flaky_node.with_tx_fault(TxFault::stuck_dominant(
                run_bits * 3 / 10,
                run_bits * 7 / 20,
            ));
        }
        FaultSpec::BabblingTx => {
            flaky_node = flaky_node.with_tx_fault(TxFault::babbling(
                run_bits * 3 / 10,
                run_bits * 2 / 5,
                0.3,
                derive_seed(seed, 101),
            ));
        }
        FaultSpec::CrashRestartTx => {
            flaky_node =
                flaky_node.with_tx_fault(TxFault::crash_restart(run_bits / 4, run_bits / 2));
        }
        _ => {}
    }
    let flaky = builder.node_id();
    builder = builder.node(flaky_node);

    // Channel faults on the wired-AND medium.
    match fault {
        FaultSpec::BitErrors { ber } => {
            builder = builder.fault(FaultModel::random(ber, derive_seed(seed, 102)));
        }
        FaultSpec::Burst(params) => {
            builder = builder.fault(FaultModel::bursty(params, derive_seed(seed, 103)));
        }
        _ => {}
    }

    // The supervised MichiCAN dongle (monitor mode: it owns no id).
    let mut ids = matrix.ids();
    ids.push(flaky_msg.id);
    let list = EcuList::new(ids).map_err(|e| CellBuildError::new("ecu-list", e))?;
    let defender = SharedDefender(Rc::new(RefCell::new(SupervisedMichiCan::new(
        MichiCan::new(DetectionFsm::for_monitor(&list)),
        HealthConfig::default(),
        SyncConfig::typical(speed),
    ))));
    let agent: Box<dyn BitAgent> = match fault {
        FaultSpec::DefenderPin(config) => Box::new(FaultyAgent::new(
            defender.clone(),
            config,
            derive_seed(seed, 104),
        )),
        _ => Box::new(defender.clone()),
    };
    let defender_node = builder.node_id();
    builder = builder.node(Node::new("michican", Box::new(SilentApplication)).with_agent(agent));
    defender
        .0
        .borrow_mut()
        .set_recorder(recorder.clone(), defender_node as u32);
    defender
        .0
        .borrow_mut()
        .set_journal(opts.journal.clone(), defender_node as u32);

    let attacker = match traffic {
        Traffic::Attack => {
            let id = builder.node_id();
            builder = builder.node(Node::new(
                "attacker",
                Box::new(
                    SuspensionAttacker::saturating(DosKind::Targeted {
                        id: CanId::from_raw(ATTACK_ID_RAW),
                    })
                    .with_payload(&[0xFF; 8]),
                ),
            ));
            Some(id)
        }
        Traffic::Benign => None,
    };

    let mut sim = builder.build();
    opts.run(&mut sim, run_bits);

    let mut benign_delivered = 0u64;
    let mut attack_delivered = 0u64;
    let mut benign_bus_offs = 0u64;
    let mut eradications = 0u64;
    for e in sim.events() {
        match &e.kind {
            EventKind::FrameReceived { frame } if e.node == monitor => {
                if frame.id().raw() == ATTACK_ID_RAW {
                    attack_delivered += 1;
                } else {
                    benign_delivered += 1;
                }
            }
            EventKind::BusOff => {
                if Some(e.node) == attacker {
                    eradications += 1;
                } else if e.node != flaky || fault == FaultSpec::CrashRestartTx {
                    // The flaky node's own bus-off under its own stuck /
                    // babbling driver is the fault, not collateral.
                    benign_bus_offs += 1;
                }
            }
            _ => {}
        }
    }

    let supervised = defender.0.borrow();
    Ok(CellOutcome {
        traffic,
        fault,
        benign_delivered,
        attack_delivered,
        eradications,
        benign_bus_offs,
        attacks_detected: supervised.handler().stats().attacks_detected,
        counterattacks: supervised.handler().stats().counterattacks,
        degradations: supervised.stats().degradations,
        rearms: supervised.stats().rearms,
        armed_at_end: supervised.state() == HealthState::Armed,
        bus_load: sim.observed_bus_load(),
    })
}

/// Runs the full campaign (grid = [`default_grid`] × benign/attack) on
/// `config.shards` workers and checks the three invariants on the
/// below-threshold cells. The report is byte-identical for every shard
/// count: each cell's seed is fixed by its grid index, and outcomes are
/// reduced in grid order.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    run_campaign_with(config, &ExecOpts::default())
}

/// [`run_campaign`] under explicit execution options: each cell runs with
/// its own recorder and the collected registries are merged into
/// `opts.recorder` in grid order, so the merged snapshot — like the report
/// — is byte-identical for every shard count and simulation mode. The
/// grid's worker count comes from `config.shards` (the campaign's own
/// parameter), not from `opts`.
pub fn run_campaign_with(config: &CampaignConfig, opts: &ExecOpts) -> CampaignReport {
    let grid: Vec<(Traffic, FaultSpec)> = [Traffic::Benign, Traffic::Attack]
        .into_iter()
        .flat_map(|traffic| {
            default_grid()
                .into_iter()
                .map(move |fault| (traffic, fault))
        })
        .collect();
    let run_ms = config.run_ms;
    // Only the mode crosses into the workers: recorders are per-cell (a
    // `Recorder` is single-threaded by design) and merged in grid order.
    let mode = opts.mode;
    let cells = ExperimentPlan::new(grid, config.seed)
        .with_shards(config.shards.max(1))
        .run_observed(
            &opts.recorder,
            &opts.journal,
            move |_index, seed, (traffic, fault), cell_recorder, cell_journal| {
                let cell_opts = ExecOpts::new()
                    .with_mode(mode)
                    .with_recorder(cell_recorder.clone())
                    .with_journal(cell_journal.clone());
                run_cell_with(traffic, fault, seed, run_ms, &cell_opts)
            },
        );

    let mut violations = Vec::new();
    for c in cells.iter().filter(|c| c.fault.below_threshold()) {
        if c.benign_bus_offs > 0 {
            violations.push(InvariantViolation {
                cell: c.label(),
                invariant: "no benign bus-off",
                detail: format!("{} benign bus-off event(s)", c.benign_bus_offs),
            });
        }
        match c.traffic {
            Traffic::Attack => {
                if c.eradications == 0 {
                    violations.push(InvariantViolation {
                        cell: c.label(),
                        invariant: "eradication below threshold",
                        detail: "attacker never bused off".into(),
                    });
                }
            }
            Traffic::Benign => {
                if c.counterattacks > 0 {
                    violations.push(InvariantViolation {
                        cell: c.label(),
                        invariant: "defender silent on benign traffic",
                        detail: format!("{} counterattack(s) launched", c.counterattacks),
                    });
                }
            }
        }
    }

    CampaignReport {
        seed: config.seed,
        run_ms: config.run_ms,
        cells,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CampaignConfig {
        CampaignConfig {
            run_ms: 60.0,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn report_is_byte_identical_for_the_same_seed() {
        let a = run_campaign(&quick()).render();
        let b = run_campaign(&quick()).render();
        assert_eq!(a, b);
    }

    #[test]
    fn invariants_hold_below_threshold() {
        let report = run_campaign(&quick());
        assert!(
            report.violations.is_empty(),
            "violations: {:#?}",
            report.violations
        );
    }

    #[test]
    fn clean_cells_behave_like_the_availability_experiment() {
        let report = run_campaign(&quick());
        let cell = |traffic, name: &str| {
            report
                .cells
                .iter()
                .find(|c| c.traffic == traffic && c.fault.name() == name)
                .unwrap()
                .clone()
        };
        let benign = cell(Traffic::Benign, "clean");
        assert!(benign.benign_delivered > 50, "restbus delivers");
        assert_eq!(benign.counterattacks, 0);
        assert!(benign.armed_at_end);

        let attack = cell(Traffic::Attack, "clean");
        assert!(attack.eradications >= 1, "attacker eradicated");
        assert_eq!(attack.attack_delivered, 0, "no spoof completes");
        assert!(attack.counterattacks >= 1);
    }

    #[test]
    fn grid_straddles_the_threshold() {
        let grid = default_grid();
        assert!(grid.iter().any(|f| f.below_threshold()));
        assert!(grid.iter().any(|f| !f.below_threshold()));
        // Labels are unique (the report would be ambiguous otherwise).
        let mut names: Vec<String> = grid.iter().map(FaultSpec::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), grid.len());
    }
}

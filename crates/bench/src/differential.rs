//! Lockstep vs fast-forward vs packed differential harness.
//!
//! Both accelerated cores — idle fast-forward ([`Simulator::run_fast`])
//! and the word-packed bus kernel ([`Simulator::run_packed`]) — promise
//! *byte identity*: the same events, signal trace, metrics snapshot and
//! scenario outcome as the bit-by-bit lockstep reference, only faster.
//! This module turns that promise into a reusable check: build the same
//! scenario three times, drive one copy per mode, and compare every
//! observable surface against the lockstep reference.
//!
//! `tests/differential_fast_forward.rs` runs the check over every scenario
//! family (Table II, the fault campaign, the multi-attacker scan,
//! ParkSense); CI runs a reduced slice of the same comparisons on every
//! push.

use can_core::Level;
use can_obs::Recorder;
use can_sim::Simulator;

/// Every observable surface of a finished simulation, normalized for
/// byte-level comparison. `PartialEq` on the whole struct is the
/// equivalence check; [`compare`](SimFingerprint::compare) names the first
/// diverging surface for a useful failure message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFingerprint {
    /// Final simulation clock in bits.
    pub now_bits: u64,
    /// Busy (dominant-containing) bits accumulated for load accounting.
    pub busy_bits: u64,
    /// `observed_bus_load()` as raw IEEE-754 bits (exact, not approximate).
    pub bus_load_bits: u64,
    /// The full event log, one Debug-formatted line per event.
    pub events: Vec<String>,
    /// Total bits recorded by the signal trace, if tracing was on.
    pub trace_recorded: Option<u64>,
    /// The retained trace window, if tracing was on.
    pub trace: Option<Vec<Level>>,
    /// The recorder's canonical JSON snapshot.
    pub metrics_json: String,
}

/// Extracts the comparable surface of `sim` plus the metrics accumulated
/// in `recorder`.
pub fn fingerprint(sim: &Simulator, recorder: &Recorder) -> SimFingerprint {
    SimFingerprint {
        now_bits: sim.now().bits(),
        busy_bits: sim.busy_bits(),
        bus_load_bits: sim.observed_bus_load().to_bits(),
        events: sim
            .events()
            .iter()
            .map(|e| format!("{} n{} {:?}", e.at.bits(), e.node, e.kind))
            .collect(),
        trace_recorded: sim.trace().map(|t| t.recorded()),
        trace: sim.trace().map(|t| t.snapshot()),
        metrics_json: recorder.snapshot_json(),
    }
}

impl SimFingerprint {
    /// Compares two fingerprints surface by surface; `Err` names the first
    /// divergence (`self` is the lockstep reference, `other` the
    /// fast-forward run).
    pub fn compare(&self, other: &SimFingerprint) -> Result<(), String> {
        self.compare_against(other, "fast-forward")
    }

    /// [`SimFingerprint::compare`] with the candidate mode named in the
    /// failure message (`self` is always the lockstep reference).
    pub fn compare_against(&self, other: &SimFingerprint, mode: &str) -> Result<(), String> {
        if self.now_bits != other.now_bits {
            return Err(format!(
                "clock diverged: lockstep {} vs {mode} {}",
                self.now_bits, other.now_bits
            ));
        }
        if self.busy_bits != other.busy_bits {
            return Err(format!(
                "busy-bit accounting diverged: lockstep {} vs {mode} {}",
                self.busy_bits, other.busy_bits
            ));
        }
        if self.bus_load_bits != other.bus_load_bits {
            return Err(format!(
                "observed bus load diverged: lockstep {} vs {mode} {}",
                f64::from_bits(self.bus_load_bits),
                f64::from_bits(other.bus_load_bits)
            ));
        }
        if self.events != other.events {
            let at = self
                .events
                .iter()
                .zip(&other.events)
                .position(|(a, b)| a != b);
            return Err(match at {
                Some(i) => format!(
                    "event logs diverged at index {i}: lockstep `{}` vs {mode} `{}`",
                    self.events[i], other.events[i]
                ),
                None => format!(
                    "event logs diverged in length: lockstep {} vs {mode} {}",
                    self.events.len(),
                    other.events.len()
                ),
            });
        }
        if self.trace_recorded != other.trace_recorded {
            return Err(format!(
                "trace recorded-bit counters diverged: lockstep {:?} vs {mode} {:?}",
                self.trace_recorded, other.trace_recorded
            ));
        }
        if self.trace != other.trace {
            return Err(format!(
                "retained trace windows diverged (lockstep vs {mode})"
            ));
        }
        if self.metrics_json != other.metrics_json {
            return Err(format!("metrics snapshots diverged (lockstep vs {mode})"));
        }
        Ok(())
    }
}

/// Builds the same scenario three times via `build` (handed a fresh
/// enabled [`Recorder`] each time), runs one copy lockstep, one
/// fast-forward and one under the packed bus kernel for `bits`, and
/// returns `Err` naming the first diverging surface and the mode that
/// produced it.
///
/// The closure must be a pure constructor: any seed or configuration it
/// captures is shared by all copies, so a divergence can only come from
/// the execution mode.
pub fn check_equivalence<F>(build: F, bits: u64) -> Result<(), String>
where
    F: Fn(Recorder) -> Simulator,
{
    let lock_recorder = Recorder::enabled();
    let mut lockstep = build(lock_recorder.clone());
    lockstep.run(bits);
    let reference = fingerprint(&lockstep, &lock_recorder);

    let fast_recorder = Recorder::enabled();
    let mut fast = build(fast_recorder.clone());
    fast.run_fast(bits);
    reference.compare_against(&fingerprint(&fast, &fast_recorder), "fast-forward")?;

    let packed_recorder = Recorder::enabled();
    let mut packed = build(packed_recorder.clone());
    packed.run_packed(bits);
    reference.compare_against(&fingerprint(&packed, &packed_recorder), "packed")
}

/// Compares two scenario outcomes (anything `Debug`) produced by a
/// lockstep and a fast-forward run of the same entry point; `Err` carries
/// both renderings.
pub fn check_outcome<T: std::fmt::Debug>(
    label: &str,
    lockstep: &T,
    fast: &T,
) -> Result<(), String> {
    let a = format!("{lockstep:#?}");
    let b = format!("{fast:#?}");
    if a == b {
        Ok(())
    } else {
        Err(format!(
            "{label}: outcomes diverged\n--- lockstep ---\n{a}\n--- fast-forward ---\n{b}"
        ))
    }
}

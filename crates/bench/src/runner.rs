//! The parallel deterministic experiment engine.
//!
//! Every paper artifact is an embarrassingly-parallel set of independent
//! seeded simulations: the 16-cell fault campaign, the random-FSM
//! detection sweep, the six Table II replications, the multi-attacker
//! scan. [`ExperimentPlan`] fans those cells out across a rayon pool while
//! keeping the *determinism contract* that makes the artifacts regression
//! material rather than statistics:
//!
//! 1. **seed by index, never by schedule** — each cell's seed is derived
//!    from the master seed and the cell's position in the plan
//!    ([`derive_seed`]), so neither thread count nor completion order can
//!    change what a cell computes;
//! 2. **reduce in index order** — results come back as `Vec<R>` ordered by
//!    cell index regardless of which worker finished first;
//! 3. **`shards == 1` is the serial path** — no pool, no threads, a plain
//!    in-order loop, so the parallel report can be diffed byte-for-byte
//!    against it (`tests/parallel_determinism.rs` does exactly that).

use can_obs::{Journal, JournalStore, Recorder, Registry};
use can_sim::Simulator;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// How a scenario drives its simulators through bus time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Bit-by-bit [`Simulator::run`] — the lockstep reference path.
    #[default]
    Lockstep,
    /// [`Simulator::run_fast`]: identical events, traces, metrics and
    /// outcomes, with quiescent bus stretches skipped in closed form.
    FastForward,
    /// [`Simulator::run_packed`]: identical events, traces, metrics and
    /// outcomes, with event-free stretches resolved word-at-a-time by the
    /// packed wired-AND kernel and idle gaps skipped in closed form.
    Packed,
}

/// Cross-cutting execution options for `bench` scenario entry points.
///
/// Replaces the old `run_X` / `run_X_metered` function pairs: every
/// scenario now has a single `run_X_with(.., &ExecOpts)` entry point, and
/// the plain `run_X` wrappers simply pass `ExecOpts::default()` (disabled
/// recorder, serial, lockstep).
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Metrics sink threaded through the scenario (per-cell recorders are
    /// derived from it exactly as [`ExperimentPlan::run_metered`] does).
    pub recorder: Recorder,
    /// Worker count for plan fan-out; `1` is the serial reference path,
    /// `0` means one shard per core.
    pub shards: usize,
    /// Lockstep or idle fast-forward simulation.
    pub mode: SimMode,
    /// Causal event journal threaded through the scenario (per-cell
    /// journals are derived from it and merged in cell-index order,
    /// exactly like the recorder).
    pub journal: Journal,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            recorder: Recorder::disabled(),
            shards: 1,
            mode: SimMode::Lockstep,
            journal: Journal::disabled(),
        }
    }
}

impl ExecOpts {
    /// Default options: disabled recorder, serial, lockstep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the metrics recorder (builder style).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the simulation mode (builder style).
    pub fn with_mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the causal event journal (builder style).
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Selects idle fast-forward (builder style).
    pub fn fast(self) -> Self {
        self.with_mode(SimMode::FastForward)
    }

    /// Selects the packed bus kernel (builder style).
    pub fn packed(self) -> Self {
        self.with_mode(SimMode::Packed)
    }

    /// Runs `sim` for `bits` bit times in the configured mode.
    pub fn run(&self, sim: &mut Simulator, bits: u64) {
        match self.mode {
            SimMode::Lockstep => sim.run(bits),
            SimMode::FastForward => sim.run_fast(bits),
            SimMode::Packed => sim.run_packed(bits),
        }
    }

    /// Runs `sim` for `millis` simulated milliseconds in the configured
    /// mode.
    pub fn run_millis(&self, sim: &mut Simulator, millis: f64) {
        match self.mode {
            SimMode::Lockstep => sim.run_millis(millis),
            SimMode::FastForward => sim.run_millis_fast(millis),
            SimMode::Packed => sim.run_millis_packed(millis),
        }
    }

    /// Advances `sim` by one quantum — a single bit in lockstep, up to
    /// `max_bits` under fast-forward — and returns the bits advanced.
    /// Event-polling scan loops use this to stay mode-generic.
    pub fn advance(&self, sim: &mut Simulator, max_bits: u64) -> u64 {
        match self.mode {
            SimMode::Lockstep => {
                if max_bits == 0 {
                    return 0;
                }
                sim.step();
                1
            }
            SimMode::FastForward => sim.advance(max_bits),
            SimMode::Packed => sim.advance_packed(max_bits),
        }
    }
}

/// Derives the seed of cell `index` from the plan's master seed.
///
/// The derivation is a pure function of `(master, index)` — stable across
/// shard counts, thread schedules and releases. (Same mixing constant as
/// the rand shim's SplitMix64 expansion; one multiply plus xor is plenty
/// to decorrelate neighbouring indices for simulation seeding.)
pub fn derive_seed(master: u64, index: usize) -> u64 {
    (master ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(index as u64)
}

/// A set of independent experiment cells under one master seed, to be
/// executed on `shards` workers.
#[derive(Debug, Clone)]
pub struct ExperimentPlan<C> {
    /// The cells, in report order. A cell's index in this vector is its
    /// identity: it fixes the cell's seed and its slot in the result.
    pub cells: Vec<C>,
    /// Master seed from which every cell seed is derived.
    pub master_seed: u64,
    /// Worker count; `1` runs the plain serial loop, `0` means all
    /// available cores.
    pub shards: usize,
}

impl<C: Send> ExperimentPlan<C> {
    /// Creates a serial (`shards == 1`) plan.
    pub fn new(cells: Vec<C>, master_seed: u64) -> Self {
        ExperimentPlan {
            cells,
            master_seed,
            shards: 1,
        }
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The seed of cell `index` under this plan's master seed.
    pub fn cell_seed(&self, index: usize) -> u64 {
        derive_seed(self.master_seed, index)
    }

    /// Executes `run_cell(index, seed, cell)` for every cell and returns
    /// the results in cell-index order.
    ///
    /// `run_cell` must be a pure function of its arguments (no shared
    /// mutable state, no ambient randomness) — that, plus index-derived
    /// seeds and index-ordered reduction, is what makes the output
    /// independent of `shards`.
    pub fn run<R, F>(self, run_cell: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, u64, C) -> R + Sync,
    {
        let master = self.master_seed;
        if self.shards == 1 {
            // The reference serial path: index order is execution order.
            return self
                .cells
                .into_iter()
                .enumerate()
                .map(|(i, cell)| run_cell(i, derive_seed(master, i), cell))
                .collect();
        }
        let indexed: Vec<(usize, C)> = self.cells.into_iter().enumerate().collect();
        let pool = ThreadPoolBuilder::new()
            .num_threads(self.shards)
            .build()
            .expect("thread pool construction cannot fail");
        pool.install(|| {
            indexed
                .into_par_iter()
                .map(|(i, cell)| run_cell(i, derive_seed(master, i), cell))
                .collect()
        })
    }

    /// Like [`ExperimentPlan::run`], but threads a metrics recorder through
    /// the plan: every cell receives a **fresh** per-cell [`Recorder`]
    /// (recorders are `!Send` and must not be shared across workers), and
    /// the collected per-cell registries are merged into `recorder` *in
    /// cell index order* after all cells complete.
    ///
    /// All snapshot-visible metric values are integers and merging is
    /// order-stable, so the merged snapshot is byte-identical for every
    /// shard count — `tests/metrics_determinism.rs` locks this down.
    ///
    /// Each cell additionally records its wall time under the
    /// `bench_cell_wall` span (host-dependent; excluded from the JSON
    /// snapshot) and bumps the `bench_cells_total` counter. When `recorder`
    /// is disabled the plan runs exactly like [`ExperimentPlan::run`] with
    /// no-op cell recorders.
    pub fn run_metered<R, F>(self, recorder: &Recorder, run_cell: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, u64, C, &Recorder) -> R + Sync,
    {
        self.run_observed(
            recorder,
            &Journal::disabled(),
            |i, seed, cell, rec, _jrn| run_cell(i, seed, cell, rec),
        )
    }

    /// Like [`ExperimentPlan::run_metered`], but additionally threads a
    /// causal event [`Journal`] through the plan: every cell receives a
    /// fresh per-cell journal (journals are `!Send`, like recorders), and
    /// the collected per-cell [`JournalStore`]s are merged into `journal`
    /// *in cell index order* after all cells complete.
    ///
    /// The merge stamps each cell's events with the next epoch, and the
    /// canonical export sorts epoch-major — so the merged journal export
    /// is byte-identical for every shard count, exactly like the metrics
    /// snapshot. Disabled sinks cost nothing: with both the recorder and
    /// the journal disabled this is a plain [`ExperimentPlan::run`].
    pub fn run_observed<R, F>(self, recorder: &Recorder, journal: &Journal, run_cell: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, u64, C, &Recorder, &Journal) -> R + Sync,
    {
        let rec_on = recorder.is_enabled();
        let jrn_on = journal.is_enabled();
        if !rec_on && !jrn_on {
            return self.run(|i, seed, cell| {
                run_cell(i, seed, cell, &Recorder::disabled(), &Journal::disabled())
            });
        }
        type CellOut<R> = (R, Option<Registry>, Option<JournalStore>);
        let triples: Vec<CellOut<R>> = self.run(|i, seed, cell| {
            let cell_recorder = if rec_on {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            };
            let cell_journal = if jrn_on {
                Journal::enabled()
            } else {
                Journal::disabled()
            };
            let wall = cell_recorder.span("bench_cell_wall");
            let result = run_cell(i, seed, cell, &cell_recorder, &cell_journal);
            drop(wall);
            cell_recorder.inc("bench_cells_total");
            (
                result,
                rec_on.then(|| cell_recorder.into_registry()),
                jrn_on.then(|| cell_journal.into_store()),
            )
        });
        let mut results = Vec::with_capacity(triples.len());
        for (result, registry, store) in triples {
            if let Some(registry) = &registry {
                recorder.merge_registry(registry);
            }
            if let Some(store) = &store {
                journal.merge_store(store);
            }
            results.push(result);
        }
        results
    }
}

/// The host's available core count (≥ 1), the worker count `--shards 0`
/// resolves to.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--shards <n>` / `-j <n>` pair out of a CLI argument list and
/// returns the shard count (defaulting to `1`, the serial path) plus the
/// arguments with the flag removed.
///
/// `--shards 0` and `-j 0` request one shard per available core.
pub fn parse_shards(args: &[String]) -> Result<(usize, Vec<String>), String> {
    let mut shards = 1usize;
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--shards" || arg == "-j" {
            let value = iter.next().ok_or(format!("{arg} needs a value"))?;
            shards = value
                .parse()
                .map_err(|_| format!("bad {arg} value: {value}"))?;
            if shards == 0 {
                shards = available_cores();
            }
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((shards, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_index_distinct() {
        let a = derive_seed(0x00D5_2025, 3);
        assert_eq!(a, derive_seed(0x00D5_2025, 3), "pure function of inputs");
        let seeds: std::collections::BTreeSet<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 64, "no seed collisions across the plan");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "master seed matters");
    }

    #[test]
    fn parallel_run_matches_serial_run_exactly() {
        let cells: Vec<u32> = (0..37).collect();
        let work = |i: usize, seed: u64, cell: u32| {
            // A cheap stand-in for a seeded simulation.
            (i as u64, seed.rotate_left(cell % 63) ^ cell as u64)
        };
        let serial = ExperimentPlan::new(cells.clone(), 7).run(work);
        for shards in [2usize, 3, 8, 16] {
            let parallel = ExperimentPlan::new(cells.clone(), 7)
                .with_shards(shards)
                .run(work);
            assert_eq!(parallel, serial, "shards={shards}");
        }
    }

    #[test]
    fn run_preserves_cell_order_not_completion_order() {
        // Make early indices slow: if reduction followed completion order
        // the result would come back reversed.
        let cells: Vec<u64> = (0..8).collect();
        let out = ExperimentPlan::new(cells, 0)
            .with_shards(8)
            .run(|i, _seed, cell| {
                std::thread::sleep(std::time::Duration::from_millis(8 - cell));
                i
            });
        assert_eq!(out, (0..8).collect::<Vec<usize>>());
    }

    #[test]
    fn metered_run_merges_cell_registries_identically_for_any_shard_count() {
        let cells: Vec<u64> = (0..23).collect();
        let work = |_i: usize, seed: u64, cell: u64, rec: &Recorder| {
            rec.add("work_total", cell + 1);
            rec.observe("work_seed_low_bits", seed % 97);
            cell
        };
        let serial = Recorder::enabled();
        let serial_out = ExperimentPlan::new(cells.clone(), 11).run_metered(&serial, work);
        for shards in [2usize, 4, 8] {
            let parallel = Recorder::enabled();
            let parallel_out = ExperimentPlan::new(cells.clone(), 11)
                .with_shards(shards)
                .run_metered(&parallel, work);
            assert_eq!(parallel_out, serial_out, "shards={shards}");
            assert_eq!(
                parallel.snapshot_json(),
                serial.snapshot_json(),
                "merged snapshot must be byte-identical, shards={shards}"
            );
        }
        assert_eq!(
            serial.with_registry(|r| r.counter("bench_cells_total")),
            Some(23)
        );
    }

    #[test]
    fn observed_run_merges_cell_journals_identically_for_any_shard_count() {
        let cells: Vec<u64> = (0..17).collect();
        let work = |_i: usize, _seed: u64, cell: u64, _rec: &Recorder, jrn: &Journal| {
            jrn.begin_frame(cell * 10, cell as u32 % 3, &format!("cell={cell}"));
            jrn.end_frame(
                cell * 10 + 5,
                cell as u32 % 3,
                can_obs::JK_FRAME_ACK,
                "",
                false,
            );
            cell
        };
        let serial = Journal::enabled();
        let serial_out = ExperimentPlan::new(cells.clone(), 11).run_observed(
            &Recorder::disabled(),
            &serial,
            work,
        );
        let serial_export = serial.export_jsonl();
        assert!(!serial_export.is_empty());
        for shards in [2usize, 4, 8] {
            let parallel = Journal::enabled();
            let parallel_out = ExperimentPlan::new(cells.clone(), 11)
                .with_shards(shards)
                .run_observed(&Recorder::disabled(), &parallel, work);
            assert_eq!(parallel_out, serial_out, "shards={shards}");
            assert_eq!(
                parallel.export_jsonl(),
                serial_export,
                "merged journal export must be byte-identical, shards={shards}"
            );
        }
    }

    #[test]
    fn observed_run_with_both_sinks_disabled_passes_disabled_instances() {
        let cells: Vec<u64> = (0..4).collect();
        let out = ExperimentPlan::new(cells, 0).run_observed(
            &Recorder::disabled(),
            &Journal::disabled(),
            |_i, _seed, cell, rec, jrn| {
                assert!(!rec.is_enabled() && !jrn.is_enabled());
                cell
            },
        );
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn metered_run_with_disabled_recorder_is_a_plain_run() {
        let cells: Vec<u64> = (0..5).collect();
        let rec = Recorder::disabled();
        let out = ExperimentPlan::new(cells, 3).run_metered(&rec, |_i, _seed, cell, cell_rec| {
            assert!(!cell_rec.is_enabled(), "cells inherit the disabled state");
            cell
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(rec.into_registry().is_empty());
    }

    #[test]
    fn parse_shards_extracts_the_flag() {
        let args: Vec<String> = ["faults", "--shards", "8", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (shards, rest) = parse_shards(&args).unwrap();
        assert_eq!(shards, 8);
        assert_eq!(rest, vec!["faults".to_string(), "--full".to_string()]);

        let (default_shards, _) = parse_shards(&["all".to_string()]).unwrap();
        assert_eq!(default_shards, 1, "serial by default");

        let (auto, _) = parse_shards(&["-j".to_string(), "0".to_string()]).unwrap();
        assert!(auto >= 1, "-j 0 resolves to the core count");
        assert!(parse_shards(&["--shards".to_string()]).is_err());
        assert!(parse_shards(&["-j".to_string(), "x".to_string()]).is_err());
    }
}

//! Real-process crash smoke: start `experiments sweep`, SIGKILL it
//! mid-run, resume from the journal, and byte-compare the merged snapshot
//! against an uninterrupted run. This is the in-tree twin of the
//! `sweep-crash-smoke` CI job — same binary, same flags, smaller grid.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("michican_smoke_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sweep_args(dir: &Path, shards: &str) -> Vec<String> {
    [
        "sweep",
        "--dir",
        dir.to_str().unwrap(),
        "--workload",
        "synthetic",
        "--cells",
        "20000",
        "--cell-work",
        "20000",
        "--chunk",
        "128",
        "--chaos-panic",
        "6000",
        "-j",
        shards,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn journal_lines(dir: &Path) -> usize {
    std::fs::read_to_string(dir.join("journal.jsonl"))
        .map(|t| t.lines().count())
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_sweep_then_resume_matches_uninterrupted_run() {
    // Uninterrupted serial reference.
    let ref_dir = tmp_dir("ref");
    let reference = Command::new(BIN)
        .args(sweep_args(&ref_dir, "1"))
        .stderr(Stdio::null())
        .output()
        .expect("run reference sweep");
    assert!(
        reference.status.success(),
        "reference sweep failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let want_snapshot = std::fs::read(ref_dir.join("snapshot.json")).unwrap();
    let want_stdout = reference.stdout;

    // Victim: same grid, sharded, killed as soon as the journal shows
    // real progress. `Child::kill` delivers SIGKILL on Unix — no chance
    // to flush, trap, or clean up.
    let victim_dir = tmp_dir("victim");
    let mut victim = Command::new(BIN)
        .args(sweep_args(&victim_dir, "2"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim sweep");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed_midway = false;
    loop {
        if journal_lines(&victim_dir) >= 20 {
            victim.kill().expect("SIGKILL victim");
            killed_midway = true;
            break;
        }
        if victim.try_wait().expect("poll victim").is_some() {
            break; // finished before we could kill it — resume is a no-op
        }
        assert!(Instant::now() < deadline, "victim made no progress");
        std::thread::sleep(Duration::from_millis(10));
    }
    victim.wait().expect("reap victim");
    if killed_midway {
        assert!(
            journal_lines(&victim_dir) < 158, // header + 157 chunks = done
            "kill landed after the sweep already finished; no crash exercised"
        );
    }

    // Resume from the journal at yet another shard count.
    let resumed = Command::new(BIN)
        .args(["sweep", "--resume", victim_dir.to_str().unwrap(), "-j", "3"])
        .stderr(Stdio::null())
        .output()
        .expect("resume sweep");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let got_snapshot = std::fs::read(victim_dir.join("snapshot.json")).unwrap();
    assert_eq!(
        got_snapshot, want_snapshot,
        "snapshot after SIGKILL+resume differs from the uninterrupted run"
    );
    assert_eq!(
        resumed.stdout, want_stdout,
        "rendered report after SIGKILL+resume differs from the uninterrupted run"
    );

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&victim_dir).ok();
}

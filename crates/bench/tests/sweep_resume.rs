//! Kill/resume determinism contract of the sweep engine.
//!
//! Same grid + seeds ⇒ byte-identical final merged snapshot at any shard
//! count, across any kill/resume point, with panicking / hanging / fatal
//! cells quarantined rather than aborting the sweep. The reference in
//! every comparison is the uninterrupted serial run (`shards == 1`, no
//! abort hook) — the same reduction `bench::runner` treats as ground
//! truth.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use bench::runner::{derive_seed, SimMode};
use bench::sweep::{
    run_sweep, CampaignSweep, ChaosSpec, Chaotic, SweepConfig, SweepError, SweepWorkload,
    SyntheticSweep, JOURNAL_FILE,
};
use can_obs::{Recorder, Registry};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("michican_sweep_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn synthetic(cells: u64) -> Arc<dyn SweepWorkload> {
    Arc::new(SyntheticSweep { cells, work: 64 })
}

fn chaotic(cells: u64, chaos: ChaosSpec) -> Arc<dyn SweepWorkload> {
    Arc::new(Chaotic {
        inner: synthetic(cells),
        chaos,
    })
}

fn config(shards: usize, chunk_cells: u64) -> SweepConfig {
    SweepConfig {
        shards,
        chunk_cells,
        retry_backoff: Duration::ZERO,
        ..SweepConfig::default()
    }
}

/// The uninterrupted serial reference for a workload/config pair.
fn reference(workload: &Arc<dyn SweepWorkload>, base: &SweepConfig, dir: &Path) -> String {
    let config = SweepConfig {
        shards: 1,
        stop_after_chunks: None,
        ..base.clone()
    };
    run_sweep(Arc::clone(workload), &config, dir)
        .expect("reference sweep")
        .snapshot
}

#[test]
fn sweep_snapshot_equals_direct_in_order_merge() {
    // The engine's journaled, chunked, supervised reduction must land on
    // exactly what a plain loop over the cells produces.
    let workload = SyntheticSweep {
        cells: 100,
        work: 64,
    };
    let cfg = config(1, 16);
    let mut direct = Registry::new();
    for cell in 0..workload.cells {
        let recorder = Recorder::enabled();
        workload
            .run_cell(cell, derive_seed(cfg.seed, cell as usize), 0, &recorder)
            .unwrap();
        direct.merge(&recorder.into_registry());
    }
    let dir = tmp_dir("direct");
    let report = run_sweep(synthetic(100), &cfg, &dir).unwrap();
    assert_eq!(report.snapshot, direct.snapshot_json());
    assert_eq!(report.contributed_cells, 100);
    assert!(report.poisoned.is_empty());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_resume_is_byte_identical_at_every_point() {
    // 500 cells in 25 chunks; kill after 1, 12 and 24 chunk records, then
    // resume at a different shard count. Snapshot and rendered report
    // must be byte-identical to the uninterrupted serial reference.
    let chaos = ChaosSpec {
        panic_every: 151, // permanent panics -> quarantine survives resume
        ..ChaosSpec::NONE
    };
    let base = config(3, 20);
    let ref_dir = tmp_dir("killref");
    let want = reference(&chaotic(500, chaos), &base, &ref_dir);
    let want_render = run_sweep(chaotic(500, chaos), &config(1, 20), &ref_dir)
        .unwrap()
        .render();

    for stop_after in [1u64, 12, 24] {
        let dir = tmp_dir(&format!("kill{stop_after}"));
        let killed = SweepConfig {
            stop_after_chunks: Some(stop_after),
            ..base.clone()
        };
        match run_sweep(chaotic(500, chaos), &killed, &dir) {
            Err(SweepError::Aborted { chunks_done }) => assert_eq!(chunks_done, stop_after),
            other => panic!("expected abort, got {other:?}"),
        }
        // Resume with different parallelism; only execution knobs differ.
        let resumed = run_sweep(chaotic(500, chaos), &config(5, 20), &dir).unwrap();
        assert_eq!(resumed.snapshot, want, "stop_after={stop_after}");
        assert_eq!(resumed.render(), want_render, "stop_after={stop_after}");
        assert_eq!(resumed.poisoned.len(), 3, "cells 150, 301, 452 panic");
        fs::remove_dir_all(&dir).ok();
    }
    fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn transient_hangs_are_retried_and_permanent_hangs_quarantined() {
    let base = SweepConfig {
        cell_timeout: Some(Duration::from_millis(40)),
        retry_backoff: Duration::ZERO,
        chunk_cells: 10,
        ..SweepConfig::default()
    };
    // Transient: cell 28 hangs on attempt 0 only -> one retry, no poison.
    let transient = chaotic(
        30,
        ChaosSpec {
            hang_every: 30,
            hang_transient: true,
            hang_ms: 5_000,
            ..ChaosSpec::NONE
        },
    );
    let dir = tmp_dir("transient");
    let report = run_sweep(transient, &base, &dir).unwrap();
    assert!(report.poisoned.is_empty());
    assert_eq!(report.retries, 1);
    assert_eq!(report.contributed_cells, 30);
    fs::remove_dir_all(&dir).ok();

    // Permanent: cell 28 hangs on every attempt -> quarantined after the
    // full attempt budget, sweep still completes.
    let permanent = chaotic(
        30,
        ChaosSpec {
            hang_every: 30,
            hang_transient: false,
            hang_ms: 5_000,
            ..ChaosSpec::NONE
        },
    );
    let dir = tmp_dir("permanent");
    let report = run_sweep(permanent, &base, &dir).unwrap();
    assert_eq!(report.poisoned.len(), 1);
    assert_eq!(report.poisoned[0].cell, 28);
    assert_eq!(report.poisoned[0].attempts, 3);
    assert!(
        report.poisoned[0].error.contains("timed out"),
        "got: {}",
        report.poisoned[0].error
    );
    assert_eq!(report.contributed_cells, 29);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_journal_tail_is_tolerated_interior_corruption_is_not() {
    let base = config(1, 10);
    let ref_dir = tmp_dir("tornref");
    let want = reference(&synthetic(100), &base, &ref_dir);
    fs::remove_dir_all(&ref_dir).ok();

    // Abort mid-run, then tear the journal the way a SIGKILL mid-append
    // would: a partial record with no trailing newline.
    let dir = tmp_dir("torn");
    let killed = SweepConfig {
        stop_after_chunks: Some(4),
        ..base.clone()
    };
    assert!(matches!(
        run_sweep(synthetic(100), &killed, &dir),
        Err(SweepError::Aborted { .. })
    ));
    let journal = dir.join(JOURNAL_FILE);
    let intact = fs::read_to_string(&journal).unwrap();
    fs::write(
        &journal,
        format!("{intact}{{\"type\":\"chunk\",\"chunk\":9,\"cel"),
    )
    .unwrap();
    let resumed = run_sweep(synthetic(100), &base, &dir).unwrap();
    assert_eq!(resumed.snapshot, want, "torn tail re-runs that chunk");
    fs::remove_dir_all(&dir).ok();

    // Corruption that is NOT a torn tail must be a hard error, never a
    // silent half-resume.
    let dir = tmp_dir("interior");
    let killed = SweepConfig {
        stop_after_chunks: Some(4),
        ..base.clone()
    };
    assert!(matches!(
        run_sweep(synthetic(100), &killed, &dir),
        Err(SweepError::Aborted { .. })
    ));
    let journal = dir.join(JOURNAL_FILE);
    let intact = fs::read_to_string(&journal).unwrap();
    let mut lines: Vec<&str> = intact.lines().collect();
    lines[2] = "{\"type\":\"chunk\",\"chunk\":"; // line 3 of 5+: interior
    fs::write(&journal, lines.join("\n") + "\n").unwrap();
    match run_sweep(synthetic(100), &base, &dir) {
        Err(SweepError::Journal(detail)) => {
            assert!(detail.contains("line 3"), "got: {detail}")
        }
        other => panic!("expected journal error, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rss_guard_stops_resumably() {
    let base = config(2, 10);
    let ref_dir = tmp_dir("rssref");
    let want = reference(&synthetic(200), &base, &ref_dir);
    fs::remove_dir_all(&ref_dir).ok();

    let dir = tmp_dir("rss");
    let guarded = SweepConfig {
        max_rss_mb: Some(0), // any live process exceeds 0 MiB immediately
        ..base.clone()
    };
    match run_sweep(synthetic(200), &guarded, &dir) {
        Err(SweepError::MemoryLimit { rss_mb, limit_mb }) => {
            assert_eq!(limit_mb, 0);
            assert!(rss_mb > 0);
        }
        other => panic!("expected memory-limit stop, got {other:?}"),
    }
    // The journal the guard left behind resumes to the exact reference.
    let resumed = run_sweep(synthetic(200), &base, &dir).unwrap();
    assert_eq!(resumed.snapshot, want);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_different_grid() {
    let dir = tmp_dir("mismatch");
    let killed = SweepConfig {
        stop_after_chunks: Some(2),
        ..config(1, 10)
    };
    assert!(matches!(
        run_sweep(synthetic(100), &killed, &dir),
        Err(SweepError::Aborted { .. })
    ));
    // Different cell count -> different descriptor and total_cells.
    match run_sweep(synthetic(200), &config(1, 10), &dir) {
        Err(SweepError::Journal(detail)) => {
            assert!(detail.contains("different sweep"), "got: {detail}")
        }
        other => panic!("expected journal mismatch, got {other:?}"),
    }
    // Same grid, different seed -> also refused.
    let reseeded = SweepConfig {
        seed: 7,
        ..config(1, 10)
    };
    assert!(matches!(
        run_sweep(synthetic(100), &reseeded, &dir),
        Err(SweepError::Journal(_))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fatal_cells_quarantine_without_retry_and_survive_resume() {
    struct FatalAt13 {
        inner: SyntheticSweep,
    }
    impl SweepWorkload for FatalAt13 {
        fn total_cells(&self) -> u64 {
            self.inner.total_cells()
        }
        fn run_cell(
            &self,
            index: u64,
            seed: u64,
            attempt: u32,
            recorder: &Recorder,
        ) -> Result<(), bench::sweep::CellError> {
            if index == 13 {
                return Err(bench::sweep::CellError::fatal(
                    "scenario construction failed",
                ));
            }
            self.inner.run_cell(index, seed, attempt, recorder)
        }
        fn descriptor(&self) -> String {
            "{\"kind\":\"test-fatal\"}".to_string()
        }
    }
    let workload: Arc<dyn SweepWorkload> = Arc::new(FatalAt13 {
        inner: SyntheticSweep {
            cells: 40,
            work: 64,
        },
    });
    let dir = tmp_dir("fatal");
    let killed = SweepConfig {
        stop_after_chunks: Some(1),
        ..config(1, 10)
    };
    assert!(matches!(
        run_sweep(Arc::clone(&workload), &killed, &dir),
        Err(SweepError::Aborted { .. })
    ));
    let report = run_sweep(workload, &config(1, 10), &dir).unwrap();
    assert_eq!(report.poisoned.len(), 1);
    assert_eq!(report.poisoned[0].cell, 13);
    assert_eq!(report.poisoned[0].attempts, 1, "fatal errors skip retries");
    assert_eq!(report.retries, 0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_sweep_is_shard_and_resume_invariant() {
    // One replica of the real 16-cell campaign grid at a short horizon:
    // serial uninterrupted vs sharded killed-and-resumed.
    let workload =
        || -> Arc<dyn SweepWorkload> { Arc::new(CampaignSweep::new(1, 2.0, SimMode::FastForward)) };
    let base = SweepConfig {
        chunk_cells: 4,
        ..SweepConfig::default()
    };
    let ref_dir = tmp_dir("campref");
    let want = reference(&workload(), &base, &ref_dir);
    fs::remove_dir_all(&ref_dir).ok();

    let dir = tmp_dir("camp");
    let killed = SweepConfig {
        shards: 4,
        stop_after_chunks: Some(2),
        ..base.clone()
    };
    assert!(matches!(
        run_sweep(workload(), &killed, &dir),
        Err(SweepError::Aborted { .. })
    ));
    let resumed = run_sweep(workload(), &SweepConfig { shards: 2, ..base }, &dir).unwrap();
    assert_eq!(resumed.snapshot, want);
    assert!(resumed.poisoned.is_empty());
    assert!(resumed.snapshot.contains("sweep_cells_total"));
    assert!(
        resumed.snapshot.contains("can_bus_bits_total"),
        "campaign cells must carry the simulator's own series too"
    );
    fs::remove_dir_all(&dir).ok();
}

/// The acceptance sweep from the issue: ≥ 10k cells, ≥ 3 injected
/// panics/timeouts, a mid-run kill, resume from the journal, quarantine,
/// and a final snapshot byte-identical to the uninterrupted serial run.
#[test]
fn acceptance_10k_cells_survive_kill_panics_and_timeouts() {
    let chaos = ChaosSpec {
        panic_every: 2_500, // cells 2499, 4999, 7499, 9999: permanent panic
        panic_transient: false,
        hang_every: 2_998, // cells 2996, 5994, 8992: hang once, retry clean
        hang_transient: true,
        hang_ms: 5_000,
    };
    let workload = || chaotic(10_000, chaos);
    let base = SweepConfig {
        chunk_cells: 100,
        cell_timeout: Some(Duration::from_millis(60)),
        retry_backoff: Duration::ZERO,
        ..SweepConfig::default()
    };

    let ref_dir = tmp_dir("accref");
    let want = reference(&workload(), &base, &ref_dir);
    fs::remove_dir_all(&ref_dir).ok();

    let dir = tmp_dir("acc");
    let killed = SweepConfig {
        shards: 4,
        stop_after_chunks: Some(37),
        ..base.clone()
    };
    match run_sweep(workload(), &killed, &dir) {
        Err(SweepError::Aborted { chunks_done }) => assert_eq!(chunks_done, 37),
        other => panic!("expected abort, got {other:?}"),
    }

    let resumed = run_sweep(workload(), &SweepConfig { shards: 3, ..base }, &dir).unwrap();
    assert_eq!(resumed.total_cells, 10_000);
    assert_eq!(
        resumed.snapshot, want,
        "killed+resumed snapshot must be byte-identical to the serial reference"
    );
    let poisoned: Vec<u64> = resumed.poisoned.iter().map(|p| p.cell).collect();
    assert_eq!(poisoned, vec![2_499, 4_999, 7_499, 9_999]);
    assert!(resumed.poisoned.iter().all(|p| p.attempts == 3));
    assert!(resumed.poisoned.iter().all(|p| p.error.contains("panic")));
    assert_eq!(resumed.contributed_cells, 9_996);
    // 4 panicking cells retried twice each + 3 hanging cells retried once.
    assert_eq!(resumed.retries, 4 * 2 + 3);
    fs::remove_dir_all(&dir).ok();
}

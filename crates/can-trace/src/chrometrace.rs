//! Chrome-trace (Perfetto) export of a `can-obs` causal event journal.
//!
//! [`chrome_trace_json`] turns a [`can_obs::Journal::export_jsonl`]
//! document into Chrome's Trace Event JSON, loadable in `ui.perfetto.dev`
//! or `chrome://tracing` — the interactive counterpart of the VCD path
//! ([`crate::vcd`]): the VCD shows wire levels, the trace shows causality.
//!
//! ## Mapping
//!
//! * One process (`pid` 0, named `can-bus`); one thread per node
//!   (`tid` = node index), so every node gets its own track.
//! * `frame_start` … `frame_ack`/`frame_error`/`arb_lost` pairs become
//!   complete slices (`ph:"X"`), named after the closing kind.
//! * `inject_start` … `inject_end` pairs become `inject` slices — the
//!   defense's injection window is directly visible as a bar.
//! * Every other kind (`detection`, `strike`, `probe`, `degraded`, …)
//!   becomes a thread-scoped instant event (`ph:"i"`).
//! * `ts`/`dur` are in *bit times* (1 tick = 1 µs in the viewer; at the
//!   paper's 500 kbit/s a real bit is 2 µs, so on-screen durations are
//!   simply half scale).
//! * `args` carry `seq`, `chain` and the event detail, so slices of one
//!   causal chain can be found with a `chain` query.

use std::fmt::Write as _;

use can_obs::json::escape;
use can_obs::{
    parse_export, JournalEvent, JK_ARB_LOST, JK_FRAME_ACK, JK_FRAME_ERROR, JK_FRAME_START,
    JK_INJECT_END, JK_INJECT_START,
};

/// Converts a journal export (`can-obs-journal/v1` JSONL) into Chrome
/// Trace Event JSON. Slices left open at the end of the export (a frame
/// still on the wire, an injection window still active) are closed at the
/// last event's timestamp so the viewer never drops them.
///
/// # Errors
///
/// Returns the parse error of a malformed or wrong-schema export.
pub fn chrome_trace_json(export: &str) -> Result<String, String> {
    let (events, _dropped) = parse_export(export)?;
    let horizon = events.iter().map(|e| e.at_bits).max().unwrap_or(0);

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |record: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&record);
    };

    // Track metadata: name the process and one thread per node.
    emit(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"can-bus\"}}"
            .to_string(),
        &mut first,
    );
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in &nodes {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{node},\"name\":\"thread_name\",\"args\":{{\"name\":\"node {node}\"}}}}"
            ),
            &mut first,
        );
    }

    // Per-node open frame / injection slices: (start bits, start event).
    let mut open_frame: Vec<Option<(u64, JournalEvent)>> = Vec::new();
    let mut open_inject: Vec<Option<(u64, JournalEvent)>> = Vec::new();
    let slot = |v: &mut Vec<Option<(u64, JournalEvent)>>, node: u32| {
        let i = node as usize;
        if v.len() <= i {
            v.resize(i + 1, None);
        }
        i
    };

    for event in &events {
        match event.kind.as_str() {
            k if k == JK_FRAME_START => {
                let i = slot(&mut open_frame, event.node);
                open_frame[i] = Some((event.at_bits, event.clone()));
            }
            k if k == JK_FRAME_ACK || k == JK_FRAME_ERROR || k == JK_ARB_LOST => {
                let i = slot(&mut open_frame, event.node);
                let start = open_frame[i].take().map_or(event.at_bits, |(at, _)| at);
                emit(slice(event, start, event.at_bits), &mut first);
            }
            k if k == JK_INJECT_START => {
                let i = slot(&mut open_inject, event.node);
                open_inject[i] = Some((event.at_bits, event.clone()));
            }
            k if k == JK_INJECT_END => {
                let i = slot(&mut open_inject, event.node);
                let start = open_inject[i].take().map_or(event.at_bits, |(at, _)| at);
                let mut named = event.clone();
                named.kind = "inject".to_string();
                emit(slice(&named, start, event.at_bits), &mut first);
            }
            _ => emit(instant(event), &mut first),
        }
    }

    // Close anything still open at the horizon.
    for (start, mut event) in open_frame.into_iter().chain(open_inject).flatten() {
        event.kind = if event.kind == JK_INJECT_START {
            "inject".to_string()
        } else {
            "frame(open)".to_string()
        };
        emit(slice(&event, start, horizon), &mut first);
    }

    out.push_str("]}");
    Ok(out)
}

fn args(event: &JournalEvent) -> String {
    format!(
        "{{\"seq\":{},\"chain\":{},\"detail\":\"{}\"}}",
        event.frame_seq,
        event.chain_id,
        escape(&event.detail)
    )
}

fn slice(event: &JournalEvent, start: u64, end: u64) -> String {
    let mut record = String::new();
    let _ = write!(
        record,
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{start},\"dur\":{},\"name\":\"{}\",\"cat\":\"frame\",\"args\":{}}}",
        event.node,
        end.saturating_sub(start),
        escape(&event.kind),
        args(event)
    );
    record
}

fn instant(event: &JournalEvent) -> String {
    format!(
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"cat\":\"event\",\"args\":{}}}",
        event.node,
        event.at_bits,
        escape(&event.kind),
        args(event)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_obs::{json, Journal, JK_DETECTION, JK_STRIKE};

    fn sample_export() -> String {
        let journal = Journal::enabled();
        journal.begin_frame(100, 1, "id=0x173");
        journal.event(110, 2, JK_STRIKE, "error-flag at=25");
        journal.event(112, 0, JK_DETECTION, "pos=25");
        journal.event(113, 0, JK_INJECT_START, "");
        journal.event(145, 0, JK_INJECT_END, "");
        journal.end_frame(150, 1, JK_FRAME_ERROR, "stuff", true);
        journal.export_jsonl()
    }

    #[test]
    fn export_is_valid_json_with_slices_and_instants() {
        let trace = chrome_trace_json(&sample_export()).unwrap();
        let doc = json::parse(&trace).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        let ph = |name: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(json::JsonValue::as_str) == Some(name))
                .count()
        };
        assert_eq!(ph("M"), 4, "process + three node threads");
        assert_eq!(ph("X"), 2, "one frame slice, one inject slice");
        assert_eq!(ph("i"), 2, "strike + detection instants");

        let frame = events
            .iter()
            .find(|e| e.get("name").and_then(json::JsonValue::as_str) == Some(JK_FRAME_ERROR))
            .expect("frame slice present");
        assert_eq!(frame.get("ts").and_then(json::JsonValue::as_u64), Some(100));
        assert_eq!(frame.get("dur").and_then(json::JsonValue::as_u64), Some(50));
        let inject = events
            .iter()
            .find(|e| e.get("name").and_then(json::JsonValue::as_str) == Some("inject"))
            .expect("inject slice present");
        assert_eq!(
            inject.get("dur").and_then(json::JsonValue::as_u64),
            Some(32)
        );
    }

    #[test]
    fn chain_ids_survive_into_args() {
        let trace = chrome_trace_json(&sample_export()).unwrap();
        let doc = json::parse(&trace).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        let strike = events
            .iter()
            .find(|e| e.get("name").and_then(json::JsonValue::as_str) == Some(JK_STRIKE))
            .unwrap();
        let chain = strike
            .get("args")
            .and_then(|a| a.get("chain"))
            .and_then(json::JsonValue::as_u64)
            .unwrap();
        assert!(chain > 0, "the strike joins the attacked frame's chain");
    }

    #[test]
    fn open_slices_are_closed_at_the_horizon() {
        let journal = Journal::enabled();
        journal.begin_frame(10, 0, "id=0x173");
        journal.event(20, 0, JK_DETECTION, "pos=13");
        let trace = chrome_trace_json(&journal.export_jsonl()).unwrap();
        assert!(trace.contains("frame(open)"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(chrome_trace_json("not a journal").is_err());
    }
}

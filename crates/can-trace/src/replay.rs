//! Log replay: driving a recorded capture back onto a (simulated) bus.
//!
//! The paper's restbus simulation replays PCAN recordings of a production
//! vehicle through SocketCAN (§V-A). [`LogReplayApp`] is the software
//! equivalent: it takes a parsed candump log and re-emits each frame at
//! its recorded timestamp, preserving the original schedule (subject to
//! arbitration, exactly like a real replay).

use can_core::app::Application;
use can_core::{BitInstant, BusSpeed, CanFrame};

use crate::candump::LogEntry;

/// An [`Application`] replaying a candump log with original timing.
#[derive(Debug, Clone)]
pub struct LogReplayApp {
    /// (due-bit, frame), sorted by due time.
    schedule: Vec<(u64, CanFrame)>,
    cursor: usize,
    /// Restart the log from the top after it finishes.
    looping: bool,
    /// Length of one loop iteration in bits.
    loop_len_bits: u64,
    loops_done: u64,
}

impl LogReplayApp {
    /// Creates a replayer for `entries` at the given bus speed; the
    /// timestamps are normalized so the first frame is due immediately.
    pub fn new(entries: &[LogEntry], speed: BusSpeed) -> Self {
        let mut schedule: Vec<(u64, CanFrame)> = entries
            .iter()
            .map(|e| {
                let bits = (e.timestamp_s * speed.bits_per_second() as f64).round() as u64;
                (bits, e.frame)
            })
            .collect();
        schedule.sort_by_key(|&(t, _)| t);
        let offset = schedule.first().map(|&(t, _)| t).unwrap_or(0);
        for (t, _) in &mut schedule {
            *t -= offset;
        }
        let loop_len_bits = schedule.last().map(|&(t, _)| t + 200).unwrap_or(1).max(1);
        LogReplayApp {
            schedule,
            cursor: 0,
            looping: false,
            loop_len_bits,
            loops_done: 0,
        }
    }

    /// Restarts the log from the beginning whenever it runs out — turning
    /// a short capture into an endless restbus.
    pub fn looping(mut self) -> Self {
        self.looping = true;
        self
    }

    /// Frames remaining in the current pass.
    pub fn remaining(&self) -> usize {
        self.schedule.len() - self.cursor
    }

    /// Completed loop iterations.
    pub fn loops_done(&self) -> u64 {
        self.loops_done
    }
}

impl Application for LogReplayApp {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if self.schedule.is_empty() {
            return None;
        }
        if self.cursor >= self.schedule.len() {
            if !self.looping {
                return None;
            }
            self.cursor = 0;
            self.loops_done += 1;
        }
        let base = self.loops_done * self.loop_len_bits;
        let (due, frame) = self.schedule[self.cursor];
        if now.bits() >= base + due {
            self.cursor += 1;
            Some(frame)
        } else {
            None
        }
    }

    fn next_activity(&self, _now: BitInstant) -> Option<BitInstant> {
        if self.schedule.is_empty() || (self.cursor >= self.schedule.len() && !self.looping) {
            return None;
        }
        // A wrapped cursor is only folded back by `poll` itself, so the
        // next due instant must account for the pending wrap here.
        let (cursor, loops) = if self.cursor >= self.schedule.len() {
            (0, self.loops_done + 1)
        } else {
            (self.cursor, self.loops_done)
        };
        let (due, _) = self.schedule[cursor];
        Some(BitInstant::from_bits(loops * self.loop_len_bits + due))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::CanId;

    fn entry(ts: f64, id: u16) -> LogEntry {
        LogEntry {
            timestamp_s: ts,
            interface: "vcan0".into(),
            frame: CanFrame::data_frame(CanId::from_raw(id), &[id as u8]).unwrap(),
        }
    }

    #[test]
    fn replays_in_recorded_order_at_recorded_times() {
        // 1 ms apart at 500 kbit/s = 500 bits apart.
        let log = vec![
            entry(10.000, 0x100),
            entry(10.001, 0x200),
            entry(10.002, 0x300),
        ];
        let mut app = LogReplayApp::new(&log, BusSpeed::K500);
        assert_eq!(app.remaining(), 3);

        assert_eq!(
            app.poll(BitInstant::from_bits(0)).unwrap().id().raw(),
            0x100,
            "timestamps are normalized to the first entry"
        );
        assert!(app.poll(BitInstant::from_bits(499)).is_none());
        assert_eq!(
            app.poll(BitInstant::from_bits(500)).unwrap().id().raw(),
            0x200
        );
        assert_eq!(
            app.poll(BitInstant::from_bits(1_000)).unwrap().id().raw(),
            0x300
        );
        assert!(
            app.poll(BitInstant::from_bits(99_999)).is_none(),
            "log exhausted"
        );
    }

    #[test]
    fn unsorted_logs_are_sorted() {
        let log = vec![entry(2.0, 0x200), entry(1.0, 0x100)];
        let mut app = LogReplayApp::new(&log, BusSpeed::K50);
        assert_eq!(
            app.poll(BitInstant::from_bits(0)).unwrap().id().raw(),
            0x100
        );
    }

    #[test]
    fn looping_replay_wraps_around() {
        let log = vec![entry(0.0, 0x100), entry(0.01, 0x200)];
        let mut app = LogReplayApp::new(&log, BusSpeed::K50).looping();
        // First pass: frames at bits 0 and 500; loop length 500+200 = 700.
        assert!(app.poll(BitInstant::from_bits(0)).is_some());
        assert!(app.poll(BitInstant::from_bits(500)).is_some());
        // Second pass begins at bit 700.
        assert!(app.poll(BitInstant::from_bits(699)).is_none());
        assert_eq!(
            app.poll(BitInstant::from_bits(700)).unwrap().id().raw(),
            0x100
        );
        assert_eq!(app.loops_done(), 1);
    }

    #[test]
    fn empty_log_is_silent() {
        let mut app = LogReplayApp::new(&[], BusSpeed::K500).looping();
        for t in 0..1_000 {
            assert!(app.poll(BitInstant::from_bits(t)).is_none());
        }
    }

    #[test]
    fn polling_like_a_node_emits_every_frame_once() {
        let log = vec![entry(0.0, 0x123), entry(0.002, 0x321)];
        let mut app = LogReplayApp::new(&log, BusSpeed::K500);
        let mut emitted = Vec::new();
        for t in 0..2_000u64 {
            if let Some(f) = app.poll(BitInstant::from_bits(t)) {
                emitted.push(f.id().raw());
            }
        }
        assert_eq!(emitted, vec![0x123, 0x321]);
    }
}

//! Lifting `can-obs` trace records into the timeline and VCD views.
//!
//! The observability trace sink records the defense's discrete events —
//! detections, injection windows, watchdog degradations — with bus
//! bit-time timestamps. This module converts those records into the same
//! [`Timeline`] and [`VcdSignal`] machinery used for the Fig. 6
//! logic-analyzer views, so a metered run can be inspected next to the
//! raw bus capture.
//!
//! The activity glyphs are reinterpreted for the defense plane:
//!
//! * `#` ([`Activity::Transmitting`]) — the defender driving its
//!   counterattack (between `injection_start` and `injection_end`);
//! * `x` ([`Activity::ErrorSignaling`]) — a detection marker;
//! * `=` ([`Activity::BusOff`]) — prevention withdrawn by the health
//!   watchdog (between `degraded` and `rearmed`).
//!
//! [`Activity::Transmitting`]: crate::timeline::Activity::Transmitting
//! [`Activity::ErrorSignaling`]: crate::timeline::Activity::ErrorSignaling
//! [`Activity::BusOff`]: crate::timeline::Activity::BusOff

use can_core::{BitInstant, Level};
use can_obs::{
    TraceRecord, EVT_DEGRADED, EVT_DETECTION, EVT_INJECT_END, EVT_INJECT_START, EVT_REARMED,
};

use crate::timeline::{Timeline, TimelineEvent};
use crate::vcd::VcdSignal;

/// Maps defense trace records onto [`TimelineEvent`]s:
/// `injection_start`/`injection_end` open and close a transmit span,
/// `detection` renders as a short marker, `degraded`/`rearmed` bracket a
/// withdrawn-prevention span. Other events (e.g. `fsm_transition`) carry
/// no span semantics and are skipped.
pub fn defense_timeline_events(traces: &[TraceRecord]) -> Vec<TimelineEvent> {
    traces
        .iter()
        .filter_map(|r| {
            let node = r.node as usize;
            let at = BitInstant::from_bits(r.at_bits);
            match r.event.as_str() {
                EVT_INJECT_START => Some(TimelineEvent::TransmissionStarted { node, at }),
                EVT_INJECT_END => Some(TimelineEvent::TransmissionSucceeded { node, at }),
                EVT_DETECTION => Some(TimelineEvent::TransmitError { node, at }),
                EVT_DEGRADED => Some(TimelineEvent::BusOff { node, at }),
                EVT_REARMED => Some(TimelineEvent::Recovered { node, at }),
                _ => None,
            }
        })
        .collect()
}

/// The node indices that appear in `traces`, ascending and deduplicated.
pub fn trace_nodes(traces: &[TraceRecord]) -> Vec<usize> {
    let mut nodes: Vec<usize> = traces.iter().map(|r| r.node as usize).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Builds the defense-plane [`Timeline`] for every node present in
/// `traces`, up to `horizon` bits.
pub fn defense_timeline(traces: &[TraceRecord], horizon: u64) -> Timeline {
    let events = defense_timeline_events(traces);
    Timeline::build(&events, &trace_nodes(traces), horizon)
}

/// Renders `node`'s injection windows as a one-bit VCD signal
/// (`michican_inject_node<N>`): dominant while the defender drives its
/// counterattack, recessive otherwise. An injection window left open at
/// the end of the trace extends to `horizon`.
pub fn injection_vcd_signal(traces: &[TraceRecord], node: u32, horizon: u64) -> VcdSignal {
    let mut levels = vec![Level::Recessive; horizon as usize];
    let mut open: Option<u64> = None;
    let mark = |from: u64, to: u64, levels: &mut Vec<Level>| {
        for t in from..to.min(horizon) {
            levels[t as usize] = Level::Dominant;
        }
    };
    for r in traces.iter().filter(|r| r.node == node) {
        match r.event.as_str() {
            EVT_INJECT_START => open = Some(r.at_bits),
            EVT_INJECT_END => {
                if let Some(from) = open.take() {
                    mark(from, r.at_bits, &mut levels);
                }
            }
            _ => {}
        }
    }
    if let Some(from) = open {
        mark(from, horizon, &mut levels);
    }
    VcdSignal::new(format!("michican_inject_node{node}"), levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Activity;

    fn spoof_episode() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(100, 0, EVT_DETECTION, "pos=3"),
            TraceRecord::new(103, 0, EVT_INJECT_START, ""),
            TraceRecord::new(120, 0, EVT_INJECT_END, ""),
            TraceRecord::new(300, 0, EVT_DEGRADED, "counterattack-failures"),
            TraceRecord::new(500, 0, EVT_REARMED, ""),
            TraceRecord::new(40, 2, EVT_DETECTION, "pos=5"),
        ]
    }

    #[test]
    fn timeline_reconstructs_injection_and_degradation_spans() {
        let tl = defense_timeline(&spoof_episode(), 600);
        let spans: Vec<_> = tl.spans_of(0).collect();
        assert!(spans
            .iter()
            .any(|s| s.activity == Activity::Transmitting && s.start == 103 && s.end == 121));
        assert!(spans
            .iter()
            .any(|s| s.activity == Activity::BusOff && s.start == 300 && s.end == 500));
        assert!(spans
            .iter()
            .any(|s| s.activity == Activity::ErrorSignaling && s.start == 100));
        // The second node's detection marker is kept on its own row.
        assert_eq!(tl.spans_of(2).count(), 1);
    }

    #[test]
    fn nodes_are_discovered_from_the_records() {
        assert_eq!(trace_nodes(&spoof_episode()), vec![0, 2]);
    }

    #[test]
    fn fsm_transition_records_are_skipped() {
        let traces = vec![TraceRecord::new(10, 0, can_obs::EVT_FSM_TRANSITION, "3->7")];
        assert!(defense_timeline_events(&traces).is_empty());
    }

    #[test]
    fn vcd_signal_is_dominant_during_injection_windows() {
        let signal = injection_vcd_signal(&spoof_episode(), 0, 130);
        assert_eq!(signal.name, "michican_inject_node0");
        assert!(signal.levels[102].is_recessive());
        assert!(!signal.levels[103].is_recessive());
        assert!(!signal.levels[119].is_recessive());
        assert!(signal.levels[120].is_recessive());
    }

    #[test]
    fn open_injection_window_extends_to_the_horizon() {
        let traces = vec![TraceRecord::new(5, 1, EVT_INJECT_START, "")];
        let signal = injection_vcd_signal(&traces, 1, 10);
        assert!(signal.levels[4].is_recessive());
        assert!((5..10).all(|t| !signal.levels[t].is_recessive()));
    }
}

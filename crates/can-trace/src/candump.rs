//! candump-compatible logs.
//!
//! The de-facto exchange format for CAN captures (SocketCAN's `candump
//! -l`): one line per frame,
//!
//! ```text
//! (1618273.123456) can0 173#DEADBEEF
//! ```
//!
//! The paper's restbus replay rides on SocketCAN/PCAN; this module lets
//! simulated traffic round-trip through the same format.

use core::fmt;
use std::error::Error;

use can_core::{BusSpeed, CanFrame, CanId};

/// One logged frame.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Capture timestamp in seconds.
    pub timestamp_s: f64,
    /// Interface name (e.g. `can0`, `vcan0`).
    pub interface: String,
    /// The frame.
    pub frame: CanFrame,
}

impl LogEntry {
    /// Creates an entry from a simulated bit instant at a given speed.
    pub fn from_bits(bits: u64, speed: BusSpeed, interface: &str, frame: CanFrame) -> Self {
        LogEntry {
            timestamp_s: bits as f64 * speed.bit_time_us() / 1e6,
            interface: interface.to_string(),
            frame,
        }
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.6}) {} {:03X}#",
            self.timestamp_s,
            self.interface,
            self.frame.id().raw()
        )?;
        if self.frame.is_remote() {
            write!(f, "R{}", self.frame.dlc())
        } else {
            for byte in self.frame.data() {
                write!(f, "{byte:02X}")?;
            }
            Ok(())
        }
    }
}

/// A candump parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "candump parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseError {}

/// Serializes entries to candump text.
pub fn write_log(entries: &[LogEntry]) -> String {
    let mut out = String::new();
    for entry in entries {
        out.push_str(&entry.to_string());
        out.push('\n');
    }
    out
}

/// Parses candump text; blank lines are skipped.
///
/// # Errors
///
/// Returns the first malformed line as a [`ParseError`].
pub fn parse_log(source: &str) -> Result<Vec<LogEntry>, ParseError> {
    let mut entries = Vec::new();
    for (index, line) in source.lines().enumerate() {
        let line_no = index + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: &str| ParseError {
            line: line_no,
            message: message.to_string(),
        };

        let rest = line
            .strip_prefix('(')
            .ok_or_else(|| err("expected '(timestamp)'"))?;
        let (ts, rest) = rest
            .split_once(") ")
            .ok_or_else(|| err("unterminated timestamp"))?;
        let timestamp_s: f64 = ts
            .parse()
            .ok()
            .filter(|t: &f64| t.is_finite())
            .ok_or_else(|| err("invalid timestamp"))?;
        let (interface, payload) = rest
            .split_once(' ')
            .ok_or_else(|| err("missing interface"))?;
        let (id_hex, data_hex) = payload
            .split_once('#')
            .ok_or_else(|| err("missing '#' separator"))?;
        let raw = u16::from_str_radix(id_hex, 16).map_err(|_| err("invalid identifier"))?;
        let id = CanId::new(raw).map_err(|_| err("identifier exceeds 11 bits"))?;

        let frame = if let Some(dlc) = data_hex.strip_prefix('R') {
            let dlc: u8 = if dlc.is_empty() {
                0
            } else {
                dlc.parse().map_err(|_| err("invalid RTR DLC"))?
            };
            CanFrame::remote_frame(id, dlc).map_err(|_| err("invalid RTR DLC"))?
        } else {
            if data_hex.len() % 2 != 0 || data_hex.len() > 16 {
                return Err(err("data must be 0–8 hex byte pairs"));
            }
            let mut data = Vec::with_capacity(data_hex.len() / 2);
            for i in (0..data_hex.len()).step_by(2) {
                data.push(
                    u8::from_str_radix(&data_hex[i..i + 2], 16)
                        .map_err(|_| err("invalid data byte"))?,
                );
            }
            CanFrame::data_frame(id, &data).map_err(|_| err("invalid payload"))?
        };

        entries.push(LogEntry {
            timestamp_s,
            interface: interface.to_string(),
            frame,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ts: f64, id: u16, data: &[u8]) -> LogEntry {
        LogEntry {
            timestamp_s: ts,
            interface: "vcan0".to_string(),
            frame: CanFrame::data_frame(CanId::from_raw(id), data).unwrap(),
        }
    }

    #[test]
    fn formats_like_candump() {
        let e = entry(1.5, 0x173, &[0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(e.to_string(), "(1.500000) vcan0 173#DEADBEEF");
    }

    #[test]
    fn round_trips() {
        let entries = vec![
            entry(0.0, 0x064, &[]),
            entry(0.01, 0x173, &[1, 2, 3, 4, 5, 6, 7, 8]),
            LogEntry {
                timestamp_s: 0.02,
                interface: "vcan0".into(),
                frame: CanFrame::remote_frame(CanId::from_raw(0x100), 4).unwrap(),
            },
        ];
        let text = write_log(&entries);
        let parsed = parse_log(&text).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn from_bits_converts_via_speed() {
        let e = LogEntry::from_bits(
            50_000,
            BusSpeed::K50,
            "can0",
            CanFrame::data_frame(CanId::from_raw(1), &[]).unwrap(),
        );
        assert!(
            (e.timestamp_s - 1.0).abs() < 1e-12,
            "50k bits at 50 kbit/s = 1 s"
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_log("no parens can0 1#00").is_err());
        assert!(parse_log("(0.0) can0 999999#00").is_err());
        assert!(parse_log("(0.0) can0 173#0").is_err(), "odd data length");
        assert!(
            parse_log("(0.0) can0 173#112233445566778899").is_err(),
            "9 bytes"
        );
        let e = parse_log("(abc) can0 1#00").unwrap_err();
        assert_eq!(e.line, 1);
        // f64::parse accepts "nan"/"inf"; a capture timestamp must be a
        // real instant (downstream statistics sort by it).
        assert!(parse_log("(nan) can0 1#00").is_err());
        assert!(parse_log("(inf) can0 1#00").is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let parsed = parse_log("\n(0.000000) can0 001#AA\n\n").unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].frame.data(), &[0xAA]);
    }
}

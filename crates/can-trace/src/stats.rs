//! Traffic statistics over captured logs.
//!
//! Frequency-based statistics are the bread and butter of CAN analysis —
//! and of the IDS baselines MichiCAN's Table I compares against. This
//! module computes per-identifier rates and inter-arrival statistics from
//! a candump log.

use std::collections::BTreeMap;

use can_core::CanId;

use crate::candump::LogEntry;

/// Inter-arrival statistics for one identifier.
#[derive(Debug, Clone, PartialEq)]
pub struct IdStats {
    /// Number of frames observed.
    pub count: usize,
    /// Mean inter-arrival time in seconds (`None` for a single frame).
    pub mean_interval_s: Option<f64>,
    /// Standard deviation of the inter-arrival time in seconds.
    pub std_interval_s: Option<f64>,
    /// Shortest observed inter-arrival time in seconds.
    pub min_interval_s: Option<f64>,
}

/// Aggregate statistics over a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficStats {
    /// Capture duration in seconds (first to last timestamp).
    pub duration_s: f64,
    /// Per-identifier statistics.
    pub per_id: BTreeMap<CanId, IdStats>,
}

impl TrafficStats {
    /// Computes statistics over a log.
    pub fn from_log(entries: &[LogEntry]) -> Self {
        let mut per_id_times: BTreeMap<CanId, Vec<f64>> = BTreeMap::new();
        for entry in entries {
            per_id_times
                .entry(entry.frame.id())
                .or_default()
                .push(entry.timestamp_s);
        }
        let duration_s = match (entries.first(), entries.last()) {
            (Some(first), Some(last)) => (last.timestamp_s - first.timestamp_s).max(0.0),
            _ => 0.0,
        };

        let per_id = per_id_times
            .into_iter()
            .map(|(id, mut times)| {
                times.sort_by(f64::total_cmp);
                let intervals: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
                let stats = if intervals.is_empty() {
                    IdStats {
                        count: times.len(),
                        mean_interval_s: None,
                        std_interval_s: None,
                        min_interval_s: None,
                    }
                } else {
                    let mean = intervals.iter().sum::<f64>() / intervals.len() as f64;
                    let var = intervals
                        .iter()
                        .map(|&x| (x - mean) * (x - mean))
                        .sum::<f64>()
                        / intervals.len() as f64;
                    IdStats {
                        count: times.len(),
                        mean_interval_s: Some(mean),
                        std_interval_s: Some(var.sqrt()),
                        min_interval_s: intervals
                            .iter()
                            .copied()
                            .fold(None, |acc: Option<f64>, x| {
                                Some(acc.map_or(x, |a| a.min(x)))
                            }),
                    }
                };
                (id, stats)
            })
            .collect();

        TrafficStats { duration_s, per_id }
    }

    /// Total frames across all identifiers.
    pub fn total_frames(&self) -> usize {
        self.per_id.values().map(|s| s.count).sum()
    }

    /// Overall frame rate in frames per second.
    pub fn frames_per_second(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.total_frames() as f64 / self.duration_s
        }
    }

    /// Identifiers whose mean rate exceeds `threshold_hz` — a classic
    /// flooding-detection heuristic (the IDS approach MichiCAN's Table I
    /// classifies as non-real-time).
    pub fn flooding_suspects(&self, threshold_hz: f64) -> Vec<CanId> {
        self.per_id
            .iter()
            .filter(|(_, s)| {
                s.mean_interval_s
                    .is_some_and(|mean| mean > 0.0 && 1.0 / mean > threshold_hz)
            })
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::CanFrame;

    fn entry(ts: f64, id: u16) -> LogEntry {
        LogEntry {
            timestamp_s: ts,
            interface: "vcan0".into(),
            frame: CanFrame::data_frame(CanId::from_raw(id), &[0]).unwrap(),
        }
    }

    #[test]
    fn periodic_traffic_statistics() {
        let entries: Vec<LogEntry> = (0..11).map(|i| entry(i as f64 * 0.010, 0x100)).collect();
        let stats = TrafficStats::from_log(&entries);
        let id_stats = &stats.per_id[&CanId::from_raw(0x100)];
        assert_eq!(id_stats.count, 11);
        assert!((id_stats.mean_interval_s.unwrap() - 0.010).abs() < 1e-12);
        assert!(id_stats.std_interval_s.unwrap() < 1e-12);
        assert!((stats.duration_s - 0.1).abs() < 1e-12);
        assert!((stats.frames_per_second() - 110.0).abs() < 1.0);
    }

    #[test]
    fn single_frame_has_no_intervals() {
        let stats = TrafficStats::from_log(&[entry(1.0, 0x200)]);
        let id_stats = &stats.per_id[&CanId::from_raw(0x200)];
        assert_eq!(id_stats.count, 1);
        assert_eq!(id_stats.mean_interval_s, None);
    }

    #[test]
    fn flooding_suspects_are_flagged() {
        let mut entries = Vec::new();
        // 0x000 floods at 1 kHz; 0x300 is benign at 10 Hz.
        for i in 0..100 {
            entries.push(entry(i as f64 * 0.001, 0x000));
        }
        for i in 0..2 {
            entries.push(entry(i as f64 * 0.1, 0x300));
        }
        let stats = TrafficStats::from_log(&entries);
        let suspects = stats.flooding_suspects(500.0);
        assert_eq!(suspects, vec![CanId::from_raw(0x000)]);
    }

    #[test]
    fn empty_log() {
        let stats = TrafficStats::from_log(&[]);
        assert_eq!(stats.total_frames(), 0);
        assert_eq!(stats.frames_per_second(), 0.0);
    }

    #[test]
    fn unsorted_timestamps_are_handled() {
        let entries = vec![entry(0.02, 0x10), entry(0.0, 0x10), entry(0.01, 0x10)];
        let stats = TrafficStats::from_log(&entries);
        let id_stats = &stats.per_id[&CanId::from_raw(0x10)];
        assert!((id_stats.mean_interval_s.unwrap() - 0.01).abs() < 1e-12);
        assert!((id_stats.min_interval_s.unwrap() - 0.01).abs() < 1e-12);
    }
}

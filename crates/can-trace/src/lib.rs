//! # can-trace — CAN captures, timelines and traffic statistics
//!
//! The paper instruments its testbed with a logic analyzer and PCAN
//! captures; this crate provides the software equivalents:
//!
//! * [`candump`] — SocketCAN candump-format logs (read/write);
//! * [`timeline`] — per-node activity reconstruction and ASCII/CSV
//!   rendering (the Fig. 6 logic-analyzer view);
//! * [`stats`] — per-identifier rate and inter-arrival statistics;
//! * [`vcd`] — Value Change Dump export for GTKWave/PulseView inspection;
//! * [`replay`] — candump log replay onto a simulated bus (the software
//!   form of the paper's PCAN restbus replay);
//! * [`obsview`] — lifting `can-obs` defense trace records into the
//!   timeline and VCD views;
//! * [`chrometrace`] — Chrome-trace (Perfetto) export of `can-obs`
//!   causal event journals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candump;
pub mod chrometrace;
pub mod obsview;
pub mod replay;
pub mod stats;
pub mod timeline;
pub mod vcd;

pub use candump::{parse_log, write_log, LogEntry};
pub use chrometrace::chrome_trace_json;
pub use obsview::{defense_timeline, defense_timeline_events, injection_vcd_signal, trace_nodes};
pub use replay::LogReplayApp;
pub use stats::{IdStats, TrafficStats};
pub use timeline::{Activity, Span, Timeline, TimelineEvent};
pub use vcd::{write_vcd, VcdSignal};

//! Per-node activity timelines — the logic-analyzer view of Fig. 6.
//!
//! The paper's Fig. 6 shows two attackers' transmissions interleaving
//! while MichiCAN buses both off. This module reconstructs the same
//! picture from a simulator event log: per node, spans of transmission,
//! error signalling and bus-off, rendered as an ASCII chart or exported
//! as CSV for plotting.

use can_core::BitInstant;

/// What a node was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Transmitting a frame (or the destroyed prefix of one).
    Transmitting,
    /// Signalling an error (flag + delimiter).
    ErrorSignaling,
    /// Confined to bus-off.
    BusOff,
}

impl Activity {
    /// Chart glyph.
    pub fn glyph(self) -> char {
        match self {
            Activity::Transmitting => '#',
            Activity::ErrorSignaling => 'x',
            Activity::BusOff => '=',
        }
    }
}

/// A half-open span `[start, end)` of one node's activity, in bit times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Node index within the simulator.
    pub node: usize,
    /// Span start (bits).
    pub start: u64,
    /// Span end (bits).
    pub end: u64,
    /// What the node was doing.
    pub activity: Activity,
}

/// Duration of an error flag plus delimiter used for span rendering.
const ERROR_FRAME_SPAN: u64 = 14;

/// Minimal view of simulator events needed to build a timeline, kept
/// crate-local so `can-trace` does not depend on `can-sim`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineEvent {
    /// Node started driving a SOF.
    TransmissionStarted {
        /// Node index.
        node: usize,
        /// When.
        at: BitInstant,
    },
    /// Node completed a transmission.
    TransmissionSucceeded {
        /// Node index.
        node: usize,
        /// When.
        at: BitInstant,
    },
    /// Node detected an error while transmitting.
    TransmitError {
        /// Node index.
        node: usize,
        /// When.
        at: BitInstant,
    },
    /// Node entered bus-off.
    BusOff {
        /// Node index.
        node: usize,
        /// When.
        at: BitInstant,
    },
    /// Node recovered from bus-off.
    Recovered {
        /// Node index.
        node: usize,
        /// When.
        at: BitInstant,
    },
}

/// A reconstructed multi-node activity timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    horizon: u64,
}

impl Timeline {
    /// Builds the timeline for `nodes` from an event stream, up to
    /// `horizon` bits.
    pub fn build(events: &[TimelineEvent], nodes: &[usize], horizon: u64) -> Self {
        let mut spans = Vec::new();
        for &node in nodes {
            let mut tx_start: Option<u64> = None;
            let mut off_since: Option<u64> = None;
            for event in events {
                match *event {
                    TimelineEvent::TransmissionStarted { node: n, at } if n == node => {
                        tx_start = Some(at.bits());
                    }
                    TimelineEvent::TransmissionSucceeded { node: n, at } if n == node => {
                        if let Some(start) = tx_start.take() {
                            spans.push(Span {
                                node,
                                start,
                                end: at.bits() + 1,
                                activity: Activity::Transmitting,
                            });
                        }
                    }
                    TimelineEvent::TransmitError { node: n, at } if n == node => {
                        if let Some(start) = tx_start.take() {
                            spans.push(Span {
                                node,
                                start,
                                end: at.bits(),
                                activity: Activity::Transmitting,
                            });
                        }
                        spans.push(Span {
                            node,
                            start: at.bits(),
                            end: (at.bits() + ERROR_FRAME_SPAN).min(horizon),
                            activity: Activity::ErrorSignaling,
                        });
                    }
                    TimelineEvent::BusOff { node: n, at } if n == node => {
                        off_since = Some(at.bits());
                    }
                    TimelineEvent::Recovered { node: n, at } if n == node => {
                        if let Some(start) = off_since.take() {
                            spans.push(Span {
                                node,
                                start,
                                end: at.bits(),
                                activity: Activity::BusOff,
                            });
                        }
                    }
                    _ => {}
                }
            }
            if let Some(start) = off_since {
                spans.push(Span {
                    node,
                    start,
                    end: horizon,
                    activity: Activity::BusOff,
                });
            }
            if let Some(start) = tx_start {
                spans.push(Span {
                    node,
                    start,
                    end: horizon,
                    activity: Activity::Transmitting,
                });
            }
        }
        spans.sort_by_key(|s| (s.node, s.start));
        Timeline { spans, horizon }
    }

    /// The reconstructed spans, sorted by node then start.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans of one node.
    pub fn spans_of(&self, node: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.node == node)
    }

    /// Renders an ASCII chart: one row per node, `width` columns covering
    /// `[0, horizon)` bits. Later span kinds win within a bucket
    /// (error > transmit; bus-off > all).
    pub fn render_ascii(&self, labels: &[(usize, &str)], width: usize) -> String {
        let width = width.max(1);
        let mut out = String::new();
        let scale = self.horizon.max(1) as f64 / width as f64;
        out.push_str(&format!(
            "time: 0 .. {} bits, one column ≈ {:.0} bits\n",
            self.horizon, scale
        ));
        for &(node, label) in labels {
            let mut row = vec!['.'; width];
            for span in self.spans_of(node) {
                let from = (span.start as f64 / scale) as usize;
                let to = ((span.end as f64 / scale).ceil() as usize).min(width);
                for cell in row.iter_mut().take(to).skip(from.min(width)) {
                    let glyph = span.activity.glyph();
                    // Bus-off dominates, then error flags, then traffic.
                    let rank = |c: char| match c {
                        '=' => 3,
                        'x' => 2,
                        '#' => 1,
                        _ => 0,
                    };
                    if rank(glyph) >= rank(*cell) {
                        *cell = glyph;
                    }
                }
            }
            out.push_str(&format!(
                "{label:>10} |{}|\n",
                row.iter().collect::<String>()
            ));
        }
        out.push_str("legend: '#' transmitting, 'x' error frame, '=' bus-off, '.' idle\n");
        out
    }

    /// Exports the spans as CSV (`node,start_bits,end_bits,activity`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,start_bits,end_bits,activity\n");
        for span in &self.spans {
            out.push_str(&format!(
                "{},{},{},{:?}\n",
                span.node, span.start, span.end, span.activity
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(bits: u64) -> BitInstant {
        BitInstant::from_bits(bits)
    }

    #[test]
    fn reconstructs_attack_spans() {
        let events = vec![
            TimelineEvent::TransmissionStarted {
                node: 0,
                at: at(10),
            },
            TimelineEvent::TransmitError {
                node: 0,
                at: at(28),
            },
            TimelineEvent::TransmissionStarted {
                node: 0,
                at: at(45),
            },
            TimelineEvent::TransmitError {
                node: 0,
                at: at(63),
            },
            TimelineEvent::BusOff {
                node: 0,
                at: at(80),
            },
        ];
        let tl = Timeline::build(&events, &[0], 200);
        let spans: Vec<_> = tl.spans_of(0).collect();
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0].activity, Activity::Transmitting);
        assert_eq!((spans[0].start, spans[0].end), (10, 28));
        assert_eq!(spans[1].activity, Activity::ErrorSignaling);
        assert_eq!((spans[1].start, spans[1].end), (28, 42));
        assert_eq!(spans[4].activity, Activity::BusOff);
        assert_eq!((spans[4].start, spans[4].end), (80, 200));
    }

    #[test]
    fn successful_transmission_closes_span() {
        let events = vec![
            TimelineEvent::TransmissionStarted { node: 1, at: at(0) },
            TimelineEvent::TransmissionSucceeded {
                node: 1,
                at: at(110),
            },
        ];
        let tl = Timeline::build(&events, &[1], 150);
        let spans: Vec<_> = tl.spans_of(1).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (0, 111));
    }

    #[test]
    fn recovery_closes_bus_off_span() {
        let events = vec![
            TimelineEvent::BusOff {
                node: 0,
                at: at(100),
            },
            TimelineEvent::Recovered {
                node: 0,
                at: at(1508),
            },
        ];
        let tl = Timeline::build(&events, &[0], 2000);
        let spans: Vec<_> = tl.spans_of(0).collect();
        assert_eq!(spans[0].activity, Activity::BusOff);
        assert_eq!((spans[0].start, spans[0].end), (100, 1508));
    }

    #[test]
    fn ascii_render_contains_rows_and_legend() {
        let events = vec![
            TimelineEvent::TransmissionStarted { node: 0, at: at(0) },
            TimelineEvent::TransmitError {
                node: 0,
                at: at(50),
            },
            TimelineEvent::TransmissionStarted {
                node: 1,
                at: at(70),
            },
            TimelineEvent::TransmitError {
                node: 1,
                at: at(120),
            },
        ];
        let tl = Timeline::build(&events, &[0, 1], 200);
        let chart = tl.render_ascii(&[(0, "0x066"), (1, "0x067")], 80);
        assert!(chart.contains("0x066 |"));
        assert!(chart.contains("0x067 |"));
        assert!(chart.contains('#'));
        assert!(chart.contains('x'));
        assert!(chart.contains("legend"));
    }

    #[test]
    fn csv_export_is_parseable() {
        let events = vec![
            TimelineEvent::TransmissionStarted { node: 0, at: at(5) },
            TimelineEvent::TransmitError {
                node: 0,
                at: at(25),
            },
        ];
        let tl = Timeline::build(&events, &[0], 100);
        let csv = tl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "node,start_bits,end_bits,activity");
        assert_eq!(lines.len(), 1 + tl.spans().len());
        assert!(lines[1].starts_with("0,5,25,"));
    }

    #[test]
    fn other_nodes_events_are_ignored() {
        let events = vec![TimelineEvent::TransmissionStarted { node: 7, at: at(0) }];
        let tl = Timeline::build(&events, &[0], 100);
        assert!(tl.spans().is_empty());
    }
}

//! Value Change Dump (IEEE 1364) export.
//!
//! The paper reads its Fig. 6 off a logic analyzer; VCD is the interchange
//! format those instruments (and viewers like GTKWave or PulseView) speak.
//! This module dumps a simulated bus trace — optionally with per-node TX
//! contributions — as a VCD file, so simulated captures can be inspected
//! with the same tooling as hardware ones.

use can_core::{BusSpeed, Level};

/// One VCD signal: a name and its per-bit levels.
#[derive(Debug, Clone)]
pub struct VcdSignal {
    /// Signal name (e.g. `CAN_RX`, `node0_TX`).
    pub name: String,
    /// Level per bit time.
    pub levels: Vec<Level>,
}

impl VcdSignal {
    /// Creates a signal.
    pub fn new(name: impl Into<String>, levels: Vec<Level>) -> Self {
        VcdSignal {
            name: name.into(),
            levels,
        }
    }
}

/// Identifier characters assigned to signals (VCD shorthand codes).
const CODES: &[u8] = b"!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNO";

/// Serializes signals to VCD text with one timestep per nominal bit time.
///
/// The timescale is derived from the bus speed (e.g. 2 µs at 500 kbit/s ⇒
/// `timescale 1ns` with steps of 2000). Signals shorter than the longest
/// one hold their last value.
///
/// # Panics
///
/// Panics if more than 47 signals are given (single-character VCD codes).
pub fn write_vcd(speed: BusSpeed, signals: &[VcdSignal]) -> String {
    assert!(
        signals.len() <= CODES.len(),
        "too many signals for single-character codes"
    );
    let bit_ns = speed.bit_time_ns() as u64;
    let mut out = String::new();
    out.push_str("$date simulated $end\n");
    out.push_str("$version michican-repro can-trace $end\n");
    out.push_str("$timescale 1ns $end\n");
    out.push_str("$scope module can_bus $end\n");
    for (i, signal) in signals.iter().enumerate() {
        out.push_str(&format!(
            "$var wire 1 {} {} $end\n",
            CODES[i] as char, signal.name
        ));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    let horizon = signals.iter().map(|s| s.levels.len()).max().unwrap_or(0);
    let mut last: Vec<Option<Level>> = vec![None; signals.len()];
    for t in 0..horizon {
        let mut changes = String::new();
        for (i, signal) in signals.iter().enumerate() {
            let level = signal
                .levels
                .get(t)
                .copied()
                .or(last[i])
                .unwrap_or(Level::Recessive);
            if last[i] != Some(level) {
                changes.push_str(&format!(
                    "{}{}\n",
                    if level.is_recessive() { '1' } else { '0' },
                    CODES[i] as char
                ));
                last[i] = Some(level);
            }
        }
        if !changes.is_empty() {
            out.push_str(&format!("#{}\n{}", t as u64 * bit_ns, changes));
        }
    }
    out.push_str(&format!("#{}\n", horizon as u64 * bit_ns));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels(pattern: &str) -> Vec<Level> {
        pattern.chars().map(|c| Level::from_bit(c == '1')).collect()
    }

    #[test]
    fn header_carries_signal_definitions() {
        let vcd = write_vcd(
            BusSpeed::K500,
            &[
                VcdSignal::new("CAN_RX", levels("1101")),
                VcdSignal::new("defender_TX", levels("1111")),
            ],
        );
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 1 ! CAN_RX $end"));
        assert!(vcd.contains("$var wire 1 \" defender_TX $end"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn only_changes_are_dumped() {
        let vcd = write_vcd(BusSpeed::M1, &[VcdSignal::new("rx", levels("111000111"))]);
        // Initial value at #0, change to 0 at bit 3 (3000 ns at 1 Mbit/s),
        // back to 1 at bit 6.
        assert!(vcd.contains("#0\n1!"));
        assert!(vcd.contains("#3000\n0!"));
        assert!(vcd.contains("#6000\n1!"));
        // No dump entries for the unchanged bits 1, 2, 4, 5, 7, 8.
        assert!(!vcd.contains("#1000\n"));
        assert!(!vcd.contains("#4000\n"));
    }

    #[test]
    fn timescale_follows_bus_speed() {
        let fast = write_vcd(BusSpeed::M1, &[VcdSignal::new("rx", levels("10"))]);
        let slow = write_vcd(BusSpeed::K50, &[VcdSignal::new("rx", levels("10"))]);
        assert!(fast.contains("#1000\n0!"), "1 µs bit at 1 Mbit/s");
        assert!(slow.contains("#20000\n0!"), "20 µs bit at 50 kbit/s");
    }

    #[test]
    fn shorter_signals_hold_their_last_value() {
        let vcd = write_vcd(
            BusSpeed::M1,
            &[
                VcdSignal::new("long", levels("11110000")),
                VcdSignal::new("short", levels("10")),
            ],
        );
        // `short` changes at bit 1 and never again (held at 0).
        let short_changes = vcd.matches('\"').count();
        assert_eq!(short_changes, 3, "declaration + 2 value changes");
    }

    #[test]
    #[should_panic(expected = "too many signals")]
    fn too_many_signals_panics() {
        let signals: Vec<VcdSignal> = (0..48)
            .map(|i| VcdSignal::new(format!("s{i}"), levels("1")))
            .collect();
        let _ = write_vcd(BusSpeed::K500, &signals);
    }
}

//! Prometheus text exposition conformance: label escaping, histogram `le`
//! ordering and `# TYPE` placement, pinned against a golden file.
//!
//! The JSON side has exact round-trip tests; the text side previously had
//! only spot checks. The golden file (`tests/golden/prometheus.txt`)
//! freezes the full rendering of a representative registry — regenerate it
//! deliberately with `UPDATE_GOLDEN=1 cargo test -p can-obs prometheus`
//! after an intentional format change.

use can_obs::{escape_label_value, Registry, DEFAULT_BUCKETS};

/// A registry exercising every rendered section with deterministic
/// content (spans are fed fixed nanosecond values, not measured).
fn sample_registry() -> Registry {
    let mut reg = Registry::new();
    reg.add("can_errors_total{kind=\"bit\",node=\"2\"}", 1);
    reg.add("can_errors_total{kind=\"stuff\",node=\"1\"}", 3);
    reg.add("can_frames_total", 41);
    reg.add(
        &format!(
            "zoo_outcome_total{{label=\"{}\"}}",
            escape_label_value("truncate[crc\"delim\"]\\eof\nline")
        ),
        2,
    );
    reg.set_gauge("can_node_tec{node=\"1\"}", 96);
    reg.set_gauge("can_node_tec{node=\"2\"}", -8);
    reg.observe("latency_bits{node=\"0\"}", &[1, 8, 64], 5);
    reg.observe("latency_bits{node=\"0\"}", &[1, 8, 64], 9);
    reg.observe("latency_bits{node=\"0\"}", &[1, 8, 64], 100);
    reg.declare_histogram("reaction_bits", DEFAULT_BUCKETS);
    reg.record_span("bench_cell_wall", 1_500_000_000);
    reg
}

#[test]
fn rendering_matches_the_golden_file() {
    let text = sample_registry().prometheus_text();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).unwrap();
    }
    let expected = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        text, expected,
        "prometheus rendering drifted from tests/golden/prometheus.txt \
         (UPDATE_GOLDEN=1 to regenerate after an intentional change)"
    );
}

#[test]
fn label_values_are_escaped_per_exposition_format() {
    assert_eq!(escape_label_value("plain"), "plain");
    assert_eq!(escape_label_value("a\\b"), "a\\\\b");
    assert_eq!(escape_label_value("a\"b"), "a\\\"b");
    assert_eq!(escape_label_value("a\nb"), "a\\nb");
    // And the escaped value survives into the rendering verbatim (one
    // physical line — the raw newline must not split the sample).
    let text = sample_registry().prometheus_text();
    let line = text
        .lines()
        .find(|l| l.starts_with("zoo_outcome_total"))
        .expect("escaped sample rendered");
    assert_eq!(
        line,
        "zoo_outcome_total{label=\"truncate[crc\\\"delim\\\"]\\\\eof\\nline\"} 2"
    );
}

#[test]
fn histogram_buckets_are_cumulative_with_ascending_le() {
    let text = sample_registry().prometheus_text();
    let buckets: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("latency_bits_bucket"))
        .collect();
    assert_eq!(
        buckets,
        [
            "latency_bits_bucket{node=\"0\",le=\"1\"} 0",
            "latency_bits_bucket{node=\"0\",le=\"8\"} 1",
            "latency_bits_bucket{node=\"0\",le=\"64\"} 2",
            "latency_bits_bucket{node=\"0\",le=\"+Inf\"} 3",
        ]
    );
    // The +Inf bucket equals the count sample, as Prometheus requires.
    assert!(text.contains("latency_bits_count{node=\"0\"} 3"));
    assert!(text.contains("latency_bits_sum{node=\"0\"} 114"));
}

#[test]
fn type_lines_precede_their_samples_and_appear_once() {
    let text = sample_registry().prometheus_text();
    let mut seen_types = Vec::new();
    let mut declared: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let base = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap();
            assert!(
                ["counter", "gauge", "histogram", "summary"].contains(&kind),
                "unknown TYPE kind {kind}"
            );
            assert!(!seen_types.contains(&base), "duplicate # TYPE for {base}");
            seen_types.push(base.clone());
            declared = Some(base);
        } else if !line.is_empty() {
            let base = declared.as_deref().expect("sample before any # TYPE");
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.starts_with(base),
                "sample {name} not under its # TYPE ({base})"
            );
        }
    }
    for expected in [
        "can_errors_total",
        "can_frames_total",
        "can_node_tec",
        "latency_bits",
        "reaction_bits",
        "bench_cell_wall_seconds",
    ] {
        assert!(
            seen_types.iter().any(|t| t == expected),
            "missing # TYPE for {expected}"
        );
    }
}

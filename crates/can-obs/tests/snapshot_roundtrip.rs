//! can-obs/v1 snapshot serialize → deserialize → merge round-trip.
//!
//! The sweep engine (`bench::sweep`) checkpoints per-chunk registries as
//! snapshot JSON and reconstructs them on resume; byte-identical recovery
//! is only possible if `Registry::from_snapshot_json` is the exact inverse
//! of `Registry::snapshot_json`. These tests pin that inverse down,
//! including the histogram-bucket and trace-sink edge cases.

use can_obs::registry::TRACE_CAPACITY;
use can_obs::{Registry, TraceRecord, DEFAULT_BUCKETS, PERCENT_BUCKETS};

fn roundtrip(reg: &Registry) -> Registry {
    let json = reg.snapshot_json();
    let back = Registry::from_snapshot_json(&json).expect("own snapshot must parse");
    assert_eq!(
        back.snapshot_json(),
        json,
        "re-rendering the parsed registry must be byte-identical"
    );
    back
}

fn populated() -> Registry {
    let mut reg = Registry::new();
    reg.add("can_frames_total{node=\"0\"}", 41);
    reg.add("can_errors_total{node=\"1\",kind=\"stuff\"}", 3);
    reg.set_gauge("can_node_tec{node=\"1\"}", 96);
    reg.set_gauge("negative_gauge", -12345);
    for v in [1u64, 2, 3, 64, 65, 4096, 70_000] {
        reg.observe("latency_bits", DEFAULT_BUCKETS, v);
    }
    reg.observe("load_pct", PERCENT_BUCKETS, 55);
    reg.push_trace(TraceRecord::new(7, 1, "detection", "pos=3"));
    reg.push_trace(TraceRecord::new(9, 2, "fsm_transition", "A->B"));
    reg
}

#[test]
fn empty_registry_round_trips() {
    let reg = Registry::new();
    let back = roundtrip(&reg);
    assert!(back.is_empty());
}

#[test]
fn populated_registry_round_trips_exactly() {
    let reg = populated();
    let back = roundtrip(&reg);
    assert_eq!(back.counter("can_frames_total{node=\"0\"}"), 41);
    assert_eq!(back.gauge("can_node_tec{node=\"1\"}"), Some(96));
    assert_eq!(back.gauge("negative_gauge"), Some(-12345));
    let hist = back.histogram("latency_bits").unwrap();
    assert_eq!(hist.count(), 7);
    assert_eq!(hist.min(), Some(1));
    assert_eq!(hist.max(), Some(70_000));
    assert_eq!(back.traces().len(), 2);
    assert_eq!(back.traces()[1].detail, "A->B");
}

#[test]
fn declared_but_empty_histogram_round_trips() {
    // count == 0 renders min/max as 0; the parse must restore the neutral
    // extremes so later observations still track min correctly.
    let mut reg = Registry::new();
    reg.declare_histogram("reaction_bits", DEFAULT_BUCKETS);
    let mut back = roundtrip(&reg);
    back.observe("reaction_bits", DEFAULT_BUCKETS, 9);
    assert_eq!(back.histogram("reaction_bits").unwrap().min(), Some(9));
    assert_eq!(back.histogram("reaction_bits").unwrap().max(), Some(9));
}

#[test]
fn saturated_bucket_and_saturating_sum_round_trip() {
    // Observations beyond the last bound land in the overflow ("inf")
    // bucket, and the sum saturates at u64::MAX rather than wrapping.
    let mut reg = Registry::new();
    reg.observe("huge", &[1, 2], u64::MAX);
    reg.observe("huge", &[1, 2], u64::MAX);
    reg.observe("huge", &[1, 2], 1);
    let back = roundtrip(&reg);
    let hist = back.histogram("huge").unwrap();
    assert_eq!(hist.count(), 3);
    assert_eq!(hist.sum(), u64::MAX, "saturated sum survives the trip");
    assert_eq!(hist.bucket_counts(), &[1, 0, 2]);
    assert_eq!(hist.max(), Some(u64::MAX));
}

#[test]
fn bucket_edge_observations_stay_in_their_bucket() {
    // Bounds are inclusive: an observation exactly on a bound must come
    // back in the same bucket, not migrate across the edge.
    let mut reg = Registry::new();
    for v in [1u64, 2, 3, 4] {
        reg.observe("edges", &[2, 4], v);
    }
    let back = roundtrip(&reg);
    assert_eq!(back.histogram("edges").unwrap().bucket_counts(), &[2, 2, 0]);
}

#[test]
fn merge_of_parsed_equals_merge_of_original() {
    let base = populated();
    let mut extra = Registry::new();
    extra.add("can_frames_total{node=\"0\"}", 1);
    extra.observe("latency_bits", DEFAULT_BUCKETS, 500);
    extra.set_gauge("can_node_tec{node=\"1\"}", 0);
    extra.push_trace(TraceRecord::new(11, 0, "detection", "pos=9"));

    let mut merged_direct = base.clone();
    merged_direct.merge(&extra);

    let mut merged_from_disk = base.clone();
    merged_from_disk
        .merge_snapshot_json(&extra.snapshot_json())
        .unwrap();

    assert_eq!(
        merged_direct.snapshot_json(),
        merged_from_disk.snapshot_json()
    );
    // Gauges take the incoming value in both paths.
    assert_eq!(merged_from_disk.gauge("can_node_tec{node=\"1\"}"), Some(0));
}

#[test]
fn parse_is_idempotent_across_repeated_trips() {
    // parse ∘ render is a projection: once through the trip, further trips
    // are the identity (merge-with-self style idempotence of the codec).
    let reg = populated();
    let once = roundtrip(&reg);
    let twice = roundtrip(&once);
    assert_eq!(once, twice);
    assert_eq!(reg.snapshot_json(), twice.snapshot_json());
}

#[test]
fn trace_sink_capacity_and_drop_counter_round_trip() {
    let mut reg = Registry::new();
    for i in 0..(TRACE_CAPACITY as u64 + 3) {
        reg.push_trace(TraceRecord::new(i, 0, "e", "d"));
    }
    reg.push_trace(TraceRecord::new(0, 0, "other", "d"));
    let back = roundtrip(&reg);
    assert_eq!(back.traces().len(), TRACE_CAPACITY);
    assert_eq!(back.traces_dropped()["e"], 3);
    assert_eq!(back.traces_dropped()["other"], 1);
    assert_eq!(back.traces_dropped_total(), 4);
}

#[test]
fn non_default_trace_capacity_round_trips() {
    // A snapshot produced by a larger-capacity registry must parse even
    // though it holds more traces than the default sink would retain.
    let mut reg = Registry::with_trace_capacity(TRACE_CAPACITY * 2);
    for i in 0..(TRACE_CAPACITY as u64 + 10) {
        reg.push_trace(TraceRecord::new(i, 0, "e", ""));
    }
    let back = roundtrip(&reg);
    assert_eq!(back.trace_capacity(), TRACE_CAPACITY * 2);
    assert_eq!(back.traces().len(), TRACE_CAPACITY + 10);
    assert!(back.traces_dropped().is_empty());
}

#[test]
fn escaped_keys_and_details_round_trip() {
    let mut reg = Registry::new();
    reg.add("weird_total{label=\"a\\\"b\"}", 5);
    reg.push_trace(TraceRecord::new(1, 0, "evt", "line1\nline2\t\"quoted\""));
    let back = roundtrip(&reg);
    assert_eq!(back.counter("weird_total{label=\"a\\\"b\"}"), 5);
    assert_eq!(back.traces()[0].detail, "line1\nline2\t\"quoted\"");
}

#[test]
fn corrupt_documents_are_rejected() {
    let good = populated().snapshot_json();
    // Truncation anywhere in the document must fail, never half-parse.
    assert!(Registry::from_snapshot_json(&good[..good.len() / 2]).is_err());
    assert!(Registry::from_snapshot_json("").is_err());
    assert!(
        Registry::from_snapshot_json("{}").is_err(),
        "missing schema"
    );
    let wrong_schema = good.replace("can-obs/v1", "can-obs/v9");
    assert!(Registry::from_snapshot_json(&wrong_schema).is_err());
    // Internal inconsistency: bucket counts not summing to `count`.
    let mut reg = Registry::new();
    reg.observe("h", &[8], 3);
    let tampered = reg.snapshot_json().replace("\"count\": 1", "\"count\": 2");
    assert!(Registry::from_snapshot_json(&tampered).is_err());
}

//! # can-obs — first-party observability core
//!
//! Offline, dependency-free metrics for the MichiCAN suite, in the same
//! shim spirit as `rayon-shim`/`rand-shim`: a [`Registry`] of monotonic
//! counters, gauges and fixed-bucket [`Histogram`]s, wall-clock span
//! timing, and a bounded structured [`TraceRecord`] sink for defense-FSM
//! transitions — all reached through a clonable [`Recorder`] handle that
//! is a no-op when disabled. The causal [`Journal`] sits alongside the
//! recorder: sim-time events with stable `frame_seq`/`chain_id` ids that
//! reconstruct a whole attack episode as one linked chain (see
//! [`journal`]).
//!
//! ## Design rules
//!
//! 1. **Zero cost when off.** A disabled recorder is `None`; every
//!    operation is one branch. Instrumentation sites that would need to
//!    `format!` a metric key guard on [`Recorder::is_enabled`] first, so
//!    the hot path never allocates. `bench::perfbase` asserts the
//!    disabled-path per-bit cost stays within noise of the metrics-free
//!    baseline.
//! 2. **Determinism.** All snapshot-visible values are integers (`u64`
//!    observations, `i64` gauges); integer addition is associative, so
//!    merging per-cell registries in cell-index order gives byte-identical
//!    [`Registry::snapshot_json`] output whether an experiment ran serial
//!    or sharded. Wall-clock spans are host-dependent and therefore
//!    excluded from the JSON snapshot; they appear only in
//!    [`Registry::prometheus_text`].
//! 3. **Stable schema.** The JSON snapshot self-identifies as
//!    `can-obs/v1`; metric keys use Prometheus notation
//!    (`name{label="value"}`) so one key string serves both renderings.
//!    The snapshot round-trips: [`Registry::from_snapshot_json`] is its
//!    exact inverse (and [`Registry::merge_snapshot_json`] merges straight
//!    from disk), which is what lets `bench::sweep` checkpoint partially
//!    merged snapshots and resume a killed run byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use journal::{
    parse_export, Journal, JournalEvent, JournalStore, JK_ARB_LOST, JK_BUS_OFF, JK_DEGRADED,
    JK_DETECTION, JK_ERROR_STATE, JK_FRAME_ACK, JK_FRAME_ERROR, JK_FRAME_START, JK_IDS_ALERT,
    JK_IDS_ARMED, JK_INJECT_END, JK_INJECT_START, JK_PROBE, JK_REARMED, JK_RECOVERED, JK_RX_ERROR,
    JK_STRIKE, JOURNAL_SCHEMA,
};
pub use json::{JsonValue, ParseError};
pub use recorder::{Recorder, SpanGuard};
pub use registry::{
    escape_label_value, Histogram, Registry, SpanStats, DEFAULT_BUCKETS, PERCENT_BUCKETS,
};
pub use trace::{
    TraceRecord, EVT_DEGRADED, EVT_DETECTION, EVT_FSM_TRANSITION, EVT_INJECT_END, EVT_INJECT_START,
    EVT_REARMED,
};

//! Minimal JSON reading/writing for the deterministic snapshot plane.
//!
//! The workspace is offline (no `serde_json`), but two features need to
//! *read* JSON that this crate *writes*: reconstructing a [`crate::Registry`]
//! from its `can-obs/v1` snapshot ([`crate::Registry::from_snapshot_json`])
//! and the `bench::sweep` journal, whose JSONL records embed chunk
//! snapshots. This module is a small, strict, recursive-descent parser for
//! exactly that machine-generated subset of JSON, plus the string escaper
//! both renderers share.
//!
//! Numbers are kept as their raw source token ([`JsonValue::Num`]) and
//! converted on demand — every quantity in the snapshot plane is an
//! integer, and round-tripping through `f64` would be the one way to break
//! byte-identity.

use std::error::Error;
use std::fmt;

/// One parsed JSON value. Object member order is preserved (the snapshot
/// renderers emit keys in deterministic order; the parser keeps it).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token.
    Num(String),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(token) => token.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integer token.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(token) => token.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(token) => token.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub detail: String,
}

impl ParseError {
    pub(crate) fn new(at: usize, detail: impl Into<String>) -> Self {
        ParseError {
            at,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.detail)
    }
}

impl Error for ParseError {}

/// Maximum nesting depth the parser accepts; the snapshot plane is three
/// levels deep, so anything beyond this is corruption, not data.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document. Trailing content (other than whitespace) is
/// rejected — a journal line is exactly one value.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(ParseError::new(parser.pos, "trailing content after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::new(
                self.pos,
                format!("expected '{}'", byte as char),
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(ParseError::new(self.pos, format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth > MAX_DEPTH {
            return Err(ParseError::new(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(ParseError::new(
                self.pos,
                format!("unexpected byte 0x{other:02x}"),
            )),
            None => Err(ParseError::new(self.pos, "unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(ParseError::new(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(ParseError::new(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token is ASCII by construction");
        if token.parse::<f64>().is_err() {
            return Err(ParseError::new(start, format!("bad number '{token}'")));
        }
        Ok(JsonValue::Num(token.to_string()))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(ParseError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    out.push_str(self.raw_run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.raw_run(run_start)?);
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| ParseError::new(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(ParseError::new(
                                self.pos - 1,
                                format!("bad escape '\\{}'", other as char),
                            ))
                        }
                    }
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(ParseError::new(self.pos, "raw control byte in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The unescaped byte run `[run_start, pos)`, validated as UTF-8.
    fn raw_run(&self, run_start: usize) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.bytes[run_start..self.pos])
            .map_err(|_| ParseError::new(run_start, "invalid UTF-8 in string"))
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \uDC00..DFFF.
        if (0xD800..=0xDBFF).contains(&first) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&second) {
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| ParseError::new(self.pos, "bad surrogate pair"));
                }
            }
            return Err(ParseError::new(self.pos, "lone high surrogate"));
        }
        char::from_u32(first).ok_or_else(|| ParseError::new(self.pos, "bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| ParseError::new(self.pos, "truncated \\u escape"))?;
        let text = std::str::from_utf8(slice)
            .map_err(|_| ParseError::new(self.pos, "non-ASCII in \\u escape"))?;
        let value = u32::from_str_radix(text, 16)
            .map_err(|_| ParseError::new(self.pos, "non-hex in \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }
}

/// Escapes a string for embedding inside a JSON string literal. This is
/// the escaper the snapshot and journal renderers share; [`parse`] is its
/// exact inverse.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scalar_zoo() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let doc = parse("{\"b\": [1, 2, {\"c\": null}], \"a\": -3}").unwrap();
        let members = doc.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(doc.get("a").unwrap().as_i64(), Some(-3));
        let array = doc.get("b").unwrap().as_array().unwrap();
        assert_eq!(array.len(), 3);
        assert!(array[2].get("c").unwrap().is_null());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f\u{1F980}g";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert_eq!(parse("\"\\ud83e\\udd80\"").unwrap().as_str(), Some("🦀"));
        assert!(parse("\"\\ud83e\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_garbage_with_positions() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\": 1} x").is_err(), "trailing content");
        assert!(parse("\"unterminated").is_err());
        let err = parse("{\"a\": nope}").unwrap_err();
        assert!(err.at > 0, "position recorded: {err}");
        assert!(parse("12..5").is_err(), "malformed number");
    }

    #[test]
    fn u64_range_numbers_survive_exactly() {
        let max = u64::MAX.to_string();
        assert_eq!(parse(&max).unwrap().as_u64(), Some(u64::MAX));
        // Would be lossy through f64; the raw-token representation is not.
        let tricky = "9007199254740993";
        assert_eq!(parse(tricky).unwrap().as_u64(), Some(9007199254740993));
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}

//! The metrics registry: counters, gauges and fixed-bucket histograms,
//! plus wall-clock span statistics and the structured trace sink.
//!
//! ## Determinism contract
//!
//! Every *deterministic* quantity in the registry is an integer (`u64`
//! counters and histogram observations, `i64` gauges): sums of integers
//! are associative, so merging per-cell registries in index order yields
//! bit-identical totals no matter how observations were grouped across
//! worker shards. The [`Registry::snapshot_json`] rendering contains only
//! these deterministic sections — wall-clock [`SpanStats`] are explicitly
//! excluded (they differ per host and per run) and appear only in the
//! [`Registry::prometheus_text`] rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, JsonValue, ParseError};
use crate::trace::TraceRecord;

/// Default histogram bucket upper bounds (inclusive), in whatever unit the
/// metric observes — bit times for latency histograms, percent for load
/// windows. Roughly geometric so both single-digit reaction latencies and
/// multi-thousand-bit bus-off ladders resolve.
pub const DEFAULT_BUCKETS: &[u64] = &[
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048,
    3072, 4096, 8192, 16384, 32768, 65536,
];

/// Percent buckets (0–100) for utilization-style histograms.
pub const PERCENT_BUCKETS: &[u64] = &[5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100];

/// Default maximum trace records a registry retains (override with
/// [`Registry::with_trace_capacity`]); later records are counted per event
/// kind in [`Registry::traces_dropped`] instead of stored, so soak runs
/// cannot grow the sink without bound — and overflow no longer silently
/// biases *which* well-known events survive without saying which were lost.
pub const TRACE_CAPACITY: usize = 10_000;

/// A fixed-bucket histogram over integer observations.
///
/// Tracks per-bucket counts (plus an overflow bucket), count, sum, min and
/// max exactly; p50/p95/p99 are estimated from the buckets by linear
/// interpolation (max is exact, so p-quantiles never exceed it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; an implicit +inf bucket follows.
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let slot = self.bounds.partition_point(|&b| b < value);
        self.counts[slot] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (one per bound, plus the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the buckets by linear
    /// interpolation; exact at the extremes (clamped to observed min/max).
    /// Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (slot, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let upper = if slot < self.bounds.len() {
                    self.bounds[slot] as f64
                } else {
                    self.max as f64
                };
                let lower = if slot == 0 {
                    0.0
                } else {
                    self.bounds[slot - 1] as f64
                };
                let inside = (rank - seen) as f64 / n as f64;
                let estimate = lower + (upper - lower) * inside;
                return Some(estimate.clamp(self.min as f64, self.max as f64));
            }
            seen += n;
        }
        Some(self.max as f64)
    }

    /// Adds another histogram's contents into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merged histograms must come
    /// from the same instrumentation site.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Wall-clock statistics of one named span (see [`crate::Recorder::span`]).
///
/// Spans are *non-deterministic by nature* (they measure host time), so
/// they are excluded from [`Registry::snapshot_json`] and appear only in
/// the Prometheus rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed span instances.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Shortest instance, nanoseconds.
    pub min_ns: u64,
    /// Longest instance, nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// The metric store behind a [`crate::Recorder`].
///
/// Keys are full metric identifiers in Prometheus notation, e.g.
/// `can_errors_total{node="2",kind="stuff"}` — the label part is opaque to
/// the registry (it only orders keys), but the renderers split it back out.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
    traces: Vec<TraceRecord>,
    trace_capacity: usize,
    traces_dropped: BTreeMap<String, u64>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default trace sink capacity.
    pub fn new() -> Self {
        Registry::with_trace_capacity(TRACE_CAPACITY)
    }

    /// An empty registry retaining at most `capacity` trace records.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
            traces: Vec::new(),
            trace_capacity: capacity,
            traces_dropped: BTreeMap::new(),
        }
    }

    /// Adds `delta` to the counter `key`.
    pub fn add(&mut self, key: &str, delta: u64) {
        match self.counters.get_mut(key) {
            Some(value) => *value += delta,
            None => {
                self.counters.insert(key.to_string(), delta);
            }
        }
    }

    /// Sets the gauge `key` to `value`.
    pub fn set_gauge(&mut self, key: &str, value: i64) {
        match self.gauges.get_mut(key) {
            Some(slot) => *slot = value,
            None => {
                self.gauges.insert(key.to_string(), value);
            }
        }
    }

    /// Records `value` into the histogram `key`, creating it with `bounds`
    /// on first use.
    pub fn observe(&mut self, key: &str, bounds: &[u64], value: u64) {
        match self.histograms.get_mut(key) {
            Some(hist) => hist.observe(value),
            None => {
                let mut hist = Histogram::new(bounds);
                hist.observe(value);
                self.histograms.insert(key.to_string(), hist);
            }
        }
    }

    /// Registers an empty histogram so the snapshot carries the series even
    /// before the first observation.
    pub fn declare_histogram(&mut self, key: &str, bounds: &[u64]) {
        self.histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records one completed wall-clock span instance.
    pub fn record_span(&mut self, name: &str, ns: u64) {
        self.spans.entry(name.to_string()).or_default().record(ns);
    }

    /// Appends a structured trace record (bounded by the sink capacity;
    /// overflow is counted per event kind).
    pub fn push_trace(&mut self, record: TraceRecord) {
        if self.traces.len() < self.trace_capacity {
            self.traces.push(record);
        } else {
            *self.traces_dropped.entry(record.event).or_insert(0) += 1;
        }
    }

    /// Counter value, 0 when never incremented.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.get(key).copied()
    }

    /// Histogram by key, if any observation or declaration created it.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The retained trace records, in recording order.
    pub fn traces(&self) -> &[TraceRecord] {
        &self.traces
    }

    /// The trace sink capacity this registry was created with.
    pub fn trace_capacity(&self) -> usize {
        self.trace_capacity
    }

    /// Trace records dropped once the sink capacity was reached, by event
    /// kind — so overflow can no longer silently bias which well-known
    /// events survive.
    pub fn traces_dropped(&self) -> &BTreeMap<String, u64> {
        &self.traces_dropped
    }

    /// Total trace records dropped across all event kinds.
    pub fn traces_dropped_total(&self) -> u64 {
        self.traces_dropped.values().sum()
    }

    /// Wall-clock span statistics by name.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        self.spans.get(name).copied()
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.traces.is_empty()
            && self.traces_dropped.is_empty()
    }

    /// Merges `other` into `self`: counters and histograms add, gauges are
    /// overwritten by the incoming value, spans combine, traces append
    /// (subject to the capacity). Merging per-cell registries *in cell
    /// index order* is what makes sharded runs byte-identical to serial —
    /// see `bench::runner::ExperimentPlan::run_metered`.
    pub fn merge(&mut self, other: &Registry) {
        for (key, &value) in &other.counters {
            self.add(key, value);
        }
        for (key, &value) in &other.gauges {
            self.set_gauge(key, value);
        }
        for (key, hist) in &other.histograms {
            match self.histograms.get_mut(key) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(key.clone(), hist.clone());
                }
            }
        }
        for (key, stats) in &other.spans {
            self.spans.entry(key.clone()).or_default().merge(stats);
        }
        for record in &other.traces {
            self.push_trace(record.clone());
        }
        for (kind, &n) in &other.traces_dropped {
            *self.traces_dropped.entry(kind.clone()).or_insert(0) += n;
        }
    }

    /// Renders the deterministic JSON snapshot (schema `can-obs/v1`).
    ///
    /// Contains counters, gauges, histograms (with bucket counts and
    /// estimated p50/p95/p99) and the trace sink — all integer-derived, so
    /// the same simulated run produces the same bytes on every host and
    /// every shard count. Wall-clock spans are deliberately absent.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"can-obs/v1\",\n  \"counters\": {");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(key));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (key, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(key));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (key, hist)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, ",
                json_escape(key),
                hist.count(),
                hist.sum(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
            );
            let _ = write!(
                out,
                "\"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_quantile(hist, 0.50),
                json_quantile(hist, 0.95),
                json_quantile(hist, 0.99),
            );
            for (slot, &n) in hist.bucket_counts().iter().enumerate() {
                let sep = if slot == 0 { "" } else { ", " };
                match hist.bounds().get(slot) {
                    Some(&bound) => {
                        let _ = write!(out, "{sep}[{bound}, {n}]");
                    }
                    None => {
                        let _ = write!(out, "{sep}[\"inf\", {n}]");
                    }
                }
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "\n  }},\n  \"trace_capacity\": {},\n  \"traces_dropped\": {{",
            self.trace_capacity
        );
        for (i, (kind, n)) in self.traces_dropped.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {n}", json_escape(kind));
        }
        out.push_str("\n  },\n  \"traces\": [");
        for (i, record) in self.traces.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    [{}, {}, \"{}\", \"{}\"]",
                record.at_bits,
                record.node,
                json_escape(&record.event),
                json_escape(&record.detail)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Reconstructs a registry from its [`Registry::snapshot_json`]
    /// rendering.
    ///
    /// This is the exact inverse of the snapshot for everything the
    /// snapshot contains: counters, gauges, histograms (bucket counts plus
    /// exact count/sum/min/max — the p-quantiles are derived and are
    /// recomputed, not stored) and the trace sink. Wall-clock spans are
    /// not in the snapshot and therefore not reconstructed. The round trip
    /// is byte-stable: `from_snapshot_json(s)?.snapshot_json() == s` for
    /// any `s` this crate produced.
    ///
    /// Inconsistent documents — unknown schema, bucket counts that do not
    /// sum to the histogram count, non-ascending bounds — are rejected;
    /// `bench::sweep` relies on this as corruption detection when merging
    /// checkpointed snapshots back from disk.
    pub fn from_snapshot_json(text: &str) -> Result<Registry, ParseError> {
        let fail = |detail: String| ParseError::new(0, detail);
        let doc = json::parse(text)?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some("can-obs/v1") => {}
            other => return Err(fail(format!("unsupported snapshot schema {other:?}"))),
        }
        let object = |field: &str| {
            doc.get(field)
                .and_then(JsonValue::as_object)
                .ok_or_else(|| fail(format!("missing object field '{field}'")))
        };

        let mut reg = Registry::new();
        for (key, value) in object("counters")? {
            let value = value
                .as_u64()
                .ok_or_else(|| fail(format!("counter '{key}' is not a u64")))?;
            reg.counters.insert(key.clone(), value);
        }
        for (key, value) in object("gauges")? {
            let value = value
                .as_i64()
                .ok_or_else(|| fail(format!("gauge '{key}' is not an i64")))?;
            reg.gauges.insert(key.clone(), value);
        }
        for (key, hist) in object("histograms")? {
            let field = |name: &str| {
                hist.get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| fail(format!("histogram '{key}': bad field '{name}'")))
            };
            let (count, sum) = (field("count")?, field("sum")?);
            let (min, max) = (field("min")?, field("max")?);
            let buckets = hist
                .get("buckets")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| fail(format!("histogram '{key}': missing buckets")))?;
            let mut bounds = Vec::with_capacity(buckets.len().saturating_sub(1));
            let mut counts = Vec::with_capacity(buckets.len());
            for (slot, bucket) in buckets.iter().enumerate() {
                let pair = bucket
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| fail(format!("histogram '{key}': bucket {slot} malformed")))?;
                let last = slot + 1 == buckets.len();
                match (&pair[0], last) {
                    (JsonValue::Str(s), true) if s == "inf" => {}
                    (bound, false) => bounds.push(bound.as_u64().ok_or_else(|| {
                        fail(format!("histogram '{key}': bucket {slot} bad bound"))
                    })?),
                    _ => {
                        return Err(fail(format!(
                            "histogram '{key}': last bucket must be the \"inf\" bucket"
                        )))
                    }
                }
                counts.push(
                    pair[1].as_u64().ok_or_else(|| {
                        fail(format!("histogram '{key}': bucket {slot} bad count"))
                    })?,
                );
            }
            if counts.is_empty() || !bounds.windows(2).all(|w| w[0] < w[1]) {
                return Err(fail(format!("histogram '{key}': bounds not ascending")));
            }
            let bucket_total = counts
                .iter()
                .try_fold(0u64, |acc, &n| acc.checked_add(n))
                .ok_or_else(|| fail(format!("histogram '{key}': bucket counts overflow")))?;
            if bucket_total != count {
                return Err(fail(format!(
                    "histogram '{key}': bucket counts sum to {bucket_total}, count says {count}"
                )));
            }
            if count > 0 && min > max {
                return Err(fail(format!("histogram '{key}': min {min} > max {max}")));
            }
            reg.histograms.insert(
                key.clone(),
                Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                    // An empty histogram stores its neutral extremes; the
                    // snapshot renders them as 0.
                    min: if count == 0 { u64::MAX } else { min },
                    max: if count == 0 { 0 } else { max },
                },
            );
        }
        let capacity = doc
            .get("trace_capacity")
            .and_then(JsonValue::as_u64)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| fail("missing 'trace_capacity'".into()))?;
        reg.trace_capacity = capacity;
        for (kind, n) in object("traces_dropped")? {
            let n = n
                .as_u64()
                .ok_or_else(|| fail(format!("traces_dropped['{kind}'] is not a u64")))?;
            reg.traces_dropped.insert(kind.clone(), n);
        }
        let traces = doc
            .get("traces")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| fail("missing 'traces'".into()))?;
        if traces.len() > capacity {
            return Err(fail(format!(
                "{} traces exceed the sink capacity {capacity}",
                traces.len()
            )));
        }
        for (i, record) in traces.iter().enumerate() {
            let entry = record
                .as_array()
                .filter(|e| e.len() == 4)
                .ok_or_else(|| fail(format!("trace {i} malformed")))?;
            let (at_bits, node) = (
                entry[0]
                    .as_u64()
                    .ok_or_else(|| fail(format!("trace {i}: bad at_bits")))?,
                entry[1]
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| fail(format!("trace {i}: bad node")))?,
            );
            let event = entry[2]
                .as_str()
                .ok_or_else(|| fail(format!("trace {i}: bad event")))?;
            let detail = entry[3]
                .as_str()
                .ok_or_else(|| fail(format!("trace {i}: bad detail")))?;
            reg.traces
                .push(TraceRecord::new(at_bits, node, event, detail));
        }
        Ok(reg)
    }

    /// Parses a `can-obs/v1` snapshot and merges it into this registry —
    /// the "merge-from-disk" primitive checkpointed sweeps use to fold a
    /// persisted chunk snapshot into a running aggregate without retaining
    /// the source registry.
    pub fn merge_snapshot_json(&mut self, text: &str) -> Result<(), ParseError> {
        let other = Registry::from_snapshot_json(text)?;
        self.merge(&other);
        Ok(())
    }

    /// Renders the registry in Prometheus text exposition format,
    /// including the wall-clock spans (as `<name>_seconds` summaries).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut last_base = String::new();
        for (key, value) in &self.counters {
            let (base, _) = split_key(key);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_base = base.to_string();
            }
            let _ = writeln!(out, "{key} {value}");
        }
        last_base.clear();
        for (key, value) in &self.gauges {
            let (base, _) = split_key(key);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} gauge");
                last_base = base.to_string();
            }
            let _ = writeln!(out, "{key} {value}");
        }
        last_base.clear();
        for (key, hist) in &self.histograms {
            let (base, labels) = split_key(key);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} histogram");
                last_base = base.to_string();
            }
            let mut cumulative = 0u64;
            for (slot, &n) in hist.bucket_counts().iter().enumerate() {
                cumulative += n;
                let le = match hist.bounds().get(slot) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{base}_bucket{{{}le=\"{le}\"}} {cumulative}",
                    join_labels(labels)
                );
            }
            let _ = writeln!(out, "{base}_sum{{{labels}}} {}", hist.sum());
            let _ = writeln!(out, "{base}_count{{{labels}}} {}", hist.count());
        }
        for (name, stats) in &self.spans {
            let _ = writeln!(out, "# TYPE {name}_seconds summary");
            let _ = writeln!(out, "{name}_seconds_sum {:.9}", stats.total_ns as f64 / 1e9);
            let _ = writeln!(out, "{name}_seconds_count {}", stats.count);
            let _ = writeln!(out, "{name}_seconds_max {:.9}", stats.max_ns as f64 / 1e9);
        }
        out
    }
}

/// Formats an estimated quantile for the JSON snapshot: fixed three
/// decimals, so identical integer inputs render to identical bytes.
fn json_quantile(hist: &Histogram, q: f64) -> String {
    match hist.quantile(q) {
        Some(value) => format!("{value:.3}"),
        None => "null".to_string(),
    }
}

/// Splits `name{labels}` into `(name, labels)` (labels without braces,
/// empty when absent).
fn split_key(key: &str) -> (&str, &str) {
    match key.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}').unwrap_or(rest)),
        None => (key, ""),
    }
}

/// Label fragment with a trailing comma when non-empty, for appending the
/// `le` label.
fn join_labels(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Escapes a string for use as a Prometheus label *value*: backslash,
/// double quote and newline are escaped per the text exposition format.
/// Instrumentation sites building `name{label="value"}` keys from
/// free-form detail (scenario labels, error kinds) should pass the value
/// through this before embedding it.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a string for embedding inside a JSON string literal (the
/// shared escaper, see [`crate::json::escape`]).
fn json_escape(s: &str) -> String {
    json::escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_exact_aggregates() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [1u64, 1, 3, 9, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 114);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        // buckets: ≤1: 2, ≤2: 0, ≤4: 1, ≤8: 0, inf: 2
        assert_eq!(h.bucket_counts(), &[2, 0, 1, 0, 2]);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let mut h = Histogram::new(DEFAULT_BUCKETS);
        for v in 1..=100u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        assert!((30.0..=70.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= 100.0, "clamped to max: {p99}");
        assert!(Histogram::new(&[1]).quantile(0.5).is_none());
    }

    #[test]
    fn merge_is_grouping_independent() {
        // One registry fed serially vs three merged in order: identical.
        let feed = |reg: &mut Registry, values: &[u64]| {
            for &v in values {
                reg.add("hits_total", 1);
                reg.observe("lat_bits", DEFAULT_BUCKETS, v);
            }
        };
        let mut serial = Registry::new();
        feed(&mut serial, &[3, 5, 800, 2, 2, 70_000]);

        let mut merged = Registry::new();
        for chunk in [[3u64, 5].as_slice(), &[800, 2], &[2, 70_000]] {
            let mut cell = Registry::new();
            feed(&mut cell, chunk);
            merged.merge(&cell);
        }
        assert_eq!(serial, merged);
        assert_eq!(serial.snapshot_json(), merged.snapshot_json());
    }

    #[test]
    fn gauges_take_the_last_merged_value() {
        let mut a = Registry::new();
        a.set_gauge("tec{node=\"0\"}", 8);
        let mut b = Registry::new();
        b.set_gauge("tec{node=\"0\"}", 16);
        a.merge(&b);
        assert_eq!(a.gauge("tec{node=\"0\"}"), Some(16));
    }

    #[test]
    fn snapshot_json_is_valid_enough_and_stable() {
        let mut reg = Registry::new();
        reg.add("a_total", 2);
        reg.set_gauge("g", -4);
        reg.observe("h_bits", &[10, 20], 15);
        reg.push_trace(TraceRecord::new(7, 1, "detection", "pos=3"));
        let json = reg.snapshot_json();
        assert!(json.contains("\"schema\": \"can-obs/v1\""));
        assert!(json.contains("\"a_total\": 2"));
        assert!(json.contains("\"g\": -4"));
        assert!(json.contains("[\"inf\", 0]"));
        assert!(json.contains("[7, 1, \"detection\", \"pos=3\"]"));
        assert_eq!(json, reg.clone().snapshot_json(), "pure function of state");
        // Spans never reach the deterministic snapshot.
        reg.record_span("wall", 123);
        assert_eq!(json, reg.snapshot_json());
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let mut reg = Registry::new();
        reg.add("hits_total{node=\"1\"}", 3);
        reg.set_gauge("tec{node=\"1\"}", 96);
        reg.observe("lat_bits", &[1, 8], 5);
        reg.record_span("cell_wall", 2_000_000_000);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total{node=\"1\"} 3"));
        assert!(text.contains("# TYPE tec gauge"));
        assert!(text.contains("lat_bits_bucket{le=\"8\"} 1"));
        assert!(text.contains("lat_bits_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_bits_count{} 1"));
        assert!(text.contains("cell_wall_seconds_count 1"));
        assert!(text.contains("cell_wall_seconds_sum 2.000000000"));
    }

    #[test]
    fn trace_sink_is_bounded() {
        let mut reg = Registry::new();
        for i in 0..(TRACE_CAPACITY as u64 + 5) {
            reg.push_trace(TraceRecord::new(i, 0, "e", ""));
        }
        assert_eq!(reg.traces().len(), TRACE_CAPACITY);
        assert_eq!(reg.traces_dropped()["e"], 5);
        assert_eq!(reg.traces_dropped_total(), 5);
    }

    #[test]
    fn trace_sink_capacity_is_configurable_and_drops_count_per_kind() {
        let mut reg = Registry::with_trace_capacity(2);
        assert_eq!(reg.trace_capacity(), 2);
        reg.push_trace(TraceRecord::new(1, 0, "detection", ""));
        reg.push_trace(TraceRecord::new(2, 0, "detection", ""));
        reg.push_trace(TraceRecord::new(3, 0, "detection", ""));
        reg.push_trace(TraceRecord::new(4, 0, "injection_start", ""));
        assert_eq!(reg.traces().len(), 2);
        assert_eq!(reg.traces_dropped()["detection"], 1);
        assert_eq!(reg.traces_dropped()["injection_start"], 1);
        assert_eq!(reg.traces_dropped_total(), 2);
        // Merging folds per-kind drop counts and respects self's capacity.
        let mut other = Registry::with_trace_capacity(2);
        other.push_trace(TraceRecord::new(5, 1, "detection", ""));
        reg.merge(&other);
        assert_eq!(reg.traces().len(), 2);
        assert_eq!(reg.traces_dropped()["detection"], 2);
    }

    #[test]
    fn labeled_keys_survive_json_escaping() {
        let mut reg = Registry::new();
        reg.add("errors_total{kind=\"stuff\"}", 1);
        let json = reg.snapshot_json();
        assert!(json.contains("errors_total{kind=\\\"stuff\\\"}"));
    }
}

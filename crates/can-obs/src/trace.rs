//! Structured trace records for defense-FSM transitions and other
//! discrete, bit-timestamped events.
//!
//! A [`TraceRecord`] is deliberately small and flat: the bit-time of the
//! event, the node index it happened on, a stable event name (see the
//! `EVT_*` constants) and a free-form detail string. The registry keeps a
//! bounded sink of these (see [`crate::registry::TRACE_CAPACITY`]); the
//! `can-trace` crate knows how to lift them into its timeline and VCD
//! views.

/// A MichiCAN detection FSM reached an accepting state (spoof confirmed).
pub const EVT_DETECTION: &str = "detection";
/// A defender started driving its counterattack (injection window opened).
pub const EVT_INJECT_START: &str = "injection_start";
/// A defender stopped driving its counterattack.
pub const EVT_INJECT_END: &str = "injection_end";
/// A supervised defender degraded to pass-through mode.
pub const EVT_DEGRADED: &str = "degraded";
/// A supervised defender re-armed after degradation.
pub const EVT_REARMED: &str = "rearmed";
/// A detection FSM transitioned between states (detail carries `from->to`).
pub const EVT_FSM_TRANSITION: &str = "fsm_transition";

/// One discrete observability event, timestamped in bus bit times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Bus time of the event, in bit times since simulation start.
    pub at_bits: u64,
    /// Index of the node the event concerns.
    pub node: u32,
    /// Stable event name, ideally one of the `EVT_*` constants.
    pub event: String,
    /// Free-form detail (e.g. the frame id, a decision position).
    pub detail: String,
}

impl TraceRecord {
    /// Builds a record.
    pub fn new(
        at_bits: u64,
        node: u32,
        event: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        TraceRecord {
            at_bits,
            node,
            event: event.into(),
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builder_carries_fields() {
        let r = TraceRecord::new(42, 3, EVT_DETECTION, "id=0x173");
        assert_eq!(r.at_bits, 42);
        assert_eq!(r.node, 3);
        assert_eq!(r.event, "detection");
        assert_eq!(r.detail, "id=0x173");
    }
}

//! The [`Recorder`] handle: the one type instrumented code holds.
//!
//! A recorder is either **disabled** (the default — every call is a single
//! `None` branch and returns immediately, no allocation, no formatting) or
//! **enabled**, in which case it shares a [`Registry`] behind
//! `Rc<RefCell<…>>` so a simulator, its nodes and their agents can all
//! feed the same store without threading `&mut` through every layer.
//!
//! Recorders are deliberately `!Send`: in the parallel experiment engine a
//! fresh recorder is created *inside* each cell closure and its registry
//! (which is `Send`) is returned and merged in cell-index order — see
//! `bench::runner::ExperimentPlan::run_metered`.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::registry::Registry;
use crate::trace::TraceRecord;

/// Cheap, clonable handle to a shared metrics registry; a disabled
/// recorder is a `None` and every operation on it is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Rc<RefCell<Registry>>>);

impl Recorder {
    /// The no-op recorder. All operations return immediately; label
    /// formatting guarded by [`Recorder::is_enabled`] is never reached.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A live recorder over a fresh registry.
    pub fn enabled() -> Self {
        Recorder(Some(Rc::new(RefCell::new(Registry::new()))))
    }

    /// A live recorder whose trace sink retains at most `capacity`
    /// records (the default is `registry::TRACE_CAPACITY`).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Recorder(Some(Rc::new(RefCell::new(Registry::with_trace_capacity(
            capacity,
        )))))
    }

    /// Whether this recorder actually records. Instrumentation sites use
    /// this to skip metric-key formatting on the disabled path:
    ///
    /// ```
    /// # use can_obs::Recorder;
    /// # let rec = Recorder::disabled();
    /// # let node = 3;
    /// if rec.is_enabled() {
    ///     rec.add(&format!("can_node_tec{{node=\"{node}\"}}"), 1);
    /// }
    /// ```
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Increments the counter `key` by one.
    #[inline]
    pub fn inc(&self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `delta` to the counter `key`.
    #[inline]
    pub fn add(&self, key: &str, delta: u64) {
        if let Some(reg) = &self.0 {
            reg.borrow_mut().add(key, delta);
        }
    }

    /// Sets the gauge `key`.
    #[inline]
    pub fn set_gauge(&self, key: &str, value: i64) {
        if let Some(reg) = &self.0 {
            reg.borrow_mut().set_gauge(key, value);
        }
    }

    /// Records `value` into the histogram `key` with the default buckets.
    #[inline]
    pub fn observe(&self, key: &str, value: u64) {
        self.observe_with(key, crate::registry::DEFAULT_BUCKETS, value);
    }

    /// Records `value` into the histogram `key`, creating it with `bounds`
    /// on first use.
    #[inline]
    pub fn observe_with(&self, key: &str, bounds: &[u64], value: u64) {
        if let Some(reg) = &self.0 {
            reg.borrow_mut().observe(key, bounds, value);
        }
    }

    /// Registers an empty histogram so it appears in snapshots even with
    /// zero observations (stable schema across runs).
    #[inline]
    pub fn declare_histogram(&self, key: &str, bounds: &[u64]) {
        if let Some(reg) = &self.0 {
            reg.borrow_mut().declare_histogram(key, bounds);
        }
    }

    /// Appends a structured trace record.
    #[inline]
    pub fn trace(&self, at_bits: u64, node: u32, event: &str, detail: &str) {
        if let Some(reg) = &self.0 {
            reg.borrow_mut()
                .push_trace(TraceRecord::new(at_bits, node, event, detail));
        }
    }

    /// Starts a wall-clock span; the guard records elapsed nanoseconds
    /// into the registry's span stats when dropped. On a disabled recorder
    /// the guard holds nothing and drop is free.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.0 {
            Some(reg) => SpanGuard {
                inner: Some((Rc::clone(reg), name.to_string(), Instant::now())),
            },
            None => SpanGuard { inner: None },
        }
    }

    /// Merges an already-collected registry (e.g. from a finished
    /// experiment cell) into this recorder's registry. No-op when disabled.
    pub fn merge_registry(&self, other: &Registry) {
        if let Some(reg) = &self.0 {
            reg.borrow_mut().merge(other);
        }
    }

    /// Runs `f` against the underlying registry, if enabled.
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> Option<T> {
        self.0.as_ref().map(|reg| f(&reg.borrow()))
    }

    /// Consumes the recorder and returns its registry (empty when
    /// disabled). If other clones are still alive, the registry is copied
    /// out instead of moved.
    pub fn into_registry(self) -> Registry {
        match self.0 {
            Some(reg) => {
                Rc::try_unwrap(reg).map_or_else(|rc| rc.borrow().clone(), RefCell::into_inner)
            }
            None => Registry::new(),
        }
    }

    /// Renders the deterministic JSON snapshot (`{}`-ish empty document
    /// when disabled).
    pub fn snapshot_json(&self) -> String {
        match &self.0 {
            Some(reg) => reg.borrow().snapshot_json(),
            None => Registry::new().snapshot_json(),
        }
    }

    /// Renders the Prometheus text exposition (empty when disabled).
    pub fn prometheus_text(&self) -> String {
        match &self.0 {
            Some(reg) => reg.borrow().prometheus_text(),
            None => String::new(),
        }
    }
}

/// RAII guard returned by [`Recorder::span`]; records the span's wall
/// duration when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Rc<RefCell<Registry>>, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((reg, name, started)) = self.inner.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            reg.borrow_mut().record_span(&name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.inc("a_total");
        rec.add("a_total", 41);
        rec.set_gauge("g", 7);
        rec.observe("h_bits", 12);
        rec.trace(1, 0, "detection", "x");
        drop(rec.span("wall"));
        assert!(rec.with_registry(|_| ()).is_none());
        assert!(rec.into_registry().is_empty());
    }

    #[test]
    fn enabled_recorder_shares_one_registry_across_clones() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        rec.inc("hits_total");
        clone.add("hits_total", 2);
        let reg = rec.into_registry(); // clone still alive → copied out
        assert_eq!(reg.counter("hits_total"), 3);
        assert_eq!(clone.into_registry().counter("hits_total"), 3);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let rec = Recorder::enabled();
        {
            let _guard = rec.span("unit_wall");
        }
        let stats = rec.with_registry(|r| r.span_stats("unit_wall")).unwrap();
        assert_eq!(stats.unwrap().count, 1);
    }

    #[test]
    fn merge_registry_folds_external_results_in() {
        let cell = Recorder::enabled();
        cell.inc("cell_total");
        let collected = cell.into_registry();

        let root = Recorder::enabled();
        root.inc("cell_total");
        root.merge_registry(&collected);
        assert_eq!(root.into_registry().counter("cell_total"), 2);
    }

    #[test]
    fn configurable_trace_capacity_bounds_the_sink() {
        let rec = Recorder::with_trace_capacity(1);
        rec.trace(1, 0, "detection", "a");
        rec.trace(2, 0, "detection", "b");
        let reg = rec.into_registry();
        assert_eq!(reg.trace_capacity(), 1);
        assert_eq!(reg.traces().len(), 1);
        assert_eq!(reg.traces_dropped()["detection"], 1);
    }

    #[test]
    fn disabled_snapshot_is_the_empty_document() {
        let rec = Recorder::disabled();
        let json = rec.snapshot_json();
        assert!(json.contains("\"schema\": \"can-obs/v1\""));
        assert_eq!(rec.prometheus_text(), "");
    }
}

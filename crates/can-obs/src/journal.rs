//! The causal event journal: sim-time events with stable causal ids.
//!
//! The [`Registry`](crate::Registry) answers *how much* (counters,
//! histograms); the trace sink answers *what, when* (flat records). What
//! neither can answer is *which stimulus caused which reaction*: an attack
//! strike, the defender's detection, the counterattack it triggered and
//! the attacker's eventual bus-off are four records with nothing linking
//! them. The [`Journal`] closes that gap — every event carries two causal
//! ids:
//!
//! * **`frame_seq`** — a monotone sequence number assigned to each frame
//!   transmission attempt as it starts on the bus;
//! * **`chain_id`** — the `frame_seq` of the *first* attempt of the
//!   episode. Retransmissions after arbitration loss or a transmit error
//!   inherit the chain of the destroyed attempt, so an entire attack
//!   episode (spoof start → detection → injection → error → retry → … →
//!   bus-off) reconstructs as one linked chain.
//!
//! ## Determinism contract
//!
//! Journal content is **sim-time only**: bit timestamps, node indices,
//! stable kind names, causal ids and detail strings — never host time.
//! The export ([`Journal::export_jsonl`], schema `can-obs-journal/v1`)
//! sorts events canonically *within each merge epoch*: per-cell journals
//! merged in cell-index order ([`Journal::merge_store`]) therefore render
//! byte-identically at any shard count, and because the lockstep,
//! fast-forward and packed kernels produce the same event *multiset* (only
//! the in-cell append order may differ — the packed kernel replays agents
//! word-at-a-time), the canonical sort makes the export byte-identical
//! across all three `SimMode`s as well.
//!
//! Like the [`Recorder`](crate::Recorder), a disabled journal is a `None`
//! and every call is a single branch — the hot path never allocates.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::json::{self, JsonValue};

/// Schema tag of the journal export; bump on any incompatible change.
pub const JOURNAL_SCHEMA: &str = "can-obs-journal/v1";

/// Default maximum retained events per journal store; overflow is counted
/// per kind in [`JournalStore::dropped`] instead of stored. Byte-identity
/// across modes only holds below the capacity (which events overflow
/// drops depends on append order) — the default is sized so every
/// in-repo scenario stays far under it.
pub const JOURNAL_CAPACITY: usize = 262_144;

// Stable event kind names. Frame lifecycle (emitted by `can-sim`):
/// A node started transmitting (SOF won or contended).
pub const JK_FRAME_START: &str = "frame_start";
/// A transmitting node lost arbitration (will retry on the same chain).
pub const JK_ARB_LOST: &str = "arb_lost";
/// A frame completed with a valid ACK.
pub const JK_FRAME_ACK: &str = "frame_ack";
/// A transmitter saw an error (detail: error kind + offset into frame).
pub const JK_FRAME_ERROR: &str = "frame_error";
/// A receiver saw an error on the bus frame.
pub const JK_RX_ERROR: &str = "rx_error";
/// A node's error-confinement state changed.
pub const JK_ERROR_STATE: &str = "error_state";
/// A node went bus-off.
pub const JK_BUS_OFF: &str = "bus_off";
/// A node recovered from bus-off.
pub const JK_RECOVERED: &str = "recovered";
// Defense lifecycle (emitted by `michican` / `parrot`):
/// A detection FSM confirmed a spoof.
pub const JK_DETECTION: &str = "detection";
/// A defender opened its injection window.
pub const JK_INJECT_START: &str = "injection_start";
/// A defender closed its injection window.
pub const JK_INJECT_END: &str = "injection_end";
/// A supervised defender degraded to pass-through.
pub const JK_DEGRADED: &str = "degraded";
/// A supervised defender re-armed.
pub const JK_REARMED: &str = "rearmed";
// Attack lifecycle (emitted by `can-attacks`):
/// A bit-level attacker fired its strike.
pub const JK_STRIKE: &str = "strike";
/// An adaptive attacker finished a passive probe observation.
pub const JK_PROBE: &str = "probe";
// IDS lifecycle (emitted by `can-ids` detector taps):
/// A passive detector raised an alert on a completed frame (detail:
/// detector label + alert kind + frame identifier). Emitted at the frame's
/// completion bit, so the event inherits the completed frame's
/// `frame_seq`/`chain_id` and alert chains reconstruct causally.
pub const JK_IDS_ALERT: &str = "ids_alert";
/// A passive detector finished training and armed.
pub const JK_IDS_ARMED: &str = "ids_armed";

/// One journal event. All content is sim-time deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JournalEvent {
    /// Bus time of the event, in bit times since simulation start.
    pub at_bits: u64,
    /// Index of the node the event concerns.
    pub node: u32,
    /// Stable kind name (one of the `JK_*` constants).
    pub kind: String,
    /// Sequence number of the frame attempt this event belongs to
    /// (0 = no frame context).
    pub frame_seq: u64,
    /// `frame_seq` of the first attempt of the episode (0 = none).
    pub chain_id: u64,
    /// Free-form detail (identifier, error kind, FSM position, …).
    pub detail: String,
}

/// The store behind an enabled [`Journal`]: events (tagged with their
/// merge epoch), causal-context registers and per-kind drop counters.
/// `Send`, so per-cell stores can cross shard workers back to the merge
/// point (the handle itself, like a `Recorder`, is `!Send`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalStore {
    /// `(epoch, event)` pairs; epoch 0 is this store's own recordings,
    /// merged stores occupy later epochs in merge order.
    events: Vec<(u64, JournalEvent)>,
    /// 1 + highest assigned epoch (so fresh stores start at 1).
    next_epoch: u64,
    /// Retention cap; overflow counts into `dropped`.
    capacity: usize,
    /// Events dropped at capacity, by kind.
    dropped: BTreeMap<String, u64>,
    /// Next frame sequence number (1-based; 0 means "no frame").
    next_frame_seq: u64,
    /// Current bus frame context: `(frame_seq, chain_id, start_bits)` of
    /// the most recent `frame_start`.
    bus_ctx: (u64, u64, u64),
    /// Per-node in-flight transmissions: `(frame_seq, chain_id, start_bits)`.
    node_frame: BTreeMap<u32, (u64, u64, u64)>,
    /// Per-node chain to inherit on the next `frame_start` (set when an
    /// attempt ends in arbitration loss or a transmit error).
    pending_chain: BTreeMap<u32, u64>,
}

impl Default for JournalStore {
    fn default() -> Self {
        JournalStore::with_capacity(JOURNAL_CAPACITY)
    }
}

impl JournalStore {
    /// An empty store retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        JournalStore {
            events: Vec::new(),
            next_epoch: 1,
            capacity,
            dropped: BTreeMap::new(),
            next_frame_seq: 1,
            bus_ctx: (0, 0, 0),
            node_frame: BTreeMap::new(),
            pending_chain: BTreeMap::new(),
        }
    }

    fn push(&mut self, event: JournalEvent) {
        if self.events.len() < self.capacity {
            self.events.push((0, event));
        } else {
            *self.dropped.entry(event.kind).or_insert(0) += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped at capacity, by kind.
    pub fn dropped(&self) -> &BTreeMap<String, u64> {
        &self.dropped
    }

    /// The retained events in canonical (export) order: merge-epoch major,
    /// then full event content — the order [`Journal::export_jsonl`] uses.
    pub fn canonical_events(&self) -> Vec<&JournalEvent> {
        let mut refs: Vec<&(u64, JournalEvent)> = self.events.iter().collect();
        refs.sort();
        refs.iter().map(|(_, e)| e).collect()
    }

    /// Merges `other` into `self` as the next epoch block. Call in
    /// cell-index order to keep the export shard-count independent.
    pub fn merge(&mut self, other: &JournalStore) {
        let offset = self.next_epoch;
        for (epoch, event) in &other.events {
            if self.events.len() < self.capacity {
                self.events.push((offset + epoch, event.clone()));
            } else {
                *self.dropped.entry(event.kind.clone()).or_insert(0) += 1;
            }
        }
        for (kind, n) in &other.dropped {
            *self.dropped.entry(kind.clone()).or_insert(0) += n;
        }
        self.next_epoch += other.next_epoch;
    }
}

/// Cheap, clonable handle to a shared journal store; a disabled journal is
/// a `None` and every operation on it is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Journal(Option<Rc<RefCell<JournalStore>>>);

impl Journal {
    /// The no-op journal.
    pub fn disabled() -> Self {
        Journal(None)
    }

    /// A live journal over a fresh store with the default capacity.
    pub fn enabled() -> Self {
        Journal(Some(Rc::new(RefCell::new(JournalStore::default()))))
    }

    /// A live journal retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Journal(Some(Rc::new(RefCell::new(JournalStore::with_capacity(
            capacity,
        )))))
    }

    /// Whether this journal actually records; emission sites that format
    /// detail strings guard on this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// A frame attempt started on `node`: assigns the next `frame_seq`,
    /// inherits the node's pending chain (retransmission) or opens a new
    /// one, updates the bus context and emits [`JK_FRAME_START`].
    pub fn begin_frame(&self, at_bits: u64, node: u32, detail: &str) {
        if let Some(store) = &self.0 {
            let mut s = store.borrow_mut();
            let seq = s.next_frame_seq;
            s.next_frame_seq += 1;
            let chain = s.pending_chain.remove(&node).unwrap_or(seq);
            s.node_frame.insert(node, (seq, chain, at_bits));
            s.bus_ctx = (seq, chain, at_bits);
            s.push(JournalEvent {
                at_bits,
                node,
                kind: JK_FRAME_START.to_string(),
                frame_seq: seq,
                chain_id: chain,
                detail: detail.to_string(),
            });
        }
    }

    /// A frame attempt on `node` ended: [`JK_ARB_LOST`], [`JK_FRAME_ACK`]
    /// or [`JK_FRAME_ERROR`]. With `retry` the chain stays open and the
    /// node's next [`Journal::begin_frame`] inherits it.
    pub fn end_frame(&self, at_bits: u64, node: u32, kind: &str, detail: &str, retry: bool) {
        if let Some(store) = &self.0 {
            let mut s = store.borrow_mut();
            let (seq, chain, _) = s.node_frame.remove(&node).unwrap_or(s.bus_ctx);
            if retry {
                s.pending_chain.insert(node, chain);
            } else {
                s.pending_chain.remove(&node);
            }
            s.push(JournalEvent {
                at_bits,
                node,
                kind: kind.to_string(),
                frame_seq: seq,
                chain_id: chain,
                detail: detail.to_string(),
            });
        }
    }

    /// A node-scoped event ([`JK_ERROR_STATE`], [`JK_BUS_OFF`], …): stamped
    /// with the node's in-flight frame if it has one, else its still-open
    /// retransmission chain (`frame_seq` 0 — e.g. bus-off after the frame
    /// already ended in an error), else the bus context.
    pub fn node_event(&self, at_bits: u64, node: u32, kind: &str, detail: &str) {
        if let Some(store) = &self.0 {
            let mut s = store.borrow_mut();
            let (seq, chain, _) = s
                .node_frame
                .get(&node)
                .copied()
                .or_else(|| s.pending_chain.get(&node).map(|&chain| (0, chain, 0)))
                .unwrap_or(s.bus_ctx);
            s.push(JournalEvent {
                at_bits,
                node,
                kind: kind.to_string(),
                frame_seq: seq,
                chain_id: chain,
                detail: detail.to_string(),
            });
        }
    }

    /// A bus-context event (defense reactions, attacker strikes, receiver
    /// errors): stamped with the current bus frame's causal ids, linking
    /// the reaction to the frame that provoked it.
    pub fn event(&self, at_bits: u64, node: u32, kind: &str, detail: &str) {
        if let Some(store) = &self.0 {
            let mut s = store.borrow_mut();
            let (seq, chain, _) = s.bus_ctx;
            s.push(JournalEvent {
                at_bits,
                node,
                kind: kind.to_string(),
                frame_seq: seq,
                chain_id: chain,
                detail: detail.to_string(),
            });
        }
    }

    /// Offset of `at_bits` into the current bus frame (stuffed bit times
    /// since its `frame_start`), for error-position details.
    pub fn bus_frame_offset(&self, at_bits: u64) -> u64 {
        match &self.0 {
            Some(store) => at_bits.saturating_sub(store.borrow().bus_ctx.2),
            None => 0,
        }
    }

    /// Offset of `at_bits` into `node`'s in-flight frame (falling back to
    /// the bus frame), for transmitter error-position details.
    pub fn node_frame_offset(&self, at_bits: u64, node: u32) -> u64 {
        match &self.0 {
            Some(store) => {
                let s = store.borrow();
                let (_, _, start) = s.node_frame.get(&node).copied().unwrap_or(s.bus_ctx);
                at_bits.saturating_sub(start)
            }
            None => 0,
        }
    }

    /// Drops a node's open chain (mailbox flushed by a crash restart) so
    /// its next traffic starts a fresh episode.
    pub fn close_chain(&self, node: u32) {
        if let Some(store) = &self.0 {
            let mut s = store.borrow_mut();
            s.pending_chain.remove(&node);
            s.node_frame.remove(&node);
        }
    }

    /// Merges an already-collected store (e.g. from a finished experiment
    /// cell) as the next epoch block. No-op when disabled.
    pub fn merge_store(&self, other: &JournalStore) {
        if let Some(store) = &self.0 {
            store.borrow_mut().merge(other);
        }
    }

    /// Runs `f` against the underlying store, if enabled.
    pub fn with_store<T>(&self, f: impl FnOnce(&JournalStore) -> T) -> Option<T> {
        self.0.as_ref().map(|store| f(&store.borrow()))
    }

    /// Consumes the journal and returns its store (empty when disabled).
    /// If other clones are still alive, the store is copied out.
    pub fn into_store(self) -> JournalStore {
        match self.0 {
            Some(store) => {
                Rc::try_unwrap(store).map_or_else(|rc| rc.borrow().clone(), RefCell::into_inner)
            }
            None => JournalStore::default(),
        }
    }

    /// Renders the deterministic JSONL export (schema
    /// [`JOURNAL_SCHEMA`]): a header line, then one line per event in
    /// canonical order. Byte-identical across shard counts (given
    /// cell-index-order merges) and across the three simulation modes.
    pub fn export_jsonl(&self) -> String {
        let empty = JournalStore::default();
        let store;
        let s = match &self.0 {
            Some(rc) => {
                store = rc.borrow();
                &*store
            }
            None => &empty,
        };
        let mut out = String::with_capacity(64 + s.events.len() * 96);
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"events\":{},\"dropped\":{{",
            JOURNAL_SCHEMA,
            s.events.len()
        );
        for (i, (kind, n)) in s.dropped.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{n}", json::escape(kind));
        }
        out.push_str("}}\n");
        for event in s.canonical_events() {
            let _ = writeln!(
                out,
                "{{\"at\":{},\"node\":{},\"kind\":\"{}\",\"seq\":{},\"chain\":{},\"detail\":\"{}\"}}",
                event.at_bits,
                event.node,
                json::escape(&event.kind),
                event.frame_seq,
                event.chain_id,
                json::escape(&event.detail)
            );
        }
        out
    }
}

/// Parses a [`Journal::export_jsonl`] document back into its events (the
/// header is validated, drop counts are returned alongside). Used by the
/// chrome-trace exporter and the CI determinism checks.
pub fn parse_export(text: &str) -> Result<(Vec<JournalEvent>, BTreeMap<String, u64>), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty journal export")?;
    let doc = json::parse(header).map_err(|e| format!("bad journal header: {e}"))?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == JOURNAL_SCHEMA => {}
        other => return Err(format!("unsupported journal schema {other:?}")),
    }
    let mut dropped = BTreeMap::new();
    if let Some(map) = doc.get("dropped").and_then(JsonValue::as_object) {
        for (kind, n) in map {
            dropped.insert(
                kind.clone(),
                n.as_u64()
                    .ok_or_else(|| format!("dropped['{kind}'] is not a u64"))?,
            );
        }
    }
    let declared = doc
        .get("events")
        .and_then(JsonValue::as_u64)
        .ok_or("journal header missing 'events'")?;
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        let doc = json::parse(line).map_err(|e| format!("event {i}: {e}"))?;
        let u64_field = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("event {i}: field '{name}' missing or not a u64"))
        };
        let str_field = |name: &str| {
            doc.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event {i}: field '{name}' missing"))
        };
        events.push(JournalEvent {
            at_bits: u64_field("at")?,
            node: u32::try_from(u64_field("node")?)
                .map_err(|_| format!("event {i}: node out of range"))?,
            kind: str_field("kind")?,
            frame_seq: u64_field("seq")?,
            chain_id: u64_field("chain")?,
            detail: str_field("detail")?,
        });
    }
    if events.len() as u64 != declared {
        return Err(format!(
            "journal header declares {declared} events, found {}",
            events.len()
        ));
    }
    Ok((events, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::disabled();
        assert!(!j.is_enabled());
        j.begin_frame(1, 0, "id=0x173");
        j.event(2, 1, JK_DETECTION, "pos=9");
        j.end_frame(3, 0, JK_FRAME_ACK, "", false);
        assert!(j.with_store(|_| ()).is_none());
        assert!(j.into_store().is_empty());
    }

    #[test]
    fn chains_link_retransmissions_and_reactions() {
        let j = Journal::enabled();
        // Attempt 1: spoof starts, defender detects + injects, error.
        j.begin_frame(100, 1, "id=0x173");
        j.event(109, 2, JK_DETECTION, "pos=9");
        j.event(110, 2, JK_INJECT_START, "");
        j.end_frame(115, 1, JK_FRAME_ERROR, "kind=stuff off=15", true);
        // Attempt 2 inherits the chain; succeeds, closing it.
        j.begin_frame(140, 1, "id=0x173");
        j.end_frame(250, 1, JK_FRAME_ACK, "id=0x173", false);
        // A fresh frame opens a new chain.
        j.begin_frame(300, 1, "id=0x173");

        let store = j.into_store();
        let events = store.canonical_events();
        assert_eq!(events.len(), 7);
        let by_kind =
            |k: &str| -> Vec<&&JournalEvent> { events.iter().filter(|e| e.kind == k).collect() };
        // Both attempts and the defender reaction share chain 1.
        assert_eq!(by_kind(JK_FRAME_START)[0].chain_id, 1);
        assert_eq!(by_kind(JK_FRAME_START)[1].chain_id, 1);
        assert_eq!(by_kind(JK_FRAME_START)[1].frame_seq, 2);
        assert_eq!(by_kind(JK_DETECTION)[0].chain_id, 1);
        assert_eq!(by_kind(JK_DETECTION)[0].frame_seq, 1);
        assert_eq!(by_kind(JK_FRAME_ACK)[0].chain_id, 1);
        // The post-ACK frame starts a new chain.
        assert_eq!(by_kind(JK_FRAME_START)[2].frame_seq, 3);
        assert_eq!(by_kind(JK_FRAME_START)[2].chain_id, 3);
    }

    #[test]
    fn export_is_append_order_independent() {
        // The same multiset of events in two different append orders (as
        // lockstep vs packed agent replay would produce) exports
        // identically.
        let a = Journal::enabled();
        a.begin_frame(10, 0, "id=0x064");
        a.event(12, 1, JK_DETECTION, "pos=3");
        a.event(12, 2, JK_STRIKE, "bit=12");
        let b = Journal::enabled();
        b.begin_frame(10, 0, "id=0x064");
        b.event(12, 2, JK_STRIKE, "bit=12");
        b.event(12, 1, JK_DETECTION, "pos=3");
        assert_eq!(a.export_jsonl(), b.export_jsonl());
    }

    #[test]
    fn merge_in_index_order_is_shard_independent() {
        let cell = |base: u64| {
            let j = Journal::enabled();
            j.begin_frame(base, 0, "id=0x100");
            j.end_frame(base + 50, 0, JK_FRAME_ACK, "", false);
            j.into_store()
        };
        let (c0, c1) = (cell(1_000), cell(10));
        // Serial: merge in index order. "Sharded": same merge order even
        // though cell 1 finished first — byte-identical.
        let serial = Journal::enabled();
        serial.merge_store(&c0);
        serial.merge_store(&c1);
        let sharded = Journal::enabled();
        sharded.merge_store(&c0);
        sharded.merge_store(&c1);
        assert_eq!(serial.export_jsonl(), sharded.export_jsonl());
        // Epochs keep the cells apart even though cell 1's timestamps are
        // earlier: cell 0's events render first.
        let (events, _) = parse_export(&serial.export_jsonl()).unwrap();
        assert_eq!(events[0].at_bits, 1_000);
        assert_eq!(events[2].at_bits, 10);
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let j = Journal::enabled();
        j.begin_frame(5, 0, "id=0x173");
        j.event(9, 1, JK_DETECTION, "pos=9 \"quoted\"\nnewline");
        let (events, dropped) = parse_export(&j.export_jsonl()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].detail, "pos=9 \"quoted\"\nnewline");
        assert!(dropped.is_empty());
        assert!(parse_export("{\"schema\":\"nope\"}\n").is_err());
        assert!(parse_export("").is_err());
    }

    #[test]
    fn capacity_overflow_counts_drops_per_kind() {
        let j = Journal::with_capacity(2);
        j.begin_frame(1, 0, "");
        j.event(2, 0, JK_DETECTION, "");
        j.event(3, 0, JK_DETECTION, "");
        j.event(4, 0, JK_STRIKE, "");
        let store = j.into_store();
        assert_eq!(store.len(), 2);
        assert_eq!(store.dropped()[JK_DETECTION], 1);
        assert_eq!(store.dropped()[JK_STRIKE], 1);
        let export = Journal::disabled().export_jsonl();
        assert!(export.starts_with("{\"schema\":\"can-obs-journal/v1\""));
    }

    #[test]
    fn bus_frame_offset_tracks_the_current_frame() {
        let j = Journal::enabled();
        assert_eq!(j.bus_frame_offset(7), 7);
        j.begin_frame(100, 0, "");
        assert_eq!(j.bus_frame_offset(115), 15);
        assert_eq!(j.node_frame_offset(130, 0), 30);
        assert_eq!(j.node_frame_offset(130, 5), 30); // falls back to bus ctx
        assert_eq!(Journal::disabled().bus_frame_offset(9), 0);
        assert_eq!(Journal::disabled().node_frame_offset(9, 0), 0);
    }
}

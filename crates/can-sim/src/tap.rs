//! Passive frame taps: N observers per bus without N nodes.
//!
//! A [`FrameTap`] is a purely passive observer attached to the simulator
//! via [`crate::builder::SimBuilder::tap`]. Whenever a frame completes on
//! the bus — a transmitter finishing its EOF
//! ([`EventKind::TransmissionSucceeded`](crate::event::EventKind)) or a
//! receiver validating a frame with no live transmitter
//! ([`EventKind::FrameReceived`](crate::event::EventKind), e.g. a
//! ghost-injected frame) — every tap sees that frame exactly once, stamped
//! with the completion bit time.
//!
//! Taps exist so many concurrent intrusion detectors can observe one bus in
//! a single run: unlike a monitoring [`Node`](crate::node::Node), a tap has
//! no controller, never drives the bus, cannot ACK, and adds no per-bit
//! work beyond the delivery call on completion bits.
//!
//! ## Determinism contract
//!
//! Taps are fed exclusively from the lockstep bit path. The accelerated
//! kernels (fast-forward, packed) only ever skip stretches where no frame
//! completes — the packed receiver dry-run stops *before* any parser event
//! — so a tap observes the identical `(frame, instant)` sequence in all
//! three sim modes (lockstep, fast-forward, packed) and at any shard
//! count. In return a
//! tap must be passive: it cannot influence the bus, the nodes, or the
//! schedule. Its one hook into time is [`FrameTap::next_activity`], which
//! participates in the idle-gap quiescence handshake: returning
//! `Some(instant)` bounds closed-form skips so the simulator re-enters
//! lockstep no later than `instant` (useful for taps that maintain
//! time-windowed internal state); returning `None` (the default) declares
//! the tap frame-driven and never constrains acceleration.

use can_core::{BitInstant, CanFrame};

/// A passive observer of completed frames on the bus.
///
/// Implementors receive every completed frame once via
/// [`FrameTap::on_frame`]; see the [module docs](self) for the delivery
/// and determinism contract.
pub trait FrameTap {
    /// Called once per completed frame, at the frame's completion bit.
    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant);

    /// The earliest future instant at which this tap wants the simulator
    /// back in lockstep, or `None` when the tap is purely frame-driven.
    ///
    /// Contract (same as [`can_core::app::Application::next_activity`]):
    /// the returned instant must be strictly after `now` to permit a skip;
    /// `Some(now)` vetoes acceleration for the current bit.
    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        let _ = now;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingTap(usize);

    impl FrameTap for CountingTap {
        fn on_frame(&mut self, _frame: &CanFrame, _now: BitInstant) {
            self.0 += 1;
        }
    }

    #[test]
    fn default_next_activity_is_none() {
        let tap = CountingTap(0);
        assert_eq!(tap.next_activity(BitInstant::ZERO), None);
    }
}

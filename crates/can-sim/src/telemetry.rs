//! Kernel self-telemetry: how the simulator spent its bits.
//!
//! The observability [`Registry`](can_obs::Registry) records what happened
//! *on the bus* and is required to be byte-identical across the lockstep,
//! fast-forward and packed kernels. Telemetry about the kernels themselves
//! — how many bits each engine resolved, how long the packed stretches
//! were, which seam refused a horizon — is *by construction* different per
//! [`SimMode`](crate::measure::SimMode), so it lives here, outside the
//! registry and outside every differential fingerprint. It is always on:
//! the accounting is a handful of integer adds per quantum (one per bit on
//! the lockstep path), which `bench::perfbase` keeps inside its noise
//! budget.
//!
//! [`KernelTelemetry`] feeds the `kernel_telemetry` section of
//! `BENCH_sim.json` (see `bench::perfbase`) via [`KernelTelemetry::to_json`].

use std::fmt::Write as _;

use can_obs::Histogram;

use crate::controller::StretchRole;

/// Why the packed engine fell back to lockstep for a quantum: the first
/// seam (in evaluation order) that refused to grant a multi-bit horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackCause {
    /// The fault stack has activity due at or before the current bit.
    FaultStack,
    /// A node-level fault seam (crash window / restart edge) is due.
    NodeFault,
    /// A node's application poll is due this bit.
    AppPoll,
    /// A node's attack/defense agent limited its drive promise.
    AgentDrive,
    /// A node's controller FSM state cannot be stretched.
    Controller,
    /// All seams agreed but the common horizon was under 2 bits.
    ShortCap,
    /// The wired-AND of the planned words shortened the stretch to zero
    /// (a dominant bit lands on the first bit of the window).
    PostAndShorten,
    /// A receiver's dry-run disagreed with the planned window (stuff
    /// insertion or field boundary inside the window).
    ReceiverDryRun,
}

impl FallbackCause {
    /// Every cause, in the order counters are reported.
    pub const ALL: [FallbackCause; 8] = [
        FallbackCause::FaultStack,
        FallbackCause::NodeFault,
        FallbackCause::AppPoll,
        FallbackCause::AgentDrive,
        FallbackCause::Controller,
        FallbackCause::ShortCap,
        FallbackCause::PostAndShorten,
        FallbackCause::ReceiverDryRun,
    ];

    /// Stable snake_case name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FallbackCause::FaultStack => "fault_stack",
            FallbackCause::NodeFault => "node_fault",
            FallbackCause::AppPoll => "app_poll",
            FallbackCause::AgentDrive => "agent_drive",
            FallbackCause::Controller => "controller",
            FallbackCause::ShortCap => "short_cap",
            FallbackCause::PostAndShorten => "post_and_shorten",
            FallbackCause::ReceiverDryRun => "receiver_dry_run",
        }
    }

    fn index(self) -> usize {
        match self {
            FallbackCause::FaultStack => 0,
            FallbackCause::NodeFault => 1,
            FallbackCause::AppPoll => 2,
            FallbackCause::AgentDrive => 3,
            FallbackCause::Controller => 4,
            FallbackCause::ShortCap => 5,
            FallbackCause::PostAndShorten => 6,
            FallbackCause::ReceiverDryRun => 7,
        }
    }
}

/// Stretch-length histogram buckets (bits); stretches are capped at the
/// 64-bit word width, so the last bound is exact.
const STRETCH_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Stable labels for the per-role bit accounting, indexed like
/// `role_index`.
const ROLE_LABELS: [&str; 6] = [
    "down",
    "transmit",
    "receive",
    "passive",
    "integrating",
    "bus_off",
];

fn role_index(role: StretchRole) -> usize {
    match role {
        StretchRole::Down => 0,
        StretchRole::Transmit { .. } => 1,
        StretchRole::Receive => 2,
        StretchRole::Passive => 3,
        StretchRole::Integrating { .. } => 4,
        StretchRole::BusOff => 5,
    }
}

/// Per-simulator counters for how the three engines resolved bus time.
/// Always collected; read through [`Simulator::kernel_telemetry`]
/// (`crate::Simulator::kernel_telemetry`).
#[derive(Debug, Clone)]
pub struct KernelTelemetry {
    lockstep_bits: u64,
    skipped_bits: u64,
    skipped_gaps: u64,
    packed_bits: u64,
    stretches: u64,
    stretch_len: Histogram,
    role_bits: [u64; 6],
    fallbacks: [u64; 8],
}

impl Default for KernelTelemetry {
    fn default() -> Self {
        KernelTelemetry {
            lockstep_bits: 0,
            skipped_bits: 0,
            skipped_gaps: 0,
            packed_bits: 0,
            stretches: 0,
            stretch_len: Histogram::new(STRETCH_BUCKETS),
            role_bits: [0; 6],
            fallbacks: [0; 8],
        }
    }
}

impl KernelTelemetry {
    /// Bits resolved one at a time by the lockstep engine (including
    /// packed/fast-forward quanta that fell back).
    pub fn lockstep_bits(&self) -> u64 {
        self.lockstep_bits
    }

    /// Bits skipped wholesale across idle gaps (fast-forward and packed).
    pub fn skipped_bits(&self) -> u64 {
        self.skipped_bits
    }

    /// Number of idle gaps skipped.
    pub fn skipped_gaps(&self) -> u64 {
        self.skipped_gaps
    }

    /// Bits resolved word-at-a-time by the packed engine.
    pub fn packed_bits(&self) -> u64 {
        self.packed_bits
    }

    /// Number of committed packed stretches.
    pub fn stretches(&self) -> u64 {
        self.stretches
    }

    /// Histogram of committed stretch lengths in bits.
    pub fn stretch_lengths(&self) -> &Histogram {
        &self.stretch_len
    }

    /// Packed bits by the role each node played, as
    /// `(label, node-bits)` pairs — the sum is `packed_bits × nodes`.
    pub fn role_bits(&self) -> [(&'static str, u64); 6] {
        let mut out = [("", 0); 6];
        for (i, label) in ROLE_LABELS.iter().enumerate() {
            out[i] = (label, self.role_bits[i]);
        }
        out
    }

    /// Packed-engine fallbacks by cause, as `(label, count)` pairs in
    /// [`FallbackCause::ALL`] order.
    pub fn fallbacks(&self) -> [(&'static str, u64); 8] {
        let mut out = [("", 0); 8];
        for (i, cause) in FallbackCause::ALL.iter().enumerate() {
            out[i] = (cause.label(), self.fallbacks[i]);
        }
        out
    }

    /// Count of fallbacks attributed to `cause`.
    pub fn fallback_count(&self, cause: FallbackCause) -> u64 {
        self.fallbacks[cause.index()]
    }

    pub(crate) fn count_lockstep_bit(&mut self) {
        self.lockstep_bits += 1;
    }

    pub(crate) fn count_skip(&mut self, gap: u64) {
        self.skipped_bits += gap;
        self.skipped_gaps += 1;
    }

    pub(crate) fn count_fallback(&mut self, cause: FallbackCause) {
        self.fallbacks[cause.index()] += 1;
    }

    pub(crate) fn count_stretch(&mut self, n: u64, roles: &[StretchRole]) {
        self.packed_bits += n;
        self.stretches += 1;
        self.stretch_len.observe(n);
        for role in roles {
            self.role_bits[role_index(*role)] += n;
        }
    }

    /// Renders the telemetry as one compact JSON object (no trailing
    /// newline) for embedding in benchmark reports.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"lockstep_bits\":{},\"skipped_bits\":{},\"skipped_gaps\":{},\
             \"packed_bits\":{},\"stretches\":{}",
            self.lockstep_bits,
            self.skipped_bits,
            self.skipped_gaps,
            self.packed_bits,
            self.stretches
        );
        let _ = write!(
            out,
            ",\"stretch_len\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.stretch_len.count(),
            self.stretch_len.sum(),
            self.stretch_len.min().unwrap_or(0),
            self.stretch_len.max().unwrap_or(0)
        );
        let counts = self.stretch_len.bucket_counts();
        for (i, bound) in STRETCH_BUCKETS.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}[{bound},{}]", counts[i]);
        }
        let _ = write!(out, ",[\"inf\",{}]]}}", counts[STRETCH_BUCKETS.len()]);
        out.push_str(",\"role_bits\":{");
        for (i, (label, bits)) in self.role_bits().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{label}\":{bits}");
        }
        out.push_str("},\"fallbacks\":{");
        for (i, (label, count)) in self.fallbacks().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{label}\":{count}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates_per_engine() {
        let mut t = KernelTelemetry::default();
        t.count_lockstep_bit();
        t.count_lockstep_bit();
        t.count_skip(100);
        t.count_stretch(48, &[StretchRole::Receive, StretchRole::Passive]);
        t.count_fallback(FallbackCause::AppPoll);
        t.count_fallback(FallbackCause::AppPoll);
        t.count_fallback(FallbackCause::ReceiverDryRun);
        assert_eq!(t.lockstep_bits(), 2);
        assert_eq!(t.skipped_bits(), 100);
        assert_eq!(t.skipped_gaps(), 1);
        assert_eq!(t.packed_bits(), 48);
        assert_eq!(t.stretches(), 1);
        assert_eq!(t.stretch_lengths().max(), Some(48));
        assert_eq!(t.fallback_count(FallbackCause::AppPoll), 2);
        assert_eq!(t.fallback_count(FallbackCause::ReceiverDryRun), 1);
        assert_eq!(t.fallback_count(FallbackCause::FaultStack), 0);
        let roles: std::collections::BTreeMap<_, _> = t.role_bits().into_iter().collect();
        assert_eq!(roles["receive"], 48);
        assert_eq!(roles["passive"], 48);
        assert_eq!(roles["transmit"], 0);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut t = KernelTelemetry::default();
        t.count_stretch(7, &[StretchRole::Transmit { word: 0 }]);
        t.count_fallback(FallbackCause::ShortCap);
        let json = t.to_json();
        let doc = can_obs::json::parse(&json).expect("telemetry JSON parses");
        assert_eq!(doc.get("packed_bits").and_then(|v| v.as_u64()), Some(7));
        let field = |path: [&str; 2]| {
            doc.get(path[0])
                .and_then(|v| v.get(path[1]))
                .and_then(|v| v.as_u64())
        };
        assert_eq!(field(["fallbacks", "short_cap"]), Some(1));
        assert_eq!(field(["fallbacks", "fault_stack"]), Some(0));
        assert_eq!(field(["role_bits", "transmit"]), Some(7));
    }
}

//! Metric extraction from event logs.
//!
//! The paper's central quantity is the **bus-off time**: "the total time
//! from the first bit of a malicious CAN message to the last bit of the
//! passive error frame in the 31st retransmission" (§V-C). This module
//! reconstructs such episodes — and summary statistics over them — from a
//! simulator event log.

use can_core::{BitDuration, BitInstant, BusSpeed};

use crate::event::{Event, EventKind, NodeId};

/// One attacker bus-off episode.
#[derive(Debug, Clone, PartialEq)]
pub struct BusOffEpisode {
    /// The node that was forced off the bus.
    pub node: NodeId,
    /// First bit of the first (malicious) transmission of this episode.
    pub started: BitInstant,
    /// End of the final error frame (the bus-off instant).
    pub finished: BitInstant,
    /// Number of transmission attempts within the episode (first
    /// transmission + retransmissions).
    pub attempts: u32,
}

impl BusOffEpisode {
    /// The bus-off time in bits.
    pub fn duration(&self) -> BitDuration {
        self.finished.elapsed_since(self.started)
    }
}

/// Extracts all completed bus-off episodes of `node` from an event log.
///
/// An episode starts at the node's first `TransmissionStarted` after
/// simulation start or after a `Recovered` event, and ends at the next
/// `BusOff` event.
pub fn bus_off_episodes(events: &[Event], node: NodeId) -> Vec<BusOffEpisode> {
    let mut episodes = Vec::new();
    let mut current_start: Option<BitInstant> = None;
    let mut attempts = 0u32;

    for event in events.iter().filter(|e| e.node == node) {
        match &event.kind {
            EventKind::TransmissionStarted { .. } => {
                if current_start.is_none() {
                    current_start = Some(event.at);
                    attempts = 0;
                }
                attempts += 1;
            }
            EventKind::BusOff => {
                if let Some(started) = current_start.take() {
                    episodes.push(BusOffEpisode {
                        node,
                        started,
                        // +1: the event is stamped at the sample completing
                        // the final delimiter bit; the bit itself ends one
                        // bit-time later.
                        finished: event.at,
                        attempts,
                    });
                }
            }
            EventKind::Recovered => {
                current_start = None;
                attempts = 0;
            }
            _ => {}
        }
    }
    episodes
}

/// Summary statistics over a set of durations (in bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationStats {
    /// Number of samples.
    pub count: usize,
    /// Mean duration in bits.
    pub mean_bits: f64,
    /// Standard deviation in bits (population).
    pub std_bits: f64,
    /// Maximum duration in bits.
    pub max_bits: u64,
    /// Minimum duration in bits.
    pub min_bits: u64,
}

impl DurationStats {
    /// Computes statistics over an iterator of durations.
    ///
    /// Returns `None` for an empty set.
    pub fn from_durations<I: IntoIterator<Item = BitDuration>>(durations: I) -> Option<Self> {
        let bits: Vec<u64> = durations.into_iter().map(|d| d.as_bits()).collect();
        if bits.is_empty() {
            return None;
        }
        let count = bits.len();
        let mean = bits.iter().sum::<u64>() as f64 / count as f64;
        let var = bits
            .iter()
            .map(|&b| {
                let d = b as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        Some(DurationStats {
            count,
            mean_bits: mean,
            std_bits: var.sqrt(),
            max_bits: *bits.iter().max().expect("non-empty"),
            min_bits: *bits.iter().min().expect("non-empty"),
        })
    }

    /// Mean in milliseconds at the given bus speed.
    pub fn mean_millis(&self, speed: BusSpeed) -> f64 {
        self.mean_bits * speed.bit_time_us() / 1000.0
    }

    /// Standard deviation in milliseconds at the given bus speed.
    pub fn std_millis(&self, speed: BusSpeed) -> f64 {
        self.std_bits * speed.bit_time_us() / 1000.0
    }

    /// Maximum in milliseconds at the given bus speed.
    pub fn max_millis(&self, speed: BusSpeed) -> f64 {
        self.max_bits as f64 * speed.bit_time_us() / 1000.0
    }
}

/// Counts events matching a predicate.
pub fn count_events<F: Fn(&Event) -> bool>(events: &[Event], predicate: F) -> usize {
    events.iter().filter(|e| predicate(e)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::CanId;

    fn started(at: u64, node: NodeId) -> Event {
        Event::new(
            BitInstant::from_bits(at),
            node,
            EventKind::TransmissionStarted {
                id: CanId::from_raw(0x64),
            },
        )
    }

    fn bus_off(at: u64, node: NodeId) -> Event {
        Event::new(BitInstant::from_bits(at), node, EventKind::BusOff)
    }

    fn recovered(at: u64, node: NodeId) -> Event {
        Event::new(BitInstant::from_bits(at), node, EventKind::Recovered)
    }

    #[test]
    fn extracts_single_episode() {
        let events = vec![started(100, 0), started(135, 0), bus_off(1348, 0)];
        let episodes = bus_off_episodes(&events, 0);
        assert_eq!(episodes.len(), 1);
        assert_eq!(episodes[0].started.bits(), 100);
        assert_eq!(episodes[0].duration().as_bits(), 1248);
        assert_eq!(episodes[0].attempts, 2);
    }

    #[test]
    fn episodes_reset_after_recovery() {
        let events = vec![
            started(0, 0),
            bus_off(1000, 0),
            recovered(2500, 0),
            started(2600, 0),
            bus_off(3700, 0),
        ];
        let episodes = bus_off_episodes(&events, 0);
        assert_eq!(episodes.len(), 2);
        assert_eq!(episodes[1].started.bits(), 2600);
        assert_eq!(episodes[1].duration().as_bits(), 1100);
    }

    #[test]
    fn other_nodes_are_ignored() {
        let events = vec![started(0, 1), bus_off(900, 1), started(5, 0)];
        assert!(bus_off_episodes(&events, 0).is_empty());
        assert_eq!(bus_off_episodes(&events, 1).len(), 1);
    }

    #[test]
    fn stats_over_durations() {
        let stats = DurationStats::from_durations([
            BitDuration::bits(1200),
            BitDuration::bits(1250),
            BitDuration::bits(1300),
        ])
        .unwrap();
        assert_eq!(stats.count, 3);
        assert!((stats.mean_bits - 1250.0).abs() < 1e-9);
        assert_eq!(stats.max_bits, 1300);
        assert_eq!(stats.min_bits, 1200);
        assert!(stats.std_bits > 0.0);
        // 1250 bits at 50 kbit/s = 25 ms — the paper's Table II scale.
        assert!((stats.mean_millis(BusSpeed::K50) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty_set_is_none() {
        assert!(DurationStats::from_durations(std::iter::empty()).is_none());
    }

    #[test]
    fn count_events_filters() {
        let events = vec![started(0, 0), bus_off(10, 0), bus_off(20, 1)];
        assert_eq!(
            count_events(&events, |e| matches!(e.kind, EventKind::BusOff)),
            2
        );
    }
}

//! Streaming receive-path parser.
//!
//! Every active node — receiver *or* transmitter — runs one [`RxParser`]
//! over the bus levels of the current frame. It destuffs, tracks field
//! positions, verifies the CRC and fixed-form bits, and tells the
//! controller when to assert the ACK slot. Transmitters reuse it so that a
//! node losing arbitration can continue as a receiver without missing a
//! bit.

use can_core::bitstream::{Destuffed, Destuffer, FrameField, FrameLayout};
use can_core::crc::Crc15;
use can_core::errors::CanErrorKind;
use can_core::{CanFrame, CanId, Level};

/// Result of feeding one bus bit to the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxEvent {
    /// Nothing notable; keep feeding bits.
    Continue,
    /// The CRC delimiter was just consumed and the CRC matched: the *next*
    /// bit is the ACK slot and a compliant receiver must drive it dominant.
    AckSlotNext,
    /// The frame completed and is valid for this receiver.
    Done(CanFrame),
    /// A protocol error was detected at this bit.
    Fault(CanErrorKind),
}

/// Phase of the streaming parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Inside the stuffed region (SOF through CRC sequence).
    Stuffed,
    /// Expecting a final stuff bit after the last CRC bit.
    FinalStuff,
    CrcDelim,
    AckSlot,
    AckDelim,
    Eof(u8),
    /// Terminal: `Done` or `Fault` already reported.
    Finished,
}

/// A streaming CAN 2.0A frame parser fed with bus levels, starting at the
/// SOF bit.
#[derive(Debug, Clone)]
pub struct RxParser {
    destuffer: Destuffer,
    unstuffed: Vec<Level>,
    phase: Phase,
    layout: Option<FrameLayout>,
    crc: Crc15,
    crc_received: u16,
    crc_bits_seen: u8,
    crc_ok: bool,
    rtr: bool,
    dlc_raw: u8,
    id: Option<CanId>,
}

impl RxParser {
    /// Creates a parser expecting the SOF as its first bit.
    pub fn new() -> Self {
        RxParser {
            destuffer: Destuffer::new(),
            unstuffed: Vec::with_capacity(128),
            phase: Phase::Stuffed,
            layout: None,
            crc: Crc15::new(),
            crc_received: 0,
            crc_bits_seen: 0,
            crc_ok: false,
            rtr: false,
            dlc_raw: 0,
            id: None,
        }
    }

    /// The identifier, once the full 11 ID bits have been parsed.
    pub fn id(&self) -> Option<CanId> {
        self.id
    }

    /// Number of unstuffed bits consumed so far.
    pub fn unstuffed_len(&self) -> usize {
        self.unstuffed.len()
    }

    /// Whether the parser reached a terminal state (done or faulted).
    pub fn is_finished(&self) -> bool {
        self.phase == Phase::Finished
    }

    /// Whether the parser is currently inside the arbitration field
    /// (SOF + identifier + RTR, unstuffed bits 0..=12).
    pub fn in_arbitration(&self) -> bool {
        self.unstuffed.len() <= 12 && matches!(self.phase, Phase::Stuffed)
    }

    /// Copies `self` into `dst`, reusing `dst`'s buffer allocation.
    ///
    /// The packed kernel dry-runs a receiver's parser over each candidate
    /// stretch on a per-node scratch parser; the derived `Clone` would
    /// allocate a fresh `unstuffed` vector every stretch.
    pub(crate) fn copy_into(&self, dst: &mut RxParser) {
        dst.destuffer = self.destuffer.clone();
        dst.unstuffed.clear();
        dst.unstuffed.extend_from_slice(&self.unstuffed);
        dst.phase = self.phase;
        dst.layout = self.layout;
        dst.crc = self.crc;
        dst.crc_received = self.crc_received;
        dst.crc_bits_seen = self.crc_bits_seen;
        dst.crc_ok = self.crc_ok;
        dst.rtr = self.rtr;
        dst.dlc_raw = self.dlc_raw;
        dst.id = self.id;
    }

    /// Feeds one bus level; must not be called after a terminal event.
    pub fn push(&mut self, bit: Level) -> RxEvent {
        match self.phase {
            Phase::Stuffed => self.push_stuffed(bit),
            Phase::FinalStuff => {
                self.phase = Phase::CrcDelim;
                match self.destuffer.push(bit) {
                    Destuffed::Violation => self.fault(CanErrorKind::Stuff),
                    _ => RxEvent::Continue,
                }
            }
            Phase::CrcDelim => {
                if bit.is_dominant() {
                    return self.fault(CanErrorKind::Form);
                }
                self.phase = Phase::AckSlot;
                if self.crc_ok {
                    RxEvent::AckSlotNext
                } else {
                    RxEvent::Continue
                }
            }
            Phase::AckSlot => {
                // Any level is legal here from the receiver's view.
                self.phase = Phase::AckDelim;
                RxEvent::Continue
            }
            Phase::AckDelim => {
                if bit.is_dominant() {
                    return self.fault(CanErrorKind::Form);
                }
                if !self.crc_ok {
                    // A CRC error is signalled only after the ACK delimiter.
                    return self.fault(CanErrorKind::Crc);
                }
                self.phase = Phase::Eof(0);
                RxEvent::Continue
            }
            Phase::Eof(n) => {
                if bit.is_dominant() {
                    if n == 6 {
                        // Dominant at the last EOF bit: tolerated by
                        // receivers (overload condition, not an error);
                        // the frame is already valid.
                        self.phase = Phase::Finished;
                        return RxEvent::Done(self.assemble());
                    }
                    return self.fault(CanErrorKind::Form);
                }
                if n == 6 {
                    self.phase = Phase::Finished;
                    RxEvent::Done(self.assemble())
                } else {
                    self.phase = Phase::Eof(n + 1);
                    RxEvent::Continue
                }
            }
            Phase::Finished => {
                debug_assert!(false, "parser fed after terminal event");
                RxEvent::Continue
            }
        }
    }

    fn fault(&mut self, kind: CanErrorKind) -> RxEvent {
        self.phase = Phase::Finished;
        RxEvent::Fault(kind)
    }

    fn push_stuffed(&mut self, bit: Level) -> RxEvent {
        let destuffed = match self.destuffer.push(bit) {
            Destuffed::Violation => return self.fault(CanErrorKind::Stuff),
            Destuffed::StuffBit => return RxEvent::Continue,
            Destuffed::Bit(b) => b,
        };
        let index = self.unstuffed.len();
        self.unstuffed.push(destuffed);

        // Interpret fields as their last bit arrives.
        match index {
            0 => {
                // SOF must be dominant; joining on a recessive bit is a
                // caller bug, but flag it as a form error defensively.
                if destuffed.is_recessive() {
                    return self.fault(CanErrorKind::Form);
                }
                self.crc.push(destuffed);
            }
            1..=11 => {
                self.crc.push(destuffed);
                if index == 11 {
                    let raw = self.unstuffed[1..12]
                        .iter()
                        .fold(0u16, |acc, l| (acc << 1) | l.to_bit() as u16);
                    self.id = Some(CanId::new(raw).expect("11 bits always fit"));
                }
            }
            12 => {
                self.rtr = destuffed.to_bit();
                self.crc.push(destuffed);
            }
            13 => {
                // IDE: recessive means an extended frame, unsupported here;
                // a compliant 2.0A-only receiver treats it as a form error.
                if destuffed.is_recessive() {
                    return self.fault(CanErrorKind::Form);
                }
                self.crc.push(destuffed);
            }
            14 => {
                self.crc.push(destuffed);
            }
            15..=18 => {
                self.crc.push(destuffed);
                if index == 18 {
                    self.dlc_raw = self.unstuffed[15..19]
                        .iter()
                        .fold(0u8, |acc, l| (acc << 1) | l.to_bit() as u8);
                    let data_bytes = if self.rtr {
                        0
                    } else {
                        self.dlc_raw.min(8) as usize
                    };
                    self.layout = Some(FrameLayout::for_payload(data_bytes));
                }
            }
            _ => {
                let layout = self.layout.expect("layout known after DLC");
                let crc_span = layout.span(FrameField::Crc);
                if index < crc_span.start {
                    // Data field.
                    self.crc.push(destuffed);
                } else {
                    // CRC sequence.
                    self.crc_received = (self.crc_received << 1) | destuffed.to_bit() as u16;
                    self.crc_bits_seen += 1;
                    if self.crc_bits_seen == 15 {
                        self.crc_ok = self.crc.value() == self.crc_received;
                        self.phase = if self.destuffer.expecting_stuff() {
                            Phase::FinalStuff
                        } else {
                            Phase::CrcDelim
                        };
                    }
                }
            }
        }
        RxEvent::Continue
    }

    fn assemble(&self) -> CanFrame {
        let id = self.id.expect("id parsed before completion");
        if self.rtr {
            CanFrame::remote_frame(id, self.dlc_raw.min(8)).expect("validated DLC")
        } else {
            let layout = self.layout.expect("layout known");
            let data_span = layout.span(FrameField::Data);
            let mut data = [0u8; 8];
            let mut len = 0usize;
            for (i, chunk) in self.unstuffed[data_span].chunks(8).enumerate() {
                data[i] = chunk
                    .iter()
                    .fold(0u8, |acc, l| (acc << 1) | l.to_bit() as u8);
                len = i + 1;
            }
            CanFrame::data_frame(id, &data[..len]).expect("validated payload")
        }
    }
}

impl Default for RxParser {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::bitstream::stuff_frame;

    fn feed(parser: &mut RxParser, bits: &[Level]) -> Vec<RxEvent> {
        bits.iter().map(|&b| parser.push(b)).collect()
    }

    fn frame(id: u16, data: &[u8]) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
    }

    #[test]
    fn parses_a_complete_frame() {
        let f = frame(0x173, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        let events = feed(&mut parser, &wire.bits);
        assert_eq!(*events.last().unwrap(), RxEvent::Done(f));
        assert!(parser.is_finished());
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, RxEvent::Done(_)))
                .count(),
            1
        );
    }

    #[test]
    fn reports_ack_slot_one_bit_ahead() {
        let f = frame(0x064, &[0xAA]);
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        let events = feed(&mut parser, &wire.bits);
        let ack_next_pos = events
            .iter()
            .position(|e| *e == RxEvent::AckSlotNext)
            .expect("valid frame announces the ACK slot");
        // The announcement fires on the CRC delimiter; the ACK slot is the
        // very next wire bit.
        let layout = FrameLayout::of(&f);
        let ack_wire_index = layout.span(FrameField::AckSlot).start + wire.stuff_count();
        assert_eq!(ack_next_pos + 1, ack_wire_index);
    }

    #[test]
    fn id_available_after_arbitration() {
        let f = frame(0x2B3, &[]);
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        for &bit in &wire.bits {
            parser.push(bit);
            if parser.unstuffed_len() >= 12 {
                break;
            }
        }
        assert_eq!(parser.id(), Some(CanId::from_raw(0x2B3)));
    }

    #[test]
    fn in_arbitration_window() {
        let f = frame(0x555, &[]);
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        assert!(parser.in_arbitration());
        for &bit in &wire.bits[..14] {
            parser.push(bit);
        }
        // 14 wire bits of 0x555 contain no stuff bits; unstuffed index 13 ⇒
        // IDE consumed ⇒ past arbitration.
        assert!(!parser.in_arbitration());
    }

    #[test]
    fn six_dominant_bits_fault_stuffing() {
        let mut parser = RxParser::new();
        // SOF is dominant; five more dominant bits make six consecutive
        // equal levels — the violation fires on the fifth bit after SOF.
        parser.push(Level::Dominant);
        let mut fault = None;
        for i in 0..6 {
            if let RxEvent::Fault(kind) = parser.push(Level::Dominant) {
                fault = Some((i, kind));
                break;
            }
        }
        let (i, kind) = fault.expect("must fault within six bits");
        assert_eq!(kind, CanErrorKind::Stuff);
        assert_eq!(i, 4, "violation on the sixth consecutive dominant level");
    }

    #[test]
    fn crc_corruption_faults_after_ack_delimiter() {
        let f = frame(0x100, &[0x55, 0x66]);
        let mut wire = stuff_frame(&f);
        // Flip a single data bit without creating a stuff violation:
        // find a bit whose neighbours differ so the flip cannot make a run
        // of six.
        let layout = FrameLayout::of(&f);
        let data_start = layout.span(FrameField::Data).start;
        let mut flipped = None;
        for i in data_start..data_start + 16 {
            let mut probe = wire.bits.clone();
            probe[i] = probe[i].opposite();
            let mut p = RxParser::new();
            let mut events = Vec::new();
            for &b in &probe {
                let e = p.push(b);
                let terminal = matches!(e, RxEvent::Done(_) | RxEvent::Fault(_));
                events.push(e);
                if terminal {
                    break;
                }
            }
            if events.contains(&RxEvent::Fault(CanErrorKind::Crc)) {
                flipped = Some((probe.clone(), events));
                break;
            }
        }
        let (probe, events) = flipped.expect("some flip yields a clean CRC fault");
        let fault_pos = events
            .iter()
            .position(|e| *e == RxEvent::Fault(CanErrorKind::Crc))
            .unwrap();
        // CRC faults are reported at the ACK delimiter, not earlier.
        let ack_delim_unstuffed = layout.span(FrameField::AckDelim).start;
        assert!(
            fault_pos >= ack_delim_unstuffed,
            "CRC fault at {fault_pos} before ACK delimiter"
        );
        wire.bits = probe;
    }

    #[test]
    fn form_fault_on_dominant_crc_delimiter() {
        let f = frame(0x200, &[]);
        let wire = stuff_frame(&f);
        let layout = FrameLayout::of(&f);
        let delim_index = layout.span(FrameField::CrcDelim).start + wire.stuff_count();
        let mut parser = RxParser::new();
        for &bit in &wire.bits[..delim_index] {
            assert!(!matches!(parser.push(bit), RxEvent::Fault(_)));
        }
        assert_eq!(
            parser.push(Level::Dominant),
            RxEvent::Fault(CanErrorKind::Form)
        );
    }

    #[test]
    fn dominant_final_eof_bit_is_tolerated() {
        let f = frame(0x300, &[7]);
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        let n = wire.bits.len();
        for &bit in &wire.bits[..n - 1] {
            let e = parser.push(bit);
            assert!(!matches!(e, RxEvent::Fault(_)), "unexpected fault: {e:?}");
        }
        assert_eq!(parser.push(Level::Dominant), RxEvent::Done(f));
    }

    #[test]
    fn dominant_mid_eof_is_a_form_fault() {
        let f = frame(0x300, &[7]);
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        let n = wire.bits.len();
        for &bit in &wire.bits[..n - 4] {
            parser.push(bit);
        }
        assert_eq!(
            parser.push(Level::Dominant),
            RxEvent::Fault(CanErrorKind::Form)
        );
    }

    #[test]
    fn extended_frames_fault_at_ide() {
        let f = frame(0x155, &[]);
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        // 0x155 has no stuff bits before unstuffed index 13 (alternating).
        for &bit in &wire.bits[..13] {
            assert!(!matches!(parser.push(bit), RxEvent::Fault(_)));
        }
        assert_eq!(
            parser.push(Level::Recessive),
            RxEvent::Fault(CanErrorKind::Form)
        );
    }

    #[test]
    fn remote_frames_parse() {
        let f = CanFrame::remote_frame(CanId::from_raw(0x412), 3).unwrap();
        let wire = stuff_frame(&f);
        let mut parser = RxParser::new();
        let events = feed(&mut parser, &wire.bits);
        assert_eq!(*events.last().unwrap(), RxEvent::Done(f));
    }

    #[test]
    fn all_dlcs_parse() {
        for dlc in 0..=8usize {
            let payload: Vec<u8> = (0..dlc).map(|i| (0x91 * (i + 1)) as u8).collect();
            let f = frame(0x600 + dlc as u16, &payload);
            let wire = stuff_frame(&f);
            let mut parser = RxParser::new();
            let events = feed(&mut parser, &wire.bits);
            assert_eq!(*events.last().unwrap(), RxEvent::Done(f), "dlc {dlc}");
        }
    }
}

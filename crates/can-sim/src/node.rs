//! A simulated ECU: controller + application + optional bit agent.
//!
//! The node mirrors the paper's "CAN node C" (Fig. 1c): an MCU whose
//! integrated CAN controller handles frames for the application, while pin
//! multiplexing optionally grants a software *bit agent* (e.g. MichiCAN)
//! direct access to the `CAN_RX`/`CAN_TX` lines. The node's contribution to
//! the bus is the wired-AND of its controller output and its agent output —
//! exactly what two drivers on the same open-collector pin produce.

use can_core::agent::BitAgent;
use can_core::app::Application;
use can_core::{packed, BitDuration, BitInstant, Level};

use crate::controller::{Controller, ControllerConfig, StepOutput, StretchRole};
use crate::fault::TxFault;
use crate::parser::RxParser;
use crate::telemetry::FallbackCause;

/// Maximum frames an application may enqueue per bit time; guards against
/// runaway flooding applications stalling the simulator.
const MAX_ENQUEUE_PER_BIT: usize = 8;

/// A simulated ECU.
pub struct Node {
    name: String,
    controller: Controller,
    app: Box<dyn Application>,
    agent: Option<Box<dyn BitAgent>>,
    tx_fault: Option<TxFault>,
    /// Level forced by an active TX fault during the current bit, cached
    /// by [`Node::prepare_bit`] so [`Node::tx_level`] stays `&self`.
    forced_tx: Option<Level>,
}

impl Node {
    /// Creates a node with the given application and default controller
    /// configuration.
    pub fn new(name: impl Into<String>, app: Box<dyn Application>) -> Self {
        Node {
            name: name.into(),
            controller: Controller::new(ControllerConfig::default()),
            app,
            agent: None,
            tx_fault: None,
            forced_tx: None,
        }
    }

    /// Creates a node with an explicit controller configuration.
    pub fn with_config(
        name: impl Into<String>,
        app: Box<dyn Application>,
        config: ControllerConfig,
    ) -> Self {
        Node {
            name: name.into(),
            controller: Controller::new(config),
            app,
            agent: None,
            tx_fault: None,
            forced_tx: None,
        }
    }

    /// Attaches a bit agent (pin-multiplexed defense) to this node.
    pub fn with_agent(mut self, agent: Box<dyn BitAgent>) -> Self {
        self.agent = Some(agent);
        self
    }

    /// Attaches a transmitter-side fault (stuck-dominant transceiver,
    /// babbling node, transient crash/restart) to this node.
    pub fn with_tx_fault(mut self, fault: TxFault) -> Self {
        self.tx_fault = Some(fault);
        self
    }

    /// Installs or clears the transmitter-side fault at runtime.
    pub fn set_tx_fault(&mut self, fault: Option<TxFault>) {
        self.tx_fault = fault;
        self.forced_tx = None;
    }

    /// The node's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Immutable access to the controller (for assertions and statistics).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the controller (e.g. to pre-load mailboxes).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Immutable access to the application.
    pub fn app(&self) -> &dyn Application {
        self.app.as_ref()
    }

    /// Mutable access to the application.
    pub fn app_mut(&mut self) -> &mut dyn Application {
        self.app.as_mut()
    }

    /// Immutable access to the attached agent, if any.
    pub fn agent(&self) -> Option<&dyn BitAgent> {
        self.agent.as_deref()
    }

    /// Advances the node's fault state to bit time `now`: delivers a
    /// pending restart reset and caches the fault's TX override. The
    /// simulator calls this once per bit, before collecting TX levels.
    /// Returns `true` when a restart reset was delivered this bit (the
    /// mailboxes were flushed, so any open causal chain is void).
    pub fn prepare_bit(&mut self, now: BitInstant) -> bool {
        self.forced_tx = None;
        let mut restarted = false;
        if let Some(fault) = &mut self.tx_fault {
            if fault.take_restart(now.bits()) {
                self.controller.reset();
                restarted = true;
            }
            self.forced_tx = fault.tx_override(now.bits());
        }
        restarted
    }

    /// The level this node contributes to the bus during the next bit.
    pub fn tx_level(&self) -> Level {
        if let Some(forced) = self.forced_tx {
            return forced;
        }
        let controller = self.controller.tx_level();
        let agent = self
            .agent
            .as_ref()
            .and_then(|a| a.tx_level())
            .unwrap_or(Level::Recessive);
        controller & agent
    }

    /// The earliest bit time at or after `now` at which this node may
    /// drive the bus, emit an event or otherwise needs per-bit processing,
    /// assuming the bus stays recessive until then. `None` means "never"
    /// under that assumption.
    ///
    /// The horizon is the minimum over the node's four per-bit seams:
    /// transmitter fault, controller, application poll and bit agent. A
    /// crashed MCU is special: its controller, application and agent are
    /// frozen, so only the fault's restart instant matters.
    pub fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        if let Some(fault) = &self.tx_fault {
            if fault.is_down(now.bits()) {
                return fault.next_activity(now.bits()).map(BitInstant::from_bits);
            }
        }
        let mut horizon: Option<BitInstant> = None;
        let mut fold = |h: Option<BitInstant>| {
            horizon = match (horizon, h) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        };
        if let Some(fault) = &self.tx_fault {
            fold(fault.next_activity(now.bits()).map(BitInstant::from_bits));
        }
        fold(self.controller.next_activity(now));
        fold(self.app.next_activity(now));
        if let Some(agent) = &self.agent {
            fold(agent.next_activity(now));
        }
        horizon
    }

    /// Advances the node over `bits` consecutive recessive bus bits
    /// starting at `from`, in closed form — exactly equivalent to `bits`
    /// calls of [`Node::prepare_bit`] + [`Node::sample_into`] with a
    /// recessive bus, given the window lies inside a horizon declared by
    /// [`Node::next_activity`].
    pub fn advance_idle(&mut self, bits: u64, from: BitInstant) {
        if self
            .tx_fault
            .as_ref()
            .is_some_and(|fault| fault.is_down(from.bits()))
        {
            // Crashed MCU: everything is frozen until the restart, and the
            // fault itself has no per-bit state while down.
            return;
        }
        // Application polls inside the window return `None` without state
        // change (the quiescence contract), so they are skipped entirely.
        self.controller.advance_idle(bits);
        if let Some(agent) = &mut self.agent {
            agent.skip_idle(bits, from);
        }
    }

    /// The node's side of the packed kernel's stretch negotiation
    /// (DESIGN.md §11): how it participates in a stretch starting at `now`,
    /// or `Err(cause)` when the next bit needs lockstep processing — the
    /// cause names the seam that refused, for the kernel's fallback
    /// telemetry.
    ///
    /// Lowers `*cap` to the earliest of the node's per-bit seams: an armed
    /// TX fault window, the application's next poll, the agent's drive
    /// horizon and the controller's own bound. Like the controller plan,
    /// this has no side effects.
    pub(crate) fn stretch_plan(
        &self,
        now: BitInstant,
        cap: &mut u64,
    ) -> Result<StretchRole, FallbackCause> {
        let t = now.bits();
        if let Some(fault) = &self.tx_fault {
            if fault.is_down(t) {
                // Crashed MCU: frozen until the restart instant, which the
                // fault reports as its next activity.
                if let Some(h) = fault.next_activity(t) {
                    if h <= t {
                        return Err(FallbackCause::NodeFault);
                    }
                    *cap = (*cap).min(h - t);
                }
                return Ok(StretchRole::Down);
            }
            // The fault windows are evaluated directly rather than through
            // the `forced_tx` cache: `prepare_bit` is not called inside a
            // stretch, so the cache may be stale.
            match fault.next_activity(t) {
                // Active override or pending restart.
                Some(h) if h <= t => return Err(FallbackCause::NodeFault),
                Some(h) => *cap = (*cap).min(h - t),
                None => {}
            }
        }
        match self.app.next_activity(now) {
            // A poll is due now.
            Some(h) if h.bits() <= t => return Err(FallbackCause::AppPoll),
            Some(h) => *cap = (*cap).min(h.bits() - t),
            None => {}
        }
        if let Some(agent) = &self.agent {
            match agent.drive_horizon(now) {
                // May drive this bit.
                Some(h) if h.bits() <= t => return Err(FallbackCause::AgentDrive),
                Some(h) => *cap = (*cap).min(h.bits() - t),
                None => {}
            }
        }
        self.controller
            .stretch_plan(now, cap)
            .ok_or(FallbackCause::Controller)
    }

    /// Commits one packed stretch of `n` bits of resolved bus word `bus`
    /// to this node, in its negotiated `role`.
    ///
    /// `rx_scratch` is the node's dry-run parser from planning; `rx_swap`
    /// says it covered exactly this stretch, so it can be installed in
    /// O(1) instead of replaying the bits. The attached agent replays the
    /// bus word bit-by-bit — its promise was only to not *drive* inside
    /// the stretch, not to skip observations.
    pub(crate) fn commit_stretch(
        &mut self,
        role: StretchRole,
        bus: u64,
        n: u32,
        now: BitInstant,
        rx_scratch: &mut RxParser,
        rx_swap: bool,
    ) {
        match role {
            StretchRole::Down => return,
            StretchRole::Transmit { .. } => self.controller.commit_transmit(n),
            StretchRole::Receive => {
                if rx_swap {
                    self.controller.commit_receive_swap(rx_scratch);
                } else {
                    self.controller.commit_receive_push(bus, n);
                }
            }
            // Idle / intermission / suspend: the stretch caps guarantee an
            // all-recessive window for this node, so the closed-form idle
            // advance applies.
            StretchRole::Passive => self.controller.advance_idle(u64::from(n)),
            StretchRole::Integrating { .. } | StretchRole::BusOff => {
                self.controller.commit_passive_word(bus, n);
            }
        }
        if let Some(agent) = &mut self.agent {
            let own = matches!(role, StretchRole::Transmit { .. });
            for i in 0..n {
                agent.set_own_transmission(own);
                agent.on_bit(
                    packed::level_at(bus, i),
                    now + BitDuration::bits(u64::from(i)),
                );
            }
        }
    }

    /// Processes the sampled bus level for the current bit.
    pub fn on_sample(&mut self, bus: Level, now: BitInstant) -> StepOutput {
        let mut out = StepOutput::default();
        self.sample_into(bus, now, &mut out);
        out
    }

    /// [`Node::on_sample`] writing into a caller-provided output.
    ///
    /// `out` must be [`StepOutput::clear`]ed (or fresh); the simulator
    /// recycles one buffer across every node and bit so the hot path does
    /// not allocate.
    pub fn sample_into(&mut self, bus: Level, now: BitInstant, out: &mut StepOutput) {
        // A crashed MCU samples nothing: controller, application and
        // agent are all frozen until the restart.
        if self
            .tx_fault
            .as_ref()
            .is_some_and(|fault| fault.is_down(now.bits()))
        {
            return;
        }

        // Application poll first: a frame due at bit `t` can be on the bus
        // at `t + 1`.
        for _ in 0..MAX_ENQUEUE_PER_BIT {
            match self.app.poll(now) {
                Some(frame) => self.controller.enqueue(frame),
                None => break,
            }
        }

        self.controller.on_sample_into(bus, now, out);

        // Deliver controller callbacks to the application.
        if let Some(frame) = &out.received {
            self.app.on_frame(frame, now);
        }
        if let Some(frame) = &out.transmitted {
            self.app.on_transmit_success(frame, now);
        }
        for event in &out.events {
            use crate::event::EventKind;
            match event {
                EventKind::BusOff => self.app.on_bus_off(now),
                EventKind::Recovered => self.app.on_recovered(now),
                _ => {}
            }
        }

        // The bit agent sees the same sample, plus whether the frame on the
        // bus is this node's own transmission.
        if let Some(agent) = &mut self.agent {
            agent.set_own_transmission(self.controller.is_transmitting());
            agent.on_bit(bus, now);
        }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("controller", &self.controller)
            .field("has_agent", &self.agent.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::app::{PeriodicSender, SilentApplication};
    use can_core::{CanFrame, CanId};

    struct DominantAgent;
    impl BitAgent for DominantAgent {
        fn on_bit(&mut self, _level: Level, _now: BitInstant) {}
        fn tx_level(&self) -> Option<Level> {
            Some(Level::Dominant)
        }
    }

    #[test]
    fn node_combines_controller_and_agent_levels() {
        let node = Node::new("quiet", Box::new(SilentApplication));
        assert_eq!(node.tx_level(), Level::Recessive);

        let node =
            Node::new("agented", Box::new(SilentApplication)).with_agent(Box::new(DominantAgent));
        assert_eq!(node.tx_level(), Level::Dominant);
    }

    #[test]
    fn application_frames_reach_the_mailbox() {
        let frame = CanFrame::data_frame(CanId::from_raw(0x42), &[1]).unwrap();
        let mut node = Node::new("tx", Box::new(PeriodicSender::new(frame, 1000, 0)));
        node.on_sample(Level::Recessive, BitInstant::ZERO);
        assert_eq!(node.controller().pending_count(), 1);
    }

    #[test]
    fn flooding_application_is_bounded_per_bit() {
        struct Flood;
        impl Application for Flood {
            fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
                // An unbounded stream of distinct ids.
                use std::sync::atomic::{AtomicU16, Ordering};
                static NEXT: AtomicU16 = AtomicU16::new(0);
                let raw = NEXT.fetch_add(1, Ordering::Relaxed) % 0x7FF;
                Some(CanFrame::data_frame(CanId::from_raw(raw), &[]).unwrap())
            }
        }
        let mut node = Node::new("flood", Box::new(Flood));
        node.on_sample(Level::Recessive, BitInstant::ZERO);
        assert!(node.controller().pending_count() <= MAX_ENQUEUE_PER_BIT);
    }

    #[test]
    fn name_is_reported() {
        let node = Node::new("body-ecu", Box::new(SilentApplication));
        assert_eq!(node.name(), "body-ecu");
        assert!(format!("{node:?}").contains("body-ecu"));
    }
}

//! Fluent construction of [`Simulator`]s.
//!
//! Historically a simulator was configured through scattered mutators
//! (`set_recorder`, `set_fault_model`, `enable_trace`, …) interleaved with
//! `add_node` calls. [`SimBuilder`] replaces that with a single fluent
//! chain that states the whole configuration up front:
//!
//! ```
//! use can_sim::prelude::*;
//! use can_core::app::SilentApplication;
//!
//! let mut sim = SimBuilder::new(BusSpeed::K500)
//!     .trace()
//!     .node(Node::new("quiet", Box::new(SilentApplication)))
//!     .build();
//! sim.run(100);
//! assert_eq!(sim.trace().unwrap().len(), 100);
//! ```
//!
//! The old mutators went through a `#[deprecated]`-shim release cycle and
//! have been removed; the builder is the only configuration surface.

use can_core::BusSpeed;
use can_obs::{Journal, Recorder};

use crate::event::NodeId;
use crate::fault::{FaultModel, FaultStack};
use crate::node::Node;
use crate::sim::{SignalTrace, Simulator};
use crate::tap::FrameTap;

/// Fluent builder for [`Simulator`].
///
/// Nodes added via [`SimBuilder::node`] receive ids in call order,
/// starting at 0 — identical to sequential `add_node` calls. Use
/// [`SimBuilder::node_id`] (or count your `node` calls) when a scenario
/// needs an id before `build`.
#[must_use = "a SimBuilder does nothing until `build` is called"]
pub struct SimBuilder {
    sim: Simulator,
}

impl SimBuilder {
    /// Starts a builder for a simulator at the given bus speed.
    pub fn new(speed: BusSpeed) -> Self {
        SimBuilder {
            sim: Simulator::new(speed),
        }
    }

    /// Attaches a metrics recorder (see `can_obs::Recorder`). Without this
    /// the simulator keeps the default disabled recorder and every
    /// instrumentation site is a no-op.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.sim.install_recorder(recorder);
        self
    }

    /// Attaches a causal event journal (see `can_obs::Journal`). Without
    /// this the simulator keeps the default disabled journal and every
    /// emission site is a no-op.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.sim.install_journal(journal);
        self
    }

    /// Appends one channel fault layer (EMI-style bus disturbance) on top
    /// of any layers added so far.
    pub fn fault(mut self, fault: FaultModel) -> Self {
        self.sim.push_fault_layer(fault);
        self
    }

    /// Installs a complete channel fault stack, replacing any layers added
    /// via [`SimBuilder::fault`].
    pub fn faults(mut self, faults: FaultStack) -> Self {
        self.sim.install_fault_stack(faults);
        self
    }

    /// Enables unbounded per-bit signal tracing (Fig. 6-style timelines).
    pub fn trace(mut self) -> Self {
        self.sim.install_trace(SignalTrace::default());
        self
    }

    /// Enables bounded signal tracing over the most recent `capacity`
    /// bits (for soak runs). Replaces any earlier trace configuration.
    pub fn trace_ring(mut self, capacity: usize) -> Self {
        self.sim.install_trace(SignalTrace::ring(capacity));
        self
    }

    /// Turns protocol-event logging on or off (on by default).
    pub fn event_logging(mut self, enabled: bool) -> Self {
        self.sim.install_event_logging(enabled);
        self
    }

    /// Adds a node. Ids are assigned in call order starting at 0.
    pub fn node(mut self, node: Node) -> Self {
        self.sim.add_node(node);
        self
    }

    /// Attaches a passive frame tap (see [`FrameTap`]): a bus observer
    /// that sees every completed frame without occupying a node, driving
    /// the bus, or ACKing. Any number of taps can watch one bus; they are
    /// delivered to in attachment order.
    pub fn tap(mut self, tap: Box<dyn FrameTap>) -> Self {
        self.sim.install_tap(tap);
        self
    }

    /// The id the *next* [`SimBuilder::node`] call will receive.
    pub fn node_id(&self) -> NodeId {
        self.sim.node_count()
    }

    /// Finishes configuration and returns the simulator.
    pub fn build(self) -> Simulator {
        self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::app::{PeriodicSender, SilentApplication};
    use can_core::{CanFrame, CanId};

    #[test]
    fn builder_matches_manual_construction() {
        let frame = CanFrame::data_frame(CanId::from_raw(0x123), &[1, 2]).unwrap();

        let mut built = SimBuilder::new(BusSpeed::K500)
            .recorder(Recorder::enabled())
            .trace()
            .node(Node::new("s", Box::new(PeriodicSender::new(frame, 400, 0))))
            .node(Node::new("r", Box::new(SilentApplication)))
            .build();

        let mut manual = Simulator::new(BusSpeed::K500);
        manual.install_recorder(Recorder::enabled());
        manual.install_trace(SignalTrace::default());
        manual.add_node(Node::new("s", Box::new(PeriodicSender::new(frame, 400, 0))));
        manual.add_node(Node::new("r", Box::new(SilentApplication)));

        built.run(3_000);
        manual.run(3_000);
        assert_eq!(built.events(), manual.events());
        assert_eq!(
            built.trace().unwrap().snapshot(),
            manual.trace().unwrap().snapshot()
        );
        assert_eq!(
            built.recorder().snapshot_json(),
            manual.recorder().snapshot_json()
        );
    }

    #[test]
    fn node_id_predicts_assignment() {
        let builder = SimBuilder::new(BusSpeed::K125);
        assert_eq!(builder.node_id(), 0);
        let builder = builder.node(Node::new("a", Box::new(SilentApplication)));
        assert_eq!(builder.node_id(), 1);
        let sim = builder
            .node(Node::new("b", Box::new(SilentApplication)))
            .build();
        assert_eq!(sim.node_count(), 2);
        assert_eq!(sim.node(1).name(), "b");
    }

    #[test]
    fn trace_ring_and_event_logging_via_builder() {
        let mut sim = SimBuilder::new(BusSpeed::K500)
            .event_logging(false)
            .fault(FaultModel::None)
            .faults(FaultStack::new())
            .trace_ring(4)
            .node(Node::new("n", Box::new(SilentApplication)))
            .build();
        sim.run(10);
        assert_eq!(sim.trace().unwrap().len(), 4, "ring keeps the last bits");
        assert!(sim.events().is_empty(), "event logging stays off");
    }
}
